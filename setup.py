"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file only exists so
that legacy editable installs (``pip install -e . --no-use-pep517``) work in
offline environments where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
