"""Setuptools entry point.

Keeps the packaging metadata minimal and offline-friendly: the mandatory
dependency set is just ``networkx`` (every algorithm has a pure-Python
reference path), and the accelerated hot-path kernel tiers are opt-in
extras —

* ``repro[fast]`` pulls in numpy for the vectorised frontier-expansion /
  carving kernels (selected automatically by ``--kernel auto`` when
  importable);
* ``repro[jit]`` additionally pulls in numba for the JIT-compiled loops
  (never auto-selected; request with ``--kernel numba``).

Without either extra the package still works end to end on the ``pure``
kernel tier — ``repro.kernels`` degrades with a one-line warning.
"""

from setuptools import find_packages, setup

setup(
    name="repro-strong-decomposition",
    version="0.5.0",
    description=(
        "Reproduction of 'Strong-Diameter Network Decomposition' (PODC 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["networkx"],
    extras_require={
        "fast": ["numpy"],
        "jit": ["numpy", "numba"],
    },
    entry_points={
        "console_scripts": ["repro-decompose = repro.cli:main"],
    },
)
