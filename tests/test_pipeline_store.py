"""Unit tests for the persistent run store (repro.pipeline.store)."""

import json
import os
import warnings

import pytest

import repro
from repro.pipeline import SCHEMA_VERSION, RunStore, StoreSchemaError, SuiteSpec, read_records


def _record(cell_id, rounds=1):
    return {"cell": cell_id, "metrics": {"rounds": rounds}}


class TestRunStore:
    def test_records_persist_and_reload(self, tmp_path):
        path = os.path.join(tmp_path, "store.jsonl")
        store = RunStore(path, suite="demo", metadata={"host": "test"})
        store.add(_record("a", rounds=3))
        store.add(_record("b", rounds=5))

        reloaded = RunStore(path)
        assert reloaded.suite == "demo"
        assert reloaded.metadata == {"host": "test"}
        assert len(reloaded) == 2
        assert "a" in reloaded and "b" in reloaded
        assert reloaded.completed_cells()["a"]["metrics"]["rounds"] == 3

    def test_file_is_json_lines_with_header_first(self, tmp_path):
        path = os.path.join(tmp_path, "store.jsonl")
        store = RunStore(path, suite="demo")
        store.add(_record("a"))
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert lines[0]["kind"] == "header"
        assert lines[0]["schema"] == SCHEMA_VERSION
        assert lines[1]["kind"] == "result"

    def test_schema_version_rejection(self, tmp_path):
        path = os.path.join(tmp_path, "old.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "header", "schema": SCHEMA_VERSION + 1}) + "\n")
            handle.write(json.dumps({"kind": "result", "cell": "a"}) + "\n")
        with pytest.raises(StoreSchemaError):
            RunStore(path)
        with pytest.raises(StoreSchemaError):
            read_records(path)

    def test_headerless_file_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "bare.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "result", "cell": "a"}) + "\n")
        with pytest.raises(StoreSchemaError):
            RunStore(path)

    def test_record_without_cell_rejected(self):
        with pytest.raises(ValueError):
            RunStore(None).add({"metrics": {}})

    def test_in_memory_store(self):
        store = RunStore(None, suite="mem")
        store.add(_record("x"))
        assert store.path is None
        assert "x" in store and len(store.results()) == 1

    def test_schema_1_store_loads_backward_compatible(self, tmp_path):
        """Pre-timings stores (schema 1) must keep loading under schema 2."""
        path = os.path.join(tmp_path, "v1.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "header", "schema": 1, "suite": "old"}) + "\n")
            handle.write(json.dumps({"kind": "result", "cell": "a", "metrics": {}}) + "\n")
        store = RunStore(path)
        assert store.suite == "old" and "a" in store
        assert "timings" not in store.completed_cells()["a"]


class TestCrashResilience:
    def test_truncated_final_line_is_warned_skipped_and_removed(self, tmp_path):
        path = os.path.join(tmp_path, "crashed.jsonl")
        store = RunStore(path, suite="demo")
        store.add(_record("a", rounds=3))
        store.add(_record("b", rounds=5))
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-9])  # kill -9 mid-append of record "b"

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reloaded = RunStore(path)
        assert any("truncated" in str(w.message) for w in caught)
        assert "a" in reloaded and "b" not in reloaded

        # The fragment was truncated away, so the next append starts a fresh
        # line and the store round-trips cleanly afterwards.
        reloaded.add(_record("b", rounds=5))
        again = RunStore(path)
        assert "a" in again and "b" in again and len(again) == 2

    def test_final_line_missing_only_its_newline_is_not_glued_onto(self, tmp_path):
        """A crash can persist a full record but cut the trailing newline;
        the next append must start a fresh line, not glue onto it."""
        path = os.path.join(tmp_path, "newline.jsonl")
        store = RunStore(path, suite="demo")
        store.add(_record("a", rounds=3))
        store.add(_record("b", rounds=5))
        with open(path, "rb") as handle:
            data = handle.read()
        assert data.endswith(b"\n")
        with open(path, "wb") as handle:
            handle.write(data[:-1])  # crash ate exactly the newline

        reloaded = RunStore(path)
        assert "a" in reloaded and "b" in reloaded  # record "b" survived
        reloaded.add(_record("c", rounds=7))
        again = RunStore(path)
        assert len(again) == 3
        assert {"a", "b", "c"} <= set(again.completed_cells())

    def test_read_only_crashed_store_still_loads(self, tmp_path):
        """Loading never writes: the truncated-tail repair is deferred to the
        first append, so read-only consumers (analysis, archives) work."""
        path = os.path.join(tmp_path, "readonly.jsonl")
        store = RunStore(path, suite="demo")
        store.add(_record("a", rounds=3))
        store.add(_record("b", rounds=5))
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-9])
        os.chmod(path, 0o444)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                reloaded = RunStore(path)
                assert "a" in reloaded and "b" not in reloaded
                assert read_records(path)[0]["cell"] == "a"
        finally:
            os.chmod(path, 0o644)

    def test_mid_file_corruption_is_still_an_error(self, tmp_path):
        path = os.path.join(tmp_path, "damaged.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"kind": "header", "schema": SCHEMA_VERSION}) + "\n"
            )
            handle.write('{"kind": "result", "cell": "a", "met\n')
            handle.write(json.dumps({"kind": "result", "cell": "b"}) + "\n")
        with pytest.raises(ValueError):
            RunStore(path)

    def test_truncated_header_is_not_silently_tolerated(self, tmp_path):
        path = os.path.join(tmp_path, "headerless.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"kind": "head')
        with pytest.raises(ValueError):
            RunStore(path)

    def test_resume_recomputes_exactly_the_lost_cell(self, tmp_path):
        spec = SuiteSpec(
            name="crash-resume",
            scenarios=("torus",),
            sizes=(36,),
            methods=("sequential", "mpx"),
            seeds=(0,),
        )
        path = os.path.join(tmp_path, "sweep.jsonl")
        repro.run_suite(spec, store=path)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-20])  # truncate the final record mid-line

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = repro.run_suite(spec, store=path)
        assert result.executed == 1 and result.skipped == 1
        assert len(RunStore(path)) == 2


class TestResume:
    _SPEC = dict(
        name="resume-test",
        scenarios=("torus",),
        sizes=(64,),
        methods=("sequential", "mpx"),
        mode="decomposition",
        seeds=(0, 1),
    )

    def test_resume_after_partial_run_skips_completed_cells(self, tmp_path):
        spec = SuiteSpec(**self._SPEC)
        path = os.path.join(tmp_path, "partial.jsonl")

        # Simulate an interrupted sweep: run everything, then truncate the
        # store file down to the header + the first two result lines.
        repro.run_suite(spec, store=path)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        assert len(lines) == 1 + 4
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:3])

        partial = RunStore(path)
        assert len(partial) == 2

        result = repro.run_suite(spec, store=path)
        assert result.skipped == 2
        assert result.executed == 2
        assert len(result.records) == 4
        # The store now holds the full grid again.
        assert len(RunStore(path)) == 4

    def test_resume_rejects_stale_records_from_other_configurations(self, tmp_path):
        """A store hit must match backend and master_seed, not just cell id."""
        path = os.path.join(tmp_path, "cfg.jsonl")
        repro.run_suite(SuiteSpec(**self._SPEC), store=path)
        with pytest.raises(ValueError, match="backend"):
            repro.run_suite(SuiteSpec(backend="nx", **self._SPEC), store=path)
        with pytest.raises(ValueError, match="seed"):
            repro.run_suite(SuiteSpec(master_seed=99, **self._SPEC), store=path)

    def test_completed_suite_reruns_with_zero_recomputation(self, tmp_path):
        spec = SuiteSpec(**self._SPEC)
        path = os.path.join(tmp_path, "full.jsonl")
        first = repro.run_suite(spec, store=path)
        assert first.executed == 4

        rerun = repro.run_suite(spec, store=path)
        assert rerun.executed == 0
        assert rerun.skipped == 4
        # Records are byte-identical to the first run's (served from disk).
        key = lambda record: record["cell"]
        assert sorted(first.records, key=key) == sorted(rerun.records, key=key)
