"""Unit tests for the flat-array graph core (repro.graphs.csr) and the
backend switch (repro.graphs.backend)."""

import networkx as nx
import pytest

from repro.graphs.backend import BACKENDS, get_backend, set_backend, use_backend
from repro.graphs.csr import CSRGraph, CSRUnsupported, invalidate_csr_cache, resolve_root
from repro.graphs.generators import (
    assign_unique_identifiers,
    erdos_renyi_graph,
    torus_graph,
)
from repro.graphs.properties import bfs_layers_within, induced_components
from tests.conftest import make_disconnected_graph


def _reference_layers(graph, sources, allowed=None, max_radius=None):
    """The seed implementation's BFS, kept inline as a reference oracle."""
    if allowed is None:
        allowed = set(graph.nodes())
    frontier = {node for node in sources if node in allowed}
    visited = set(frontier)
    layers = [set(frontier)]
    radius = 0
    while frontier and (max_radius is None or radius < max_radius):
        next_frontier = set()
        for node in frontier:
            for neighbour in graph.neighbors(node):
                if neighbour in allowed and neighbour not in visited:
                    visited.add(neighbour)
                    next_frontier.add(neighbour)
        if not next_frontier:
            break
        layers.append(next_frontier)
        frontier = next_frontier
        radius += 1
    return layers


class TestConstruction:
    def test_shape_and_maps(self, small_torus):
        csr = CSRGraph.from_networkx(small_torus)
        assert csr.n == small_torus.number_of_nodes()
        assert csr.m == small_torus.number_of_edges()
        assert len(csr.indptr) == csr.n + 1
        assert len(csr.indices) == 2 * csr.m
        for node in small_torus.nodes():
            index = csr.index[node]
            assert csr.nodes[index] == node
            assert csr.uids[index] == small_torus.nodes[node]["uid"]
            assert set(csr.neighbors(node)) == set(small_torus.neighbors(node))
            assert csr.degree(node) == small_torus.degree(node)

    def test_rows_sorted_by_index(self, small_regular):
        csr = CSRGraph.from_networkx(small_regular)
        for i in range(csr.n):
            row = list(csr.indices[csr.indptr[i] : csr.indptr[i + 1]])
            assert row == sorted(row)

    def test_cache_returns_same_object(self, small_grid):
        assert CSRGraph.from_networkx(small_grid) is CSRGraph.from_networkx(small_grid)

    def test_subgraph_view_resolves_to_root_index(self, small_grid):
        csr = CSRGraph.from_networkx(small_grid)
        view = small_grid.subgraph(list(small_grid.nodes())[:10])
        assert CSRGraph.from_networkx(view) is csr
        assert resolve_root(view) is small_grid

    def test_node_count_change_rebuilds(self):
        graph = assign_unique_identifiers(nx.path_graph(5), seed=0)
        first = CSRGraph.from_networkx(graph)
        graph.add_edge(5, 0)
        graph.nodes[5]["uid"] = 5
        second = CSRGraph.from_networkx(graph)
        assert second is not first
        assert second.n == 6

    def test_invalidate_drops_cache(self, small_grid):
        first = CSRGraph.from_networkx(small_grid)
        invalidate_csr_cache(small_grid)
        assert CSRGraph.from_networkx(small_grid) is not first

    def test_refresh_detects_edge_only_mutation(self):
        from repro.graphs.csr import refresh_csr_cache

        graph = assign_unique_identifiers(nx.path_graph(6), seed=0)
        stale = CSRGraph.from_networkx(graph)
        graph.add_edge(0, 5)  # path -> cycle: same node count
        assert CSRGraph.from_networkx(graph) is stale  # O(1) hit guard misses it
        refresh_csr_cache(graph)
        fresh = CSRGraph.from_networkx(graph)
        assert fresh is not stale
        assert fresh.m == graph.number_of_edges()

    def test_api_entry_points_refresh_automatically(self):
        """decompose()/carve() must not serve stale clusters after an
        in-place edge mutation at constant node count."""
        import repro
        from repro.graphs.properties import induced_components

        graph = assign_unique_identifiers(nx.path_graph(6), seed=0)
        before = repro.decompose(graph, method="strong-log3")
        assert before.covered_nodes() == set(graph.nodes())
        graph.remove_edge(2, 3)  # splits the path; node count unchanged
        after = repro.decompose(graph, method="strong-log3")
        components = {frozenset(c) for c in induced_components(graph, set(graph.nodes()))}
        assert components == {frozenset({0, 1, 2}), frozenset({3, 4, 5})}
        # No cluster of the fresh run may straddle the removed edge.
        for cluster in after.clusters:
            assert frozenset(cluster.nodes) <= frozenset({0, 1, 2}) or frozenset(
                cluster.nodes
            ) <= frozenset({3, 4, 5})

    def test_api_refresh_catches_node_replacement_and_uid_change(self):
        """Swapping one isolated node for another (or reassigning uids)
        preserves n, m and the edge set — the fingerprint must still notice."""
        import repro

        graph = assign_unique_identifiers(nx.path_graph(4), seed=0)
        graph.add_node(4)
        graph.nodes[4]["uid"] = 4
        repro.decompose(graph, method="strong-log3")  # warms the cache
        graph.remove_node(4)
        graph.add_node(9)
        graph.nodes[9]["uid"] = 9
        after = repro.decompose(graph, method="strong-log3")
        covered = after.covered_nodes()
        assert 9 in covered and 4 not in covered
        # uid-only mutation: the simulator's frozen uid array must refresh.
        from repro.congest.simulator import CongestSimulator

        first = CongestSimulator(graph)
        graph.nodes[9]["uid"] = 77
        second = CongestSimulator(graph)
        assert first._uid_of[9] == 9
        assert second._uid_of[9] == 77

    def test_api_refresh_catches_count_preserving_rewire(self):
        """A remove-one-add-one rewire keeps (n, m) constant; the edge-set
        fingerprint must still catch it so the backends never diverge."""
        import repro

        graph = assign_unique_identifiers(nx.path_graph(6), seed=0)
        repro.decompose(graph, method="strong-log3")  # warms the cache
        graph.remove_edge(2, 3)
        graph.add_edge(0, 2)  # same node count, same edge count
        via_nx = repro.decompose(graph, method="strong-log3", backend="nx")
        via_csr = repro.decompose(graph, method="strong-log3", backend="csr")
        signature = lambda d: frozenset(
            (c.color, frozenset(c.nodes)) for c in d.clusters
        )
        assert signature(via_nx) == signature(via_csr)
        # {3,4,5} is now a separate component; no cluster may straddle it.
        for cluster in via_csr.clusters:
            nodes = frozenset(cluster.nodes)
            assert nodes <= frozenset({0, 1, 2}) or nodes <= frozenset({3, 4, 5})

    def test_directed_and_multigraph_rejected(self):
        with pytest.raises(CSRUnsupported):
            CSRGraph.from_networkx(nx.DiGraph([(0, 1)]))
        with pytest.raises(CSRUnsupported):
            CSRGraph.from_networkx(nx.MultiGraph([(0, 1), (0, 1)]))


class TestPrimitives:
    def test_bfs_layers_match_reference(self, graph_zoo):
        for graph in graph_zoo.values():
            csr = CSRGraph.from_networkx(graph)
            nodes = sorted(graph.nodes())
            start = nodes[0]
            assert csr.bfs_layers([start]) == _reference_layers(graph, [start])
            allowed = set(nodes[: len(nodes) // 2 + 1])
            assert csr.bfs_layers([start], allowed=allowed) == _reference_layers(
                graph, [start], allowed=allowed
            )
            assert csr.bfs_layers([start], max_radius=2) == _reference_layers(
                graph, [start], max_radius=2
            )

    def test_multi_source_layers(self, small_torus):
        csr = CSRGraph.from_networkx(small_torus)
        sources = [0, 5, 17]
        assert csr.bfs_layers(sources) == _reference_layers(small_torus, sources)

    def test_sources_outside_allowed_are_dropped(self, small_grid):
        csr = CSRGraph.from_networkx(small_grid)
        layers = csr.bfs_layers([0], allowed={1, 2})
        assert layers == [set()]

    def test_unknown_source_labels_ignored(self, small_grid):
        csr = CSRGraph.from_networkx(small_grid)
        assert csr.bfs_layers(["not-a-node"]) == [set()]

    def test_ball(self, small_torus):
        csr = CSRGraph.from_networkx(small_torus)
        reference = set()
        for layer in _reference_layers(small_torus, [3], max_radius=2)[:3]:
            reference |= layer
        assert csr.ball([3], 2) == reference
        assert csr.ball([3], -1) == set()
        assert csr.ball([3], 0) == {3}

    def test_distances(self, small_tree):
        csr = CSRGraph.from_networkx(small_tree)
        expected = nx.single_source_shortest_path_length(small_tree, 0)
        assert csr.distances(0) == dict(expected)

    def test_boundary(self, small_grid):
        csr = CSRGraph.from_networkx(small_grid)
        cluster = {0, 1, 6, 7}
        expected = {
            neighbour
            for node in cluster
            for neighbour in small_grid.neighbors(node)
            if neighbour not in cluster
        }
        assert csr.boundary(cluster) == expected
        allowed = cluster | {2}
        expected_restricted = {node for node in expected if node in allowed}
        assert csr.boundary(cluster, allowed=allowed) == expected_restricted

    def test_induced_degrees(self, small_torus):
        csr = CSRGraph.from_networkx(small_torus)
        cluster = set(list(small_torus.nodes())[:12])
        subgraph = small_torus.subgraph(cluster)
        assert csr.induced_degrees(cluster) == {
            node: subgraph.degree(node) for node in cluster
        }

    def test_connected_components(self, disconnected_graph):
        csr = CSRGraph.from_networkx(disconnected_graph)
        expected = [set(c) for c in nx.connected_components(disconnected_graph)]
        produced = csr.connected_components()
        assert sorted(map(sorted, produced)) == sorted(map(sorted, expected))

    def test_connected_components_restricted(self, small_cycle):
        csr = CSRGraph.from_networkx(small_cycle)
        allowed = {0, 1, 2, 10, 11, 30}
        produced = csr.connected_components(allowed=allowed)
        assert sorted(map(sorted, produced)) == [[0, 1, 2], [10, 11], [30]]

    def test_subset_adjacency(self, small_regular):
        csr = CSRGraph.from_networkx(small_regular)
        allowed = set(list(small_regular.nodes())[:30])
        adjacency = csr.subset_adjacency(allowed)
        assert set(adjacency) == allowed
        for node, neighbours in adjacency.items():
            expected = {v for v in small_regular.neighbors(node) if v in allowed}
            assert set(neighbours) == expected


class TestBackendSwitch:
    def test_default_is_csr(self):
        assert get_backend() == "csr"
        assert get_backend() in BACKENDS

    def test_use_backend_scopes_and_restores(self):
        with use_backend("nx"):
            assert get_backend() == "nx"
            with use_backend("csr"):
                assert get_backend() == "csr"
            assert get_backend() == "nx"
        assert get_backend() == "csr"

    def test_use_backend_none_keeps_ambient(self):
        with use_backend(None):
            assert get_backend() == "csr"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_backend("gpu")

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_backend("nx"):
                raise RuntimeError("boom")
        assert get_backend() == "csr"


class TestDispatchedProperties:
    """The properties-layer helpers return identical sets on both backends."""

    def test_bfs_layers_within_both_backends(self, graph_zoo):
        for graph in graph_zoo.values():
            start = sorted(graph.nodes())[0]
            allowed = set(sorted(graph.nodes())[::2]) | {start}
            with use_backend("nx"):
                expected = bfs_layers_within(graph, [start], allowed=allowed)
            with use_backend("csr"):
                produced = bfs_layers_within(graph, [start], allowed=allowed)
            assert produced == expected

    def test_bfs_layers_on_subgraph_view(self, small_torus):
        participating = set(list(small_torus.nodes())[:40])
        view = small_torus.subgraph(participating)
        component = set(list(participating)[:20])
        with use_backend("nx"):
            expected = bfs_layers_within(view, [next(iter(component))], allowed=component)
        with use_backend("csr"):
            produced = bfs_layers_within(view, [next(iter(component))], allowed=component)
        assert produced == expected

    def test_view_without_allowed_restricts_to_view(self, small_grid):
        participating = set(list(small_grid.nodes())[:12])
        view = small_grid.subgraph(participating)
        start = next(iter(participating))
        with use_backend("csr"):
            layers = bfs_layers_within(view, [start])
        reached = set().union(*layers)
        assert reached <= participating

    def test_induced_components_both_backends(self, disconnected_graph):
        nodes = set(disconnected_graph.nodes())
        with use_backend("nx"):
            expected = induced_components(disconnected_graph, nodes)
        with use_backend("csr"):
            produced = induced_components(disconnected_graph, nodes)
        assert sorted(map(sorted, produced)) == sorted(map(sorted, expected))

    def test_edge_filtered_views_fall_back_to_nx_walk(self):
        """An edge_subgraph view hides edges the root's CSR rows contain; the
        dispatch must not hand those edges back."""
        graph = nx.path_graph(4)
        view = graph.edge_subgraph([(0, 1), (2, 3)])
        with use_backend("nx"):
            expected = induced_components(view, [0, 1, 2, 3])
        with use_backend("csr"):
            produced = induced_components(view, [0, 1, 2, 3])
        assert sorted(map(sorted, produced)) == sorted(map(sorted, expected)) == [
            [0, 1],
            [2, 3],
        ]
        with use_backend("csr"):
            layers = bfs_layers_within(view, [0])
        assert layers == [{0}, {1}]  # edge (1, 2) is filtered out

    def test_self_loop_graphs_rejected_and_consistent(self):
        graph = nx.cycle_graph(4)
        graph.add_edge(0, 0)
        with pytest.raises(CSRUnsupported):
            CSRGraph.from_networkx(graph)
        from repro.graphs.properties import conductance_of_cut

        with use_backend("nx"):
            expected = conductance_of_cut(graph, {0, 1})
        with use_backend("csr"):  # falls back to the nx walk internally
            produced = conductance_of_cut(graph, {0, 1})
        assert produced == expected

    def test_conductance_identical_across_backends(self, small_torus):
        from repro.graphs.properties import (
            conductance_of_cut,
            graph_conductance_lower_bound,
        )

        side = set(list(small_torus.nodes())[:25])
        with use_backend("nx"):
            cut_nx = conductance_of_cut(small_torus, side)
            sweep_nx = graph_conductance_lower_bound(small_torus, seed=3)
        with use_backend("csr"):
            cut_csr = conductance_of_cut(small_torus, side)
            sweep_csr = graph_conductance_lower_bound(small_torus, seed=3)
        assert cut_csr == cut_nx
        assert sweep_csr == sweep_nx

    def test_incremental_sweep_matches_per_prefix_cuts(self, small_regular):
        """The incremental sweep must reproduce exactly the per-prefix
        conductance_of_cut evaluations of the original implementation."""
        import random

        from repro.graphs.properties import (
            conductance_of_cut,
            graph_conductance_lower_bound,
        )

        nodes = list(small_regular.nodes())
        rng = random.Random(5)
        best = float("inf")
        for _ in range(max(1, 64 // 16)):
            start = rng.choice(nodes)
            order = []
            for layer in bfs_layers_within(small_regular, [start]):
                order.extend(sorted(layer))
            prefix = set()
            for node in order[: len(order) - 1]:
                prefix.add(node)
                if len(prefix) < len(nodes) // 8:
                    continue
                if len(prefix) > 7 * len(nodes) // 8:
                    break
                best = min(best, conductance_of_cut(small_regular, prefix))
        assert graph_conductance_lower_bound(small_regular, samples=64, seed=5) == best

    def test_er_graph_components(self):
        graph = erdos_renyi_graph(60, 0.03, seed=11)
        with use_backend("csr"):
            produced = induced_components(graph, set(graph.nodes()))
        expected = [set(c) for c in nx.connected_components(graph)]
        assert sorted(map(sorted, produced)) == sorted(map(sorted, expected))

    def test_torus_layer_sizes(self):
        graph = torus_graph(6, 6, seed=2)
        layers = bfs_layers_within(graph, [0])
        assert sum(len(layer) for layer in layers) == 36


class TestBufferRoundTrip:
    """to_buffers/from_buffers — the shared-memory arena transport format."""

    def test_round_trip_is_value_identical_to_from_networkx(self):
        graph = torus_graph(6, 6, seed=4)
        csr = CSRGraph.from_networkx(graph)
        buffers = csr.to_buffers()
        clone = CSRGraph.from_buffers(
            buffers["indptr"], buffers["indices"], buffers["meta"]
        )
        assert list(clone.indptr) == list(csr.indptr)
        assert list(clone.indices) == list(csr.indices)
        assert clone.nodes == csr.nodes
        assert clone.uids == csr.uids
        assert clone.index == csr.index
        assert (clone.n, clone.m, clone.built_edges) == (csr.n, csr.m, csr.built_edges)
        # Primitive outputs agree exactly with the directly frozen index.
        assert clone.bfs_layers([0]) == csr.bfs_layers([0])
        assert clone.connected_components() == csr.connected_components()
        some = list(graph.nodes())[:10]
        assert clone.boundary(some) == csr.boundary(some)
        assert clone.subset_adjacency(some) == csr.subset_adjacency(some)

    def test_reattached_index_is_frozen_and_refresh_skips_it(self):
        from repro.graphs.csr import _CACHE, refresh_csr_cache

        graph = torus_graph(5, 5, seed=1)
        csr = CSRGraph.from_networkx(graph)
        assert not csr.frozen
        buffers = csr.to_buffers()
        clone = CSRGraph.from_buffers(
            buffers["indptr"], buffers["indices"], buffers["meta"]
        )
        assert clone.frozen
        host = clone.to_networkx()
        # The rebuilt host hits the cache without a fresh freeze...
        assert CSRGraph.from_networkx(host) is clone
        # ...and the refresh entry point keeps it without walking the graph
        # (frozen short-circuits the O(n + m) fingerprint).
        refresh_csr_cache(host)
        assert _CACHE.get(host) is not None
        # The O(1) count guard still protects against node-count mutations.
        host.add_node("intruder", uid=10**6)
        refresh_csr_cache(host)
        assert _CACHE.get(host) is None

    def test_to_networkx_reproduces_graph_and_uids(self):
        graph = assign_unique_identifiers(nx.path_graph(7), seed=2)
        csr = CSRGraph.from_networkx(graph)
        host = csr.to_networkx(register_cache=False)
        assert sorted(host.nodes()) == sorted(graph.nodes())
        assert sorted(map(sorted, host.edges())) == sorted(map(sorted, graph.edges()))
        for node in graph.nodes():
            assert host.nodes[node]["uid"] == graph.nodes[node]["uid"]

    def test_non_serialisable_labels_are_rejected(self):
        graph = nx.Graph()
        graph.add_edge((0, 0), (0, 1))  # tuple labels survive CSR, not JSON
        csr = CSRGraph.from_networkx(graph)
        with pytest.raises(CSRUnsupported):
            csr.to_buffers()
        bad_uid = nx.path_graph(3)
        bad_uid.nodes[0]["uid"] = (1, 2)
        with pytest.raises(CSRUnsupported):
            CSRGraph.from_networkx(bad_uid).to_buffers()

    def test_string_labels_round_trip_with_types(self):
        graph = nx.Graph()
        graph.add_edge("a", "7")
        graph.add_edge("7", 7)  # int 7 and string "7" are distinct nodes
        csr = CSRGraph.from_networkx(graph)
        buffers = csr.to_buffers()
        clone = CSRGraph.from_buffers(
            buffers["indptr"], buffers["indices"], buffers["meta"]
        )
        assert clone.nodes == csr.nodes
        assert {type(node) for node in clone.nodes} == {int, str}


class TestFingerprintVectorization:
    """The numpy freeze fingerprint must be bit-identical to the scalar
    reference walk — fingerprints recorded before the optimisation (frozen
    CSR caches, cross-process transfers) stay valid."""

    def _cases(self):
        import random

        loops = nx.Graph()
        rng = random.Random(0)
        for _ in range(120):
            loops.add_edge(rng.randrange(80), rng.randrange(80))
        loops.add_edge(3, 3)
        loops.add_edge(9, 9)
        assign_unique_identifiers(loops, seed=3)
        return [
            torus_graph(8, 8, seed=1),
            erdos_renyi_graph(40, 0.1, seed=2),
            loops,
            nx.path_graph(20),  # no uid attributes: uid defaults to the label
            nx.empty_graph(5),
            nx.Graph(),
        ]

    def test_vectorized_equals_scalar(self):
        from repro.graphs.csr import (
            _graph_fingerprint,
            _graph_fingerprint_scalar,
            _graph_fingerprint_vectorized,
        )

        for graph in self._cases():
            scalar = _graph_fingerprint_scalar(graph)
            assert _graph_fingerprint(graph) == scalar
            if graph.number_of_nodes():
                # Integer-labelled graphs must actually take the fast path.
                assert _graph_fingerprint_vectorized(graph) == scalar

    def test_ineligible_labels_fall_back_to_scalar(self):
        from repro.graphs.csr import (
            _graph_fingerprint,
            _graph_fingerprint_scalar,
            _graph_fingerprint_vectorized,
        )

        strings = nx.Graph()
        strings.add_edge("a", "b")
        negative = nx.Graph()
        negative.add_edge(-1, 2)
        huge = nx.Graph()
        huge.add_edge(1 << 61, 1)
        none_uid = nx.Graph()
        none_uid.add_node(1, uid=None)
        float_label = nx.Graph()
        float_label.add_node(2.5)
        for graph in (strings, negative, huge, none_uid, float_label):
            assert _graph_fingerprint_vectorized(graph) is None
            assert _graph_fingerprint(graph) == _graph_fingerprint_scalar(graph)

    def test_fingerprint_still_detects_mutations(self):
        """End-to-end: the fast path feeds the staleness guard, which must
        keep noticing count-preserving rewires and uid reassignment."""
        graph = torus_graph(6, 6, seed=1)
        first = CSRGraph.from_networkx(graph)
        graph.nodes[(0, 0) if (0, 0) in graph else 0]["uid"] = 987654
        from repro.graphs.csr import refresh_csr_cache

        refresh_csr_cache(graph)
        second = CSRGraph.from_networkx(graph)
        assert second.fingerprint != first.fingerprint
