"""Unit tests for the scenario registry (repro.pipeline.scenarios)."""

import os

import networkx as nx
import pytest

from repro.pipeline import build_workload, get_scenario, list_scenarios, register_scenario
from repro.pipeline import scenarios as scenarios_module


class TestRegistry:
    def test_builtin_catalogue(self):
        names = list_scenarios()
        for expected in (
            "torus",
            "grid",
            "cycle",
            "path",
            "tree",
            "hypercube",
            "regular",
            "small-world",
            "expander-mix",
            "margulis",
            "power-law",
            "weighted",
        ):
            assert expected in names

    def test_every_builtin_builds_a_uid_graph(self):
        for name in list_scenarios():
            graph = build_workload(name, 64, seed=3)
            assert isinstance(graph, nx.Graph)
            assert graph.number_of_nodes() > 0, name
            uids = [graph.nodes[node]["uid"] for node in graph.nodes()]
            assert len(set(uids)) == len(uids), name

    def test_unknown_scenario_rejected_with_catalogue(self):
        with pytest.raises(ValueError) as excinfo:
            get_scenario("atlantis")
        assert "torus" in str(excinfo.value)

    def test_register_and_reject_duplicates(self):
        name = "test-only-triangle"
        try:
            register_scenario(
                name,
                lambda n, seed: nx.complete_graph(3),
                "fixed triangle",
            )
            assert name in list_scenarios()
            with pytest.raises(ValueError):
                register_scenario(name, lambda n, seed: nx.complete_graph(3), "again")
        finally:
            scenarios_module._REGISTRY.pop(name, None)

    def test_bad_names_rejected(self):
        for bad in ("has/slash", "has space", "edgelist:reserved"):
            with pytest.raises(ValueError):
                register_scenario(bad, lambda n, seed: nx.complete_graph(3), "bad")


class TestEdgeListScenario:
    def test_edge_list_pseudo_scenario(self, tmp_path, small_torus):
        from repro.graphs.io import write_edge_list

        path = os.path.join(tmp_path, "torus.edges")
        write_edge_list(small_torus, path)
        scenario = get_scenario("edgelist:" + path)
        graph = scenario.build(9999, seed=1)  # n and seed ignored: file wins
        assert graph.number_of_nodes() == small_torus.number_of_nodes()
        assert set(map(frozenset, graph.edges())) == set(
            map(frozenset, small_torus.edges())
        )

    def test_empty_edge_list_path_rejected(self):
        with pytest.raises(ValueError):
            get_scenario("edgelist:")


class TestNewGenerators:
    def test_watts_strogatz_small_world(self):
        from repro.graphs import watts_strogatz_graph

        graph = watts_strogatz_graph(100, k=4, rewire_probability=0.1, seed=5)
        assert graph.number_of_nodes() == 100
        assert nx.is_connected(graph)
        # uid scrambling decoupled from the topology seed.
        uids = [graph.nodes[node]["uid"] for node in graph.nodes()]
        assert sorted(uids) == list(range(100))
        with pytest.raises(ValueError):
            watts_strogatz_graph(4, k=4)
        with pytest.raises(ValueError):
            watts_strogatz_graph(20, k=4, rewire_probability=1.5)

    def test_expander_mix_bounded_degree(self):
        from repro.graphs import expander_mix_graph

        graph = expander_mix_graph(200, degree=4, seed=2)
        assert nx.is_connected(graph)
        assert max(dict(graph.degree()).values()) <= 4 + 2
        uids = [graph.nodes[node]["uid"] for node in graph.nodes()]
        assert len(set(uids)) == len(uids)
        with pytest.raises(ValueError):
            expander_mix_graph(200, degree=2)
        with pytest.raises(ValueError):
            expander_mix_graph(200, degree=4, block_size=3)

    def test_generated_scenarios_are_algorithm_ready(self):
        import repro

        for name in ("small-world", "expander-mix", "power-law", "weighted"):
            graph = build_workload(name, 96, seed=4)
            decomposition = repro.decompose(graph, method="sequential")
            repro.check_network_decomposition(decomposition)

    def test_power_law_graph_has_a_heavy_degree_tail(self):
        from repro.graphs import power_law_graph

        graph = power_law_graph(400, attachment=2, seed=7)
        assert nx.is_connected(graph)
        degrees = sorted((degree for _, degree in graph.degree()), reverse=True)
        average = sum(degrees) / len(degrees)
        # Hubs dominate: the max degree is several times the mean, unlike
        # any of the bounded-degree families.
        assert degrees[0] >= 4 * average
        uids = [graph.nodes[node]["uid"] for node in graph.nodes()]
        assert sorted(uids) == list(range(graph.number_of_nodes()))
        with pytest.raises(ValueError):
            power_law_graph(2, attachment=2)
        with pytest.raises(ValueError):
            power_law_graph(10, attachment=0)

    def test_weighted_scenario_carries_deterministic_weights(self):
        graph = build_workload("weighted", 64, seed=5)
        weights = {
            (u, v): data["weight"] for u, v, data in graph.edges(data=True)
        }
        assert weights and all(isinstance(w, int) and w >= 1 for w in weights.values())
        again = build_workload("weighted", 64, seed=5)
        assert weights == {
            (u, v): data["weight"] for u, v, data in again.edges(data=True)
        }
        other_seed = build_workload("weighted", 64, seed=6)
        assert weights != {
            (u, v): data["weight"] for u, v, data in other_seed.edges(data=True)
        }

    def test_attach_edge_weights_validates_bounds(self, small_grid):
        from repro.graphs import attach_edge_weights

        with pytest.raises(ValueError):
            attach_edge_weights(small_grid, low=5, high=1)
