"""Unit tests for the MPX / Elkin–Neiman randomized strong-diameter baseline."""

import math
import random

import pytest

from repro.baselines.mpx import _two_nearest_centers, mpx_carving, mpx_decomposition
from repro.clustering.validation import (
    check_ball_carving,
    check_network_decomposition,
    clusters_nonadjacent,
    strong_diameter,
)
from repro.graphs.generators import path_graph
from tests.conftest import RANDOMIZED_DEAD_SLACK


class TestTwoNearestCenters:
    def test_every_node_gets_at_least_one_label(self):
        graph = path_graph(8, seed=0)
        uid_of = {node: graph.nodes[node]["uid"] for node in graph.nodes()}
        labels = _two_nearest_centers(graph, set(graph.nodes()), {n: 0.0 for n in graph}, uid_of)
        assert all(len(entries) >= 1 for entries in labels.values())

    def test_best_label_is_self_with_zero_shifts(self):
        graph = path_graph(6, seed=0)
        uid_of = {node: graph.nodes[node]["uid"] for node in graph.nodes()}
        labels = _two_nearest_centers(graph, set(graph.nodes()), {n: 0.0 for n in graph}, uid_of)
        for node, entries in labels.items():
            assert entries[0][2] == node
            assert entries[0][0] == pytest.approx(0.0)

    def test_second_label_is_a_different_center(self):
        graph = path_graph(6, seed=0)
        uid_of = {node: graph.nodes[node]["uid"] for node in graph.nodes()}
        labels = _two_nearest_centers(graph, set(graph.nodes()), {n: 0.0 for n in graph}, uid_of)
        for entries in labels.values():
            if len(entries) > 1:
                assert entries[0][2] != entries[1][2]


class TestMpxCarving:
    def test_structural_invariants(self, small_torus, rng):
        carving = mpx_carving(small_torus, 0.5, rng=rng)
        check_ball_carving(carving, max_dead_fraction=RANDOMIZED_DEAD_SLACK)

    def test_clusters_are_connected_and_nonadjacent(self, small_regular, rng):
        carving = mpx_carving(small_regular, 0.5, rng=rng)
        assert clusters_nonadjacent(carving.graph, carving.clusters)
        for cluster in carving.clusters:
            strong_diameter(carving.graph, cluster.nodes)  # raises if disconnected

    def test_strong_radius_bounded_by_max_shift(self, small_torus, rng):
        carving = mpx_carving(small_torus, 0.5, rng=rng)
        # Each cluster's tree is a shortest-path tree from its centre, so its
        # depth is a valid radius bound; check diameter <= 2 * depth.
        for cluster in carving.clusters:
            if len(cluster) > 1:
                assert strong_diameter(carving.graph, cluster.nodes) <= 2 * cluster.tree.depth()

    def test_expected_dead_fraction_over_repetitions(self, small_torus):
        runs = 12
        total = 0.0
        for seed in range(runs):
            carving = mpx_carving(small_torus, 0.5, rng=random.Random(seed))
            total += carving.dead_fraction
        # P(slack <= 1) = 1 - e^{-eps} ~ 0.39 for eps = 0.5.
        assert total / runs <= 0.6

    def test_smaller_eps_removes_fewer_nodes_on_average(self, small_torus):
        def average_dead(eps):
            return sum(
                mpx_carving(small_torus, eps, rng=random.Random(seed)).dead_fraction
                for seed in range(10)
            ) / 10

        assert average_dead(0.1) <= average_dead(0.9) + 0.05

    def test_reproducible_with_same_seed(self, small_grid):
        first = mpx_carving(small_grid, 0.5, rng=random.Random(3))
        second = mpx_carving(small_grid, 0.5, rng=random.Random(3))
        assert first.cluster_of() == second.cluster_of()

    def test_subset_restriction(self, small_torus, rng):
        nodes = set(list(small_torus.nodes())[:25])
        carving = mpx_carving(small_torus, 0.5, nodes=nodes, rng=rng)
        assert carving.clustered_nodes | carving.dead == nodes

    def test_rejects_bad_eps(self, small_grid):
        with pytest.raises(ValueError):
            mpx_carving(small_grid, 1.0)

    def test_rounds_charged(self, small_grid, rng):
        carving = mpx_carving(small_grid, 0.5, rng=rng)
        assert carving.rounds > 0


class TestMpxDecomposition:
    def test_covers_all_nodes_with_valid_colors(self, small_torus, rng):
        decomposition = mpx_decomposition(small_torus, rng=rng)
        check_network_decomposition(decomposition)

    def test_kind_is_strong(self, small_grid, rng):
        decomposition = mpx_decomposition(small_grid, rng=rng)
        assert decomposition.kind == "strong"

    def test_color_count_is_logarithmic(self, small_regular, rng):
        decomposition = mpx_decomposition(small_regular, rng=rng)
        n = small_regular.number_of_nodes()
        assert decomposition.num_colors <= 4 * math.ceil(math.log2(n)) + 8

    def test_cluster_diameter_is_logarithmic_shaped(self, small_torus, rng):
        decomposition = mpx_decomposition(small_torus, rng=rng)
        n = small_torus.number_of_nodes()
        bound = 8 * math.log(n) / 0.5 + 4  # O(log n / eps) with slack
        for cluster in decomposition.clusters:
            assert strong_diameter(decomposition.graph, cluster.nodes) <= bound

    def test_handles_disconnected_graphs(self, disconnected_graph, rng):
        decomposition = mpx_decomposition(disconnected_graph, rng=rng)
        check_network_decomposition(decomposition)
