"""Unit tests for the CONGEST simulator."""

from typing import Any, Dict, List

import networkx as nx
import pytest

from repro.congest.algorithm import NodeAlgorithm, NodeContext
from repro.congest.simulator import BandwidthExceeded, CongestSimulator
from repro.graphs.generators import assign_unique_identifiers, path_graph


class _PingOnce(NodeAlgorithm):
    """Every node sends its uid to every neighbour once, then stops."""

    def initialize(self) -> Dict[Any, Any]:
        self.heard: List[int] = []
        self.halted = True
        return {neighbor: (1, self.context.uid) for neighbor in self.context.neighbors}

    def step(self, round_number, inbox):
        for message in inbox:
            self.heard.append(int(message.payload[1]))
        self.halted = True
        return {}

    def output(self):
        return sorted(self.heard)


class _BigTalker(NodeAlgorithm):
    """Sends a message far larger than the bandwidth."""

    def initialize(self):
        self.halted = True
        return {neighbor: tuple(range(200)) for neighbor in self.context.neighbors}

    def step(self, round_number, inbox):
        self.halted = True
        return {}


class _NonNeighborSender(NodeAlgorithm):
    """Tries to message a node it is not adjacent to."""

    def initialize(self):
        self.halted = True
        if self.context.uid == 0:
            return {"not-a-neighbor": (1, 1)}
        return {}

    def step(self, round_number, inbox):
        self.halted = True
        return {}


class _NeverHalts(NodeAlgorithm):
    """Keeps chattering forever (used to exercise the round cap)."""

    def initialize(self):
        return {neighbor: (1, 0) for neighbor in self.context.neighbors}

    def step(self, round_number, inbox):
        return {neighbor: (1, round_number) for neighbor in self.context.neighbors}


class TestSimulatorBasics:
    def test_ping_exchange_delivers_uids(self):
        graph = path_graph(4, seed=0)
        simulator = CongestSimulator(graph)
        report = simulator.run(_PingOnce)
        for node in graph.nodes():
            expected = sorted(graph.nodes[neigh]["uid"] for neigh in graph.neighbors(node))
            assert report.outputs[node] == expected

    def test_round_and_message_counts(self):
        graph = path_graph(3, seed=0)
        report = CongestSimulator(graph).run(_PingOnce)
        # 4 directed messages (2 per edge), all in round 1.
        assert report.messages_sent == 4
        assert report.rounds == 1
        assert report.within_bandwidth

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            CongestSimulator(nx.Graph())

    def test_uid_defaults_to_node_label(self):
        graph = nx.path_graph(3)  # no uid attributes
        report = CongestSimulator(graph).run(_PingOnce)
        assert report.outputs[1] == [0, 2]


class TestBandwidthEnforcement:
    def test_strict_mode_raises(self):
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph, strict=True)
        with pytest.raises(BandwidthExceeded):
            simulator.run(_BigTalker)

    def test_permissive_mode_counts_violations(self):
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph, strict=False)
        report = simulator.run(_BigTalker)
        assert report.bandwidth_violations == 4
        assert not report.within_bandwidth
        assert report.max_message_bits > report.bandwidth_bits

    def test_custom_bandwidth(self):
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph, bandwidth_bits=10_000, strict=True)
        report = simulator.run(_BigTalker)
        assert report.within_bandwidth


class TestSimulatorErrors:
    def test_messaging_non_neighbor_raises(self):
        graph = assign_unique_identifiers(nx.path_graph(3), scramble=False)
        simulator = CongestSimulator(graph)
        with pytest.raises(ValueError):
            simulator.run(_NonNeighborSender)

    def test_round_cap_raises(self):
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph)
        with pytest.raises(RuntimeError):
            simulator.run(_NeverHalts, max_rounds=10)

    def test_extra_inputs_reach_contexts(self):
        captured = {}

        class Probe(NodeAlgorithm):
            def initialize(self):
                captured[self.context.node] = self.context.extra.get("flag")
                self.halted = True
                return {}

            def step(self, round_number, inbox):
                self.halted = True
                return {}

        graph = path_graph(3, seed=0)
        CongestSimulator(graph).run(Probe, extra_inputs={1: {"flag": "yes"}})
        assert captured[1] == "yes"
        assert captured[0] is None
