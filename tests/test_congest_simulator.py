"""Unit tests for the CONGEST simulator."""

from typing import Any, Dict, List

import networkx as nx
import pytest

from repro.congest.algorithm import NodeAlgorithm, NodeContext
from repro.congest.simulator import BandwidthExceeded, CongestSimulator
from repro.graphs.generators import assign_unique_identifiers, path_graph


class _PingOnce(NodeAlgorithm):
    """Every node sends its uid to every neighbour once, then stops."""

    def initialize(self) -> Dict[Any, Any]:
        self.heard: List[int] = []
        self.halted = True
        return {neighbor: (1, self.context.uid) for neighbor in self.context.neighbors}

    def step(self, round_number, inbox):
        for message in inbox:
            self.heard.append(int(message.payload[1]))
        self.halted = True
        return {}

    def output(self):
        return sorted(self.heard)


class _BigTalker(NodeAlgorithm):
    """Sends a message far larger than the bandwidth."""

    def initialize(self):
        self.halted = True
        return {neighbor: tuple(range(200)) for neighbor in self.context.neighbors}

    def step(self, round_number, inbox):
        self.halted = True
        return {}


class _NonNeighborSender(NodeAlgorithm):
    """Tries to message a node it is not adjacent to."""

    def initialize(self):
        self.halted = True
        if self.context.uid == 0:
            return {"not-a-neighbor": (1, 1)}
        return {}

    def step(self, round_number, inbox):
        self.halted = True
        return {}


class _NeverHalts(NodeAlgorithm):
    """Keeps chattering forever (used to exercise the round cap)."""

    def initialize(self):
        return {neighbor: (1, 0) for neighbor in self.context.neighbors}

    def step(self, round_number, inbox):
        return {neighbor: (1, round_number) for neighbor in self.context.neighbors}


class TestSimulatorBasics:
    def test_ping_exchange_delivers_uids(self):
        graph = path_graph(4, seed=0)
        simulator = CongestSimulator(graph)
        report = simulator.run(_PingOnce)
        for node in graph.nodes():
            expected = sorted(graph.nodes[neigh]["uid"] for neigh in graph.neighbors(node))
            assert report.outputs[node] == expected

    def test_round_and_message_counts(self):
        graph = path_graph(3, seed=0)
        report = CongestSimulator(graph).run(_PingOnce)
        # 4 directed messages (2 per edge), all in round 1.
        assert report.messages_sent == 4
        assert report.rounds == 1
        assert report.within_bandwidth

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            CongestSimulator(nx.Graph())

    def test_uid_defaults_to_node_label(self):
        graph = nx.path_graph(3)  # no uid attributes
        report = CongestSimulator(graph).run(_PingOnce)
        assert report.outputs[1] == [0, 2]


class TestBandwidthEnforcement:
    def test_strict_mode_raises(self):
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph, strict=True)
        with pytest.raises(BandwidthExceeded):
            simulator.run(_BigTalker)

    def test_permissive_mode_counts_violations(self):
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph, strict=False)
        report = simulator.run(_BigTalker)
        assert report.bandwidth_violations == 4
        assert not report.within_bandwidth
        assert report.max_message_bits > report.bandwidth_bits

    def test_custom_bandwidth(self):
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph, bandwidth_bits=10_000, strict=True)
        report = simulator.run(_BigTalker)
        assert report.within_bandwidth


class TestNeighborOrdering:
    def test_neighbors_sorted_by_uid_not_string(self):
        """Regression: neighbours used to be sorted with key=str, which orders
        node 10 before node 2 — a determinism hazard for algorithms that break
        ties by scanning ``context.neighbors`` in order."""
        graph = nx.star_graph([0, 2, 10, 1])  # hub 0, leaves 2, 10, 1
        for node in graph.nodes():
            graph.nodes[node]["uid"] = node

        captured = {}

        class Probe(NodeAlgorithm):
            def initialize(self):
                captured[self.context.node] = tuple(self.context.neighbors)
                self.halted = True
                return {}

            def step(self, round_number, inbox):
                self.halted = True
                return {}

        CongestSimulator(graph).run(Probe)
        assert captured[0] == (1, 2, 10)  # numeric uid order, not ("1","10","2")

    def test_neighbors_sorted_by_scrambled_uid(self):
        graph = path_graph(3, seed=0)
        hub = 1
        uid_of = {node: graph.nodes[node]["uid"] for node in graph.nodes()}
        simulator = CongestSimulator(graph)
        context = simulator._make_context(hub, None)
        expected = tuple(sorted(graph.neighbors(hub), key=lambda v: uid_of[v]))
        assert tuple(context.neighbors) == expected

    def test_mixed_uid_types_have_total_order(self):
        graph = nx.star_graph([0, "a", 3, "b", 1])
        simulator = CongestSimulator(graph)  # uids default to node labels
        context = simulator._make_context(0, None)
        assert tuple(context.neighbors) == (1, 3, "a", "b")

    def test_mutation_after_construction_rejected(self):
        """The simulator freezes the network at __init__; a graph mutated
        afterwards must be rejected loudly, not crash on stale state."""
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph)
        graph.add_node(3)
        graph.nodes[3]["uid"] = 3
        graph.add_edge(2, 3)
        with pytest.raises(ValueError, match="mutated after simulator construction"):
            simulator.run(_PingOnce)
        # A fresh simulator on the mutated graph works.
        report = CongestSimulator(graph).run(_PingOnce)
        assert set(report.outputs) == set(graph.nodes())

    def test_self_loop_mutation_detected(self):
        """A self-loop must not be invisible to the mutation fingerprint."""
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph)
        graph.add_edge(1, 1)
        with pytest.raises(ValueError, match="mutated after simulator construction"):
            simulator.run(_PingOnce)

    def test_simulator_on_subgraph_view(self):
        """Regression: a simulator built on a subgraph view must not pick up
        the root graph's CSR rows (their neighbours fall outside the view)."""
        graph = path_graph(5, seed=0)
        view = graph.subgraph({0, 1, 2})
        report = CongestSimulator(view).run(_PingOnce)
        assert set(report.outputs) == {0, 1, 2}
        # Node 2's only neighbour inside the view is 1 — node 3 is invisible.
        assert report.outputs[2] == [graph.nodes[1]["uid"]]


class TestDeliveryBufferReuse:
    def test_multi_round_wave_delivers_fresh_inboxes(self):
        """Programs may keep references to their inboxes; reused buffers must
        never mutate a previously delivered list."""
        graph = path_graph(6, seed=0)
        kept_inboxes: Dict[Any, List[tuple]] = {}

        class Wave(NodeAlgorithm):
            """Forward a token along the path, remembering every inbox."""

            def initialize(self):
                self.halted = True
                kept_inboxes[self.context.node] = []
                if self.context.node == 0:
                    return {neighbor: (1, 0) for neighbor in self.context.neighbors}
                return {}

            def step(self, round_number, inbox):
                # Keep the inbox object AND a snapshot of its content at
                # delivery time; the two must still agree after the run.
                kept_inboxes[self.context.node].append((inbox, list(inbox)))
                self.halted = True
                forward = [n for n in self.context.neighbors if n > self.context.node]
                if inbox and forward:
                    return {forward[0]: (1, round_number)}
                return {}

        simulator = CongestSimulator(graph)
        report = simulator.run(Wave)
        assert report.rounds == 5
        assert report.messages_sent == 5
        for node, deliveries in kept_inboxes.items():
            for inbox, snapshot in deliveries:
                assert inbox == snapshot, (
                    "inbox of node {!r} mutated after delivery".format(node)
                )

    def test_empty_inbox_of_active_node_never_grows(self):
        """Regression: a never-halting node receives empty inboxes every
        round; those list objects must not retroactively gain the messages
        of later rounds."""
        graph = path_graph(3, seed=0)
        seen_empty: List[List] = []

        class Restless(NodeAlgorithm):
            """Node 2 stays active but silent; node 0 sends late."""

            def initialize(self):
                self.halted = self.context.uid != graph.nodes[2]["uid"]
                return {}

            def step(self, round_number, inbox):
                if not inbox:
                    seen_empty.append(inbox)
                if self.context.node == 2 and round_number >= 3:
                    self.halted = True
                if self.context.node == 2 and round_number == 2:
                    # Wake the chain: ask the neighbour to reply next round.
                    return {1: (1, round_number)}
                return {}

        class Echo(NodeAlgorithm):
            def initialize(self):
                self.halted = True
                return {}

            def step(self, round_number, inbox):
                self.halted = True
                return {message.sender: (2, round_number) for message in inbox}

        def factory(context):
            return Restless(context) if context.node == 2 else Echo(context)

        CongestSimulator(graph).run(factory, max_rounds=50)
        assert seen_empty, "scenario must exercise empty inboxes"
        for inbox in seen_empty:
            assert inbox == [], "an empty-at-delivery inbox retroactively grew"


class TestSimulatorErrors:
    def test_messaging_non_neighbor_raises(self):
        graph = assign_unique_identifiers(nx.path_graph(3), scramble=False)
        simulator = CongestSimulator(graph)
        with pytest.raises(ValueError):
            simulator.run(_NonNeighborSender)

    def test_round_cap_raises(self):
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph)
        with pytest.raises(RuntimeError):
            simulator.run(_NeverHalts, max_rounds=10)

    def test_extra_inputs_reach_contexts(self):
        captured = {}

        class Probe(NodeAlgorithm):
            def initialize(self):
                captured[self.context.node] = self.context.extra.get("flag")
                self.halted = True
                return {}

            def step(self, round_number, inbox):
                self.halted = True
                return {}

        graph = path_graph(3, seed=0)
        CongestSimulator(graph).run(Probe, extra_inputs={1: {"flag": "yes"}})
        assert captured[1] == "yes"
        assert captured[0] is None
