"""Unit tests for the seeded fault-injection layer.

Covers the ``--faults`` plan vocabulary (parse / canonical spec round-trip),
the deterministic cell-scope draws consumed by the suite supervisor, the
message-scope faults consumed by the CONGEST simulator, and the
``*_under_faults`` validation wrappers that turn corruption into a typed
:class:`FaultDetected` instead of a silently-wrong result.
"""

from typing import Any, Dict, List

import pytest

from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.clustering.validation import (
    FaultDetected,
    check_network_decomposition,
    check_network_decomposition_under_faults,
)
from repro.congest.algorithm import NodeAlgorithm
from repro.congest.faults import (
    CRASH_DOWN_ROUNDS,
    FAULT_KIND_NAMES,
    FAULT_KINDS,
    FaultPlan,
)
from repro.congest.simulator import CongestSimulator
from repro.graphs.generators import cycle_graph, path_graph
from repro.pipeline.supervisor import corrupt_clustering


class TestFaultPlanParse:
    def test_round_trip_through_canonical_spec(self):
        plan = FaultPlan.parse("drop:0.05,crash:2,delay:0.1")
        assert plan.drop == 0.05 and plan.crash == 2 and plan.delay == 0.1
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_none_and_blank_are_inactive(self):
        assert not FaultPlan.parse(None).active
        assert not FaultPlan.parse("  ").active
        assert not FaultPlan().active

    def test_spec_order_follows_registry(self):
        plan = FaultPlan.parse("crash:1,drop:0.5")
        # Canonical order is the FAULT_KINDS registry order, not input order.
        assert plan.to_spec() == "drop:0.5,crash:1"

    @pytest.mark.parametrize(
        "spec, match",
        [
            ("drop", "malformed fault"),
            ("teleport:0.5", "unknown fault kind"),
            ("drop:0.1,drop:0.2", "given twice"),
            ("drop:lots", "not a number"),
        ],
    )
    def test_malformed_specs_rejected(self, spec, match):
        with pytest.raises(ValueError, match=match):
            FaultPlan.parse(spec)

    @pytest.mark.parametrize("kind", ["drop", "duplicate", "delay", "hang"])
    def test_probability_kinds_bounded(self, kind):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(**{kind: 1.5})

    def test_negative_crash_rejected(self):
        with pytest.raises(ValueError, match="crash"):
            FaultPlan(crash=-1)

    def test_registry_names_cover_plan_fields(self):
        for spec in FAULT_KINDS:
            assert hasattr(FaultPlan(), spec.name)
        assert len(set(FAULT_KIND_NAMES)) == len(FAULT_KINDS)


class TestCellDraws:
    def test_draws_are_deterministic(self):
        plan = FaultPlan(drop=0.5, delay=0.5, hang=0.5)
        first = [plan.cell_draw(7, "cell-a", attempt) for attempt in (1, 2, 3)]
        second = [plan.cell_draw(7, "cell-a", attempt) for attempt in (1, 2, 3)]
        assert first == second

    def test_draws_vary_across_attempts_and_cells(self):
        plan = FaultPlan(drop=0.5)
        draws = {
            (cell, attempt): plan.cell_draw(7, cell, attempt).corrupt
            for cell in ("a", "b", "c", "d")
            for attempt in (1, 2, 3, 4)
        }
        # With p=0.5 over 16 independent draws, both outcomes must appear.
        assert len(set(draws.values())) == 2

    def test_integer_crash_budget_never_fires_unforced(self):
        plan = FaultPlan(crash=2)
        for attempt in range(1, 5):
            assert not plan.cell_draw(0, "cell", attempt).crash

    def test_forced_crash_overrides_draw(self):
        draw = FaultPlan(crash=2).cell_draw(0, "cell", 1, forced_crash=True)
        assert draw.crash
        # A crash pre-empts the whole attempt: nothing else fires with it.
        assert not draw.hang and not draw.corrupt and draw.delay_s == 0.0

    def test_fractional_crash_is_per_attempt_probability(self):
        plan = FaultPlan(crash=0.5)
        fired = [
            plan.cell_draw(0, "cell-{}".format(i), 1).crash for i in range(40)
        ]
        assert any(fired) and not all(fired)

    def test_hang_preempts_corruption(self):
        plan = FaultPlan(drop=1.0, hang=1.0)
        draw = plan.cell_draw(0, "cell", 1)
        assert draw.hang and not draw.corrupt

    def test_as_stats_round_trips_flags(self):
        draw = FaultPlan(drop=1.0).cell_draw(0, "cell", 1)
        stats = draw.as_stats()
        assert stats["injected_corruption"] is True
        assert set(stats) == {
            "injected_crash",
            "injected_hang",
            "injected_corruption",
            "injected_delay_s",
        }

    def test_schedule_crashes_exact_integer_budget(self):
        plan = FaultPlan(crash=2)
        cells = ["cell-{}".format(i) for i in range(6)]
        victims = plan.schedule_crashes(11, cells)
        assert len(victims) == 2 and victims <= set(cells)
        assert victims == plan.schedule_crashes(11, reversed(cells))

    def test_schedule_crashes_fractional_budget_empty(self):
        assert FaultPlan(crash=0.5).schedule_crashes(11, ["a", "b"]) == frozenset()

    def test_schedule_crashes_capped_at_population(self):
        assert len(FaultPlan(crash=10).schedule_crashes(0, ["a", "b"])) == 2


class _PingOnce(NodeAlgorithm):
    """Every node sends its uid to every neighbour once, then stops."""

    def initialize(self) -> Dict[Any, Any]:
        self.heard: List[int] = []
        self.halted = True
        return {neighbor: (1, self.context.uid) for neighbor in self.context.neighbors}

    def step(self, round_number, inbox):
        for message in inbox:
            self.heard.append(int(message.payload[1]))
        self.halted = True
        return {}

    def output(self):
        return sorted(self.heard)


class TestSimulatorFaults:
    def test_clean_run_has_no_fault_counters(self):
        report = CongestSimulator(path_graph(4, seed=0)).run(_PingOnce)
        assert report.fault_counters is None

    def test_inactive_plan_is_ignored(self):
        simulator = CongestSimulator(path_graph(4, seed=0), fault_plan=FaultPlan())
        assert simulator.fault_plan is None
        assert simulator.run(_PingOnce).fault_counters is None

    def test_drop_all_messages(self):
        graph = path_graph(4, seed=0)
        simulator = CongestSimulator(graph, fault_plan=FaultPlan(drop=1.0))
        report = simulator.run(_PingOnce)
        assert report.fault_counters["dropped"] == report.messages_sent > 0
        assert all(output == [] for output in report.outputs.values())

    def test_duplicate_delivers_twice(self):
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph, fault_plan=FaultPlan(duplicate=1.0))
        report = simulator.run(_PingOnce)
        assert report.fault_counters["duplicated"] == report.messages_sent
        # The middle node hears each endpoint's uid twice.
        middle = sorted(report.outputs, key=str)[1]
        assert len(report.outputs[middle]) == 4

    def test_delay_holds_messages_one_round_and_terminates(self):
        graph = path_graph(3, seed=0)
        simulator = CongestSimulator(graph, fault_plan=FaultPlan(delay=1.0))
        report = simulator.run(_PingOnce)
        assert report.fault_counters["delayed"] == report.messages_sent
        # Every message still arrives — one round later.
        clean = CongestSimulator(graph).run(_PingOnce)
        assert report.outputs == clean.outputs
        assert report.rounds == clean.rounds + 1

    def test_crash_schedule_counts_and_terminates(self):
        graph = cycle_graph(8, seed=0)
        simulator = CongestSimulator(
            graph, fault_plan=FaultPlan(crash=2), fault_seed=5
        )
        report = simulator.run(_PingOnce, max_rounds=50)
        assert report.fault_counters["crashed_nodes"] == 2

    def test_fault_runs_are_reproducible(self):
        graph = cycle_graph(8, seed=0)
        plan = FaultPlan(drop=0.3, duplicate=0.2, delay=0.2)
        reports = [
            CongestSimulator(graph, fault_plan=plan, fault_seed=9).run(_PingOnce)
            for _ in range(2)
        ]
        assert reports[0].fault_counters == reports[1].fault_counters
        assert reports[0].outputs == reports[1].outputs

    def test_crash_down_rounds_positive(self):
        assert CRASH_DOWN_ROUNDS >= 1


class TestFaultDetectedWrappers:
    def _valid_decomposition(self):
        graph = path_graph(6)
        clusters = [
            Cluster(nodes=frozenset({0, 1}), label="a", color=0),
            Cluster(nodes=frozenset({3, 4}), label="b", color=0),
            Cluster(nodes=frozenset({2}), label="c", color=1),
            Cluster(nodes=frozenset({5}), label="d", color=1),
        ]
        return NetworkDecomposition(graph=graph, clusters=clusters)

    def test_valid_decomposition_passes_wrapper(self):
        check_network_decomposition_under_faults(self._valid_decomposition())

    def test_corruption_raises_fault_detected_with_stats(self):
        decomposition = self._valid_decomposition()
        corrupt_clustering(decomposition)
        stats = {"injected_corruption": True}
        with pytest.raises(FaultDetected) as excinfo:
            check_network_decomposition_under_faults(decomposition, stats)
        assert excinfo.value.fault_stats == stats
        # The same corruption is invisible to nobody: the plain validator
        # rejects it too (FaultDetected is a ValidationError subclass).
        with pytest.raises(Exception):
            check_network_decomposition(decomposition)

    def test_fault_detected_is_typed_and_carries_stats_default(self):
        error = FaultDetected("boom")
        assert error.fault_stats == {}
