"""Unit tests for the power-graph operator ``G^k``."""

import networkx as nx
import pytest

from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.power import power_graph


class TestPowerGraph:
    def test_power_one_is_isomorphic_copy(self):
        graph = path_graph(8)
        powered = power_graph(graph, 1)
        assert set(powered.edges()) == set(graph.edges())

    def test_path_squared_edges(self):
        graph = path_graph(5)
        powered = power_graph(graph, 2)
        # Path 0-1-2-3-4: distance <= 2 pairs.
        expected = {(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4)}
        observed = {tuple(sorted(edge)) for edge in powered.edges()}
        assert observed == expected

    def test_large_power_gives_clique_per_component(self):
        graph = path_graph(6)
        powered = power_graph(graph, 10)
        n = graph.number_of_nodes()
        assert powered.number_of_edges() == n * (n - 1) // 2

    def test_preserves_node_attributes(self):
        graph = cycle_graph(7, seed=2)
        powered = power_graph(graph, 3)
        for node in graph.nodes():
            assert powered.nodes[node]["uid"] == graph.nodes[node]["uid"]

    def test_star_power_two_is_clique(self):
        graph = star_graph(6)
        powered = power_graph(graph, 2)
        n = graph.number_of_nodes()
        assert powered.number_of_edges() == n * (n - 1) // 2

    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            power_graph(path_graph(4), 0)

    def test_disconnected_components_stay_disconnected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        powered = power_graph(graph, 5)
        assert not powered.has_edge(1, 2)
        assert powered.has_edge(0, 1)
        assert powered.has_edge(2, 3)

    def test_distance_witness(self):
        graph = cycle_graph(12)
        powered = power_graph(graph, 3)
        for u, v in powered.edges():
            assert nx.shortest_path_length(graph, u, v) <= 3
        for u in graph.nodes():
            for v in graph.nodes():
                if u < v and nx.shortest_path_length(graph, u, v) <= 3:
                    assert powered.has_edge(u, v)
