"""Chaos tests: the self-healing suite runner under injected faults.

The contract under test (the robustness layer's north star): a suite run
under *any* fault plan accounts for every grid cell — each one either ends
as a verified record identical to its fault-free twin (modulo wall time,
fault statistics and attempt counts) or as an explicit ``status="failed"``
record carrying the captured error.  Never an aborted grid, never silent
corruption.

Also covers the :class:`SupervisorPolicy` unit surface (validation,
deterministic backoff, failure records), pool-mode crash/hang recovery,
resume-time healing of quarantined cells, and the sqlite backend's
resume-after-``kill -9`` durability.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.faults import FaultPlan, InjectedFault
from repro.pipeline import SuiteSpec, run_suite
from repro.pipeline.supervisor import (
    CellTimeout,
    SupervisorPolicy,
    error_info,
    failure_records,
    resolve_policy,
)
from tests.conftest import VOLATILE_RECORD_KEYS

#: Chaos-volatile keys: legitimately differ between a faulty run and its
#: fault-free twin even when the *results* are identical.
CHAOS_VOLATILE_KEYS = VOLATILE_RECORD_KEYS + ("fault_stats", "attempts")


def strip_chaos(record):
    stripped = {k: v for k, v in record.items() if k not in CHAOS_VOLATILE_KEYS}
    # rounds["attempt"] is supervision bookkeeping (schema 6): a healed cell
    # legitimately records a later attempt than its fault-free twin.
    rounds = stripped.get("rounds")
    if isinstance(rounds, dict) and "attempt" in rounds:
        stripped["rounds"] = {k: v for k, v in rounds.items() if k != "attempt"}
    return stripped


def _spec(**overrides):
    payload = {
        "name": "chaos",
        "scenarios": ("torus",),
        "sizes": (36,),
        "methods": ("sequential", "mpx"),
        "seeds": (0, 1),
        "validate": True,
    }
    payload.update(overrides)
    return SuiteSpec(**payload)


class TestSupervisorPolicy:
    def test_inactive_by_default_and_active_per_knob(self):
        assert not SupervisorPolicy().active
        assert SupervisorPolicy(max_retries=1).active
        assert SupervisorPolicy(cell_timeout=5.0).active
        assert SupervisorPolicy(faults=FaultPlan(drop=0.1)).active
        assert not SupervisorPolicy(faults=None).active

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            SupervisorPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="cell_timeout"):
            SupervisorPolicy(cell_timeout=0)
        with pytest.raises(ValueError, match="hang"):
            SupervisorPolicy(faults=FaultPlan(hang=0.5))
        # hang + a deadline is fine.
        SupervisorPolicy(faults=FaultPlan(hang=0.5), cell_timeout=1.0)

    def test_resolve_policy_parses_specs(self):
        policy = resolve_policy(faults="drop:0.1,crash:1", max_retries=2)
        assert policy.faults.drop == 0.1 and policy.faults.crash == 1
        assert policy.max_attempts == 3 and policy.active
        assert resolve_policy().active is False
        # An all-zero plan resolves to no plan at all.
        assert resolve_policy(faults="").faults is None

    def test_backoff_deterministic_growing_capped(self):
        policy = SupervisorPolicy(max_retries=5)
        sleeps = [policy.backoff_s(0, "cell", attempt) for attempt in (1, 2, 3, 9)]
        assert sleeps == [policy.backoff_s(0, "cell", a) for a in (1, 2, 3, 9)]
        assert sleeps[0] < sleeps[1] < sleeps[2]
        assert sleeps[3] == policy.backoff_cap_s
        # Jitter decorrelates cells.
        assert policy.backoff_s(0, "cell", 1) != policy.backoff_s(0, "other", 1)

    def test_stats_block_shape(self):
        stats = SupervisorPolicy(max_retries=2).stats()
        assert stats["policy"]["max_retries"] == 2
        for key in ("failures", "retries", "retried_ok", "quarantined",
                    "timeouts", "pool_respawns", "serial_fallbacks"):
            assert stats[key] == 0

    def test_failure_records_carry_grid_identity_and_error(self):
        spec = _spec()
        cells = [c for c in spec.expand() if c.method == "mpx"]
        error = InjectedFault("boom")
        error.fault_stats = {"injected_crash": True}
        records = failure_records(cells, spec, error, attempts=3)
        assert len(records) == len(cells)
        for cell, record in zip(cells, records):
            assert record["cell"] == cell.cell_id
            assert record["status"] == "failed"
            assert record["attempts"] == 3
            assert record["error"] == {"type": "InjectedFault", "message": "boom"}
            assert record["fault_stats"] == {"injected_crash": True}
            assert record["backend"] == spec.backend
            assert "metrics" not in record

    def test_error_info(self):
        assert error_info(ValueError("x")) == {"type": "ValueError", "message": "x"}


class TestChaosProperty:
    """Every cell: verified-identical-to-fault-free, or explicit failure."""

    _BASELINE = {}

    def _baseline(self, spec):
        key = spec.name
        if key not in self._BASELINE:
            self._BASELINE[key] = {
                record["cell"]: strip_chaos(record)
                for record in run_suite(spec).records
            }
        return self._BASELINE[key]

    def _assert_accounted(self, spec, result, baseline):
        cells = spec.expand()
        by_cell = {record["cell"]: record for record in result.records}
        assert len(by_cell) == len(cells), "every grid cell must be accounted for"
        for cell in cells:
            record = by_cell[cell.cell_id]
            status = record.get("status", "ok")
            assert status in ("ok", "failed")
            if status == "ok":
                assert strip_chaos(record) == baseline[cell.cell_id]
            else:
                assert record["error"]["type"]
                assert "metrics" not in record

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        drop=st.sampled_from([0.0, 0.3, 1.0]),
        crash=st.sampled_from([0.0, 0.4, 1.0]),
        delay=st.sampled_from([0.0, 1.0]),
        max_retries=st.integers(min_value=0, max_value=2),
    )
    def test_serial_chaos_accounts_for_every_cell(
        self, drop, crash, delay, max_retries
    ):
        spec = _spec()
        baseline = self._baseline(spec)
        plan = FaultPlan(drop=drop, crash=crash, delay=delay)
        result = run_suite(
            spec, faults=plan if plan.active else "drop:0.0,crash:1",
            max_retries=max_retries,
        )
        self._assert_accounted(spec, result, baseline)
        stats = result.supervisor
        assert stats["quarantined"] + stats["retried_ok"] >= 0
        # Conservation: every failure is either retried or quarantined work.
        assert stats["failures"] >= stats["retried_ok"]

    def test_serial_chaos_is_reproducible(self):
        spec = _spec()
        runs = [
            run_suite(spec, faults="drop:0.5,delay:1.0", max_retries=1)
            for _ in range(2)
        ]
        first = [
            {k: v for k, v in record.items() if k not in ("seconds", "timings")}
            for record in runs[0].records
        ]
        second = [
            {k: v for k, v in record.items() if k not in ("seconds", "timings")}
            for record in runs[1].records
        ]
        # Same plan + same seeds -> same draws, same attempt counts, same
        # fault stats, same outcomes.
        assert first == second
        assert runs[0].supervisor == runs[1].supervisor

    def test_forced_crash_retried_to_success_serial(self):
        spec = _spec()
        result = run_suite(spec, faults="crash:1", max_retries=2)
        self._assert_accounted(spec, result, self._baseline(spec))
        stats = result.supervisor
        assert stats["failures"] >= 1 and stats["retried_ok"] >= 1
        assert stats["quarantined"] == 0
        assert any(record.get("attempts", 1) > 1 for record in result.records)

    def test_exhausted_retries_quarantine_not_abort(self):
        spec = _spec(seeds=(0,))
        # Probability-1 corruption on every attempt: no retry can heal it.
        result = run_suite(spec, faults="drop:1.0", max_retries=1)
        assert result.executed == len(spec.expand())
        for record in result.records:
            assert record["status"] == "failed"
            assert record["error"]["type"] == "FaultDetected"
            assert record["attempts"] == 2
        assert result.supervisor["quarantined"] == len(spec.expand())

    def test_hang_fault_requires_cell_timeout(self):
        with pytest.raises(ValueError, match="hang"):
            run_suite(_spec(seeds=(0,)), faults="hang:1.0")

    def test_hang_quarantined_as_cell_timeout_serial(self):
        spec = _spec(seeds=(0,), methods=("sequential",))
        result = run_suite(spec, faults="hang:1.0", cell_timeout=0.2)
        for record in result.records:
            assert record["status"] == "failed"
            assert record["error"]["type"] == "CellTimeout"
        assert result.supervisor["timeouts"] >= 1

    def test_pool_chaos_matches_baseline(self):
        spec = _spec()
        baseline = self._baseline(spec)
        result = run_suite(spec, workers=2, faults="crash:1", max_retries=2)
        self._assert_accounted(spec, result, baseline)
        stats = result.supervisor
        # The forced first-attempt crash hard-kills a worker: the pool must
        # be respawned (or the victims recovered serially), never aborted.
        assert stats["pool_respawns"] + stats["serial_fallbacks"] >= 1
        assert all(r.get("status") == "ok" for r in result.records)

    def test_pool_hang_deadline_sweep(self):
        # Two task groups: run_suite collapses a one-group grid to the
        # serial path, and this test is about the *pool* deadline sweep.
        spec = _spec(seeds=(0,))
        result = run_suite(
            spec, workers=2, faults="hang:1.0", cell_timeout=0.5, max_retries=0
        )
        for record in result.records:
            assert record["status"] == "failed"
            assert record["error"]["type"] == "CellTimeout"
        assert result.supervisor["timeouts"] >= 1
        assert result.supervisor["pool_respawns"] >= 1


class TestResumeHealing:
    def test_failed_cells_retried_on_next_run(self, tmp_path):
        spec = _spec(seeds=(0,))
        path = os.path.join(tmp_path, "heal.jsonl")
        broken = run_suite(spec, store=path, faults="drop:1.0", max_retries=0)
        assert all(r["status"] == "failed" for r in broken.records)
        healed = run_suite(spec, store=path)
        assert healed.skipped == 0 and healed.executed == len(spec.expand())
        assert all(r.get("status", "ok") == "ok" for r in healed.records)
        warm = run_suite(spec, store=path)
        assert warm.executed == 0 and warm.skipped == len(spec.expand())

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_failed_records_round_trip_both_backends(self, tmp_path, backend):
        from repro.pipeline.backends import open_store

        spec = _spec(seeds=(0,), methods=("sequential",))
        path = os.path.join(tmp_path, "chaos." + backend)
        run_suite(
            spec, store=path, store_backend=backend,
            faults="drop:1.0", max_retries=0,
        )
        store = open_store(path, backend=backend)
        try:
            failed = store.query(status="failed")
            assert len(failed) == len(spec.expand())
            assert store.query(status="ok") == []
            assert failed[0]["error"]["type"] == "FaultDetected"
        finally:
            store.close()


class TestSqliteKillNine:
    """Satellite: a writer SIGKILLed mid-suite leaves a resumable store."""

    def test_resume_after_kill_nine(self, tmp_path):
        store_path = os.path.join(tmp_path, "killed.sqlite")
        script = textwrap.dedent(
            """
            import sys, time
            from repro.pipeline import SuiteSpec, run_suite

            spec = SuiteSpec(
                name="chaos", scenarios=("torus",), sizes=(36,),
                methods=("sequential", "mpx"), seeds=(0,), validate=True,
            )
            run_suite(spec, store={path!r}, store_backend="sqlite")
            print("PART1-DONE", flush=True)
            time.sleep(120)
            """
        ).format(path=store_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        child = subprocess.Popen(
            [sys.executable, "-c", script],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            line = child.stdout.readline().strip()
            assert line == "PART1-DONE", "child failed before commit: " + line
            # The child still holds an open WAL connection — kill it dead.
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
            child.stdout.close()
        assert child.returncode == -signal.SIGKILL

        # The store must reopen cleanly (WAL recovery) and resume: the two
        # committed cells are served, only the new seed's cells execute.
        full = _spec(seeds=(0, 1))
        resumed = run_suite(full, store=store_path, store_backend="sqlite")
        assert resumed.skipped == 2 and resumed.executed == 2
        assert all(r.get("status", "ok") == "ok" for r in resumed.records)
