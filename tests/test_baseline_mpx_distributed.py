"""Unit tests for the fully simulated (message-level) MPX carving."""

import random

import pytest

from repro.baselines.mpx_distributed import _geometric_shift, mpx_distributed_carving
from repro.clustering.validation import (
    check_ball_carving,
    clusters_nonadjacent,
    strong_diameter,
)
from repro.congest.rounds import RoundLedger
from repro.graphs.generators import grid_graph, torus_graph


class TestGeometricShift:
    def test_respects_cap(self):
        rng = random.Random(0)
        assert all(_geometric_shift(rng, 0.05, cap=7) <= 7 for _ in range(200))

    def test_eps_one_like_behaviour(self):
        rng = random.Random(0)
        # With eps close to 1 almost every shift is 0.
        draws = [_geometric_shift(rng, 0.99, cap=10) for _ in range(100)]
        assert sum(draws) <= 5


class TestDistributedMpxCarving:
    def test_structural_invariants(self, small_torus):
        carving, report = mpx_distributed_carving(small_torus, 0.5, rng=random.Random(1))
        check_ball_carving(carving, max_dead_fraction=0.97)
        assert clusters_nonadjacent(carving.graph, carving.clusters)

    def test_clusters_are_connected(self, small_grid):
        carving, _ = mpx_distributed_carving(small_grid, 0.5, rng=random.Random(2))
        for cluster in carving.clusters:
            strong_diameter(carving.graph, cluster.nodes)  # raises if disconnected

    def test_messages_fit_congest_bandwidth(self, small_grid):
        _, report = mpx_distributed_carving(small_grid, 0.5, rng=random.Random(3))
        assert report.within_bandwidth
        assert report.max_message_bits <= report.bandwidth_bits

    def test_rounds_are_measured_not_modelled(self, small_torus):
        ledger = RoundLedger()
        carving, report = mpx_distributed_carving(
            small_torus, 0.5, rng=random.Random(4), ledger=ledger
        )
        assert report.rounds >= 1
        assert carving.rounds >= report.rounds  # BFS rounds + comparison round

    def test_reproducible_with_same_seed(self, small_grid):
        first, _ = mpx_distributed_carving(small_grid, 0.5, rng=random.Random(9))
        second, _ = mpx_distributed_carving(small_grid, 0.5, rng=random.Random(9))
        assert first.cluster_of() == second.cluster_of()
        assert first.dead == second.dead

    def test_cluster_trees_stay_inside_clusters(self, small_torus):
        carving, _ = mpx_distributed_carving(small_torus, 0.5, rng=random.Random(5))
        for cluster in carving.clusters:
            assert cluster.tree.nodes <= set(cluster.nodes)

    def test_expected_dead_fraction_reasonable(self, small_torus):
        runs = 8
        total = 0.0
        for seed in range(runs):
            carving, _ = mpx_distributed_carving(small_torus, 0.25, rng=random.Random(seed))
            total += carving.dead_fraction
        assert total / runs <= 0.75

    def test_rejects_bad_inputs(self, small_grid):
        import networkx as nx

        with pytest.raises(ValueError):
            mpx_distributed_carving(small_grid, 0.0)
        with pytest.raises(ValueError):
            mpx_distributed_carving(nx.Graph(), 0.5)
