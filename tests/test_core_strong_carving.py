"""Unit tests for the Theorem 2.1 transformation and Theorem 2.2 carving."""

import math

import networkx as nx
import pytest

from repro.clustering.validation import (
    check_ball_carving,
    clusters_nonadjacent,
    strong_diameter,
)
from repro.congest.rounds import RoundLedger
from repro.core.strong_carving import (
    TransformationTrace,
    _find_boundary_radius,
    strong_carving_from_weak,
    theorem22_carving,
)
from repro.baselines.mpx import mpx_carving
from repro.graphs.generators import cycle_graph, grid_graph, path_graph, star_graph
from repro.weak.carving import weak_diameter_carving


class TestFindBoundaryRadius:
    def test_ball_covers_start_radius(self):
        graph = path_graph(30)
        ball, boundary, radius = _find_boundary_radius(
            graph, 0, allowed=set(graph.nodes()), start_radius=5, eps=0.5
        )
        assert radius >= 5
        assert {node for node in range(6)} <= ball

    def test_boundary_is_next_layer(self):
        graph = path_graph(30)
        ball, boundary, radius = _find_boundary_radius(
            graph, 0, allowed=set(graph.nodes()), start_radius=3, eps=0.5
        )
        assert boundary == {radius + 1} or boundary == set()

    def test_light_boundary_condition(self):
        graph = grid_graph(8, 8)
        allowed = set(graph.nodes())
        ball, boundary, radius = _find_boundary_radius(graph, 0, allowed, 2, eps=0.5)
        assert len(boundary) <= 0.5 * (len(ball) + len(boundary)) or len(ball | boundary) == len(allowed)

    def test_exhausted_component_has_empty_boundary(self):
        graph = path_graph(5)
        ball, boundary, radius = _find_boundary_radius(
            graph, 0, allowed=set(graph.nodes()), start_radius=10, eps=0.5
        )
        assert ball == set(graph.nodes())
        assert boundary == set()

    def test_isolated_root(self):
        graph = nx.Graph()
        graph.add_node(0)
        graph.add_node(1)
        ball, boundary, radius = _find_boundary_radius(graph, 0, {0, 1}, 0, eps=0.5)
        assert ball == {0}
        assert boundary == set()


class TestTheorem21Transformation:
    @pytest.mark.parametrize("eps", [0.5, 0.25])
    def test_structural_invariants(self, graph_zoo, eps):
        for name, graph in graph_zoo.items():
            carving = strong_carving_from_weak(graph, eps)
            check_ball_carving(carving)

    def test_produces_strong_kind_with_connected_clusters(self, small_torus):
        carving = strong_carving_from_weak(small_torus, 0.5)
        assert carving.kind == "strong"
        for cluster in carving.clusters:
            strong_diameter(carving.graph, cluster.nodes)  # raises if disconnected

    def test_dead_fraction_within_eps(self, graph_zoo):
        for name, graph in graph_zoo.items():
            carving = strong_carving_from_weak(graph, 0.5)
            assert carving.dead_fraction <= 0.5 + 1.0 / graph.number_of_nodes(), name

    def test_diameter_within_theorem_bound(self, small_torus):
        eps = 0.5
        trace = TransformationTrace()
        carving = strong_carving_from_weak(small_torus, eps, trace=trace)
        # Theorem 2.1: strong diameter <= 2 * R(n, eps / 2 log n) + O(log n / eps),
        # where R is the *measured* Steiner depth of the inner weak carving.
        n = small_torus.number_of_nodes()
        slack = 4 * math.log2(n) / eps + 4
        bound = 2 * max(trace.max_weak_tree_depth, trace.max_ball_radius) + slack
        for cluster in carving.clusters:
            assert strong_diameter(carving.graph, cluster.nodes) <= bound

    def test_deterministic(self, small_regular):
        first = strong_carving_from_weak(small_regular, 0.5)
        second = strong_carving_from_weak(small_regular, 0.5)
        assert first.cluster_of() == second.cluster_of()
        assert first.dead == second.dead

    def test_trace_records_iterations(self, small_torus):
        trace = TransformationTrace()
        strong_carving_from_weak(small_torus, 0.5, trace=trace)
        assert trace.iterations >= 1
        assert trace.eps_inner < 0.5

    def test_works_with_randomized_weak_algorithm(self, small_torus):
        import random

        rng = random.Random(0)

        def weak(graph, eps, nodes=None, ledger=None):
            return mpx_carving(graph, eps, nodes=nodes, ledger=ledger, rng=rng)

        carving = strong_carving_from_weak(small_torus, 0.5, weak_algorithm=weak)
        assert clusters_nonadjacent(carving.graph, carving.clusters)

    def test_subset_restriction(self, small_torus):
        nodes = set(list(small_torus.nodes())[:40])
        carving = strong_carving_from_weak(small_torus, 0.5, nodes=nodes)
        assert carving.clustered_nodes | carving.dead == nodes

    def test_disconnected_input(self, disconnected_graph):
        carving = strong_carving_from_weak(disconnected_graph, 0.5)
        check_ball_carving(carving)

    def test_empty_input(self, small_grid):
        carving = strong_carving_from_weak(small_grid, 0.5, nodes=[])
        assert carving.clusters == []

    def test_rejects_bad_eps(self, small_grid):
        with pytest.raises(ValueError):
            strong_carving_from_weak(small_grid, 0.0)

    def test_rounds_charged_per_iteration(self, small_grid):
        ledger = RoundLedger()
        strong_carving_from_weak(small_grid, 0.5, ledger=ledger)
        assert ledger.total_rounds > 0
        assert "theorem21_iteration" in ledger.breakdown()


class TestTheorem22:
    def test_valid_carving_on_zoo(self, graph_zoo):
        for name, graph in graph_zoo.items():
            carving = theorem22_carving(graph, 0.5)
            check_ball_carving(carving)

    def test_diameter_within_asymptotic_bound(self, small_torus):
        eps = 0.5
        carving = theorem22_carving(small_torus, eps)
        n = small_torus.number_of_nodes()
        bound = 8 * (math.log2(n) ** 3) / eps + 8
        for cluster in carving.clusters:
            assert strong_diameter(carving.graph, cluster.nodes) <= bound

    def test_star_graph_single_cluster(self, small_star):
        carving = theorem22_carving(small_star, 0.5)
        check_ball_carving(carving)
        assert carving.max_cluster_size() >= small_star.number_of_nodes() // 2

    def test_congestion_is_one(self, small_torus):
        carving = theorem22_carving(small_torus, 0.5)
        assert carving.congestion() <= 1
