"""Unit tests for the BallCarving result type."""

import pytest

from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster, SteinerTree
from repro.congest.rounds import RoundLedger
from repro.graphs.generators import path_graph


def _carving_on_path():
    graph = path_graph(10)
    clusters = [
        Cluster(nodes=frozenset({0, 1, 2}), label="a"),
        Cluster(nodes=frozenset({4, 5, 6}), label="b"),
        Cluster(nodes=frozenset({8, 9}), label="c"),
    ]
    dead = {3, 7}
    ledger = RoundLedger()
    ledger.charge("work", 17)
    return graph, BallCarving(graph=graph, clusters=clusters, dead=dead, eps=0.25, ledger=ledger)


class TestBallCarving:
    def test_clustered_nodes(self):
        _, carving = _carving_on_path()
        assert carving.clustered_nodes == {0, 1, 2, 4, 5, 6, 8, 9}

    def test_dead_fraction(self):
        _, carving = _carving_on_path()
        assert carving.dead_fraction == pytest.approx(0.2)

    def test_rounds_come_from_ledger(self):
        _, carving = _carving_on_path()
        assert carving.rounds == 17

    def test_cluster_of_mapping(self):
        _, carving = _carving_on_path()
        mapping = carving.cluster_of()
        assert mapping[0] == "a"
        assert mapping[5] == "b"
        assert 3 not in mapping

    def test_max_cluster_size(self):
        _, carving = _carving_on_path()
        assert carving.max_cluster_size() == 3

    def test_congestion_zero_without_trees(self):
        _, carving = _carving_on_path()
        assert carving.congestion() == 0

    def test_congestion_with_shared_tree_edges(self):
        graph = path_graph(4)
        tree = SteinerTree(root=0, parent={0: None, 1: 0, 2: 1})
        clusters = [
            Cluster(nodes=frozenset({0, 2}), label="a", tree=tree),
            Cluster(nodes=frozenset({1}), label="b",
                    tree=SteinerTree(root=1, parent={1: None, 0: 1})),
        ]
        carving = BallCarving(graph=graph, clusters=clusters, dead={3}, eps=0.5, kind="weak")
        assert carving.congestion() == 2

    def test_summary_fields(self):
        _, carving = _carving_on_path()
        summary = carving.summary()
        assert summary["n"] == 10
        assert summary["clusters"] == 3
        assert summary["dead_nodes"] == 2
        assert summary["rounds"] == 17
        assert summary["kind"] == "strong"

    def test_cluster_radii_and_summary_radius(self):
        _, carving = _carving_on_path()
        radii = carving.cluster_radii()
        assert set(radii) == {"a", "b", "c"}
        # Path segments of 3, 3 and 2 nodes: centre eccentricity at most 2.
        assert all(0 <= radius <= 2 for radius in radii.values())
        assert carving.max_cluster_radius() == max(radii.values())
        assert carving.summary()["max_cluster_radius"] == carving.max_cluster_radius()

    def test_weak_carving_summary_has_no_radius(self):
        graph = path_graph(4)
        tree = SteinerTree(root=0, parent={0: None, 1: 0, 2: 1, 3: 2})
        cluster = Cluster(nodes=frozenset({0, 3}), label="w", tree=tree)
        carving = BallCarving(
            graph=graph, clusters=[cluster], dead={1, 2}, eps=0.5, kind="weak"
        )
        assert carving.summary()["max_cluster_radius"] is None

    def test_disconnected_strong_cluster_radius_raises(self):
        graph = path_graph(5)
        cluster = Cluster(nodes=frozenset({0, 4}), label="bad")
        carving = BallCarving(graph=graph, clusters=[cluster], dead={1, 2, 3}, eps=0.9)
        with pytest.raises(ValueError):
            carving.cluster_radii()
        assert not carving.check_clusters_connected()

    def test_check_clusters_connected(self):
        _, carving = _carving_on_path()
        assert carving.check_clusters_connected()

    def test_radius_on_mixed_node_label_types(self):
        """Graphs without uids fall back to node labels, which may mix types;
        centre selection must still have a total order."""
        import networkx as nx

        graph = nx.Graph([("a", 3), (3, "b")])
        cluster = Cluster(nodes=frozenset({"a", 3, "b"}), label="mixed")
        carving = BallCarving(graph=graph, clusters=[cluster], dead=set(), eps=0.5)
        assert cluster.radius(graph) in (1, 2)
        assert carving.summary()["max_cluster_radius"] in (1, 2)

    def test_invalid_kind_rejected(self):
        graph = path_graph(3)
        with pytest.raises(ValueError):
            BallCarving(graph=graph, clusters=[], dead=set(), eps=0.5, kind="medium")

    def test_empty_carving(self):
        graph = path_graph(3)
        carving = BallCarving(graph=graph, clusters=[], dead=set(graph.nodes()), eps=1e-9)
        assert carving.max_cluster_size() == 0
        assert carving.dead_fraction == 1.0
        assert carving.clustered_nodes == set()
