"""Unit tests for the BallCarving result type."""

import pytest

from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster, SteinerTree
from repro.congest.rounds import RoundLedger
from repro.graphs.generators import path_graph


def _carving_on_path():
    graph = path_graph(10)
    clusters = [
        Cluster(nodes=frozenset({0, 1, 2}), label="a"),
        Cluster(nodes=frozenset({4, 5, 6}), label="b"),
        Cluster(nodes=frozenset({8, 9}), label="c"),
    ]
    dead = {3, 7}
    ledger = RoundLedger()
    ledger.charge("work", 17)
    return graph, BallCarving(graph=graph, clusters=clusters, dead=dead, eps=0.25, ledger=ledger)


class TestBallCarving:
    def test_clustered_nodes(self):
        _, carving = _carving_on_path()
        assert carving.clustered_nodes == {0, 1, 2, 4, 5, 6, 8, 9}

    def test_dead_fraction(self):
        _, carving = _carving_on_path()
        assert carving.dead_fraction == pytest.approx(0.2)

    def test_rounds_come_from_ledger(self):
        _, carving = _carving_on_path()
        assert carving.rounds == 17

    def test_cluster_of_mapping(self):
        _, carving = _carving_on_path()
        mapping = carving.cluster_of()
        assert mapping[0] == "a"
        assert mapping[5] == "b"
        assert 3 not in mapping

    def test_max_cluster_size(self):
        _, carving = _carving_on_path()
        assert carving.max_cluster_size() == 3

    def test_congestion_zero_without_trees(self):
        _, carving = _carving_on_path()
        assert carving.congestion() == 0

    def test_congestion_with_shared_tree_edges(self):
        graph = path_graph(4)
        tree = SteinerTree(root=0, parent={0: None, 1: 0, 2: 1})
        clusters = [
            Cluster(nodes=frozenset({0, 2}), label="a", tree=tree),
            Cluster(nodes=frozenset({1}), label="b",
                    tree=SteinerTree(root=1, parent={1: None, 0: 1})),
        ]
        carving = BallCarving(graph=graph, clusters=clusters, dead={3}, eps=0.5, kind="weak")
        assert carving.congestion() == 2

    def test_summary_fields(self):
        _, carving = _carving_on_path()
        summary = carving.summary()
        assert summary["n"] == 10
        assert summary["clusters"] == 3
        assert summary["dead_nodes"] == 2
        assert summary["rounds"] == 17
        assert summary["kind"] == "strong"

    def test_invalid_kind_rejected(self):
        graph = path_graph(3)
        with pytest.raises(ValueError):
            BallCarving(graph=graph, clusters=[], dead=set(), eps=0.5, kind="medium")

    def test_empty_carving(self):
        graph = path_graph(3)
        carving = BallCarving(graph=graph, clusters=[], dead=set(graph.nodes()), eps=1e-9)
        assert carving.max_cluster_size() == 0
        assert carving.dead_fraction == 1.0
        assert carving.clustered_nodes == set()
