"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.graphs.generators import (
    assign_unique_identifiers,
    binary_tree_graph,
    caterpillar_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)

# Dead-fraction slack used when validating the *randomized* baselines (their
# eps guarantee holds in expectation only; on the small graphs the unit tests
# use, individual runs routinely exceed it).
RANDOMIZED_DEAD_SLACK = 0.97

# Per-record keys that legitimately differ between identical suite runs.
# Every record-identity assertion strips exactly this set — extend it here
# (not inline) when a schema bump adds another volatile key.
VOLATILE_RECORD_KEYS = ("seconds", "timings")


def strip_volatile(record):
    """A suite result record without its wall-time fields, for equality."""
    return {k: v for k, v in record.items() if k not in VOLATILE_RECORD_KEYS}


@pytest.fixture
def small_torus() -> nx.Graph:
    """An 8x8 torus: 64 nodes, degree 4, diameter 8."""
    return torus_graph(8, 8, seed=1)


@pytest.fixture
def small_grid() -> nx.Graph:
    """A 6x6 grid: 36 nodes with boundary effects."""
    return grid_graph(6, 6, seed=1)


@pytest.fixture
def small_cycle() -> nx.Graph:
    """A 40-node cycle: the high-diameter extreme."""
    return cycle_graph(40, seed=1)


@pytest.fixture
def small_path() -> nx.Graph:
    """A 25-node path."""
    return path_graph(25, seed=1)


@pytest.fixture
def small_tree() -> nx.Graph:
    """A complete binary tree of depth 5 (63 nodes)."""
    return binary_tree_graph(5, seed=1)


@pytest.fixture
def small_star() -> nx.Graph:
    """A 30-node star."""
    return star_graph(30, seed=1)


@pytest.fixture
def small_regular() -> nx.Graph:
    """A 60-node random 4-regular graph (expander-like)."""
    return random_regular_graph(60, 4, seed=3)


@pytest.fixture
def small_caterpillar() -> nx.Graph:
    """A caterpillar with a 12-node spine and 3 legs per spine node."""
    return caterpillar_graph(12, 3, seed=1)


@pytest.fixture
def graph_zoo(small_torus, small_cycle, small_tree, small_regular, small_caterpillar):
    """A small collection of structurally different graphs."""
    return {
        "torus": small_torus,
        "cycle": small_cycle,
        "tree": small_tree,
        "regular": small_regular,
        "caterpillar": small_caterpillar,
    }


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random source for the randomized baselines."""
    return random.Random(12345)


def make_disconnected_graph() -> nx.Graph:
    """Two separate components (a path and a cycle) under one graph object."""
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
    graph.add_edges_from([(10, 11), (11, 12), (12, 13), (13, 10)])
    graph.add_node(20)
    return assign_unique_identifiers(graph, seed=0)


@pytest.fixture
def disconnected_graph() -> nx.Graph:
    """A graph with three components, including an isolated node."""
    return make_disconnected_graph()
