"""Unit tests for the experiment report generator and the CLI report flag."""

import os

import pytest

from repro.analysis.report import collect_archived_tables, generate_report, quick_summary
from repro.cli import main


class TestQuickSummary:
    def test_contains_every_method(self):
        import repro

        summary = quick_summary(n=64)
        for method in repro.DECOMPOSITION_METHODS:
            assert method in summary

    def test_is_a_rendered_table(self):
        summary = quick_summary(n=64)
        assert "colors" in summary
        assert "|" in summary


class TestArchivedTables:
    def test_missing_directory_gives_empty_list(self, tmp_path):
        assert collect_archived_tables(str(tmp_path)) == []

    def test_nonexistent_directory_gives_empty_list(self, tmp_path):
        """A checkout that never ran the bench harness has no results dir;
        collection must tolerate that instead of raising."""
        assert collect_archived_tables(os.path.join(tmp_path, "no", "such", "dir")) == []
        assert collect_archived_tables("") == []

    def test_results_dir_that_is_a_file_gives_empty_list(self, tmp_path):
        path = os.path.join(tmp_path, "results")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not a directory\n")
        assert collect_archived_tables(path) == []

    def test_existing_tables_are_collected_in_order(self, tmp_path):
        for stem in ("table1_torus", "barrier_properties"):
            with open(os.path.join(tmp_path, stem + ".txt"), "w", encoding="utf-8") as handle:
                handle.write("header\n----\nrow {}\n".format(stem))
        sections = collect_archived_tables(str(tmp_path))
        assert [section["title"] for section in sections] == [
            "Table 1 (torus workload)",
            "Section 3 barrier graph",
        ]
        assert "row table1_torus" in sections[0]["table"]


class TestGenerateReport:
    def test_report_without_archives(self, tmp_path):
        report = generate_report(results_dir=str(tmp_path), live_summary_n=64)
        assert report.startswith("# Reproduction report")
        assert "No archived benchmark tables" in report

    def test_report_with_missing_results_dir_emits_placeholder(self, tmp_path):
        report = generate_report(
            results_dir=os.path.join(tmp_path, "never", "created"),
            include_live_summary=False,
        )
        assert "No archived benchmark tables" in report

    def test_report_with_archives_and_no_live_summary(self, tmp_path):
        with open(os.path.join(tmp_path, "table1_torus.txt"), "w", encoding="utf-8") as handle:
            handle.write("the table body\n")
        report = generate_report(
            results_dir=str(tmp_path), include_live_summary=False
        )
        assert "Live summary" not in report
        assert "the table body" in report

    def test_report_live_summary_included(self, tmp_path):
        report = generate_report(results_dir=str(tmp_path), live_summary_n=64)
        assert "Live summary" in report
        assert "strong-log3" in report

    def test_report_embeds_suite_run_stores(self, tmp_path):
        import repro
        from repro.pipeline import SuiteSpec

        store_path = os.path.join(tmp_path, "suite.jsonl")
        repro.run_suite(
            SuiteSpec(
                name="report-suite",
                scenarios=("torus",),
                sizes=(36,),
                methods=("sequential",),
            ),
            store=store_path,
        )
        report = generate_report(
            results_dir=str(tmp_path),
            include_live_summary=False,
            store_paths=[store_path],
        )
        assert "Suite runs" in report
        assert "report-suite" in report
        assert "sequential" in report


class TestCliIntegration:
    def test_cli_report_flag(self, tmp_path, capsys):
        target = os.path.join(tmp_path, "report.md")
        exit_code = main(["--report", target, "--n", "64"])
        assert exit_code == 0
        assert os.path.exists(target)
        with open(target, "r", encoding="utf-8") as handle:
            assert "# Reproduction report" in handle.read()

    def test_cli_save_flag(self, tmp_path, capsys):
        target = os.path.join(tmp_path, "clustering.json")
        exit_code = main(
            ["--family", "grid", "--n", "25", "--method", "sequential", "--save", target]
        )
        assert exit_code == 0
        assert os.path.exists(target)
