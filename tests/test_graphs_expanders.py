"""Unit tests for expanders and the Section-3 barrier construction."""

import math

import networkx as nx
import pytest

from repro.graphs.expanders import (
    barrier_graph,
    margulis_expander,
    random_regular_expander,
    subdivide_edges,
)
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.properties import exact_diameter, graph_conductance_lower_bound


class TestRandomRegularExpander:
    def test_is_connected_and_regular(self):
        graph = random_regular_expander(40, degree=4, seed=1)
        assert nx.is_connected(graph)
        assert all(degree == 4 for _, degree in graph.degree())

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            random_regular_expander(3, degree=4)

    def test_has_small_diameter(self):
        graph = random_regular_expander(64, degree=4, seed=2)
        assert exact_diameter(graph) <= 3 * int(math.ceil(math.log2(64)))

    def test_impossible_certificate_raises(self):
        with pytest.raises(RuntimeError):
            random_regular_expander(24, degree=4, seed=1,
                                    min_algebraic_connectivity=100.0, max_attempts=2)


class TestMargulisExpander:
    def test_node_count(self):
        graph = margulis_expander(5)
        assert graph.number_of_nodes() == 25
        assert nx.is_connected(graph)

    def test_rejects_tiny_m(self):
        with pytest.raises(ValueError):
            margulis_expander(1)

    def test_diameter_is_logarithmic(self):
        graph = margulis_expander(8)
        assert exact_diameter(graph) <= 12


class TestSubdivision:
    def test_identity_subdivision(self):
        original = cycle_graph(10)
        copy = subdivide_edges(original, 1)
        assert copy.number_of_nodes() == 10
        assert copy.number_of_edges() == 10

    def test_node_and_edge_counts(self):
        original = cycle_graph(6)
        subdivided = subdivide_edges(original, 4)
        # Each of the 6 edges becomes a path with 4 edges and 3 new nodes.
        assert subdivided.number_of_edges() == 24
        assert subdivided.number_of_nodes() == 6 + 6 * 3
        assert nx.is_connected(subdivided)

    def test_subdivision_scales_diameter(self):
        original = cycle_graph(8)
        subdivided = subdivide_edges(original, 5)
        assert exact_diameter(subdivided) == 5 * exact_diameter(original)

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            subdivide_edges(path_graph(4), 0)

    def test_uids_still_a_permutation(self):
        subdivided = subdivide_edges(cycle_graph(6), 3)
        uids = sorted(subdivided.nodes[node]["uid"] for node in subdivided.nodes())
        assert uids == list(range(subdivided.number_of_nodes()))


class TestBarrierGraph:
    def test_metadata_consistency(self):
        graph, meta = barrier_graph(400, 0.5, seed=3)
        assert graph.number_of_nodes() == meta["result_nodes"]
        assert graph.number_of_edges() == meta["result_edges"]
        assert meta["subdivision_length"] >= 2
        assert nx.is_connected(graph)

    def test_size_is_near_target(self):
        graph, meta = barrier_graph(500, 0.5, seed=1)
        assert 0.3 * 500 <= graph.number_of_nodes() <= 3 * 500

    def test_low_conductance(self):
        graph, meta = barrier_graph(500, 0.25, seed=1)
        # The subdivided expander has conductance Theta(eps / log n): tiny.
        conductance = graph_conductance_lower_bound(graph, samples=32, seed=0)
        assert conductance <= 0.2

    def test_diameter_is_at_least_subdivision_length(self):
        graph, meta = barrier_graph(300, 0.5, seed=5)
        assert exact_diameter(graph) >= meta["subdivision_length"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            barrier_graph(10, 0.5)
        with pytest.raises(ValueError):
            barrier_graph(100, 1.5)
