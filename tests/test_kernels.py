"""Kernel tiers: registry semantics and tier-vs-pure differential equality.

The hot-path kernels are pure performance changes: every tier must produce
byte-identical cluster assignments, dead sets, ledger charges and task
solutions.  The ``pure`` tier is the extracted seed loops, so it is the
oracle every other tier is differenced against.  Tiers whose optional
dependency is missing in this interpreter are skipped (numpy is usually
present; numba is explicit opt-in and often absent).
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.congest.rounds import RoundLedger
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    erdos_renyi_graph,
    random_regular_graph,
    torus_graph,
)
from repro.kernels import (
    KERNEL_CHOICES,
    KERNELS,
    active_kernel,
    get_kernel,
    set_kernel,
    use_kernel,
)

METHODS = repro.CARVING_METHODS
TASKS = ("mis", "coloring")

AVAILABLE = KERNELS.available_names()
#: Non-oracle tiers installed in this interpreter, each differenced vs pure.
ACCELERATED = tuple(name for name in AVAILABLE if name != "pure")

needs_tier = {
    name: pytest.mark.skipif(
        name not in AVAILABLE,
        reason="kernel {!r} needs an optional dependency not installed here".format(
            name
        ),
    )
    for name in KERNELS.names()
}


def tier_params():
    """Every registered tier, skip-marked when its dependency is missing."""
    return [pytest.param(name, marks=needs_tier[name]) for name in KERNELS.names()]


def _workload_graphs():
    return [
        ("torus", torus_graph(10, 10, seed=3)),
        ("regular", random_regular_graph(80, 4, seed=5)),
        ("gnp", erdos_renyi_graph(90, 0.05, seed=11)),
    ]


def carving_signature(carving):
    return (
        frozenset(frozenset(cluster.nodes) for cluster in carving.clusters),
        frozenset(carving.dead),
    )


def decomposition_signature(decomposition):
    return frozenset(
        (cluster.color, frozenset(cluster.nodes)) for cluster in decomposition.clusters
    )


# --------------------------------------------------------------------- #
# Registry semantics
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_registered_tiers_and_choices(self):
        assert KERNELS.names() == ("pure", "numpy", "numba")
        assert KERNEL_CHOICES == ("auto", "pure", "numpy", "numba")
        assert "pure" in AVAILABLE  # the oracle has no dependencies

    def test_unknown_kernel_raises_with_catalogue(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            KERNELS.get("simd")
        with pytest.raises(ValueError, match="auto"):
            KERNELS.instantiate("simd")

    def test_auto_is_not_registrable(self):
        from repro.kernels import KernelSpec
        from repro.kernels.pure import PureKernel

        with pytest.raises(ValueError, match="selection rule"):
            KERNELS.register(
                KernelSpec(name="auto", description="x", factory=PureKernel)
            )

    def test_duplicate_registration_rejected(self):
        from repro.kernels import KernelSpec
        from repro.kernels.pure import PureKernel

        with pytest.raises(ValueError, match="already registered"):
            KERNELS.register(
                KernelSpec(name="pure", description="x", factory=PureKernel)
            )

    def test_auto_prefers_numpy_over_pure_and_never_numba(self):
        resolved = KERNELS.resolve("auto")
        if "numpy" in AVAILABLE:
            assert resolved.name == "numpy"
        else:
            assert resolved.name == "pure"
        # The JIT tier must stay explicit opt-in whatever is installed.
        assert resolved.name != "numba"

    def test_instances_are_cached(self):
        assert KERNELS.instantiate("pure") is KERNELS.instantiate("pure")

    @pytest.mark.skipif(
        "numba" in AVAILABLE, reason="numba installed: unavailability not testable"
    )
    def test_unavailable_tier_names_its_extra(self):
        with pytest.raises(ValueError, match="repro\\[jit\\]"):
            KERNELS.instantiate("numba")
        with pytest.raises(ValueError, match="repro\\[jit\\]"):
            set_kernel("numba")

    def test_set_kernel_validates(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            set_kernel("simd")
        assert get_kernel() == "auto"  # a failed set leaves the ambient alone

    def test_use_kernel_scopes_and_restores(self):
        before = get_kernel()
        with use_kernel("pure"):
            assert get_kernel() == "pure"
            assert active_kernel().name == "pure"
        assert get_kernel() == before

    def test_use_kernel_none_keeps_ambient(self):
        with use_kernel("pure"):
            with use_kernel(None):
                assert get_kernel() == "pure"

    def test_active_kernel_matches_auto_resolution(self):
        with use_kernel("auto"):
            assert active_kernel().name == KERNELS.resolve("auto").name


# --------------------------------------------------------------------- #
# Frontier-expansion unit behaviour (every available tier)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("tier", tier_params())
class TestFrontierExpand:
    def _csr(self, graph):
        return CSRGraph.from_networkx(graph)

    def test_isolated_node_expands_to_nothing(self, tier, disconnected_graph):
        csr = self._csr(disconnected_graph)
        kernel = KERNELS.instantiate(tier)
        isolated = csr.index[20]
        blocked = bytearray(csr.n)
        blocked[isolated] = 1
        assert kernel.frontier_expand(csr, [isolated], blocked) == []

    def test_full_graph_frontier_has_no_new_nodes(self, tier, small_torus):
        csr = self._csr(small_torus)
        kernel = KERNELS.instantiate(tier)
        blocked = bytearray(b"\x01") * csr.n
        assert kernel.frontier_expand(csr, list(range(csr.n)), blocked) == []

    def test_fully_blocked_neighbourhood(self, tier, small_torus):
        csr = self._csr(small_torus)
        kernel = KERNELS.instantiate(tier)
        # Everything except the source is blocked: an empty allowed set.
        blocked = bytearray(b"\x01") * csr.n
        assert kernel.frontier_expand(csr, [0], blocked) == []

    def test_empty_frontier(self, tier, small_torus):
        csr = self._csr(small_torus)
        kernel = KERNELS.instantiate(tier)
        assert kernel.frontier_expand(csr, [], bytearray(csr.n)) == []

    def test_first_discovery_order_matches_pure(self, tier, small_regular):
        csr = self._csr(small_regular)
        kernel = KERNELS.instantiate(tier)
        pure = KERNELS.instantiate("pure")
        for frontier in ([0], [3, 17, 5], list(range(10))):
            blocked_a = bytearray(csr.n)
            blocked_b = bytearray(csr.n)
            for i in frontier:
                blocked_a[i] = blocked_b[i] = 1
            got = kernel.frontier_expand(csr, list(frontier), blocked_a)
            want = pure.frontier_expand(csr, list(frontier), blocked_b)
            # Not just the same set: the exact first-discovery order, which
            # downstream dict insertion orders and tie-breaks depend on.
            assert got == want
            assert blocked_a == blocked_b

    def test_marks_are_visible_to_caller(self, tier, small_torus):
        csr = self._csr(small_torus)
        kernel = KERNELS.instantiate(tier)
        blocked = bytearray(csr.n)
        blocked[0] = 1
        reached = kernel.frontier_expand(csr, [0], blocked)
        assert reached  # degree-4 torus: the step finds neighbours
        assert all(blocked[i] == 1 for i in reached)

    def test_bfs_layers_partition_component(self, tier, small_tree):
        csr = self._csr(small_tree)
        kernel = KERNELS.instantiate(tier)
        blocked = bytearray(csr.n)
        blocked[0] = 1
        layers = kernel.bfs_layers(csr, [0], blocked)
        flat = [i for layer in layers for i in layer]
        assert sorted(flat) == list(range(csr.n))
        assert len(flat) == len(set(flat))

    def test_multi_source_bfs_counts_sources(self, tier, small_cycle):
        csr = self._csr(small_cycle)
        kernel = KERNELS.instantiate(tier)
        blocked = bytearray(csr.n)
        blocked[0] = 1
        ecc, reached = kernel.multi_source_bfs(csr, [0], blocked)
        assert reached == csr.n
        assert ecc == csr.n // 2  # a 40-cycle: eccentricity 20


# --------------------------------------------------------------------- #
# Differential: every accelerated tier vs the pure oracle
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "tier", [pytest.param(name, marks=needs_tier[name]) for name in ("numpy", "numba")]
)
class TestTierMatchesPure:
    def test_carvings_identical(self, tier):
        for method in METHODS:
            for name, graph in _workload_graphs():
                with use_kernel("pure"):
                    oracle_ledger = RoundLedger()
                    oracle = repro.carve(
                        graph, 0.5, method=method, seed=7, ledger=oracle_ledger
                    )
                with use_kernel(tier):
                    tier_ledger = RoundLedger()
                    got = repro.carve(
                        graph, 0.5, method=method, seed=7, ledger=tier_ledger
                    )
                assert carving_signature(got) == carving_signature(oracle), (
                    "kernel {!r} diverged from pure: method {!r} on {!r}".format(
                        tier, method, name
                    )
                )
                assert tier_ledger.total_rounds == oracle_ledger.total_rounds

    def test_decompositions_identical(self, tier):
        for method in METHODS:
            for name, graph in _workload_graphs():
                with use_kernel("pure"):
                    oracle_ledger = RoundLedger()
                    oracle = repro.decompose(
                        graph, method=method, seed=7, ledger=oracle_ledger
                    )
                with use_kernel(tier):
                    tier_ledger = RoundLedger()
                    got = repro.decompose(graph, method=method, seed=7, ledger=tier_ledger)
                assert decomposition_signature(got) == decomposition_signature(
                    oracle
                ), "kernel {!r} diverged from pure: method {!r} on {!r}".format(
                    tier, method, name
                )
                assert tier_ledger.total_rounds == oracle_ledger.total_rounds

    @pytest.mark.parametrize("task", TASKS)
    def test_task_solutions_identical(self, tier, task):
        for method in ("strong-log3", "weak-rg20", "mpx"):
            for name, graph in _workload_graphs():
                oracle = repro.run_task(
                    graph, method=method, task=task, seed=7, kernel="pure"
                )
                got = repro.run_task(
                    graph, method=method, task=task, seed=7, kernel=tier
                )
                context = "kernel {!r}, method {!r}, task {!r}, workload {!r}".format(
                    tier, method, task, name
                )
                if task == "mis":
                    assert got.solution == oracle.solution, context
                else:
                    assert dict(got.solution) == dict(oracle.solution), context
                assert got.metrics == oracle.metrics, context
                assert got.rounds == oracle.rounds, context

    def test_graph_properties_identical(self, tier):
        from repro.graphs.properties import approximate_diameter, induced_components

        for name, graph in _workload_graphs():
            with use_kernel("pure"):
                oracle = (
                    approximate_diameter(graph),
                    sorted(sorted(c) for c in induced_components(graph, graph.nodes())),
                )
            with use_kernel(tier):
                got = (
                    approximate_diameter(graph),
                    sorted(sorted(c) for c in induced_components(graph, graph.nodes())),
                )
            assert got == oracle, "kernel {!r} diverged on {!r}".format(tier, name)


# --------------------------------------------------------------------- #
# Suite integration: the kernel axis of the pipeline
# --------------------------------------------------------------------- #
def _suite_spec(**overrides):
    from repro.pipeline.runner import SuiteSpec

    payload = dict(
        name="kernel-axis",
        scenarios=("torus",),
        sizes=(49,),
        methods=("strong-log3", "weak-rg20"),
        tasks=("decompose", "mis", "coloring"),
        validate=True,
    )
    payload.update(overrides)
    return SuiteSpec(**payload)


class TestSuiteKernelAxis:
    def test_spec_validates_kernel(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            _suite_spec(kernel="simd")

    def test_spec_roundtrips_kernel(self):
        from repro.pipeline.runner import SuiteSpec

        spec = _suite_spec(kernel="pure")
        assert SuiteSpec.from_dict(spec.to_dict()) == spec

    def test_records_carry_resolved_kernel(self):
        result = repro.run_suite(_suite_spec(kernel="pure"))
        assert result.records
        for record in result.records:
            assert record["timings"]["kernel"] == "pure"
        # The rendered rows surface the tier next to the timings.
        assert all(row["kernel"] == "pure" for row in result.rows())

    def test_auto_records_resolved_name_not_alias(self):
        result = repro.run_suite(_suite_spec(kernel="auto"))
        recorded = {record["timings"]["kernel"] for record in result.records}
        assert recorded == {KERNELS.resolve("auto").name}
        assert "auto" not in recorded

    @pytest.mark.skipif("numpy" not in AVAILABLE, reason="numpy tier not installed")
    def test_tiers_produce_identical_records(self):
        from tests.conftest import strip_volatile

        via_pure = repro.run_suite(_suite_spec(kernel="pure"))
        via_numpy = repro.run_suite(_suite_spec(kernel="numpy"))
        for a, b in zip(via_pure.records, via_numpy.records):
            assert strip_volatile(a) == strip_volatile(b)

    @pytest.mark.skipif("numpy" not in AVAILABLE, reason="numpy tier not installed")
    def test_pool_workers_honour_kernel(self):
        spec = _suite_spec(kernel="numpy", seeds=(0, 1))
        result = repro.run_suite(spec, workers=2)
        assert result.records
        for record in result.records:
            assert record["timings"]["kernel"] == "numpy"

    def test_pre_kernel_records_still_resume(self):
        """A store written before the kernel axis landed resumes cleanly."""
        spec = _suite_spec(kernel="pure", tasks=("decompose",))
        first = repro.run_suite(spec)
        store = first.store
        # Simulate pre-kernel records: drop the timing entry in place.
        for record in store.results():
            record["timings"].pop("kernel")
        again = repro.run_suite(spec, store=store)
        assert again.executed == 0
        assert again.skipped == len(first.records)


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #
class TestCLI:
    def test_list_kernels(self, capsys):
        from repro.cli import main

        assert main(["--list-kernels"]) == 0
        out = capsys.readouterr().out
        for name in KERNELS.names():
            assert name in out
        assert "available" in out

    def test_kernel_flag_is_validated(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--kernel", "simd"])

    def test_single_run_accepts_kernel(self, capsys):
        from repro.cli import main

        assert main(["--n", "36", "--kernel", "pure", "--skip-validation"]) == 0
        assert "network decomposition" in capsys.readouterr().out

    def test_suite_run_accepts_kernel(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "--mode",
                    "suite",
                    "--family",
                    "torus",
                    "--n",
                    "36",
                    "--kernel",
                    "pure",
                    "--tasks",
                    "mis",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "kernel" in out
        assert "pure" in out


# --------------------------------------------------------------------- #
# Degradation
# --------------------------------------------------------------------- #
def test_pure_tier_never_warns():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with use_kernel("pure"):
            assert active_kernel().name == "pure"
