"""Unit tests for message size accounting."""

import pytest

from repro.congest.messages import Message, default_bandwidth, message_bits


class TestMessageBits:
    def test_none_and_bool_cost_one_bit(self):
        assert message_bits(None) == 1
        assert message_bits(True) == 1
        assert message_bits(False) == 1

    def test_small_int_cost(self):
        assert message_bits(0) == 2
        assert message_bits(1) == 2
        assert message_bits(-1) == 2

    def test_int_cost_grows_with_magnitude(self):
        assert message_bits(1023) == 1 + 10
        assert message_bits(2 ** 40) < message_bits(2 ** 80)

    def test_float_cost(self):
        assert message_bits(3.14) == 64

    def test_string_cost(self):
        assert message_bits("abc") == 24
        assert message_bits("") == 8

    def test_tuple_cost_is_additive(self):
        single = message_bits(7)
        assert message_bits((7,)) == single + 2 + 2
        assert message_bits((7, 7)) == 2 * (single + 2) + 2

    def test_dict_cost(self):
        assert message_bits({1: 2}) > message_bits(1) + message_bits(2)

    def test_unsupported_type_raises(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            message_bits(Opaque())

    def test_nested_structures(self):
        nested = (1, (2, 3), "x")
        assert message_bits(nested) > message_bits((1, 2, 3))


class TestMessage:
    def test_bits_property_matches_function(self):
        message = Message(sender=0, payload=(1, 2, 3))
        assert message.bits == message_bits((1, 2, 3))

    def test_message_is_frozen(self):
        message = Message(sender=0, payload=5)
        with pytest.raises(Exception):
            message.payload = 7


class TestDefaultBandwidth:
    def test_logarithmic_growth(self):
        assert default_bandwidth(2) == 8
        assert default_bandwidth(1024) == 8 * 10
        assert default_bandwidth(1 << 20) == 8 * 20

    def test_tiny_networks(self):
        assert default_bandwidth(1) == 8

    def test_fits_a_constant_number_of_identifiers(self):
        n = 4096
        bandwidth = default_bandwidth(n)
        identifier_message = (1, n - 1, n // 2)
        assert message_bits(identifier_message) <= bandwidth
