"""Unit tests for the per-phase machinery of the weak-diameter carving."""

import networkx as nx
import pytest

from repro.graphs.generators import assign_unique_identifiers, cycle_graph, path_graph
from repro.weak.phases import CarvingState, PhaseReport, run_phase


def _make_state(graph):
    uid_of = {node: graph.nodes[node]["uid"] for node in graph.nodes()}
    return CarvingState.initial(graph, set(graph.nodes()), uid_of), uid_of


class TestCarvingState:
    def test_initial_state_is_singletons(self):
        graph = path_graph(5, seed=None)
        state, uid_of = _make_state(graph)
        assert state.alive == set(graph.nodes())
        assert state.dead == set()
        for node in graph.nodes():
            assert state.label[node] == uid_of[node]
            assert state.tree_root[uid_of[node]] == node

    def test_record_join_extends_tree(self):
        graph = path_graph(3, seed=None)
        state, uid_of = _make_state(graph)
        target_label = state.label[2]
        state.record_join(1, via=2, new_label=target_label)
        assert state.label[1] == target_label
        assert state.tree_parent[target_label][1] == 2
        assert state.tree_depth[target_label][1] == 1

    def test_record_join_does_not_overwrite_existing_entry(self):
        graph = path_graph(3, seed=None)
        state, _ = _make_state(graph)
        label = state.label[2]
        state.record_join(1, via=2, new_label=label)
        state.record_join(1, via=0, new_label=label)
        assert state.tree_parent[label][1] == 2

    def test_kill_removes_from_alive(self):
        graph = path_graph(3, seed=None)
        state, _ = _make_state(graph)
        state.kill(1)
        assert 1 not in state.alive
        assert 1 in state.dead
        assert 1 not in state.label

    def test_max_tree_depth(self):
        graph = path_graph(4, seed=None)
        state, _ = _make_state(graph)
        assert state.max_tree_depth() == 0
        label = state.label[3]
        state.record_join(2, via=3, new_label=label)
        state.record_join(1, via=2, new_label=label)
        assert state.max_tree_depth() == 2


class TestRunPhase:
    def test_phase_resolves_blue_red_adjacency(self):
        # Two adjacent nodes whose uids differ in bit 0: after the phase for
        # bit 0 they must be in the same cluster or one of them dead.
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.nodes[0]["uid"] = 0  # blue at bit 0
        graph.nodes[1]["uid"] = 1  # red at bit 0
        state, _ = _make_state(graph)
        report = run_phase(state, bit=0, threshold=0.5, max_steps=10)
        assert isinstance(report, PhaseReport)
        alive = state.alive
        if 0 in alive and 1 in alive:
            assert state.label[0] == state.label[1]

    def test_generous_threshold_joins_instead_of_killing(self):
        graph = path_graph(2, seed=None)
        graph.nodes[0]["uid"] = 0
        graph.nodes[1]["uid"] = 1
        state, _ = _make_state(graph)
        report = run_phase(state, bit=0, threshold=0.01, max_steps=10)
        assert report.nodes_joined == 1
        assert report.nodes_killed == 0
        assert state.label[0] == state.label[1] == 1

    def test_impossible_threshold_kills_proposers(self):
        graph = path_graph(2, seed=None)
        graph.nodes[0]["uid"] = 0
        graph.nodes[1]["uid"] = 1
        state, _ = _make_state(graph)
        report = run_phase(state, bit=0, threshold=5.0, max_steps=10)
        assert report.nodes_killed == 1
        assert 0 in state.dead

    def test_phase_with_no_red_nodes_is_empty(self):
        graph = path_graph(3, seed=None)
        for node in graph.nodes():
            graph.nodes[node]["uid"] = node * 2  # all even: bit 0 == 0
        state, _ = _make_state(graph)
        report = run_phase(state, bit=0, threshold=0.5, max_steps=10)
        assert report.steps == 0
        assert report.nodes_joined == 0

    def test_step_cap_raises(self):
        graph = cycle_graph(32, seed=1)
        state, _ = _make_state(graph)
        with pytest.raises(RuntimeError):
            run_phase(state, bit=0, threshold=1e-9, max_steps=0)

    def test_end_of_phase_invariant_on_larger_graph(self):
        graph = cycle_graph(48, seed=5)
        state, _ = _make_state(graph)
        bit = 0
        run_phase(state, bit=bit, threshold=0.1, max_steps=1000)
        # Invariant: no alive blue node is adjacent to an alive red node.
        for u, v in graph.edges():
            if u in state.alive and v in state.alive:
                bit_u = (state.label[u] >> bit) & 1
                bit_v = (state.label[v] >> bit) & 1
                if bit_u != bit_v:
                    pytest.fail("blue node adjacent to red node after the phase")

    def test_growth_accounting(self):
        graph = cycle_graph(20, seed=3)
        state, _ = _make_state(graph)
        report = run_phase(state, bit=0, threshold=0.05, max_steps=1000)
        assert state.acceptance_events + state.rejection_events >= 1
        assert report.max_tree_depth >= 1
