"""Edge-input coverage: disconnected and trivial graphs, all methods/backends.

The generators module promises that the algorithms cope with possibly
disconnected Erdős–Rényi inputs; these tests pin that promise down for every
method in :data:`repro.CARVING_METHODS` under both graph backends, together
with the degenerate 1-node and 2-node graphs.
"""

import networkx as nx
import pytest

import repro
from repro.clustering.validation import (
    check_ball_carving,
    check_network_decomposition,
)
from repro.graphs.generators import erdos_renyi_graph, path_graph
from tests.conftest import RANDOMIZED_DEAD_SLACK

RANDOMIZED = {"ls93", "mpx"}
BACKENDS = ("csr", "nx")


def _edge_input_graphs():
    sparse = erdos_renyi_graph(40, 0.035, seed=5)
    assert not nx.is_connected(sparse), "fixture must exercise disconnectedness"
    isolated = erdos_renyi_graph(12, 0.0, seed=1)
    return [
        ("one-node", path_graph(1, seed=0)),
        ("two-node", path_graph(2, seed=0)),
        ("disconnected-er", sparse),
        ("isolated-nodes", isolated),
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", repro.CARVING_METHODS)
def test_carve_handles_edge_inputs(method, backend):
    for name, graph in _edge_input_graphs():
        carving = repro.carve(graph, 0.5, method=method, seed=3, backend=backend)
        slack = RANDOMIZED_DEAD_SLACK if method in RANDOMIZED else None
        check_ball_carving(carving, max_dead_fraction=slack)
        covered = carving.clustered_nodes | carving.dead
        assert covered == set(graph.nodes()), (
            "method {!r} on {!r} lost nodes".format(method, name)
        )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", repro.DECOMPOSITION_METHODS)
def test_decompose_handles_edge_inputs(method, backend):
    for name, graph in _edge_input_graphs():
        decomposition = repro.decompose(graph, method=method, seed=3, backend=backend)
        check_network_decomposition(decomposition)
        assert decomposition.covered_nodes() == set(graph.nodes()), (
            "method {!r} on {!r} lost nodes".format(method, name)
        )


@pytest.mark.parametrize("method", ("strong-log3", "strong-log2", "weak-rg20"))
def test_trivial_graphs_cluster_everything_deterministically(method):
    """On 1- and 2-node graphs the paper's deterministic carvings kill nobody.

    (The greedy ``sequential`` baseline is excluded: it removes each ball's
    boundary *layer* by construction, which on a 2-node path is one node —
    within its allowed eps*n+1 slack, but not zero.)
    """
    for n in (1, 2):
        graph = path_graph(n, seed=0)
        carving = repro.carve(graph, 0.5, method=method)
        assert carving.dead == set()
        assert carving.clustered_nodes == set(graph.nodes())
