"""Unit tests for the distributed CONGEST primitives.

Besides functional correctness, these tests cross-check the round counts the
message-level simulator measures against the cost formulas charged by
:class:`repro.congest.rounds.RoundLedger` — that calibration is what makes the
ledger-based accounting of the composite algorithms meaningful.
"""

import networkx as nx
import pytest

from repro.congest.primitives import (
    bfs_tree,
    broadcast_from_root,
    convergecast_sum,
    count_nodes_at_distances,
    leader_election,
    shifted_multisource_bfs,
)
from repro.congest.rounds import RoundLedger
from repro.graphs.generators import (
    binary_tree_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.properties import distances_from, exact_diameter


class TestBfsTree:
    def test_distances_match_reference(self):
        graph = grid_graph(5, 5)
        _, distances, _ = bfs_tree(graph, 7)
        assert distances == distances_from(graph, 7)

    def test_parents_form_a_tree_towards_root(self):
        graph = binary_tree_graph(4)
        parents, distances, _ = bfs_tree(graph, 0)
        assert parents[0] is None
        for node, parent in parents.items():
            if parent is not None:
                assert graph.has_edge(node, parent)
                assert distances[node] == distances[parent] + 1

    def test_every_node_reached_in_connected_graph(self):
        graph = cycle_graph(15)
        parents, distances, _ = bfs_tree(graph, 3)
        assert set(distances) == set(graph.nodes())

    def test_round_count_close_to_eccentricity(self):
        graph = path_graph(12)
        _, distances, report = bfs_tree(graph, 0)
        eccentricity = max(distances.values())
        assert eccentricity <= report.rounds <= eccentricity + 3

    def test_messages_fit_bandwidth(self):
        graph = grid_graph(6, 6)
        _, _, report = bfs_tree(graph, 0)
        assert report.within_bandwidth

    def test_ledger_formula_upper_bounds_simulation(self):
        graph = path_graph(15)
        _, distances, report = bfs_tree(graph, 0)
        ledger = RoundLedger()
        ledger.bfs(max(distances.values()))
        assert report.rounds <= ledger.total_rounds + 2


class TestConvergecastAndBroadcast:
    def test_sum_of_ones_counts_nodes(self):
        graph = grid_graph(4, 4)
        parents, _, _ = bfs_tree(graph, 0)
        total, _ = convergecast_sum(graph, parents, {node: 1 for node in graph.nodes()})
        assert total == 16

    def test_weighted_sum(self):
        graph = star_graph(8)
        parents, _, _ = bfs_tree(graph, 0)
        values = {node: node + 1 for node in graph.nodes()}
        total, _ = convergecast_sum(graph, parents, values)
        assert total == sum(values.values())

    def test_convergecast_rounds_bounded_by_depth(self):
        graph = path_graph(10)
        parents, distances, _ = bfs_tree(graph, 0)
        _, report = convergecast_sum(graph, parents, {node: 1 for node in graph.nodes()})
        depth = max(distances.values())
        assert report.rounds <= depth + 3

    def test_broadcast_reaches_everyone(self):
        graph = grid_graph(4, 5)
        parents, _, _ = bfs_tree(graph, 2)
        outputs, _ = broadcast_from_root(graph, parents, 99)
        assert all(value == 99 for value in outputs.values())

    def test_broadcast_requires_single_root(self):
        graph = path_graph(4)
        bad_parents = {0: None, 1: None, 2: 1, 3: 2}
        with pytest.raises(ValueError):
            broadcast_from_root(graph, bad_parents, 1)

    def test_convergecast_requires_single_root(self):
        graph = path_graph(4)
        bad_parents = {0: None, 1: None, 2: 1, 3: 2}
        with pytest.raises(ValueError):
            convergecast_sum(graph, bad_parents, {})


class TestLeaderElection:
    def test_elects_minimum_uid(self):
        graph = grid_graph(4, 4, seed=9)
        leader, _ = leader_election(graph)
        assert leader == min(graph.nodes[node]["uid"] for node in graph.nodes())

    def test_all_nodes_agree(self):
        graph = cycle_graph(11, seed=2)
        leader, report = leader_election(graph)
        assert set(report.outputs.values()) == {leader}

    def test_insufficient_rounds_raise(self):
        graph = path_graph(20, seed=1)
        with pytest.raises(RuntimeError):
            leader_election(graph, rounds=2)


class TestShiftedBfs:
    def test_zero_shifts_make_every_node_its_own_center(self):
        graph = grid_graph(3, 3)
        centers, parents, _ = shifted_multisource_bfs(graph, {node: 0 for node in graph.nodes()})
        for node in graph.nodes():
            assert centers[node] == graph.nodes[node]["uid"]
            assert parents[node] is None

    def test_single_large_shift_captures_everything(self):
        graph = grid_graph(4, 4)
        shifts = {node: 0 for node in graph.nodes()}
        shifts[0] = 100
        centers, parents, _ = shifted_multisource_bfs(graph, shifts)
        assert set(centers.values()) == {graph.nodes[0]["uid"]}

    def test_clusters_are_connected(self):
        graph = grid_graph(5, 5)
        shifts = {node: (node % 3) for node in graph.nodes()}
        centers, parents, _ = shifted_multisource_bfs(graph, shifts)
        for node, parent in parents.items():
            if parent is not None:
                assert centers[parent] == centers[node]
                assert graph.has_edge(node, parent)

    def test_rounds_bounded_by_shift_plus_diameter(self):
        graph = grid_graph(4, 4)
        shifts = {node: 2 for node in graph.nodes()}
        _, _, report = shifted_multisource_bfs(graph, shifts)
        assert report.rounds <= 2 + exact_diameter(graph) + 3


class TestLayerCounts:
    def test_counts_match_reference(self):
        graph = grid_graph(5, 4)
        counts, _ = count_nodes_at_distances(graph, 0, max_radius=10)
        reference = {}
        for node, distance in distances_from(graph, 0).items():
            reference[distance] = reference.get(distance, 0) + 1
        assert counts == reference

    def test_total_equals_n(self):
        graph = cycle_graph(13)
        counts, _ = count_nodes_at_distances(graph, 5, max_radius=13)
        assert sum(counts.values()) == 13

    def test_respects_max_radius(self):
        graph = path_graph(10)
        counts, _ = count_nodes_at_distances(graph, 0, max_radius=4)
        assert max(counts) <= 4

    def test_messages_fit_bandwidth(self):
        graph = grid_graph(5, 5)
        _, report = count_nodes_at_distances(graph, 0, max_radius=9)
        assert report.within_bandwidth

    def test_ledger_layer_count_formula_upper_bounds_simulation(self):
        graph = path_graph(12)
        _, report = count_nodes_at_distances(graph, 0, max_radius=11)
        ledger = RoundLedger()
        ledger.layer_count(11)
        # Pipelined counting costs O(depth); the ledger formula (2*depth + 4)
        # must upper bound the simulator within a small additive slack.
        assert report.rounds <= ledger.total_rounds + 12
