"""Unit tests for the Linial–Saks randomized baseline."""

import random

import pytest

from repro.baselines.linial_saks import (
    _radius_cap,
    _truncated_geometric,
    linial_saks_carving,
    linial_saks_decomposition,
)
from repro.clustering.validation import (
    check_ball_carving,
    check_network_decomposition,
    check_steiner_trees,
    clusters_nonadjacent,
    weak_diameter,
)
from tests.conftest import RANDOMIZED_DEAD_SLACK


class TestHelpers:
    def test_truncated_geometric_respects_cap(self):
        rng = random.Random(0)
        draws = [_truncated_geometric(rng, 0.9, cap=5) for _ in range(200)]
        assert max(draws) <= 5
        assert min(draws) >= 0

    def test_truncated_geometric_zero_continuation(self):
        rng = random.Random(0)
        assert all(_truncated_geometric(rng, 0.0, cap=5) == 0 for _ in range(10))

    def test_radius_cap_grows_with_n(self):
        assert _radius_cap(1 << 16, 0.5) > _radius_cap(1 << 4, 0.5)

    def test_radius_cap_grows_as_eps_shrinks(self):
        assert _radius_cap(256, 0.1) > _radius_cap(256, 0.9)


class TestCarving:
    def test_structural_invariants(self, small_torus, rng):
        carving = linial_saks_carving(small_torus, 0.5, rng=rng)
        check_ball_carving(carving, max_dead_fraction=RANDOMIZED_DEAD_SLACK)

    def test_clusters_are_nonadjacent(self, small_regular, rng):
        carving = linial_saks_carving(small_regular, 0.5, rng=rng)
        assert clusters_nonadjacent(carving.graph, carving.clusters)

    def test_steiner_trees_valid(self, small_torus, rng):
        carving = linial_saks_carving(small_torus, 0.5, rng=rng)
        check_steiner_trees(carving.graph, carving.clusters)

    def test_weak_diameter_bounded_by_radius_cap(self, small_torus, rng):
        eps = 0.5
        carving = linial_saks_carving(small_torus, eps, rng=rng)
        cap = _radius_cap(small_torus.number_of_nodes(), eps)
        for cluster in carving.clusters:
            assert weak_diameter(carving.graph, cluster.nodes) <= 2 * cap

    def test_expected_dead_fraction_over_repetitions(self, small_torus):
        # Average over several independent runs: close to eps/2 + truncation.
        runs = 12
        total = 0.0
        for seed in range(runs):
            carving = linial_saks_carving(small_torus, 0.5, rng=random.Random(seed))
            total += carving.dead_fraction
        assert total / runs <= 0.55

    def test_reproducible_with_same_seed(self, small_grid):
        first = linial_saks_carving(small_grid, 0.5, rng=random.Random(7))
        second = linial_saks_carving(small_grid, 0.5, rng=random.Random(7))
        assert first.cluster_of() == second.cluster_of()

    def test_subset_restriction(self, small_torus, rng):
        nodes = set(list(small_torus.nodes())[:30])
        carving = linial_saks_carving(small_torus, 0.5, nodes=nodes, rng=rng)
        assert carving.clustered_nodes | carving.dead == nodes

    def test_rejects_bad_eps(self, small_grid):
        with pytest.raises(ValueError):
            linial_saks_carving(small_grid, 0.0)

    def test_rounds_charged(self, small_grid, rng):
        carving = linial_saks_carving(small_grid, 0.5, rng=rng)
        assert carving.rounds > 0


class TestDecomposition:
    def test_covers_all_nodes_with_valid_colors(self, small_torus, rng):
        decomposition = linial_saks_decomposition(small_torus, rng=rng)
        check_network_decomposition(decomposition)

    def test_color_count_is_logarithmic(self, small_regular, rng):
        decomposition = linial_saks_decomposition(small_regular, rng=rng)
        import math

        n = small_regular.number_of_nodes()
        assert decomposition.num_colors <= 4 * math.ceil(math.log2(n)) + 8

    def test_kind_is_weak(self, small_grid, rng):
        decomposition = linial_saks_decomposition(small_grid, rng=rng)
        assert decomposition.kind == "weak"

    def test_handles_disconnected_graphs(self, disconnected_graph, rng):
        decomposition = linial_saks_decomposition(disconnected_graph, rng=rng)
        check_network_decomposition(decomposition)
