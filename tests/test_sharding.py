"""Tests for deterministic suite sharding (repro.pipeline.runner.shard_of /
shard_cells / parse_shard, shard provenance guards, and the builder-worker
column pipeline that executes sharded and unsharded pools alike)."""

import os

import pytest

import repro
from repro.pipeline import SuiteSpec, open_store, parse_shard, shard_cells, shard_of
from repro.pipeline.arena import shared_memory_available
from tests.conftest import strip_volatile

requires_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unusable"
)

_SPEC = {
    "name": "shard-test",
    "scenarios": ["torus", "grid", "regular"],
    "sizes": [36, 64],
    "methods": ["mpx", "sequential"],
    "seeds": [0, 1, 2],
    "tasks": ["decompose", "mis"],
}


def _cells():
    return SuiteSpec.from_dict(dict(_SPEC)).expand()


class TestParseShard:
    def test_accepts_string_and_tuple(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/8") == (3, 8)
        assert parse_shard((1, 4)) == (1, 4)
        assert parse_shard(None) is None

    def test_rejects_malformed(self):
        for bad in ("2/2", "-1/2", "0/0", "1", "a/b", "1/2/3", (2, 2), (0, 0)):
            with pytest.raises(ValueError):
                parse_shard(bad)


class TestPartition:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_shards_partition_the_grid(self, count):
        cells = _cells()
        shards = [shard_cells(cells, (i, count)) for i in range(count)]
        union = [cell.cell_id for shard in shards for cell in shard]
        assert sorted(union) == sorted(cell.cell_id for cell in cells)
        assert len(union) == len(set(union))

    def test_single_shard_is_identity(self):
        cells = _cells()
        assert shard_cells(cells, (0, 1)) == list(cells)
        assert shard_cells(cells, None) == list(cells)

    def test_columns_stay_intact(self):
        # Every cell of a topology column (and hence of a task group) lands
        # in the same shard: the hash covers only the column key.
        for count in (2, 3, 7):
            for cell in _cells():
                assert shard_of(cell.column_key, count) == shard_of(
                    cell.column_key, count
                )
            by_column = {}
            for cell in _cells():
                shard = shard_of(cell.column_key, count)
                by_column.setdefault(cell.column_key, set()).add(shard)
            assert all(len(shards) == 1 for shards in by_column.values())

    def test_assignment_stable_under_grid_reordering(self):
        reordered = dict(
            _SPEC,
            scenarios=list(reversed(_SPEC["scenarios"])),
            seeds=list(reversed(_SPEC["seeds"])),
            methods=list(reversed(_SPEC["methods"])),
        )
        original = {
            cell.cell_id: shard_of(cell.column_key, 4) for cell in _cells()
        }
        for cell in SuiteSpec.from_dict(reordered).expand():
            assert shard_of(cell.column_key, 4) == original[cell.cell_id]

    def test_grid_order_preserved_within_shard(self):
        cells = _cells()
        positions = {cell.cell_id: i for i, cell in enumerate(cells)}
        for shard in (shard_cells(cells, (i, 3)) for i in range(3)):
            indices = [positions[cell.cell_id] for cell in shard]
            assert indices == sorted(indices)


class TestShardedRuns:
    _SMALL = {
        "name": "shard-run",
        "scenarios": ["torus"],
        "sizes": [36],
        "methods": ["mpx", "sequential"],
        "seeds": [0, 1],
        "tasks": ["decompose", "mis"],
    }

    def test_shard_run_stamps_provenance_and_reports_stats(self, tmp_path):
        from repro.pipeline import shard_provenance

        path = os.path.join(tmp_path, "s0.jsonl")
        result = repro.run_suite(dict(self._SMALL), store=path, shard="0/2")
        assert result.arena["shard"]["count"] == 2
        assert result.arena["shard"]["cells"] == len(result.records)
        stamp = shard_provenance(open_store(path))
        assert stamp["shard"] == {"index": 0, "count": 2}

    def test_matching_shard_resumes_clean(self, tmp_path):
        path = os.path.join(tmp_path, "s0.jsonl")
        first = repro.run_suite(dict(self._SMALL), store=path, shard="0/2")
        again = repro.run_suite(dict(self._SMALL), store=path, shard=(0, 2))
        assert again.executed == 0
        assert again.skipped == len(first.records)

    def test_unsharded_resume_of_shard_store_refused(self, tmp_path):
        path = os.path.join(tmp_path, "s0.jsonl")
        repro.run_suite(dict(self._SMALL), store=path, shard="0/2")
        with pytest.raises(ValueError, match="shard provenance"):
            repro.run_suite(dict(self._SMALL), store=path)

    def test_mismatched_shard_refused(self, tmp_path):
        path = os.path.join(tmp_path, "s0.jsonl")
        repro.run_suite(dict(self._SMALL), store=path, shard="0/2")
        with pytest.raises(ValueError, match="shard provenance"):
            repro.run_suite(dict(self._SMALL), store=path, shard="1/2")

    def test_sharded_resume_of_merged_store_refused(self, tmp_path):
        from repro.pipeline import merge_stores

        paths = []
        for index in range(2):
            path = os.path.join(tmp_path, "s{}.jsonl".format(index))
            repro.run_suite(dict(self._SMALL), store=path, shard=(index, 2))
            paths.append(path)
        merged = os.path.join(tmp_path, "m.jsonl")
        merge_stores(paths, merged)
        with pytest.raises(ValueError, match="merged store"):
            repro.run_suite(dict(self._SMALL), store=merged, shard="0/2")

    def test_cli_shard_flag(self, tmp_path):
        import json as json_module

        from repro.cli import main

        spec_path = os.path.join(tmp_path, "spec.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json_module.dump(self._SMALL, handle)
        store_path = os.path.join(tmp_path, "s1.jsonl")
        assert (
            main(
                [
                    "--mode",
                    "suite",
                    "--spec",
                    spec_path,
                    "--store",
                    store_path,
                    "--shard",
                    "1/2",
                ]
            )
            == 0
        )
        store = open_store(store_path)
        expected = shard_cells(
            SuiteSpec.from_dict(dict(self._SMALL)).expand(), (1, 2)
        )
        assert {r["cell"] for r in store.results()} == {
            cell.cell_id for cell in expected
        }


@requires_shm
class TestBuilderPipeline:
    _SPEC = {
        "name": "builder-run",
        "scenarios": ["torus", "grid"],
        "sizes": [36],
        "methods": ["mpx"],
        "seeds": [0, 1],
        "tasks": ["decompose", "mis"],
    }

    def test_pool_records_match_serial_and_builder_reports(self, tmp_path):
        serial = repro.run_suite(dict(self._SPEC))
        pooled = repro.run_suite(dict(self._SPEC), workers=2)
        assert [strip_volatile(r) for r in serial.records] == [
            strip_volatile(r) for r in pooled.records
        ]
        builder = pooled.arena["builder"]
        assert builder["columns"] == pooled.arena["columns"]
        assert builder["build_s"] >= builder["overlap_s"] >= 0.0
        assert builder["blocked_s"] >= 0.0

    def test_backpressure_bounded_by_arena_budget(self, tmp_path):
        serial = repro.run_suite(dict(self._SPEC))
        # arena_mb=0 clamps the live window to one column at a time: the
        # builder must block on the budget instead of overrunning it.
        pooled = repro.run_suite(dict(self._SPEC), workers=2, arena_mb=0)
        assert [strip_volatile(r) for r in serial.records] == [
            strip_volatile(r) for r in pooled.records
        ]
        assert pooled.arena["builder"]["columns"] == pooled.arena["columns"]

    def test_sharded_pool_run(self, tmp_path):
        path = os.path.join(tmp_path, "s0.jsonl")
        result = repro.run_suite(
            dict(self._SPEC), store=path, workers=2, shard="0/2"
        )
        expected = shard_cells(
            SuiteSpec.from_dict(dict(self._SPEC)).expand(), (0, 2)
        )
        assert {r["cell"] for r in result.records} == {
            cell.cell_id for cell in expected
        }
