"""Unit tests for structural graph property helpers."""

import networkx as nx
import pytest

from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.properties import (
    approximate_diameter,
    bfs_layers_within,
    conductance_of_cut,
    connected_subgraphs,
    distances_from,
    exact_diameter,
    induced_components,
    is_partition,
    neighborhood_ball,
    radius_from,
    subgraph_diameter,
)
from tests.conftest import make_disconnected_graph


class TestComponents:
    def test_connected_graph_is_one_component(self):
        graph = cycle_graph(10)
        components = induced_components(graph, graph.nodes())
        assert len(components) == 1
        assert components[0] == set(graph.nodes())

    def test_restriction_splits_components(self):
        graph = path_graph(9)
        components = induced_components(graph, set(graph.nodes()) - {4})
        assert sorted(len(c) for c in components) == [4, 4]

    def test_disconnected_graph_components(self):
        graph = make_disconnected_graph()
        components = induced_components(graph, graph.nodes())
        assert sorted(len(c) for c in components) == [1, 4, 4]

    def test_connected_subgraphs_materialised(self):
        graph = make_disconnected_graph()
        subgraphs = connected_subgraphs(graph)
        assert sorted(g.number_of_nodes() for g in subgraphs) == [1, 4, 4]


class TestBfsLayers:
    def test_layers_of_path(self):
        graph = path_graph(6)
        layers = bfs_layers_within(graph, [0])
        assert [sorted(layer) for layer in layers] == [[0], [1], [2], [3], [4], [5]]

    def test_layers_respect_allowed_set(self):
        graph = path_graph(6)
        layers = bfs_layers_within(graph, [0], allowed={0, 1, 2})
        assert [sorted(layer) for layer in layers] == [[0], [1], [2]]

    def test_max_radius_truncates(self):
        graph = path_graph(10)
        layers = bfs_layers_within(graph, [0], max_radius=3)
        assert len(layers) == 4

    def test_multi_source_layers(self):
        graph = path_graph(7)
        layers = bfs_layers_within(graph, [0, 6])
        assert sorted(layers[0]) == [0, 6]
        assert sorted(layers[3]) == [3]

    def test_ball_matches_distances(self):
        graph = grid_graph(5, 5)
        distances = distances_from(graph, 0)
        for radius in range(0, 6):
            ball = neighborhood_ball(graph, [0], radius)
            expected = {node for node, dist in distances.items() if dist <= radius}
            assert ball == expected


class TestDistancesAndDiameter:
    def test_distances_from_source(self):
        graph = cycle_graph(8)
        distances = distances_from(graph, 0)
        assert distances[4] == 4
        assert max(distances.values()) == 4

    def test_distances_requires_allowed_source(self):
        graph = path_graph(4)
        with pytest.raises(ValueError):
            distances_from(graph, 0, allowed={1, 2})

    def test_radius_from(self):
        graph = star_graph(10)
        hub = max(graph.degree, key=lambda item: item[1])[0]
        assert radius_from(graph, hub) == 1

    def test_subgraph_diameter_of_path(self):
        graph = path_graph(9)
        assert subgraph_diameter(graph, graph.nodes()) == 8
        assert subgraph_diameter(graph, [3]) == 0
        assert subgraph_diameter(graph, []) == 0

    def test_subgraph_diameter_detects_disconnection(self):
        graph = path_graph(9)
        with pytest.raises(ValueError):
            subgraph_diameter(graph, {0, 1, 7, 8})

    def test_exact_diameter_matches_networkx(self):
        graph = torus_graph(4, 5)
        assert exact_diameter(graph) == nx.diameter(graph)

    def test_approximate_diameter_lower_bounds_exact(self):
        graph = grid_graph(6, 6)
        approx = approximate_diameter(graph)
        assert approx <= exact_diameter(graph)
        assert approx >= exact_diameter(graph) // 2


class TestConductanceAndPartition:
    def test_conductance_of_balanced_cycle_cut(self):
        graph = cycle_graph(20)
        side = set(range(10))
        conductance = conductance_of_cut(graph, side)
        assert conductance == pytest.approx(2 / 20)

    def test_conductance_of_degenerate_cut(self):
        graph = cycle_graph(10)
        assert conductance_of_cut(graph, set()) == float("inf")
        assert conductance_of_cut(graph, set(graph.nodes())) == float("inf")

    def test_is_partition_accepts_valid(self):
        assert is_partition({1, 2, 3, 4}, [{1, 2}, {3}, {4}])

    def test_is_partition_rejects_overlap(self):
        assert not is_partition({1, 2, 3}, [{1, 2}, {2, 3}])

    def test_is_partition_rejects_missing(self):
        assert not is_partition({1, 2, 3}, [{1, 2}])
