"""Tests for the shared-memory CSR arena and column-batched scheduling
(repro.pipeline.arena + the shared_graphs paths of repro.pipeline.runner)."""

import multiprocessing
import os

import networkx as nx
import pytest

import repro
from repro.graphs.csr import CSRGraph
from repro.pipeline import SuiteSpec, RunStore
from repro.pipeline.arena import (
    CSRArena,
    SegmentDescriptor,
    attach_column,
    detach_all,
    shared_memory_available,
)
from repro.pipeline.runner import run_suite
from repro.pipeline.scenarios import register_scenario
from tests.conftest import strip_volatile as _strip

requires_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unusable"
)
requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def _tuple_labelled(n, seed):
    """A graph the arena cannot serialise (tuple labels) — fallback probe."""
    graph = nx.Graph()
    for i in range(max(2, n) - 1):
        graph.add_edge((0, i), (0, i + 1))
    for i, node in enumerate(sorted(graph.nodes())):
        graph.nodes[node]["uid"] = i
    return graph


# Registered at import time so fork-started pool workers inherit it.
register_scenario(
    "tuple-labels-test", _tuple_labelled, "arena-unserialisable workload", overwrite=True
)


def _spec(**overrides):
    base = dict(
        name="arena-test",
        scenarios=("torus", "regular"),
        sizes=(36,),
        methods=("sequential", "mpx"),
        mode="carving",
        eps=(0.5,),
        seeds=(0,),
    )
    base.update(overrides)
    return SuiteSpec(**base)


def _sigterm_worker(descriptor_dict, marker_path, ready):
    """Child body for the SIGTERM-cleanup regression test (fork target)."""
    import signal
    import time

    from repro.pipeline import arena as arena_module
    from repro.pipeline.arena import install_worker_cleanup

    install_worker_cleanup()
    # Wrap the installed handler so the attach-cache size *after* its
    # detach_all is observable from the parent (multiprocessing children
    # exit through os._exit, so atexit hooks cannot carry the evidence out).
    installed = signal.getsignal(signal.SIGTERM)

    def observing_handler(signum, frame):
        try:
            installed(signum, frame)
        finally:
            with open(marker_path, "w", encoding="utf-8") as handle:
                handle.write(str(len(arena_module._ATTACHED)))

    signal.signal(signal.SIGTERM, observing_handler)
    attach_column(SegmentDescriptor.from_dict(descriptor_dict))
    ready.set()
    time.sleep(60)


@requires_shm
class TestArenaSegments:
    def _csr(self):
        from repro.graphs.generators import torus_graph

        return CSRGraph.from_networkx(torus_graph(6, 6, seed=2))

    def test_publish_attach_release_lifecycle(self):
        csr = self._csr()
        arena = CSRArena(max_bytes=1 << 20)
        descriptor = arena.publish("col", csr)
        assert len(arena) == 1 and arena.live_bytes == descriptor.total_len
        # Descriptors survive a pickle-shaped dict round trip (cell payloads).
        column, hit = attach_column(SegmentDescriptor.from_dict(descriptor.to_dict()))
        assert not hit
        assert list(column.csr.indices) == list(csr.indices)
        assert sorted(column.graph.nodes()) == sorted(csr.nodes)
        _, hit = attach_column(descriptor)
        assert hit  # worker-side cache
        detach_all()
        arena.release("col")
        assert len(arena) == 0 and arena.live_bytes == 0
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=descriptor.name)
        arena.release("col")  # idempotent
        arena.close()

    def test_budget_window(self):
        csr = self._csr()
        arena = CSRArena(max_bytes=1)
        try:
            # An empty arena always accepts one column, however large.
            assert arena.fits(10**9)
            descriptor = arena.publish("a", csr)
            assert not arena.fits(1)  # budget exhausted while "a" lives
            arena.release("a")
            assert arena.fits(10**9)
        finally:
            arena.close()
        with pytest.raises(FileNotFoundError):
            from multiprocessing import shared_memory

            shared_memory.SharedMemory(name=descriptor.name)

    def test_close_releases_everything(self):
        csr = self._csr()
        arena = CSRArena()
        names = [arena.publish(str(i), csr).name for i in range(3)]
        arena.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        arena.close()  # idempotent

    @requires_fork
    def test_sigterm_mid_attach_detaches_cleanly(self, tmp_path):
        """Regression: a worker SIGTERMed while holding attachments must run
        its cleanup hooks (detach, atexit) instead of dying handler-less —
        the pre-fix behaviour leaked the attached segment handles whenever
        the supervisor (or ``Executor.shutdown``) terminated a worker."""
        csr = self._csr()
        marker = os.path.join(tmp_path, "cache-size.txt")
        context = multiprocessing.get_context("fork")
        ready = context.Event()
        with CSRArena() as arena:
            descriptor = arena.publish("col", csr)
            child = context.Process(
                target=_sigterm_worker,
                args=(descriptor.to_dict(), marker, ready),
            )
            child.start()
            try:
                assert ready.wait(timeout=30), "child never attached"
                child.terminate()  # SIGTERM — the signal the supervisor sends
                child.join(timeout=30)
            finally:
                if child.is_alive():
                    child.kill()
                    child.join(timeout=30)
            # SystemExit(128+15) from the handler, not a raw signal death
            # (which would report exitcode -15 and skip every cleanup hook).
            assert child.exitcode == 143
            # The wrapped handler observed an empty attach cache: detach_all
            # ran before the process died.
            with open(marker, "r", encoding="utf-8") as handle:
                assert handle.read() == "0"
            # Detaching never unlinks: the parent's segment is still live.
            column, _ = attach_column(descriptor)
            assert column.csr.n == csr.n
            detach_all()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=descriptor.name)


class TestColumnBatchedSerial:
    def test_records_identical_to_per_cell_rebuild(self):
        spec = _spec()
        off = run_suite(spec, shared_graphs="off")
        on = run_suite(spec, shared_graphs="on")
        assert [_strip(r) for r in off.records] == [_strip(r) for r in on.records]
        assert on.arena["mode"] == "column"
        assert on.arena["graph_builds"] == on.arena["columns"] == 2

    def test_post_first_cells_pay_zero_build_time(self):
        result = run_suite(_spec(), shared_graphs="on")
        by_column = {}
        for record in result.records:
            by_column.setdefault(record["scenario"], []).append(record["timings"])
        for timings in by_column.values():
            assert timings[0]["source"] == "build"
            for later in timings[1:]:
                assert later["source"] == "column"
                assert later["graph_build_s"] == 0.0
                assert later["freeze_s"] == 0.0

    def test_resume_executes_nothing_on_warm_store(self, tmp_path):
        spec = _spec()
        path = os.path.join(tmp_path, "warm.jsonl")
        first = run_suite(spec, store=path, shared_graphs="on")
        assert first.executed == 4
        rerun = run_suite(spec, store=path, shared_graphs="on")
        assert rerun.executed == 0 and rerun.skipped == 4
        assert rerun.arena["graph_builds"] == 0

    def test_resume_after_partial_store_only_runs_missing_cells(self, tmp_path):
        spec = _spec()
        path = os.path.join(tmp_path, "partial.jsonl")
        run_suite(spec, store=path, shared_graphs="on")
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:2])  # header + first result
        resumed = run_suite(spec, store=path, shared_graphs="on")
        assert resumed.executed == 3 and resumed.skipped == 1
        assert [_strip(r) for r in resumed.records] == [
            _strip(r) for r in run_suite(spec, shared_graphs="off").records
        ]

    def test_invalid_shared_graphs_value_rejected(self):
        with pytest.raises(ValueError, match="shared_graphs"):
            run_suite(_spec(), shared_graphs="sometimes")


@requires_shm
class TestArenaPool:
    def test_pool_records_identical_and_one_build_per_column(self):
        spec = _spec()
        serial = run_suite(spec, shared_graphs="off")
        pooled = run_suite(spec, workers=2, shared_graphs="on")
        assert [_strip(r) for r in serial.records] == [_strip(r) for r in pooled.records]
        assert pooled.arena["mode"] == "arena"
        assert pooled.arena["graph_builds"] == pooled.arena["columns"]
        assert pooled.arena["fallback_cells"] == 0
        assert pooled.arena["published_segments"] == pooled.arena["columns"]
        sources = {r["timings"]["source"] for r in pooled.records}
        assert sources <= {"arena", "arena-cached"}

    def test_tiny_arena_budget_still_completes(self):
        spec = _spec()
        serial = run_suite(spec, shared_graphs="off")
        pooled = run_suite(spec, workers=2, shared_graphs="on", arena_mb=0)
        # arena_mb=0 clamps to a 1-byte window: columns are published one at
        # a time (the empty-arena exception), and the run still finishes
        # with identical records.
        assert [_strip(r) for r in serial.records] == [_strip(r) for r in pooled.records]

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_start_method(self):
        spec = _spec(scenarios=("torus",), methods=("sequential", "mpx"))
        serial = run_suite(spec, shared_graphs="off")
        spawned = run_suite(spec, workers=2, shared_graphs="on", start_method="spawn")
        assert [_strip(r) for r in serial.records] == [_strip(r) for r in spawned.records]
        assert spawned.arena["mode"] == "arena"

    @requires_fork
    def test_unserialisable_column_falls_back_to_rebuilds(self):
        spec = _spec(scenarios=("tuple-labels-test", "torus"))
        serial = run_suite(spec, shared_graphs="off")
        pooled = run_suite(spec, workers=2, shared_graphs="on", start_method="fork")
        assert [_strip(r) for r in serial.records] == [_strip(r) for r in pooled.records]
        assert pooled.arena["fallback_cells"] == 2  # the tuple-labelled column
        assert pooled.arena["published_segments"] == 1  # the torus column

    @staticmethod
    def _record_published_segments(monkeypatch):
        """Patch CSRArena so every published segment name is captured."""
        import repro.pipeline.arena as arena_module

        published = []
        real_arena = arena_module.CSRArena

        class RecordingArena(real_arena):
            def publish(self, column_key, source):
                descriptor = real_arena.publish(self, column_key, source)
                published.append(descriptor.name)
                return descriptor

        monkeypatch.setattr(arena_module, "CSRArena", RecordingArena)
        return published

    @staticmethod
    def _assert_all_unlinked(published):
        from multiprocessing import shared_memory

        assert published  # the arena path actually ran
        for name in published:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    @requires_fork
    def test_segments_cleaned_up_after_worker_crash(self, monkeypatch):
        """A cell failing inside a worker must not leak any segment."""
        published = self._record_published_segments(monkeypatch)

        def boom(*args, **kwargs):
            raise RuntimeError("injected cell failure")

        monkeypatch.setattr(repro, "carve", boom)  # fork workers inherit this

        with pytest.raises(RuntimeError, match="injected cell failure"):
            run_suite(_spec(), workers=2, shared_graphs="on", start_method="fork")
        self._assert_all_unlinked(published)

    @requires_fork
    def test_worker_death_raises_instead_of_hanging(self, monkeypatch):
        """A worker dying abruptly (OOM kill, segfault) must surface as
        BrokenProcessPool — not leave run_suite blocked forever with its
        segments mapped (the multiprocessing.Pool.apply_async failure mode
        this scheduler deliberately avoids)."""
        from concurrent.futures.process import BrokenProcessPool

        published = self._record_published_segments(monkeypatch)

        def die(*args, **kwargs):
            os._exit(13)  # simulate an abrupt worker death, no cleanup

        monkeypatch.setattr(repro, "carve", die)  # fork workers inherit this

        with pytest.raises(BrokenProcessPool):
            run_suite(_spec(), workers=2, shared_graphs="on", start_method="fork")
        self._assert_all_unlinked(published)

    def test_segments_cleaned_up_when_store_append_fails(self, monkeypatch):
        published = self._record_published_segments(monkeypatch)

        class ExplodingStore(RunStore):
            def add(self, record):
                raise OSError("disk full (injected)")

        with pytest.raises(OSError, match="disk full"):
            run_suite(_spec(), store=ExplodingStore(None), workers=2, shared_graphs="on")
        self._assert_all_unlinked(published)


class TestApiSurface:
    def test_exports_reachable_from_pipeline_package(self):
        from repro.pipeline import CSRArena as exported_arena
        from repro.pipeline import shared_memory_available as exported_probe

        assert exported_arena is CSRArena
        assert exported_probe is shared_memory_available

    def test_run_suite_wrapper_passes_arena_knobs(self):
        result = repro.run_suite(
            _spec(scenarios=("torus",), methods=("sequential",)),
            shared_graphs="on",
            arena_mb=8,
        )
        assert result.arena["graph_builds"] == result.arena["columns"] == 1
