"""Unit tests for the deterministic weak-diameter ball carving (RG20-style)."""

import math

import networkx as nx
import pytest

from repro.clustering.validation import (
    ValidationError,
    check_ball_carving,
    check_steiner_trees,
    clusters_nonadjacent,
    weak_diameter,
)
from repro.congest.rounds import RoundLedger
from repro.weak.carving import WeakCarvingParameters, weak_diameter_carving
from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)


class TestWeakCarvingBasics:
    @pytest.mark.parametrize("eps", [0.5, 0.25, 0.1])
    def test_structural_invariants(self, small_torus, eps):
        carving = weak_diameter_carving(small_torus, eps)
        check_ball_carving(carving)

    def test_dead_fraction_within_eps(self, graph_zoo):
        for name, graph in graph_zoo.items():
            carving = weak_diameter_carving(graph, 0.5)
            assert carving.dead_fraction <= 0.5 + 1.0 / graph.number_of_nodes(), name

    def test_deterministic(self, small_regular):
        first = weak_diameter_carving(small_regular, 0.3)
        second = weak_diameter_carving(small_regular, 0.3)
        assert first.cluster_of() == second.cluster_of()
        assert first.dead == second.dead

    def test_clusters_nonadjacent(self, small_grid):
        carving = weak_diameter_carving(small_grid, 0.4)
        assert clusters_nonadjacent(carving.graph, carving.clusters)

    def test_rejects_bad_eps(self, small_grid):
        with pytest.raises(ValueError):
            weak_diameter_carving(small_grid, 0.0)
        with pytest.raises(ValueError):
            weak_diameter_carving(small_grid, 1.0)

    def test_empty_node_set(self, small_grid):
        carving = weak_diameter_carving(small_grid, 0.5, nodes=[])
        assert carving.clusters == []
        assert carving.dead == set()

    def test_singleton_graph(self):
        graph = nx.Graph()
        graph.add_node(0, uid=0)
        carving = weak_diameter_carving(graph, 0.5)
        assert len(carving.clusters) == 1
        assert carving.dead == set()


class TestWeakCarvingSteinerTrees:
    def test_trees_are_valid_and_cover_terminals(self, small_torus):
        carving = weak_diameter_carving(small_torus, 0.5)
        check_steiner_trees(carving.graph, carving.clusters)

    def test_tree_depth_upper_bounds_weak_radius(self, small_regular):
        carving = weak_diameter_carving(small_regular, 0.5)
        for cluster in carving.clusters:
            depth = cluster.tree.depth()
            assert weak_diameter(carving.graph, cluster.nodes) <= 2 * depth or depth == 0

    def test_congestion_bounded_by_identifier_bits(self, graph_zoo):
        for name, graph in graph_zoo.items():
            carving = weak_diameter_carving(graph, 0.5)
            bits = max(1, (graph.number_of_nodes() - 1).bit_length())
            assert carving.congestion() <= bits + 1, name

    def test_theoretical_depth_bound(self, small_torus):
        eps = 0.5
        carving = weak_diameter_carving(small_torus, eps)
        n = small_torus.number_of_nodes()
        bits = max(1, (n - 1).bit_length())
        # Worst-case depth bound of the rg20 mode: O(b^2 log n / eps); use a
        # generous constant because the bound is asymptotic.
        bound = 8 * bits * bits * math.log2(n) / eps + 8
        for cluster in carving.clusters:
            assert cluster.tree.depth() <= bound


class TestWeakCarvingOnSubsets:
    def test_subset_restriction(self, small_torus):
        nodes = set(list(small_torus.nodes())[:30])
        carving = weak_diameter_carving(small_torus, 0.5, nodes=nodes)
        assert carving.clustered_nodes | carving.dead == nodes
        assert set(carving.graph.nodes()) == nodes

    def test_trees_stay_inside_subset(self, small_torus):
        nodes = set(list(small_torus.nodes())[:40])
        carving = weak_diameter_carving(small_torus, 0.5, nodes=nodes)
        for cluster in carving.clusters:
            assert cluster.tree.nodes <= nodes

    def test_disconnected_input(self, disconnected_graph):
        carving = weak_diameter_carving(disconnected_graph, 0.5)
        check_ball_carving(carving)


class TestWeakCarvingParameters:
    def test_rg20_threshold(self):
        params = WeakCarvingParameters(mode="rg20")
        assert params.threshold(0.5, 10) == pytest.approx(0.5 / 20)

    def test_ggr21_threshold(self):
        params = WeakCarvingParameters(mode="ggr21")
        assert params.threshold(0.5, 10) == pytest.approx(0.25)

    def test_unknown_mode_rejected(self):
        params = WeakCarvingParameters(mode="bogus")
        with pytest.raises(ValueError):
            params.threshold(0.5, 4)

    def test_step_bound_is_finite_and_positive(self):
        params = WeakCarvingParameters()
        assert params.step_bound(0.5, 8, 256) > 0

    def test_ggr21_mode_produces_valid_carving(self, small_torus):
        carving = weak_diameter_carving(
            small_torus, 0.5, parameters=WeakCarvingParameters(mode="ggr21")
        )
        # Structural invariants hold; the dead fraction is measured (the
        # ggr21 preset trades the proved deletion bound for smaller radii).
        assert clusters_nonadjacent(carving.graph, carving.clusters)
        check_steiner_trees(carving.graph, carving.clusters)

    def test_ggr21_trees_not_deeper_than_rg20(self, small_regular):
        rg20 = weak_diameter_carving(small_regular, 0.5)
        ggr = weak_diameter_carving(
            small_regular, 0.5, parameters=WeakCarvingParameters(mode="ggr21")
        )
        depth = lambda carving: max((c.tree.depth() for c in carving.clusters), default=0)
        assert depth(ggr) <= depth(rg20) + 2


class TestWeakCarvingRounds:
    def test_ledger_is_populated(self, small_grid):
        ledger = RoundLedger()
        weak_diameter_carving(small_grid, 0.5, ledger=ledger)
        assert ledger.total_rounds > 0
        assert "local_step" in ledger.breakdown()

    def test_external_ledger_accumulates(self, small_grid):
        ledger = RoundLedger()
        ledger.charge("pre-existing", 100)
        carving = weak_diameter_carving(small_grid, 0.5, ledger=ledger)
        assert carving.rounds >= 100

    def test_smaller_eps_costs_at_least_as_many_rounds(self, small_torus):
        loose = weak_diameter_carving(small_torus, 0.5)
        tight = weak_diameter_carving(small_torus, 0.05)
        assert tight.rounds >= loose.rounds * 0.5
