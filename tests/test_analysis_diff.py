"""Tests for the cross-store regression diff (repro.analysis.diff)."""

import json
import os

import pytest

import repro
from repro.analysis.diff import (
    DEFAULT_TOLERANCES,
    diff_stores,
    parse_tolerance_overrides,
)
from repro.cli import main
from repro.pipeline import SuiteSpec, open_store

_SPEC = dict(
    name="diff-suite",
    scenarios=("torus",),
    sizes=(36,),
    methods=("sequential", "mpx"),
    mode="carving",
    eps=(0.5,),
    seeds=(0,),
)


def _run_store(tmp_path, filename, **overrides):
    path = os.path.join(tmp_path, filename)
    repro.run_suite(SuiteSpec(**dict(_SPEC, **overrides)), store=path)
    return path


def _perturb_jsonl(path, cell, mutate):
    """Rewrite one record of a JSONL store in place (regression injection)."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    for record in lines:
        if record.get("cell") == cell:
            mutate(record)
    with open(path, "w", encoding="utf-8") as handle:
        for record in lines:
            handle.write(json.dumps(record) + "\n")


class TestDiffStores:
    def test_twin_runs_diff_clean_across_backends(self, tmp_path):
        """Two independent runs of one suite — one per backend — match."""
        jsonl_path = _run_store(tmp_path, "a.jsonl")
        sqlite_path = _run_store(tmp_path, "a.sqlite")
        diff = diff_stores(sqlite_path, jsonl_path)
        assert diff.clean
        assert diff.matched == 2
        assert diff.deltas == [] and diff.only_baseline == []
        assert "**PASS** — 0 regressions" in diff.to_markdown()

    def test_perturbed_record_flags_exactly_that_cell(self, tmp_path):
        current = _run_store(tmp_path, "current.jsonl")
        baseline = _run_store(tmp_path, "baseline.jsonl")
        target = "torus/n36/mpx/eps0.5/s0"

        def mutate(record):
            record["metrics"]["clusters"] += 3

        _perturb_jsonl(current, target, mutate)
        diff = diff_stores(current, baseline)
        assert not diff.clean
        assert [delta.cell for delta in diff.regressions] == [target]
        fields = {field.field for field in diff.regressions[0].regressions}
        assert fields == {"clusters"}
        markdown = diff.to_markdown()
        assert "**FAIL**" in markdown and target in markdown

    def test_ledger_rounds_regression_is_flagged(self, tmp_path):
        current = _run_store(tmp_path, "current.jsonl")
        baseline = _run_store(tmp_path, "baseline.jsonl")
        target = "torus/n36/sequential/eps0.5/s0"
        _perturb_jsonl(
            current, target, lambda record: record["rounds"].update(total=10**6)
        )
        diff = diff_stores(current, baseline)
        assert [delta.cell for delta in diff.regressions] == [target]
        assert diff.regressions[0].regressions[0].field == "ledger_rounds"

    def test_tolerances_absorb_small_deltas(self, tmp_path):
        current = _run_store(tmp_path, "current.jsonl")
        baseline = _run_store(tmp_path, "baseline.jsonl")
        target = "torus/n36/mpx/eps0.5/s0"
        _perturb_jsonl(
            current,
            target,
            lambda record: record["metrics"].update(
                clusters=record["metrics"]["clusters"] + 1
            ),
        )
        strict = diff_stores(current, baseline)
        lenient = diff_stores(current, baseline, tolerances={"clusters": 1})
        assert not strict.clean
        assert lenient.clean
        # The delta is still *reported* under the lenient tolerance.
        assert [delta.cell for delta in lenient.deltas] == [target]

    def test_timing_noise_never_flags_but_big_slowdown_does(self, tmp_path):
        current = _run_store(tmp_path, "current.jsonl")
        baseline = _run_store(tmp_path, "baseline.jsonl")
        target = "torus/n36/mpx/eps0.5/s0"
        _perturb_jsonl(
            current, target, lambda record: record["timings"].update(algo_s=900.0)
        )
        diff = diff_stores(current, baseline)
        assert [delta.cell for delta in diff.regressions] == [target]
        assert diff.regressions[0].regressions[0].field == "algo_s"
        # ...and disabling the field drops the finding.
        assert diff_stores(current, baseline, tolerances={"algo_s": None}).clean

    def test_missing_baseline_cells_fail_the_gate(self, tmp_path):
        current = _run_store(tmp_path, "small.jsonl", methods=("sequential",))
        baseline = _run_store(tmp_path, "full.jsonl")
        diff = diff_stores(current, baseline)
        assert not diff.clean
        assert diff.only_baseline == ["torus/n36/mpx/eps0.5/s0"]
        assert "only in the baseline store" in diff.to_markdown()

    def test_extra_current_cells_do_not_fail_the_gate(self, tmp_path):
        current = _run_store(tmp_path, "full.jsonl")
        baseline = _run_store(tmp_path, "small.jsonl", methods=("sequential",))
        diff = diff_stores(current, baseline)
        assert diff.clean
        assert diff.only_current == ["torus/n36/mpx/eps0.5/s0"]

    def test_unknown_tolerance_field_rejected(self, tmp_path):
        path = _run_store(tmp_path, "a.jsonl")
        with pytest.raises(ValueError, match="unknown diff field"):
            diff_stores(path, path, tolerances={"vibes": 3})

    def test_store_objects_accepted_directly(self, tmp_path):
        path = _run_store(tmp_path, "a.jsonl")
        diff = diff_stores(open_store(path), open_store(path))
        assert diff.clean and diff.matched == 2

    def test_missing_store_path_fails_instead_of_diffing_clean(self, tmp_path):
        """A mistyped path must not open as an empty store and PASS vacuously."""
        path = _run_store(tmp_path, "a.jsonl")
        missing = os.path.join(tmp_path, "typo.jsonl")
        with pytest.raises(FileNotFoundError, match="no such run store"):
            diff_stores(path, missing)
        with pytest.raises(FileNotFoundError, match="no such run store"):
            diff_stores(missing, path)
        assert not os.path.exists(missing)  # and no stray file was created


class TestToleranceParsing:
    def test_forms(self):
        overrides = parse_tolerance_overrides(
            ["clusters=1", "algo_s=0.5,2.0", "rounds=none"]
        )
        assert overrides == {"clusters": 1.0, "algo_s": (0.5, 2.0), "rounds": None}

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="field=value"):
            parse_tolerance_overrides(["clusters"])

    def test_defaults_cover_all_compared_fields(self):
        assert set(DEFAULT_TOLERANCES) == {
            "clusters",
            "diameter",
            "rounds",
            "ledger_rounds",
            "task_rounds",
            "mis_size",
            "colors_used",
            "task_verified",
            "algo_s",
        }


class TestDiffCli:
    def test_diff_mode_clean_exit_zero(self, tmp_path, capsys):
        current = _run_store(tmp_path, "a.sqlite")
        baseline = _run_store(tmp_path, "b.jsonl")
        exit_code = main(["--mode", "diff", "--store", current, "--baseline", baseline])
        assert exit_code == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_diff_mode_regression_exit_one_and_report_file(self, tmp_path, capsys):
        current = _run_store(tmp_path, "a.jsonl")
        baseline = _run_store(tmp_path, "b.jsonl")
        _perturb_jsonl(
            current,
            "torus/n36/mpx/eps0.5/s0",
            lambda record: record["metrics"].update(diameter=999),
        )
        report_path = os.path.join(tmp_path, "diff.md")
        exit_code = main(
            [
                "--mode", "diff", "--store", current,
                "--baseline", baseline, "--report", report_path,
            ]
        )
        assert exit_code == 1
        with open(report_path, "r", encoding="utf-8") as handle:
            assert "**FAIL**" in handle.read()

    def test_diff_mode_tolerance_flag(self, tmp_path, capsys):
        current = _run_store(tmp_path, "a.jsonl")
        baseline = _run_store(tmp_path, "b.jsonl")
        _perturb_jsonl(
            current,
            "torus/n36/mpx/eps0.5/s0",
            lambda record: record["metrics"].update(
                clusters=record["metrics"]["clusters"] + 1
            ),
        )
        argv = ["--mode", "diff", "--store", current, "--baseline", baseline]
        assert main(argv) == 1
        capsys.readouterr()
        assert main(argv + ["--diff-tolerance", "clusters=1"]) == 0

    def test_diff_mode_requires_both_stores(self, tmp_path, capsys):
        assert main(["--mode", "diff"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_diff_mode_missing_baseline_is_a_usage_error_not_a_pass(
        self, tmp_path, capsys
    ):
        current = _run_store(tmp_path, "a.jsonl")
        missing = os.path.join(tmp_path, "nope.sqlite")
        exit_code = main(
            ["--mode", "diff", "--store", current, "--baseline", missing]
        )
        assert exit_code == 2
        assert "no such run store" in capsys.readouterr().err
        assert not os.path.exists(missing)

    def test_diff_mode_bad_tolerance_is_a_usage_error(self, tmp_path, capsys):
        current = _run_store(tmp_path, "a.jsonl")
        baseline = _run_store(tmp_path, "b.jsonl")
        argv = ["--mode", "diff", "--store", current, "--baseline", baseline]
        assert main(argv + ["--diff-tolerance", "clusters=abc"]) == 2
        assert main(argv + ["--diff-tolerance", "vibes=1"]) == 2

    def test_report_embeds_diff_section(self, tmp_path):
        from repro.analysis.report import generate_report

        current = _run_store(tmp_path, "a.jsonl")
        baseline = _run_store(tmp_path, "b.jsonl")
        report = generate_report(
            results_dir=str(tmp_path),
            include_live_summary=False,
            diffs=[(current, baseline)],
        )
        assert "Regression diff" in report
        assert "0 regressions" in report


class TestTaskRegressionDiff:
    """Schema-4 task fields are regression-diffed like every measurement."""

    _TASK_SPEC = dict(
        name="task-diff",
        scenarios=("torus",),
        sizes=(36,),
        methods=("sequential",),
        mode="decomposition",
        tasks=("decompose", "mis", "coloring"),
        seeds=(0,),
    )

    def _task_store(self, tmp_path, filename):
        path = os.path.join(tmp_path, filename)
        repro.run_suite(SuiteSpec(**self._TASK_SPEC), store=path)
        return path

    def test_twin_task_runs_diff_clean(self, tmp_path):
        current = self._task_store(tmp_path, "a.jsonl")
        baseline = self._task_store(tmp_path, "b.jsonl")
        assert diff_stores(current, baseline).clean

    def test_coloring_needing_more_colors_is_flagged(self, tmp_path):
        current = self._task_store(tmp_path, "current.jsonl")
        baseline = self._task_store(tmp_path, "baseline.jsonl")
        target = "torus/n36/sequential/coloring/s0"

        def bump_colors(record):
            record["task_metrics"]["colors_used"] += 3

        _perturb_jsonl(current, target, bump_colors)
        diff = diff_stores(current, baseline)
        assert not diff.clean
        assert [delta.cell for delta in diff.regressions] == [target]
        fields = {field.field for delta in diff.regressions for field in delta.fields}
        assert fields == {"colors_used"}
        assert "colors_used" in diff.to_markdown()

    def test_unverified_mis_is_flagged(self, tmp_path):
        current = self._task_store(tmp_path, "current.jsonl")
        baseline = self._task_store(tmp_path, "baseline.jsonl")
        target = "torus/n36/sequential/mis/s0"

        def unverify(record):
            record["task_metrics"]["verified"] = False

        _perturb_jsonl(current, target, unverify)
        diff = diff_stores(current, baseline)
        assert not diff.clean
        fields = {field.field for delta in diff.regressions for field in delta.fields}
        assert fields == {"task_verified"}

    def test_task_rounds_regression_is_flagged_and_tunable(self, tmp_path):
        current = self._task_store(tmp_path, "current.jsonl")
        baseline = self._task_store(tmp_path, "baseline.jsonl")
        target = "torus/n36/sequential/mis/s0"

        def slower(record):
            record["task_rounds"] += 5

        _perturb_jsonl(current, target, slower)
        assert not diff_stores(current, baseline).clean
        # A tolerance override (or disabling the field) un-flags it.
        assert diff_stores(
            current, baseline, tolerances={"task_rounds": 5}
        ).clean
        assert diff_stores(
            current, baseline, tolerances={"task_rounds": None}
        ).clean

    def test_schema_3_baseline_diffs_clean_against_schema_4(self, tmp_path):
        """A pre-task baseline must not flag (or even report) the new keys."""
        current = self._task_store(tmp_path, "current.jsonl")
        baseline = self._task_store(tmp_path, "baseline.jsonl")

        def strip_task_keys(record):
            for key in ("task", "task_rounds", "task_metrics"):
                record.pop(key, None)

        with open(baseline, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        for record in lines:
            if record.get("kind") == "header":
                record["schema"] = 3
            else:
                strip_task_keys(record)
        with open(baseline, "w", encoding="utf-8") as handle:
            for record in lines:
                handle.write(json.dumps(record) + "\n")
        diff = diff_stores(current, baseline)
        assert diff.clean
