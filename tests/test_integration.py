"""Integration tests: whole pipelines across modules.

These tests exercise the realistic end-to-end flows a user of the library
runs: build a workload graph, compute a decomposition with the paper's
algorithm, validate every paper-stated invariant, and use the decomposition
for a downstream task — including on the adversarial Section-3 barrier graph
and on the CONGEST simulator for the message-level primitives.
"""

import math

import pytest

import repro
from repro.analysis.metrics import evaluate_carving, evaluate_decomposition
from repro.applications.coloring import delta_plus_one_coloring, verify_coloring
from repro.applications.mis import maximal_independent_set, verify_mis
from repro.baselines.abcp import abcp_strong_carving
from repro.clustering.validation import (
    check_ball_carving,
    check_network_decomposition,
    strong_diameter,
)
from repro.congest.messages import default_bandwidth
from repro.congest.rounds import RoundLedger
from repro.core.strong_carving import TransformationTrace, strong_carving_from_weak
from repro.graphs.expanders import barrier_graph
from repro.graphs.generators import torus_graph, workload_suite


class TestEndToEndDeterministicPipeline:
    def test_full_pipeline_on_workload_suite(self):
        for family in workload_suite():
            graph = family.build(80)
            decomposition = repro.decompose(graph, method="strong-log3")
            check_network_decomposition(decomposition)
            metrics = evaluate_decomposition(decomposition, family.name)
            n = graph.number_of_nodes()
            assert metrics.colors <= 2 * math.ceil(math.log2(n)) + 2
            assert metrics.max_diameter <= 8 * (math.log2(n) ** 3) / 0.5 + 8

    def test_decomposition_drives_mis_and_coloring(self, small_torus):
        decomposition = repro.decompose(small_torus, method="strong-log3")
        mis = maximal_independent_set(decomposition)
        assert verify_mis(small_torus, mis)
        coloring = delta_plus_one_coloring(decomposition)
        assert verify_coloring(small_torus, coloring)

    def test_cd_product_bounds_template_rounds(self, small_torus):
        decomposition = repro.decompose(small_torus, method="strong-log3")
        ledger = RoundLedger()
        maximal_independent_set(decomposition, ledger=ledger)
        worst_diameter = max(
            strong_diameter(decomposition.graph, cluster.nodes)
            for cluster in decomposition.clusters
        )
        assert ledger.total_rounds <= decomposition.num_colors * (2 * worst_diameter + 2)


class TestTransformationAgainstPaperBound:
    def test_theorem21_bound_certificate(self):
        graph = torus_graph(10, 10, seed=3)
        eps = 0.5
        trace = TransformationTrace()
        carving = strong_carving_from_weak(graph, eps, trace=trace)
        check_ball_carving(carving)
        n = graph.number_of_nodes()
        # The certified bound: 2 R + O(log n / eps) with the *measured* R.
        bound = 2 * max(trace.max_weak_tree_depth, trace.max_ball_radius) + 4 * math.log2(n) / eps + 4
        for cluster in carving.clusters:
            assert strong_diameter(carving.graph, cluster.nodes) <= bound

    def test_strong_carving_beats_weak_on_connectivity(self, small_torus):
        weak = repro.carve(small_torus, 0.5, method="weak-rg20")
        strong = repro.carve(small_torus, 0.5, method="strong-log3")
        # Weak clusters may induce disconnected subgraphs; strong clusters
        # never do (this is the whole point of the transformation).
        for cluster in strong.clusters:
            strong_diameter(strong.graph, cluster.nodes)


class TestBarrierGraphPipeline:
    def test_deterministic_decomposition_on_barrier_graph(self):
        graph, meta = barrier_graph(300, 0.5, seed=4)
        decomposition = repro.decompose(graph, method="strong-log3")
        check_network_decomposition(decomposition)
        n = graph.number_of_nodes()
        assert decomposition.num_colors <= 2 * math.ceil(math.log2(n)) + 2


class TestMessageSizeComparison:
    def test_abcp_needs_large_messages_small_message_transformation_does_not(self):
        graph = torus_graph(6, 6, seed=1)
        _, abcp_report = abcp_strong_carving(graph)
        bandwidth = default_bandwidth(graph.number_of_nodes())
        # ABCP96's gathering step exceeds the CONGEST bandwidth ...
        assert abcp_report.max_message_bits > bandwidth
        # ... while the Theorem 2.1 pipeline only uses primitives that the
        # message-level simulator certifies as small-message (see
        # tests/test_congest_primitives.py); here we check the end result is
        # still a valid strong-diameter carving.
        carving = repro.carve(graph, 0.5, method="strong-log3")
        check_ball_carving(carving)


class TestCrossAlgorithmComparison:
    def test_all_methods_agree_on_coverage(self, small_torus):
        for method in repro.DECOMPOSITION_METHODS:
            decomposition = repro.decompose(small_torus, method=method, seed=5)
            assert decomposition.covered_nodes() == set(small_torus.nodes())

    def test_deterministic_methods_cost_more_rounds_than_randomized(self, small_torus):
        deterministic = repro.decompose(small_torus, method="strong-log3")
        randomized = repro.decompose(small_torus, method="mpx", seed=1)
        # The qualitative Table 1 shape: determinism costs more rounds.
        assert deterministic.rounds > randomized.rounds

    def test_improved_variant_has_no_worse_diameter_bound_certificate(self, small_torus):
        log3 = repro.decompose(small_torus, method="strong-log3")
        log2 = repro.decompose(small_torus, method="strong-log2")
        n = small_torus.number_of_nodes()
        bound_log2 = 16 * (math.log2(n) ** 2) / 0.5 + 8
        for cluster in log2.clusters:
            assert strong_diameter(log2.graph, cluster.nodes) <= bound_log2
        check_network_decomposition(log3)
        check_network_decomposition(log2)
