"""Docs ↔ code consistency checks.

The README and the docs/ tree document the public surface (method strings,
CLI flags, file layout).  These tests pin the documentation to the code so
the two cannot drift apart:

* the README "Methods" table must list exactly ``CARVING_METHODS``;
* every ``--flag`` mentioned in README.md / docs/*.md must exist on the CLI
  parser built by ``build_parser()``;
* every relative Markdown link in README.md / docs/*.md must resolve to a
  file in the repository (this doubles as the CI docs link check).
"""

import os
import re

import pytest

from repro.cli import build_parser
from repro.congest.faults import FAULT_KIND_NAMES
from repro.core.api import CARVING_METHODS
from repro.kernels import KERNELS
from repro.registry import TASKS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _doc_paths():
    paths = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            paths.append(os.path.join(docs_dir, name))
    return paths


def _read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


class TestMethodTable:
    def test_readme_method_table_matches_carving_methods(self):
        readme = _read(os.path.join(REPO_ROOT, "README.md"))
        # Rows of the "## Methods" table: "| `method` | description |".
        # Method strings start alphanumeric — rows quoting CLI flags
        # (| `--shared-graphs` | ...) are a different table.
        documented = re.findall(
            r"^\|\s*`([a-z0-9][a-z0-9-]*)`\s*\|", readme, flags=re.MULTILINE
        )
        assert documented, "README has no method table rows"
        assert sorted(documented) == sorted(set(documented)), "duplicate method rows"
        assert set(documented) == set(CARVING_METHODS), (
            "README method table ({}) out of sync with CARVING_METHODS ({})".format(
                sorted(documented), sorted(CARVING_METHODS)
            )
        )


class TestTaskTable:
    def test_applications_doc_task_table_matches_registry(self):
        applications = _read(os.path.join(REPO_ROOT, "docs", "applications.md"))
        documented = re.findall(
            r"^\|\s*`([a-z][a-z0-9-]*)`\s*\|", applications, flags=re.MULTILINE
        )
        assert documented, "docs/applications.md has no task table rows"
        assert set(documented) == set(TASKS.names()), (
            "docs/applications.md task table ({}) out of sync with the task "
            "registry ({})".format(sorted(documented), sorted(TASKS.names()))
        )


class TestKernelTable:
    def test_kernels_doc_tier_table_matches_registry(self):
        kernels = _read(os.path.join(REPO_ROOT, "docs", "kernels.md"))
        documented = re.findall(
            r"^\|\s*`([a-z][a-z0-9-]*)`\s*\|", kernels, flags=re.MULTILINE
        )
        assert documented, "docs/kernels.md has no tier table rows"
        assert set(documented) == set(KERNELS.names()), (
            "docs/kernels.md tier table ({}) out of sync with the kernel "
            "registry ({})".format(sorted(documented), sorted(KERNELS.names()))
        )


class TestFaultKindTable:
    def test_robustness_doc_fault_table_matches_registry(self):
        robustness = _read(os.path.join(REPO_ROOT, "docs", "robustness.md"))
        documented = re.findall(
            r"^\|\s*`([a-z][a-z0-9-]*)`\s*\|", robustness, flags=re.MULTILINE
        )
        assert documented, "docs/robustness.md has no fault-kind table rows"
        assert set(documented) == set(FAULT_KIND_NAMES), (
            "docs/robustness.md fault-kind table ({}) out of sync with the "
            "fault registry ({})".format(sorted(documented), sorted(FAULT_KIND_NAMES))
        )


def _section(text, header):
    """The body of one ``## header`` section (up to the next ``## ``)."""
    marker = "## " + header
    start = text.index(marker) + len(marker)
    end = text.find("\n## ", start)
    return text[start:] if end == -1 else text[start:end]


class TestTelemetryTables:
    def test_span_table_matches_registry(self):
        from repro.telemetry import SPAN_NAMES

        doc = _read(os.path.join(REPO_ROOT, "docs", "telemetry.md"))
        documented = re.findall(
            r"^\|\s*`([a-z][a-z._]*)`\s*\|",
            _section(doc, "Span taxonomy"),
            flags=re.MULTILINE,
        )
        assert documented, "docs/telemetry.md has no span table rows"
        assert sorted(documented) == sorted(set(documented)), "duplicate span rows"
        assert set(documented) == set(SPAN_NAMES), (
            "docs/telemetry.md span table ({}) out of sync with SPAN_NAMES "
            "({})".format(sorted(documented), sorted(SPAN_NAMES))
        )

    def test_metric_table_matches_registry(self):
        from repro.telemetry import METRIC_NAMES

        doc = _read(os.path.join(REPO_ROOT, "docs", "telemetry.md"))
        documented = re.findall(
            r"^\|\s*`([a-z][a-z_]*(?:\[[a-z]+\])?)`\s*\|",
            _section(doc, "Metric registry"),
            flags=re.MULTILINE,
        )
        assert documented, "docs/telemetry.md has no metric table rows"
        assert sorted(documented) == sorted(set(documented)), "duplicate metric rows"
        assert set(documented) == set(METRIC_NAMES), (
            "docs/telemetry.md metric table ({}) out of sync with "
            "METRIC_NAMES ({})".format(sorted(documented), sorted(METRIC_NAMES))
        )

    def test_telemetry_cli_flags_exist(self):
        parser_flags = set()
        for action in build_parser()._actions:
            parser_flags.update(action.option_strings)
        for flag in ("--trace", "--metrics", "--progress"):
            assert flag in parser_flags


class TestCliFlags:
    def test_every_documented_flag_exists_on_the_parser(self):
        # Docs reference the whole CLI surface: the suite parser plus the
        # store / trace / telemetry verb parsers.
        from repro.cli import (
            build_store_parser,
            build_telemetry_parser,
            build_trace_parser,
        )

        parser_flags = set()
        # Walk verb subparsers too (trace slowest --top, store export ...).
        for builder in (
            build_parser,
            build_store_parser,
            build_trace_parser,
            build_telemetry_parser,
        ):
            stack = [builder()]
            while stack:
                parser = stack.pop()
                for action in parser._actions:
                    parser_flags.update(action.option_strings)
                    choices = getattr(action, "choices", None)
                    if isinstance(choices, dict):
                        stack.extend(
                            sub
                            for sub in choices.values()
                            if hasattr(sub, "_actions")
                        )

        flag_pattern = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]+)")
        for path in _doc_paths():
            for flag in flag_pattern.findall(_read(path)):
                assert flag in parser_flags, (
                    "{} documents {!r}, which build_parser() does not define".format(
                        os.path.relpath(path, REPO_ROOT), flag
                    )
                )

    def test_suite_mode_is_documented_and_real(self):
        # The pipeline docs must describe the CLI surface they ship with.
        pipeline_md = _read(os.path.join(REPO_ROOT, "docs", "pipeline.md"))
        for flag in ("--mode suite", "--spec", "--store", "--workers"):
            assert flag in pipeline_md
        args = build_parser().parse_args(["--mode", "suite"])
        assert args.mode == "suite"


class TestLinks:
    def test_relative_markdown_links_resolve(self):
        link_pattern = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
        for path in _doc_paths():
            base = os.path.dirname(path)
            for target in link_pattern.findall(_read(path)):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = os.path.normpath(os.path.join(base, target.split("#")[0]))
                assert os.path.exists(resolved), (
                    "{} links to missing file {}".format(
                        os.path.relpath(path, REPO_ROOT), target
                    )
                )

    def test_docs_tree_exists(self):
        for name in (
            "architecture.md",
            "kernels.md",
            "out_of_core.md",
            "pipeline.md",
            "robustness.md",
        ):
            assert os.path.exists(os.path.join(REPO_ROOT, "docs", name))
