"""Unit tests for the edge-version ball carving (end of Section 1.3)."""

import math
import random

import networkx as nx
import pytest

from repro.clustering.validation import ValidationError
from repro.clustering.cluster import Cluster
from repro.congest.rounds import RoundLedger
from repro.core.edge_carving import (
    EdgeCarving,
    check_edge_carving,
    edge_carving_from_node_carving,
    mpx_edge_carving,
    sequential_edge_carving,
)
from repro.graphs.generators import cycle_graph, grid_graph, path_graph, torus_graph
from repro.graphs.properties import subgraph_diameter


class TestEdgeCarvingType:
    def _simple(self):
        graph = path_graph(6)
        clusters = [
            Cluster(nodes=frozenset({0, 1, 2}), label="a"),
            Cluster(nodes=frozenset({3, 4, 5}), label="b"),
        ]
        removed = {(2, 3)}
        return EdgeCarving(graph=graph, clusters=clusters, removed_edges=removed, eps=0.25)

    def test_removed_fraction(self):
        carving = self._simple()
        assert carving.removed_fraction == pytest.approx(1 / 5)

    def test_surviving_graph(self):
        carving = self._simple()
        survivor = carving.surviving_graph()
        assert not survivor.has_edge(2, 3)
        assert survivor.has_edge(0, 1)
        assert survivor.number_of_nodes() == 6

    def test_summary(self):
        summary = self._simple().summary()
        assert summary["clusters"] == 2
        assert summary["removed_edges"] == 1

    def test_validator_accepts_simple(self):
        check_edge_carving(self._simple())

    def test_validator_rejects_uncovered_nodes(self):
        graph = path_graph(4)
        carving = EdgeCarving(
            graph=graph,
            clusters=[Cluster(nodes=frozenset({0, 1}), label="a")],
            removed_edges={(1, 2)},
            eps=0.5,
        )
        with pytest.raises(ValidationError):
            check_edge_carving(carving)

    def test_validator_rejects_surviving_cross_edges(self):
        graph = path_graph(4)
        carving = EdgeCarving(
            graph=graph,
            clusters=[
                Cluster(nodes=frozenset({0, 1}), label="a"),
                Cluster(nodes=frozenset({2, 3}), label="b"),
            ],
            removed_edges=set(),
            eps=0.5,
        )
        with pytest.raises(ValidationError):
            check_edge_carving(carving)

    def test_validator_rejects_phantom_removed_edges(self):
        graph = path_graph(3)
        carving = EdgeCarving(
            graph=graph,
            clusters=[Cluster(nodes=frozenset({0, 1, 2}), label="a")],
            removed_edges={(0, 2)},
            eps=0.5,
        )
        with pytest.raises(ValidationError):
            check_edge_carving(carving)

    def test_validator_rejects_excess_removal(self):
        graph = cycle_graph(12)
        clusters = [Cluster(nodes=frozenset({node}), label=node) for node in graph.nodes()]
        removed = {tuple(sorted(edge)) for edge in graph.edges()}
        carving = EdgeCarving(graph=graph, clusters=clusters, removed_edges=removed, eps=0.1)
        with pytest.raises(ValidationError):
            check_edge_carving(carving)


class TestSequentialEdgeCarving:
    @pytest.mark.parametrize("eps", [0.5, 0.25])
    def test_invariants_on_zoo(self, graph_zoo, eps):
        for name, graph in graph_zoo.items():
            carving = sequential_edge_carving(graph, eps)
            check_edge_carving(carving)

    def test_removed_fraction_within_eps(self, small_torus):
        carving = sequential_edge_carving(small_torus, 0.5)
        assert carving.removed_fraction <= 0.5 + 1.0 / small_torus.number_of_edges()

    def test_diameter_is_log_over_eps(self, small_torus):
        eps = 0.5
        carving = sequential_edge_carving(small_torus, eps)
        m = small_torus.number_of_edges()
        bound = 4 * math.log(m) / eps + 4
        survivor = carving.surviving_graph()
        for cluster in carving.clusters:
            assert subgraph_diameter(survivor, cluster.nodes) <= bound

    def test_deterministic(self, small_regular):
        first = sequential_edge_carving(small_regular, 0.4)
        second = sequential_edge_carving(small_regular, 0.4)
        assert first.removed_edges == second.removed_edges

    def test_edgeless_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        for node in graph.nodes():
            graph.nodes[node]["uid"] = node
        carving = sequential_edge_carving(graph, 0.5)
        check_edge_carving(carving)
        assert carving.removed_edges == set()

    def test_rejects_bad_eps(self, small_grid):
        with pytest.raises(ValueError):
            sequential_edge_carving(small_grid, 1.5)


class TestMpxEdgeCarving:
    def test_invariants(self, small_torus):
        carving = mpx_edge_carving(small_torus, 0.5, rng=random.Random(1))
        # Removed fraction is an expectation-only guarantee; check structure
        # with a lenient budget.
        check_edge_carving(carving, max_removed_fraction=0.95)

    def test_every_node_covered(self, small_regular):
        carving = mpx_edge_carving(small_regular, 0.5, rng=random.Random(2))
        covered = set()
        for cluster in carving.clusters:
            covered |= cluster.nodes
        assert covered == set(small_regular.nodes())

    def test_expected_removed_fraction(self, small_torus):
        runs = 10
        total = 0.0
        for seed in range(runs):
            carving = mpx_edge_carving(small_torus, 0.3, rng=random.Random(seed))
            total += carving.removed_fraction
        assert total / runs <= 0.6

    def test_smaller_eps_cuts_fewer_edges_on_average(self, small_torus):
        def average(eps):
            return sum(
                mpx_edge_carving(small_torus, eps, rng=random.Random(seed)).removed_fraction
                for seed in range(8)
            ) / 8

        assert average(0.1) <= average(0.8) + 0.05

    def test_rejects_bad_eps(self, small_grid):
        with pytest.raises(ValueError):
            mpx_edge_carving(small_grid, 0.0)


class TestNodeToEdgeAdapter:
    def test_invariants_with_default_carving(self, small_torus):
        carving = edge_carving_from_node_carving(small_torus, 0.5)
        check_edge_carving(carving, max_removed_fraction=0.95)

    def test_measured_removed_fraction_on_regular_graph(self, small_torus):
        # On a bounded-degree graph the degree-scaled parameter keeps the
        # removed edge fraction within eps.
        carving = edge_carving_from_node_carving(small_torus, 0.5)
        assert carving.removed_fraction <= 0.5 + 1.0 / small_torus.number_of_edges()

    def test_with_sequential_node_carving(self, small_grid):
        from repro.baselines.sequential import greedy_sequential_carving

        carving = edge_carving_from_node_carving(
            small_grid, 0.5, node_carving=greedy_sequential_carving
        )
        check_edge_carving(carving, max_removed_fraction=0.95)

    def test_ledger_accumulates(self, small_grid):
        ledger = RoundLedger()
        edge_carving_from_node_carving(small_grid, 0.5, ledger=ledger)
        assert ledger.total_rounds > 0

    def test_rejects_bad_eps(self, small_grid):
        with pytest.raises(ValueError):
            edge_carving_from_node_carving(small_grid, 0.0)
