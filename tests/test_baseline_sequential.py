"""Unit tests for the centralized sequential (existential) construction."""

import math

import pytest

from repro.baselines.sequential import (
    _grow_ball,
    greedy_sequential_carving,
    greedy_sequential_decomposition,
)
from repro.clustering.validation import (
    check_ball_carving,
    check_network_decomposition,
    strong_diameter,
)
from repro.graphs.generators import cycle_graph, path_graph, star_graph


class TestGrowBall:
    def test_ball_on_path_with_doubling_rule(self):
        graph = path_graph(20)
        ball, boundary, radius = _grow_ball(graph, 0, set(graph.nodes()), stop_ratio=0.5)
        # From an endpoint of a path, each new layer has one node, so the
        # doubling condition |next| <= |ball| holds immediately at radius 0.
        assert radius == 0
        assert ball == {0}
        assert boundary == {1}

    def test_ball_on_star_center(self):
        graph = star_graph(10)
        hub = max(graph.degree, key=lambda item: item[1])[0]
        ball, boundary, radius = _grow_ball(graph, hub, set(graph.nodes()), stop_ratio=0.5)
        # The star's first layer is huge, so the hub must absorb it.
        assert radius >= 1
        assert boundary == set()
        assert len(ball) == 10

    def test_ball_exhausts_component(self):
        graph = cycle_graph(8)
        ball, boundary, radius = _grow_ball(graph, 0, set(graph.nodes()), stop_ratio=0.01)
        assert ball == set(graph.nodes())
        assert boundary == set()


class TestSequentialCarving:
    def test_structural_invariants(self, graph_zoo):
        for name, graph in graph_zoo.items():
            carving = greedy_sequential_carving(graph, 0.5)
            check_ball_carving(carving)

    def test_dead_fraction_within_eps(self, small_cycle):
        carving = greedy_sequential_carving(small_cycle, 0.5)
        assert carving.dead_fraction <= 0.5

    def test_diameter_bound(self, small_torus):
        eps = 0.5
        carving = greedy_sequential_carving(small_torus, eps)
        n = small_torus.number_of_nodes()
        bound = 2 * math.log(n) / eps + 2
        for cluster in carving.clusters:
            assert strong_diameter(carving.graph, cluster.nodes) <= bound

    def test_smaller_eps_allows_larger_diameter(self, small_cycle):
        tight = greedy_sequential_carving(small_cycle, 0.1)
        loose = greedy_sequential_carving(small_cycle, 0.9)
        max_diameter = lambda carving: max(
            (strong_diameter(carving.graph, c.nodes) for c in carving.clusters), default=0
        )
        assert max_diameter(tight) >= max_diameter(loose)

    def test_deterministic(self, small_regular):
        first = greedy_sequential_carving(small_regular, 0.4)
        second = greedy_sequential_carving(small_regular, 0.4)
        assert first.cluster_of() == second.cluster_of()

    def test_rejects_bad_eps(self, small_grid):
        with pytest.raises(ValueError):
            greedy_sequential_carving(small_grid, 0.0)


class TestSequentialDecomposition:
    def test_valid_decomposition(self, graph_zoo):
        for name, graph in graph_zoo.items():
            decomposition = greedy_sequential_decomposition(graph)
            check_network_decomposition(decomposition)

    def test_log_colors_and_log_diameter(self, small_torus):
        decomposition = greedy_sequential_decomposition(small_torus)
        n = small_torus.number_of_nodes()
        log_n = math.ceil(math.log2(n))
        assert decomposition.num_colors <= 2 * log_n + 2
        for cluster in decomposition.clusters:
            assert strong_diameter(decomposition.graph, cluster.nodes) <= 2 * log_n

    def test_handles_disconnected_graphs(self, disconnected_graph):
        decomposition = greedy_sequential_decomposition(disconnected_graph)
        check_network_decomposition(decomposition)

    def test_single_node_graph(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(0, uid=0)
        decomposition = greedy_sequential_decomposition(graph)
        assert decomposition.num_colors == 1
        assert len(decomposition.clusters) == 1
