"""Unit tests for the MIS / coloring applications of network decomposition."""

import networkx as nx
import pytest

import repro
from repro.applications.coloring import delta_plus_one_coloring, verify_coloring
from repro.applications.mis import maximal_independent_set, verify_mis
from repro.applications.template import node_order_key, process_by_colors
from repro.congest.rounds import RoundLedger
from repro.graphs.backend import use_backend


class TestTemplate:
    def test_handler_sees_only_previous_colors(self, small_grid):
        decomposition = repro.decompose(small_grid, method="sequential")
        seen_partial_nodes = []

        def handler(graph, cluster, partial):
            seen_partial_nodes.append(set(partial))
            return {node: True for node in cluster.nodes}

        process_by_colors(decomposition, handler)
        # The first processed cluster must see an empty partial solution.
        assert seen_partial_nodes[0] == set()
        # Partial solutions only ever grow between colors.
        assert all(
            earlier <= later or not (earlier and later)
            for earlier, later in zip(seen_partial_nodes, seen_partial_nodes[1:])
            if earlier is not None
        )

    def test_missing_values_raise(self, small_grid):
        decomposition = repro.decompose(small_grid, method="sequential")

        def bad_handler(graph, cluster, partial):
            return {}

        with pytest.raises(ValueError):
            process_by_colors(decomposition, bad_handler)

    def test_solution_covers_every_node(self, small_grid):
        decomposition = repro.decompose(small_grid, method="sequential")
        solution = process_by_colors(
            decomposition, lambda graph, cluster, partial: {node: 1 for node in cluster.nodes}
        )
        assert set(solution) == set(small_grid.nodes())

    def test_round_cost_scales_with_colors_times_diameter(self, small_grid):
        decomposition = repro.decompose(small_grid, method="sequential")
        ledger = RoundLedger()
        process_by_colors(
            decomposition,
            lambda graph, cluster, partial: {node: 0 for node in cluster.nodes},
            ledger=ledger,
        )
        assert ledger.total_rounds >= decomposition.num_colors


class TestMis:
    @pytest.mark.parametrize("method", ["sequential", "strong-log3", "mpx"])
    def test_mis_is_valid_on_torus(self, small_torus, method):
        decomposition = repro.decompose(small_torus, method=method, seed=2)
        independent_set = maximal_independent_set(decomposition)
        assert verify_mis(small_torus, independent_set)

    def test_mis_on_weak_decomposition(self, small_regular):
        decomposition = repro.decompose(small_regular, method="ls93", seed=2)
        independent_set = maximal_independent_set(decomposition)
        assert verify_mis(small_regular, independent_set)

    def test_mis_nonempty_on_nontrivial_graph(self, small_cycle):
        decomposition = repro.decompose(small_cycle, method="sequential")
        independent_set = maximal_independent_set(decomposition)
        assert len(independent_set) >= small_cycle.number_of_nodes() // 3

    def test_verify_mis_rejects_non_independent(self, small_cycle):
        assert not verify_mis(small_cycle, {0, 1})

    def test_verify_mis_rejects_non_maximal(self, small_cycle):
        assert not verify_mis(small_cycle, set())


class TestColoring:
    @pytest.mark.parametrize("method", ["sequential", "strong-log3", "mpx"])
    def test_coloring_is_proper(self, small_torus, method):
        decomposition = repro.decompose(small_torus, method=method, seed=2)
        coloring = delta_plus_one_coloring(decomposition)
        assert verify_coloring(small_torus, coloring)

    def test_coloring_on_tree(self, small_tree):
        decomposition = repro.decompose(small_tree, method="sequential")
        coloring = delta_plus_one_coloring(decomposition)
        assert verify_coloring(small_tree, coloring)

    def test_palette_within_max_degree_plus_one(self, small_regular):
        decomposition = repro.decompose(small_regular, method="sequential")
        coloring = delta_plus_one_coloring(decomposition)
        max_degree = max(degree for _, degree in small_regular.degree())
        assert max(coloring.values()) <= max_degree

    def test_verify_coloring_rejects_conflicts(self, small_cycle):
        coloring = {node: 0 for node in small_cycle.nodes()}
        assert not verify_coloring(small_cycle, coloring)

    def test_verify_coloring_rejects_partial_assignments(self, small_cycle):
        assert not verify_coloring(small_cycle, {0: 0})


class TestBackendDifferential:
    """The CSR task loops must match the networkx oracle exactly."""

    @pytest.mark.parametrize("method", repro.CARVING_METHODS)
    def test_mis_identical_on_both_backends(self, small_torus, method):
        decomposition = repro.decompose(small_torus, method=method, seed=2)
        csr_ledger, nx_ledger = RoundLedger(), RoundLedger()
        csr_set = maximal_independent_set(decomposition, ledger=csr_ledger)
        with use_backend("nx"):
            nx_set = maximal_independent_set(decomposition, ledger=nx_ledger)
        assert csr_set == nx_set
        assert csr_ledger.total_rounds == nx_ledger.total_rounds
        assert verify_mis(small_torus, csr_set)

    @pytest.mark.parametrize("method", repro.CARVING_METHODS)
    def test_coloring_identical_on_both_backends(self, small_torus, method):
        decomposition = repro.decompose(small_torus, method=method, seed=2)
        csr_ledger, nx_ledger = RoundLedger(), RoundLedger()
        csr_coloring = delta_plus_one_coloring(decomposition, ledger=csr_ledger)
        with use_backend("nx"):
            nx_coloring = delta_plus_one_coloring(decomposition, ledger=nx_ledger)
        assert csr_coloring == nx_coloring
        assert csr_ledger.total_rounds == nx_ledger.total_rounds
        assert verify_coloring(small_torus, csr_coloring)

    def test_csr_loop_actually_engages(self, small_torus, monkeypatch):
        # Guard against the fast path silently falling back to the oracle.
        import repro.applications.mis as mis_module

        decomposition = repro.decompose(small_torus, method="sequential")
        calls = []
        original = mis_module._csr_mis

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(mis_module, "_csr_mis", spy)
        maximal_independent_set(decomposition)
        assert calls, "the CSR MIS loop was not used under the csr backend"


class TestMixedLabelOrdering:
    """Regression: mixed int/str labels without uids used to raise TypeError
    in the within-cluster sort; the uid-sort convention totals the order."""

    def _mixed_decomposition(self):
        from repro.clustering.cluster import Cluster
        from repro.clustering.decomposition import NetworkDecomposition

        graph = nx.Graph()
        graph.add_edges_from([(1, "a"), ("a", 2), (2, "b"), ("b", 1)])
        clusters = [Cluster(nodes=frozenset(graph.nodes()), label=0, color=0)]
        return graph, NetworkDecomposition(graph=graph, clusters=clusters, kind="strong")

    def test_mis_on_mixed_labels(self):
        graph, decomposition = self._mixed_decomposition()
        independent_set = maximal_independent_set(decomposition)
        assert verify_mis(graph, independent_set)

    def test_coloring_on_mixed_labels(self):
        graph, decomposition = self._mixed_decomposition()
        coloring = delta_plus_one_coloring(decomposition)
        assert verify_coloring(graph, coloring)

    def test_mixed_labels_identical_across_backends(self):
        graph, decomposition = self._mixed_decomposition()
        csr_set = maximal_independent_set(decomposition)
        with use_backend("nx"):
            nx_set = maximal_independent_set(decomposition)
        assert csr_set == nx_set

    def test_node_order_key_totals_mixed_types(self):
        graph, _ = self._mixed_decomposition()
        ordered = sorted(graph.nodes(), key=lambda node: node_order_key(graph, node))
        # Integer uids first (numerically), string-form uids after.
        assert ordered == [1, 2, "a", "b"]
