"""Unit tests for the MIS / coloring applications of network decomposition."""

import pytest

import repro
from repro.applications.coloring import delta_plus_one_coloring, verify_coloring
from repro.applications.mis import maximal_independent_set, verify_mis
from repro.applications.template import process_by_colors
from repro.congest.rounds import RoundLedger


class TestTemplate:
    def test_handler_sees_only_previous_colors(self, small_grid):
        decomposition = repro.decompose(small_grid, method="sequential")
        seen_partial_nodes = []

        def handler(graph, cluster, partial):
            seen_partial_nodes.append(set(partial))
            return {node: True for node in cluster.nodes}

        process_by_colors(decomposition, handler)
        # The first processed cluster must see an empty partial solution.
        assert seen_partial_nodes[0] == set()
        # Partial solutions only ever grow between colors.
        assert all(
            earlier <= later or not (earlier and later)
            for earlier, later in zip(seen_partial_nodes, seen_partial_nodes[1:])
            if earlier is not None
        )

    def test_missing_values_raise(self, small_grid):
        decomposition = repro.decompose(small_grid, method="sequential")

        def bad_handler(graph, cluster, partial):
            return {}

        with pytest.raises(ValueError):
            process_by_colors(decomposition, bad_handler)

    def test_solution_covers_every_node(self, small_grid):
        decomposition = repro.decompose(small_grid, method="sequential")
        solution = process_by_colors(
            decomposition, lambda graph, cluster, partial: {node: 1 for node in cluster.nodes}
        )
        assert set(solution) == set(small_grid.nodes())

    def test_round_cost_scales_with_colors_times_diameter(self, small_grid):
        decomposition = repro.decompose(small_grid, method="sequential")
        ledger = RoundLedger()
        process_by_colors(
            decomposition,
            lambda graph, cluster, partial: {node: 0 for node in cluster.nodes},
            ledger=ledger,
        )
        assert ledger.total_rounds >= decomposition.num_colors


class TestMis:
    @pytest.mark.parametrize("method", ["sequential", "strong-log3", "mpx"])
    def test_mis_is_valid_on_torus(self, small_torus, method):
        decomposition = repro.decompose(small_torus, method=method, seed=2)
        independent_set = maximal_independent_set(decomposition)
        assert verify_mis(small_torus, independent_set)

    def test_mis_on_weak_decomposition(self, small_regular):
        decomposition = repro.decompose(small_regular, method="ls93", seed=2)
        independent_set = maximal_independent_set(decomposition)
        assert verify_mis(small_regular, independent_set)

    def test_mis_nonempty_on_nontrivial_graph(self, small_cycle):
        decomposition = repro.decompose(small_cycle, method="sequential")
        independent_set = maximal_independent_set(decomposition)
        assert len(independent_set) >= small_cycle.number_of_nodes() // 3

    def test_verify_mis_rejects_non_independent(self, small_cycle):
        assert not verify_mis(small_cycle, {0, 1})

    def test_verify_mis_rejects_non_maximal(self, small_cycle):
        assert not verify_mis(small_cycle, set())


class TestColoring:
    @pytest.mark.parametrize("method", ["sequential", "strong-log3", "mpx"])
    def test_coloring_is_proper(self, small_torus, method):
        decomposition = repro.decompose(small_torus, method=method, seed=2)
        coloring = delta_plus_one_coloring(decomposition)
        assert verify_coloring(small_torus, coloring)

    def test_coloring_on_tree(self, small_tree):
        decomposition = repro.decompose(small_tree, method="sequential")
        coloring = delta_plus_one_coloring(decomposition)
        assert verify_coloring(small_tree, coloring)

    def test_palette_within_max_degree_plus_one(self, small_regular):
        decomposition = repro.decompose(small_regular, method="sequential")
        coloring = delta_plus_one_coloring(decomposition)
        max_degree = max(degree for _, degree in small_regular.degree())
        assert max(coloring.values()) <= max_degree

    def test_verify_coloring_rejects_conflicts(self, small_cycle):
        coloring = {node: 0 for node in small_cycle.nodes()}
        assert not verify_coloring(small_cycle, coloring)

    def test_verify_coloring_rejects_partial_assignments(self, small_cycle):
        assert not verify_coloring(small_cycle, {0: 0})
