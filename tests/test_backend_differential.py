"""Differential tests: the ``"csr"`` and ``"nx"`` backends are equivalent.

The flat-array backend must be a pure performance change: for every carving
and decomposition method, both backends — run with the same seeds on the same
workload graphs — must produce *identical cluster assignments* (the same
partition into clusters, the same dead set, the same node colors).  Cluster
labels and Steiner-tree shapes may legitimately differ (they encode the
backend's component traversal order), so the comparison canonicalises
clusters to their node sets.
"""

import pytest

import repro
from repro.graphs.generators import erdos_renyi_graph, workload_suite

METHODS = repro.CARVING_METHODS
SUITE_N = 64


def _workload_graphs():
    graphs = [(family.name, family.build(SUITE_N)) for family in workload_suite()]
    graphs.append(("erdos-renyi", erdos_renyi_graph(48, 0.05, seed=9)))
    return graphs


def carving_signature(carving):
    """Backend-independent canonical form of a ball carving."""
    return (
        frozenset(frozenset(cluster.nodes) for cluster in carving.clusters),
        frozenset(carving.dead),
    )


def decomposition_signature(decomposition):
    """Backend-independent canonical form of a network decomposition."""
    return frozenset(
        (cluster.color, frozenset(cluster.nodes)) for cluster in decomposition.clusters
    )


@pytest.mark.parametrize("method", METHODS)
def test_carving_identical_across_backends(method):
    for name, graph in _workload_graphs():
        via_nx = repro.carve(graph, 0.5, method=method, seed=7, backend="nx")
        via_csr = repro.carve(graph, 0.5, method=method, seed=7, backend="csr")
        assert carving_signature(via_nx) == carving_signature(via_csr), (
            "backend divergence for method {!r} on workload {!r}".format(method, name)
        )


@pytest.mark.parametrize("method", METHODS)
def test_decomposition_identical_across_backends(method):
    for name, graph in _workload_graphs():
        via_nx = repro.decompose(graph, method=method, seed=7, backend="nx")
        via_csr = repro.decompose(graph, method=method, seed=7, backend="csr")
        assert decomposition_signature(via_nx) == decomposition_signature(via_csr), (
            "backend divergence for method {!r} on workload {!r}".format(method, name)
        )


@pytest.mark.parametrize("method", ("strong-log3", "weak-rg20"))
def test_repeated_runs_deterministic_per_backend(method, small_torus):
    """Each backend is individually deterministic run-to-run."""
    for backend in ("csr", "nx"):
        first = repro.decompose(small_torus, method=method, backend=backend)
        second = repro.decompose(small_torus, method=method, backend=backend)
        assert decomposition_signature(first) == decomposition_signature(second)


def test_backend_argument_rejected_when_unknown(small_grid):
    with pytest.raises(ValueError):
        repro.decompose(small_grid, method="strong-log3", backend="gpu")


def test_carving_on_edge_filtered_view_identical(small_torus):
    """Regression: edge-filtered views hide edges the root CSR rows contain;
    the carving must not walk them under the default backend."""
    import networkx as nx

    view = nx.edge_subgraph(small_torus, list(small_torus.edges())[::3])
    via_nx = repro.carve(view, 0.5, method="weak-rg20", backend="nx")
    via_csr = repro.carve(view, 0.5, method="weak-rg20", backend="csr")
    assert carving_signature(via_nx) == carving_signature(via_csr)
