"""Unit tests for the network decompositions (Theorems 2.3 and 3.4)."""

import math

import pytest

from repro.baselines.sequential import greedy_sequential_carving
from repro.clustering.validation import (
    check_network_decomposition,
    same_color_clusters_nonadjacent,
    strong_diameter,
)
from repro.congest.rounds import RoundLedger
from repro.core.decomposition import (
    decomposition_via_carving,
    theorem23_decomposition,
    theorem34_decomposition,
    weak_decomposition_rg20,
)


class TestReduction:
    def test_reduction_with_sequential_carving(self, small_torus):
        decomposition = decomposition_via_carving(small_torus, greedy_sequential_carving)
        check_network_decomposition(decomposition)

    def test_colors_bounded_by_log(self, small_torus):
        decomposition = decomposition_via_carving(small_torus, greedy_sequential_carving)
        n = small_torus.number_of_nodes()
        assert decomposition.num_colors <= 2 * math.ceil(math.log2(n)) + 2

    def test_rounds_accumulate_across_colors(self, small_grid):
        ledger = RoundLedger()
        decomposition = decomposition_via_carving(
            small_grid, greedy_sequential_carving, ledger=ledger
        )
        assert decomposition.rounds == ledger.total_rounds
        assert decomposition.rounds > 0

    def test_color_cap_guards_against_broken_carvings(self, small_grid):
        def lazy_carving(graph, eps, nodes=None, ledger=None):
            # A deliberately broken carving that clusters only one node per
            # repetition: the reduction must hit its color cap and fail loudly
            # rather than looping forever.
            from repro.clustering.carving import BallCarving
            from repro.clustering.cluster import Cluster

            working = graph.subgraph(nodes) if nodes is not None else graph
            node = sorted(working.nodes(), key=str)[0]
            return BallCarving(
                graph=working,
                clusters=[Cluster(nodes=frozenset({node}), label=node)],
                dead=set(),
                eps=eps,
            )

        with pytest.raises(RuntimeError):
            decomposition_via_carving(small_grid, lazy_carving, max_colors=3)

    def test_empty_graph(self):
        import networkx as nx

        decomposition = decomposition_via_carving(nx.Graph(), greedy_sequential_carving)
        assert decomposition.clusters == []


class TestTheorem23:
    def test_valid_decomposition(self, graph_zoo):
        for name, graph in graph_zoo.items():
            decomposition = theorem23_decomposition(graph)
            check_network_decomposition(decomposition)

    def test_parameters_match_theorem(self, small_torus):
        decomposition = theorem23_decomposition(small_torus)
        n = small_torus.number_of_nodes()
        log_n = math.log2(n)
        assert decomposition.num_colors <= 2 * math.ceil(log_n) + 2
        diameter_bound = 8 * (log_n ** 3) / 0.5 + 8
        for cluster in decomposition.clusters:
            assert strong_diameter(decomposition.graph, cluster.nodes) <= diameter_bound

    def test_deterministic(self, small_regular):
        first = theorem23_decomposition(small_regular)
        second = theorem23_decomposition(small_regular)
        assert first.color_of() == second.color_of()

    def test_same_color_nonadjacent(self, small_grid):
        decomposition = theorem23_decomposition(small_grid)
        assert same_color_clusters_nonadjacent(decomposition.graph, decomposition.clusters)

    def test_disconnected_graph(self, disconnected_graph):
        decomposition = theorem23_decomposition(disconnected_graph)
        check_network_decomposition(decomposition)


class TestTheorem34:
    def test_valid_decomposition(self, small_torus):
        decomposition = theorem34_decomposition(small_torus)
        check_network_decomposition(decomposition)

    def test_diameter_within_log2_bound(self, small_torus):
        decomposition = theorem34_decomposition(small_torus)
        n = small_torus.number_of_nodes()
        bound = 16 * (math.log2(n) ** 2) / 0.5 + 8
        for cluster in decomposition.clusters:
            assert strong_diameter(decomposition.graph, cluster.nodes) <= bound

    def test_rounds_exceed_theorem23(self, small_grid):
        cheap = theorem23_decomposition(small_grid)
        expensive = theorem34_decomposition(small_grid)
        assert expensive.rounds >= cheap.rounds


class TestWeakDecomposition:
    def test_valid_weak_decomposition(self, small_torus):
        decomposition = weak_decomposition_rg20(small_torus)
        check_network_decomposition(decomposition)
        assert decomposition.kind == "weak"

    def test_colors_bounded(self, small_regular):
        decomposition = weak_decomposition_rg20(small_regular)
        n = small_regular.number_of_nodes()
        assert decomposition.num_colors <= 4 * math.ceil(math.log2(n)) + 8
