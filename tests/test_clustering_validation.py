"""Unit tests for the clustering validators."""

import pytest

from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster, SteinerTree
from repro.clustering.decomposition import NetworkDecomposition
from repro.clustering.validation import (
    ValidationError,
    check_ball_carving,
    check_network_decomposition,
    check_steiner_trees,
    clusters_are_disjoint,
    clusters_nonadjacent,
    max_cluster_diameter,
    same_color_clusters_nonadjacent,
    strong_diameter,
    weak_diameter,
)
from repro.graphs.generators import cycle_graph, path_graph, star_graph


class TestDiameterNotions:
    def test_strong_diameter_of_subpath(self):
        graph = path_graph(10)
        assert strong_diameter(graph, {2, 3, 4, 5}) == 3

    def test_strong_diameter_raises_on_disconnected_cluster(self):
        graph = path_graph(10)
        with pytest.raises(ValidationError):
            strong_diameter(graph, {0, 1, 8, 9})

    def test_weak_diameter_uses_whole_graph(self):
        graph = cycle_graph(10)
        # Two antipodal-ish nodes: disconnected as an induced subgraph, but
        # their weak diameter is their distance in the cycle.
        assert weak_diameter(graph, {0, 3}) == 3

    def test_weak_at_most_strong(self):
        graph = cycle_graph(12)
        nodes = {0, 1, 2, 3}
        assert weak_diameter(graph, nodes) <= strong_diameter(graph, nodes)

    def test_weak_diameter_raises_when_graph_disconnects_nodes(self):
        graph = path_graph(4)
        graph.remove_edge(1, 2)
        with pytest.raises(ValidationError):
            weak_diameter(graph, {0, 3})

    def test_max_cluster_diameter(self):
        graph = path_graph(10)
        clusters = [
            Cluster(nodes=frozenset({0, 1, 2}), label="a"),
            Cluster(nodes=frozenset({5, 6, 7, 8}), label="b"),
        ]
        assert max_cluster_diameter(graph, clusters, kind="strong") == 3

    def test_singletons_have_zero_diameter(self):
        graph = path_graph(4)
        assert strong_diameter(graph, {2}) == 0
        assert weak_diameter(graph, {2}) == 0


class TestStructuralChecks:
    def test_disjointness(self):
        a = Cluster(nodes=frozenset({1, 2}), label="a")
        b = Cluster(nodes=frozenset({3}), label="b")
        c = Cluster(nodes=frozenset({2, 3}), label="c")
        assert clusters_are_disjoint([a, b])
        assert not clusters_are_disjoint([a, c])

    def test_nonadjacency(self):
        graph = path_graph(6)
        a = Cluster(nodes=frozenset({0, 1}), label="a")
        b = Cluster(nodes=frozenset({3, 4}), label="b")
        c = Cluster(nodes=frozenset({2}), label="c")
        assert clusters_nonadjacent(graph, [a, b])
        assert not clusters_nonadjacent(graph, [a, b, c])

    def test_same_color_nonadjacency(self):
        graph = path_graph(6)
        a = Cluster(nodes=frozenset({0, 1}), label="a", color=0)
        b = Cluster(nodes=frozenset({2, 3}), label="b", color=1)
        c = Cluster(nodes=frozenset({4, 5}), label="c", color=0)
        assert same_color_clusters_nonadjacent(graph, [a, b, c])
        bad = Cluster(nodes=frozenset({2, 3}), label="bad", color=0)
        assert not same_color_clusters_nonadjacent(graph, [a, bad, c])

    def test_steiner_tree_checks(self):
        graph = path_graph(5)
        tree = SteinerTree(root=0, parent={0: None, 1: 0, 2: 1, 3: 2})
        cluster = Cluster(nodes=frozenset({0, 3}), label="a", tree=tree)
        check_steiner_trees(graph, [cluster], max_depth=3, max_congestion=1)
        with pytest.raises(ValidationError):
            check_steiner_trees(graph, [cluster], max_depth=2)
        bare = Cluster(nodes=frozenset({4}), label="b")
        with pytest.raises(ValidationError):
            check_steiner_trees(graph, [bare])


class TestValidatorCacheFreshness:
    def test_nonadjacency_checks_see_in_place_edge_mutations(self):
        """Regression: the validators' CSR boundary walk must never certify
        a clustering against a stale cached index."""
        graph = path_graph(10, seed=0)
        clusters = [
            Cluster(nodes=frozenset({0, 1}), label="a"),
            Cluster(nodes=frozenset({8, 9}), label="b"),
        ]
        assert clusters_nonadjacent(graph, clusters)  # warms the CSR cache
        graph.add_edge(1, 8)  # same node count: the O(1) cache guard misses it
        assert not clusters_nonadjacent(graph, clusters)
        colored = [c.with_color(0) for c in clusters]
        assert not same_color_clusters_nonadjacent(graph, colored)
        graph.remove_edge(1, 8)
        assert clusters_nonadjacent(graph, clusters)
        assert same_color_clusters_nonadjacent(graph, colored)


class TestBallCarvingValidator:
    def _valid_carving(self):
        graph = path_graph(8)
        clusters = [
            Cluster(nodes=frozenset({0, 1, 2}), label="a"),
            Cluster(nodes=frozenset({4, 5, 6}), label="b"),
        ]
        return BallCarving(graph=graph, clusters=clusters, dead={3, 7}, eps=0.3)

    def test_accepts_valid_carving(self):
        check_ball_carving(self._valid_carving())

    def test_rejects_uncovered_nodes(self):
        graph = path_graph(5)
        carving = BallCarving(
            graph=graph,
            clusters=[Cluster(nodes=frozenset({0, 1}), label="a")],
            dead={4},
            eps=0.5,
        )
        with pytest.raises(ValidationError):
            check_ball_carving(carving)

    def test_rejects_adjacent_clusters(self):
        graph = path_graph(4)
        carving = BallCarving(
            graph=graph,
            clusters=[
                Cluster(nodes=frozenset({0, 1}), label="a"),
                Cluster(nodes=frozenset({2, 3}), label="b"),
            ],
            dead=set(),
            eps=0.5,
        )
        with pytest.raises(ValidationError):
            check_ball_carving(carving)

    def test_rejects_overlapping_clusters(self):
        graph = path_graph(4)
        carving = BallCarving(
            graph=graph,
            clusters=[
                Cluster(nodes=frozenset({0, 1}), label="a"),
                Cluster(nodes=frozenset({1}), label="b"),
            ],
            dead={2, 3},
            eps=0.9,
        )
        with pytest.raises(ValidationError):
            check_ball_carving(carving)

    def test_rejects_excess_dead_fraction(self):
        graph = path_graph(10)
        carving = BallCarving(
            graph=graph,
            clusters=[Cluster(nodes=frozenset({0, 1, 2}), label="a")],
            dead=set(range(3, 10)),
            eps=0.1,
        )
        with pytest.raises(ValidationError):
            check_ball_carving(carving)

    def test_dead_and_clustered_must_be_disjoint(self):
        graph = path_graph(4)
        carving = BallCarving(
            graph=graph,
            clusters=[Cluster(nodes=frozenset({0, 1}), label="a")],
            dead={1, 2, 3},
            eps=0.9,
        )
        with pytest.raises(ValidationError):
            check_ball_carving(carving)

    def test_diameter_bound_enforced(self):
        graph = path_graph(8)
        carving = BallCarving(
            graph=graph,
            clusters=[Cluster(nodes=frozenset(range(8)), label="a")],
            dead=set(),
            eps=0.5,
        )
        check_ball_carving(carving, max_diameter=7)
        with pytest.raises(ValidationError):
            check_ball_carving(carving, max_diameter=3)

    def test_weak_carving_requires_trees(self):
        graph = path_graph(5)
        carving = BallCarving(
            graph=graph,
            clusters=[Cluster(nodes=frozenset({0, 1}), label="a")],
            dead={2, 3, 4},
            eps=0.9,
            kind="weak",
        )
        with pytest.raises(ValidationError):
            check_ball_carving(carving)


class TestDecompositionValidator:
    def _valid_decomposition(self):
        graph = path_graph(6)
        clusters = [
            Cluster(nodes=frozenset({0, 1}), label="a", color=0),
            Cluster(nodes=frozenset({3, 4}), label="b", color=0),
            Cluster(nodes=frozenset({2}), label="c", color=1),
            Cluster(nodes=frozenset({5}), label="d", color=1),
        ]
        return NetworkDecomposition(graph=graph, clusters=clusters)

    def test_accepts_valid_decomposition(self):
        check_network_decomposition(self._valid_decomposition())

    def test_rejects_missing_nodes(self):
        graph = path_graph(4)
        decomposition = NetworkDecomposition(
            graph=graph,
            clusters=[Cluster(nodes=frozenset({0, 1}), label="a", color=0)],
        )
        with pytest.raises(ValidationError):
            check_network_decomposition(decomposition)

    def test_rejects_adjacent_same_color(self):
        graph = path_graph(4)
        decomposition = NetworkDecomposition(
            graph=graph,
            clusters=[
                Cluster(nodes=frozenset({0, 1}), label="a", color=0),
                Cluster(nodes=frozenset({2, 3}), label="b", color=0),
            ],
        )
        with pytest.raises(ValidationError):
            check_network_decomposition(decomposition)

    def test_color_budget_enforced(self):
        decomposition = self._valid_decomposition()
        check_network_decomposition(decomposition, max_colors=2)
        with pytest.raises(ValidationError):
            check_network_decomposition(decomposition, max_colors=1)

    def test_diameter_budget_enforced(self):
        decomposition = self._valid_decomposition()
        check_network_decomposition(decomposition, max_diameter=1)
        graph = path_graph(6)
        big = NetworkDecomposition(
            graph=graph,
            clusters=[Cluster(nodes=frozenset(range(6)), label="a", color=0)],
        )
        with pytest.raises(ValidationError):
            check_network_decomposition(big, max_diameter=2)
