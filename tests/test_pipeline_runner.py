"""Unit tests for the suite runner (repro.pipeline.runner)."""

import os

import pytest

import repro
from repro.pipeline import Cell, SuiteSpec, derive_cell_seed, load_spec, run_suite


class TestSuiteSpec:
    def test_expand_carving_grid(self):
        spec = SuiteSpec(
            name="grid",
            scenarios=("torus", "cycle"),
            sizes=(36, 64),
            methods=("sequential",),
            mode="carving",
            eps=(0.5, 0.25),
            seeds=(0, 1, 2),
        )
        cells = spec.expand()
        assert len(cells) == 2 * 2 * 1 * 2 * 3
        assert len({cell.cell_id for cell in cells}) == len(cells)

    def test_decomposition_mode_ignores_eps_axis(self):
        spec = SuiteSpec(
            name="d",
            scenarios=("torus",),
            sizes=(36,),
            methods=("sequential",),
            mode="decomposition",
            eps=(0.5, 0.25, 0.125),
        )
        cells = spec.expand()
        assert len(cells) == 1
        assert cells[0].eps is None
        assert "eps" not in cells[0].cell_id

    def test_rejects_unknown_method_and_mode(self):
        with pytest.raises(ValueError):
            SuiteSpec(name="x", scenarios=("torus",), sizes=(36,), methods=("bogus",))
        with pytest.raises(ValueError):
            SuiteSpec(
                name="x", scenarios=("torus",), sizes=(36,), methods=("mpx",), mode="pondering"
            )
        with pytest.raises(ValueError):
            SuiteSpec(name="x", scenarios=(), sizes=(36,), methods=("mpx",))

    def test_from_dict_roundtrip_and_unknown_keys(self):
        spec = SuiteSpec(
            name="r", scenarios=("torus",), sizes=(36,), methods=("mpx",), seeds=(0, 1)
        )
        assert SuiteSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError):
            SuiteSpec.from_dict({"name": "r", "frobnicate": 1})

    def test_load_spec_from_json_file(self, tmp_path):
        path = os.path.join(tmp_path, "spec.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                '{"name": "from-file", "scenarios": ["torus"], "sizes": [36],'
                ' "methods": ["sequential"], "mode": "carving", "eps": [0.5]}'
            )
        spec = load_spec(path)
        assert spec.name == "from-file"
        assert spec.mode == "carving"
        assert spec.eps == (0.5,)


class TestSeedDerivation:
    def test_derivation_is_deterministic_and_keyed(self):
        assert derive_cell_seed(0, "a") == derive_cell_seed(0, "a")
        assert derive_cell_seed(0, "a") != derive_cell_seed(0, "b")
        assert derive_cell_seed(0, "a") != derive_cell_seed(1, "a")
        # Stable across platforms/processes: pin one value so an accidental
        # change of the derivation (which would orphan every existing store)
        # fails loudly.
        assert derive_cell_seed(0, "a") == 0x9DF3C5FA

    def test_method_columns_share_topology_and_cells_are_reproducible(self):
        spec = SuiteSpec(
            name="seeds",
            scenarios=("regular",),
            sizes=(36,),
            methods=("mpx", "ls93"),
            seeds=(0, 1),
        )
        def run():
            return {
                record["cell"]: {
                    key: value
                    for key, value in record.items()
                    if key not in ("seconds", "timings")
                }
                for record in run_suite(spec).records
            }

        records = run()
        mpx0 = records["regular/n36/mpx/s0"]
        ls0 = records["regular/n36/ls93/s0"]
        mpx1 = records["regular/n36/mpx/s1"]
        # Same grid column (seed index) -> same topology for every method...
        assert mpx0["graph_seed"] == ls0["graph_seed"]
        # ...but different algorithm streams per cell,
        assert mpx0["algo_seed"] != ls0["algo_seed"]
        # and different repetitions get fresh topologies.
        assert mpx0["graph_seed"] != mpx1["graph_seed"]

        # Rerunning the suite from scratch reproduces every seed and metric
        # (only the wall-time field may differ).
        assert run() == records


class TestRunSuite:
    _SPEC = SuiteSpec(
        name="exec",
        scenarios=("torus",),
        sizes=(36,),
        methods=("sequential", "mpx"),
        mode="carving",
        eps=(0.5,),
        seeds=(0,),
        validate=True,
    )

    def test_records_carry_grid_params_and_metrics(self):
        result = run_suite(self._SPEC)
        assert result.executed == 2 and result.skipped == 0
        for cell, record in zip(self._SPEC.expand(), result.records):
            assert record["cell"] == cell.cell_id
            assert record["scenario"] == "torus"
            assert record["mode"] == "carving"
            assert record["eps"] == 0.5
            assert record["metrics"]["rounds"] >= 0
            assert record["seconds"] >= 0
        rows = result.rows()
        assert rows[0]["method"] == "sequential"
        assert "diameter" in rows[0]

    def test_parallel_matches_serial(self):
        from tests.conftest import strip_volatile

        serial = run_suite(self._SPEC, workers=1)
        parallel = run_suite(self._SPEC, workers=2)
        assert list(map(strip_volatile, serial.records)) == list(
            map(strip_volatile, parallel.records)
        )

    def test_spec_as_dict_and_unknown_scenario(self):
        result = run_suite(
            {
                "name": "dict-spec",
                "scenarios": ["torus"],
                "sizes": [36],
                "methods": ["sequential"],
            }
        )
        assert result.executed == 1
        with pytest.raises(ValueError):
            run_suite(
                SuiteSpec(
                    name="bad", scenarios=("atlantis",), sizes=(36,), methods=("sequential",)
                )
            )

    def test_edge_list_scenario_cells(self, tmp_path, small_grid):
        from repro.graphs.io import write_edge_list

        path = os.path.join(tmp_path, "custom.edges")
        write_edge_list(small_grid, path)
        spec = SuiteSpec(
            name="user-graph",
            scenarios=("edgelist:" + path,),
            sizes=(0,),
            methods=("sequential",),
        )
        result = run_suite(spec)
        assert result.records[0]["metrics"]["n"] == small_grid.number_of_nodes()


class TestApiSurface:
    def test_run_suite_reachable_from_package_root(self):
        assert repro.run_suite is not None
        assert "run_suite" in repro.__all__

    def test_cell_ids_are_stable_strings(self):
        cell = Cell(
            scenario="torus", n=256, method="mpx", seed=3, mode="carving", eps=0.125
        )
        assert cell.cell_id == "torus/n256/mpx/eps0.125/s3"
        assert cell.column_key == "torus/n256/s3"
