"""Unit tests for the suite runner (repro.pipeline.runner)."""

import os

import pytest

import repro
from repro.pipeline import Cell, SuiteSpec, derive_cell_seed, load_spec, run_suite


class TestSuiteSpec:
    def test_expand_carving_grid(self):
        spec = SuiteSpec(
            name="grid",
            scenarios=("torus", "cycle"),
            sizes=(36, 64),
            methods=("sequential",),
            mode="carving",
            eps=(0.5, 0.25),
            seeds=(0, 1, 2),
        )
        cells = spec.expand()
        assert len(cells) == 2 * 2 * 1 * 2 * 3
        assert len({cell.cell_id for cell in cells}) == len(cells)

    def test_decomposition_mode_ignores_eps_axis(self):
        spec = SuiteSpec(
            name="d",
            scenarios=("torus",),
            sizes=(36,),
            methods=("sequential",),
            mode="decomposition",
            eps=(0.5, 0.25, 0.125),
        )
        cells = spec.expand()
        assert len(cells) == 1
        assert cells[0].eps is None
        assert "eps" not in cells[0].cell_id

    def test_rejects_unknown_method_and_mode(self):
        with pytest.raises(ValueError):
            SuiteSpec(name="x", scenarios=("torus",), sizes=(36,), methods=("bogus",))
        with pytest.raises(ValueError):
            SuiteSpec(
                name="x", scenarios=("torus",), sizes=(36,), methods=("mpx",), mode="pondering"
            )
        with pytest.raises(ValueError):
            SuiteSpec(name="x", scenarios=(), sizes=(36,), methods=("mpx",))

    def test_from_dict_roundtrip_and_unknown_keys(self):
        spec = SuiteSpec(
            name="r", scenarios=("torus",), sizes=(36,), methods=("mpx",), seeds=(0, 1)
        )
        assert SuiteSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError):
            SuiteSpec.from_dict({"name": "r", "frobnicate": 1})

    def test_load_spec_from_json_file(self, tmp_path):
        path = os.path.join(tmp_path, "spec.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                '{"name": "from-file", "scenarios": ["torus"], "sizes": [36],'
                ' "methods": ["sequential"], "mode": "carving", "eps": [0.5]}'
            )
        spec = load_spec(path)
        assert spec.name == "from-file"
        assert spec.mode == "carving"
        assert spec.eps == (0.5,)


class TestSeedDerivation:
    def test_derivation_is_deterministic_and_keyed(self):
        assert derive_cell_seed(0, "a") == derive_cell_seed(0, "a")
        assert derive_cell_seed(0, "a") != derive_cell_seed(0, "b")
        assert derive_cell_seed(0, "a") != derive_cell_seed(1, "a")
        # Stable across platforms/processes: pin one value so an accidental
        # change of the derivation (which would orphan every existing store)
        # fails loudly.
        assert derive_cell_seed(0, "a") == 0x9DF3C5FA

    def test_method_columns_share_topology_and_cells_are_reproducible(self):
        spec = SuiteSpec(
            name="seeds",
            scenarios=("regular",),
            sizes=(36,),
            methods=("mpx", "ls93"),
            seeds=(0, 1),
        )
        def run():
            return {
                record["cell"]: {
                    key: value
                    for key, value in record.items()
                    if key not in ("seconds", "timings")
                }
                for record in run_suite(spec).records
            }

        records = run()
        mpx0 = records["regular/n36/mpx/s0"]
        ls0 = records["regular/n36/ls93/s0"]
        mpx1 = records["regular/n36/mpx/s1"]
        # Same grid column (seed index) -> same topology for every method...
        assert mpx0["graph_seed"] == ls0["graph_seed"]
        # ...but different algorithm streams per cell,
        assert mpx0["algo_seed"] != ls0["algo_seed"]
        # and different repetitions get fresh topologies.
        assert mpx0["graph_seed"] != mpx1["graph_seed"]

        # Rerunning the suite from scratch reproduces every seed and metric
        # (only the wall-time field may differ).
        assert run() == records


class TestRunSuite:
    _SPEC = SuiteSpec(
        name="exec",
        scenarios=("torus",),
        sizes=(36,),
        methods=("sequential", "mpx"),
        mode="carving",
        eps=(0.5,),
        seeds=(0,),
        validate=True,
    )

    def test_records_carry_grid_params_and_metrics(self):
        result = run_suite(self._SPEC)
        assert result.executed == 2 and result.skipped == 0
        for cell, record in zip(self._SPEC.expand(), result.records):
            assert record["cell"] == cell.cell_id
            assert record["scenario"] == "torus"
            assert record["mode"] == "carving"
            assert record["eps"] == 0.5
            assert record["metrics"]["rounds"] >= 0
            assert record["seconds"] >= 0
        rows = result.rows()
        assert rows[0]["method"] == "sequential"
        assert "diameter" in rows[0]

    def test_parallel_matches_serial(self):
        from tests.conftest import strip_volatile

        serial = run_suite(self._SPEC, workers=1)
        parallel = run_suite(self._SPEC, workers=2)
        assert list(map(strip_volatile, serial.records)) == list(
            map(strip_volatile, parallel.records)
        )

    def test_spec_as_dict_and_unknown_scenario(self):
        result = run_suite(
            {
                "name": "dict-spec",
                "scenarios": ["torus"],
                "sizes": [36],
                "methods": ["sequential"],
            }
        )
        assert result.executed == 1
        with pytest.raises(ValueError):
            run_suite(
                SuiteSpec(
                    name="bad", scenarios=("atlantis",), sizes=(36,), methods=("sequential",)
                )
            )

    def test_edge_list_scenario_cells(self, tmp_path, small_grid):
        from repro.graphs.io import write_edge_list

        path = os.path.join(tmp_path, "custom.edges")
        write_edge_list(small_grid, path)
        spec = SuiteSpec(
            name="user-graph",
            scenarios=("edgelist:" + path,),
            sizes=(0,),
            methods=("sequential",),
        )
        result = run_suite(spec)
        assert result.records[0]["metrics"]["n"] == small_grid.number_of_nodes()


class TestTaskAxis:
    _SPEC = SuiteSpec(
        name="tasks",
        scenarios=("torus",),
        sizes=(36,),
        methods=("sequential", "mpx"),
        tasks=("decompose", "mis", "coloring"),
        seeds=(0,),
        validate=True,
    )

    def test_task_axis_expands_innermost(self):
        cells = self._SPEC.expand()
        assert len(cells) == 2 * 3
        assert [cell.task for cell in cells[:3]] == ["decompose", "mis", "coloring"]
        # The decompose task keeps the pre-task cell id; tasks append theirs.
        assert cells[0].cell_id == "torus/n36/sequential/s0"
        assert cells[1].cell_id == "torus/n36/sequential/mis/s0"
        # All tasks of a group share the clustering identity (and seed).
        assert cells[1].base_id == cells[0].cell_id == cells[2].base_id

    def test_task_records_carry_verified_metrics(self):
        result = run_suite(self._SPEC)
        by_cell = {record["cell"]: record for record in result.records}
        mis = by_cell["torus/n36/mpx/mis/s0"]
        assert mis["task"] == "mis"
        assert mis["task_metrics"]["verified"] is True
        assert mis["task_metrics"]["mis_size"] > 0
        assert mis["task_rounds"] > 0
        coloring = by_cell["torus/n36/mpx/coloring/s0"]
        assert coloring["task_metrics"]["colors_used"] >= 2
        plain = by_cell["torus/n36/mpx/s0"]
        assert plain["task"] == "decompose"
        assert plain["task_rounds"] == 0 and plain["task_metrics"] == {}
        # Tasks of one group share the decomposition: same algo seed, same
        # decomposition metrics and ledger aggregate.
        assert mis["algo_seed"] == plain["algo_seed"] == coloring["algo_seed"]
        assert mis["metrics"] == plain["metrics"]
        assert mis["rounds"] == plain["rounds"]

    def test_zero_redundant_decompositions(self):
        result = run_suite(self._SPEC)
        assert result.arena["task_groups"] == 2
        assert result.arena["algorithm_runs"] == 2
        assert result.arena["graph_builds"] == 1  # one topology column

    def test_task_records_identical_across_scheduling_modes(self):
        from tests.conftest import strip_volatile

        baseline = [strip_volatile(r) for r in run_suite(self._SPEC).records]
        for kwargs in (
            {"workers": 2},
            {"shared_graphs": "off"},
            {"workers": 2, "shared_graphs": "off"},
        ):
            records = [strip_volatile(r) for r in run_suite(self._SPEC, **kwargs).records]
            assert records == baseline, kwargs

    @pytest.mark.parametrize("extension", ["jsonl", "sqlite"])
    def test_task_aware_resume_on_both_backends(self, tmp_path, extension):
        from tests.conftest import strip_volatile

        path = os.path.join(tmp_path, "tasks." + extension)
        # Seed the store with the decompose-only subset (a pre-task sweep).
        partial = dataclasses_replace_tasks(self._SPEC, ("decompose",))
        run_suite(partial, store=path)
        # Resuming with the full task axis computes only the task cells and
        # serves the decompose cells from the store.
        result = run_suite(self._SPEC, store=path)
        assert result.skipped == 2 and result.executed == 4
        fresh = run_suite(self._SPEC)
        assert [strip_volatile(r) for r in result.records] == [
            strip_volatile(r) for r in fresh.records
        ]

    def test_carving_suites_reject_task_axes(self):
        with pytest.raises(ValueError):
            SuiteSpec(
                name="bad",
                scenarios=("torus",),
                sizes=(36,),
                methods=("sequential",),
                mode="carving",
                tasks=("mis",),
            )

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            SuiteSpec(
                name="bad",
                scenarios=("torus",),
                sizes=(36,),
                methods=("sequential",),
                tasks=("frobnicate",),
            )

    def test_spec_dict_roundtrip_with_tasks(self):
        spec = dataclasses_replace_tasks(self._SPEC, ("mis", "coloring"))
        assert SuiteSpec.from_dict(spec.to_dict()) == spec


def dataclasses_replace_tasks(spec, tasks):
    import dataclasses

    return dataclasses.replace(spec, tasks=tasks)


class TestApiSurface:
    def test_run_suite_reachable_from_package_root(self):
        assert repro.run_suite is not None
        assert "run_suite" in repro.__all__

    def test_cell_ids_are_stable_strings(self):
        cell = Cell(
            scenario="torus", n=256, method="mpx", seed=3, mode="carving", eps=0.125
        )
        assert cell.cell_id == "torus/n256/mpx/eps0.125/s3"
        assert cell.column_key == "torus/n256/s3"
        task_cell = Cell(
            scenario="torus", n=256, method="mpx", seed=3, mode="decomposition", task="mis"
        )
        assert task_cell.cell_id == "torus/n256/mpx/mis/s3"
        assert task_cell.base_id == "torus/n256/mpx/s3"
