"""Unit tests for the graph generators."""

import math

import networkx as nx
import pytest

from repro.graphs.generators import (
    GraphFamily,
    assign_unique_identifiers,
    binary_tree_graph,
    caterpillar_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
    workload_suite,
)


def _uids(graph):
    return [graph.nodes[node]["uid"] for node in graph.nodes()]


class TestIdentifiers:
    def test_uids_are_a_permutation(self):
        graph = path_graph(17, seed=3)
        assert sorted(_uids(graph)) == list(range(17))

    def test_uids_are_deterministic_per_seed(self):
        first = _uids(path_graph(20, seed=5))
        second = _uids(path_graph(20, seed=5))
        assert first == second

    def test_different_seeds_scramble_differently(self):
        first = _uids(path_graph(50, seed=1))
        second = _uids(path_graph(50, seed=2))
        assert first != second

    def test_unscrambled_assignment_is_identity(self):
        graph = nx.path_graph(6)
        assign_unique_identifiers(graph, scramble=False)
        assert _uids(graph) == list(range(6))


class TestBasicFamilies:
    def test_path_graph_shape(self):
        graph = path_graph(10)
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 9
        assert nx.is_connected(graph)

    def test_path_requires_positive_n(self):
        with pytest.raises(ValueError):
            path_graph(0)

    def test_cycle_graph_shape(self):
        graph = cycle_graph(12)
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 12
        assert all(degree == 2 for _, degree in graph.degree())

    def test_cycle_requires_three_nodes(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star_graph_shape(self):
        graph = star_graph(9)
        assert graph.number_of_nodes() == 9
        degrees = sorted(degree for _, degree in graph.degree())
        assert degrees[-1] == 8
        assert degrees[:-1] == [1] * 8

    def test_grid_graph_shape(self):
        graph = grid_graph(4, 5)
        assert graph.number_of_nodes() == 20
        assert graph.number_of_edges() == 4 * 4 + 3 * 5
        assert nx.is_connected(graph)

    def test_grid_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            grid_graph(0, 5)

    def test_torus_is_four_regular(self):
        graph = torus_graph(5, 6)
        assert graph.number_of_nodes() == 30
        assert all(degree == 4 for _, degree in graph.degree())

    def test_torus_rejects_small_dimensions(self):
        with pytest.raises(ValueError):
            torus_graph(2, 5)

    def test_binary_tree_size(self):
        graph = binary_tree_graph(4)
        assert graph.number_of_nodes() == 2 ** 5 - 1
        assert nx.is_tree(graph)

    def test_caterpillar_structure(self):
        graph = caterpillar_graph(5, 2)
        assert graph.number_of_nodes() == 5 + 5 * 2
        assert nx.is_tree(graph)
        leaves = [node for node, degree in graph.degree() if degree == 1]
        assert len(leaves) >= 10

    def test_hypercube_is_regular(self):
        graph = hypercube_graph(4)
        assert graph.number_of_nodes() == 16
        assert all(degree == 4 for _, degree in graph.degree())

    def test_random_regular_degree(self):
        graph = random_regular_graph(30, 3, seed=7)
        assert all(degree == 3 for _, degree in graph.degree())

    def test_random_regular_rejects_odd_product(self):
        with pytest.raises(ValueError):
            random_regular_graph(7, 3)

    def test_erdos_renyi_bounds(self):
        graph = erdos_renyi_graph(40, 0.1, seed=4)
        assert graph.number_of_nodes() == 40
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_erdos_renyi_reproducible(self):
        first = erdos_renyi_graph(30, 0.2, seed=9)
        second = erdos_renyi_graph(30, 0.2, seed=9)
        assert set(first.edges()) == set(second.edges())


class TestUidSeedDecoupling:
    """Regression: the random generators used to feed the *same* seed to both
    the topology sampler and the identifier scrambler, so identifiers were
    correlated with the sampled edges."""

    def test_random_regular_uids_decoupled_from_topology(self):
        produced = random_regular_graph(24, 4, seed=7)
        raw = nx.random_regular_graph(4, 24, seed=7)
        # Topology is still driven by the topology seed...
        assert set(produced.edges()) == set(raw.edges())
        # ...but the identifier permutation differs from a same-seed scramble.
        same_seed = assign_unique_identifiers(raw, seed=7)
        produced_uids = [produced.nodes[node]["uid"] for node in sorted(produced.nodes())]
        same_seed_uids = [same_seed.nodes[node]["uid"] for node in sorted(same_seed.nodes())]
        assert produced_uids != same_seed_uids

    def test_random_regular_still_reproducible(self):
        first = random_regular_graph(24, 4, seed=7)
        second = random_regular_graph(24, 4, seed=7)
        assert set(first.edges()) == set(second.edges())
        assert all(
            first.nodes[node]["uid"] == second.nodes[node]["uid"] for node in first.nodes()
        )

    def test_erdos_renyi_uids_decoupled_from_topology(self):
        produced = erdos_renyi_graph(30, 0.2, seed=13)
        raw = nx.gnp_random_graph(30, 0.2, seed=13)
        assert set(produced.edges()) == set(raw.edges())
        same_seed = assign_unique_identifiers(raw, seed=13)
        produced_uids = [produced.nodes[node]["uid"] for node in sorted(produced.nodes())]
        same_seed_uids = [same_seed.nodes[node]["uid"] for node in sorted(same_seed.nodes())]
        assert produced_uids != same_seed_uids

    def test_uid_seed_derivation_is_injective_on_small_range(self):
        from repro.graphs.generators import _uid_seed

        derived = {_uid_seed(seed) for seed in range(1000)}
        assert len(derived) == 1000
        assert _uid_seed(None) is None
        for seed in range(100):
            assert _uid_seed(seed) != seed


class TestWorkloadSuite:
    def test_suite_contains_multiple_families(self):
        suite = workload_suite()
        assert len(suite) >= 4
        assert all(isinstance(family, GraphFamily) for family in suite)

    def test_families_build_graphs_near_requested_size(self):
        for family in workload_suite():
            graph = family.build(100)
            assert graph.number_of_nodes() >= 30
            assert graph.number_of_nodes() <= 260
            assert all("uid" in graph.nodes[node] for node in graph.nodes())

    def test_family_names_are_unique(self):
        names = [family.name for family in workload_suite()]
        assert len(names) == len(set(names))
