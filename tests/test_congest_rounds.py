"""Unit tests for the round-cost ledger."""

import pytest

from repro.congest.rounds import LedgerEntry, RoundLedger


class TestRoundLedger:
    def test_starts_empty(self):
        ledger = RoundLedger()
        assert ledger.total_rounds == 0
        assert ledger.entries == ()
        assert ledger.breakdown() == {}

    def test_charge_accumulates(self):
        ledger = RoundLedger()
        ledger.charge("custom", 5)
        ledger.charge("custom", 7)
        assert ledger.total_rounds == 12
        assert ledger.breakdown() == {"custom": 12}

    def test_charge_clamps_negative(self):
        ledger = RoundLedger()
        ledger.charge("oops", -3)
        assert ledger.total_rounds == 0

    def test_bfs_cost(self):
        ledger = RoundLedger()
        assert ledger.bfs(10) == 11
        assert ledger.total_rounds == 11

    def test_layer_count_cost(self):
        ledger = RoundLedger()
        assert ledger.layer_count(10) == 24

    def test_tree_aggregate_scales_with_congestion(self):
        ledger = RoundLedger()
        assert ledger.tree_aggregate(5, congestion=3) == 15
        assert ledger.tree_broadcast(5, congestion=3) == 15
        assert ledger.total_rounds == 30

    def test_tree_aggregate_minimum_one(self):
        ledger = RoundLedger()
        assert ledger.tree_aggregate(0, congestion=0) == 1

    def test_local_step(self):
        ledger = RoundLedger()
        ledger.local_step(4)
        assert ledger.total_rounds == 4
        assert ledger.breakdown() == {"local_step": 4}

    def test_merge_subroutine(self):
        inner = RoundLedger()
        inner.bfs(9)
        outer = RoundLedger()
        outer.merge(inner, detail="weak carving call")
        assert outer.total_rounds == inner.total_rounds
        assert outer.breakdown() == {"subroutine": 10}

    def test_entries_preserve_order_and_details(self):
        ledger = RoundLedger()
        ledger.charge("a", 1, detail="first")
        ledger.charge("b", 2, detail="second")
        assert [entry.operation for entry in ledger.entries] == ["a", "b"]
        assert [entry.detail for entry in ledger.entries] == ["first", "second"]
        assert all(isinstance(entry, LedgerEntry) for entry in ledger.entries)

    def test_breakdown_by_operation(self):
        ledger = RoundLedger()
        ledger.bfs(3)
        ledger.bfs(4)
        ledger.local_step()
        breakdown = ledger.breakdown()
        assert breakdown["bfs"] == 4 + 5
        assert breakdown["local_step"] == 1
