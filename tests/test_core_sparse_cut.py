"""Unit tests for Lemma 3.1 (balanced sparse cut or large small-diameter component)."""

import math

import networkx as nx
import pytest

from repro.congest.rounds import RoundLedger
from repro.core.sparse_cut import (
    LargeComponent,
    SparseCut,
    _layer_window,
    sparse_cut_or_component,
)
from repro.graphs.expanders import barrier_graph
from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.properties import subgraph_diameter


def _check_lemma_guarantees(graph, nodes, eps, result):
    """Assert the Lemma 3.1 guarantees for either outcome."""
    n = len(set(nodes))
    separator_budget = 4.0 * eps * n / math.log2(max(4, n)) + 2
    if isinstance(result, SparseCut):
        assert len(result.side_a) >= n / 3 - 1
        assert len(result.side_b) >= n / 3 - 1
        assert len(result.separator) <= separator_budget
        # The two sides must be non-adjacent.
        side_b = set(result.side_b)
        for node in result.side_a:
            for neighbour in graph.neighbors(node):
                assert neighbour not in side_b
        # The three parts partition the node set.
        assert set(result.side_a) | set(result.side_b) | set(result.separator) == set(nodes)
    else:
        assert isinstance(result, LargeComponent)
        assert len(result.component) >= n / 3 - 1
        assert len(result.boundary) <= separator_budget
        diameter_bound = 16 * (math.log2(max(4, n)) ** 2) / eps + 8
        assert subgraph_diameter(graph, result.component) <= diameter_bound
        # The boundary consists of outside nodes adjacent to the component.
        for node in result.boundary:
            assert node not in result.component


class TestLayerWindow:
    def test_window_grows_as_eps_shrinks(self):
        assert _layer_window(256, 0.1) > _layer_window(256, 0.9)

    def test_window_grows_with_n(self):
        assert _layer_window(1 << 16, 0.5) > _layer_window(1 << 4, 0.5)

    def test_window_at_least_two(self):
        assert _layer_window(4, 0.99) >= 2


class TestSmallDiameterInputs:
    def test_torus_returns_large_component(self, small_torus):
        result = sparse_cut_or_component(small_torus, small_torus.nodes(), 0.5)
        assert isinstance(result, LargeComponent)
        _check_lemma_guarantees(small_torus, small_torus.nodes(), 0.5, result)

    def test_star_returns_large_component(self, small_star):
        result = sparse_cut_or_component(small_star, small_star.nodes(), 0.5)
        assert isinstance(result, LargeComponent)
        _check_lemma_guarantees(small_star, small_star.nodes(), 0.5, result)

    def test_grid_guarantees(self, small_grid):
        result = sparse_cut_or_component(small_grid, small_grid.nodes(), 0.5)
        _check_lemma_guarantees(small_grid, small_grid.nodes(), 0.5, result)


class TestHighDiameterInputs:
    def test_long_path_returns_balanced_cut(self):
        graph = path_graph(400)
        result = sparse_cut_or_component(graph, graph.nodes(), 0.5)
        assert isinstance(result, SparseCut)
        _check_lemma_guarantees(graph, graph.nodes(), 0.5, result)

    def test_long_cycle_guarantees(self):
        graph = cycle_graph(300)
        result = sparse_cut_or_component(graph, graph.nodes(), 0.5)
        _check_lemma_guarantees(graph, graph.nodes(), 0.5, result)

    def test_cut_separator_is_light_on_path(self):
        graph = path_graph(500)
        result = sparse_cut_or_component(graph, graph.nodes(), 0.5)
        assert isinstance(result, SparseCut)
        # On a path every BFS layer from a contiguous seed has O(1) nodes.
        assert len(result.separator) <= 4


class TestSubsetsAndEdgeCases:
    def test_subset_restriction(self, small_torus):
        nodes = set(list(small_torus.nodes())[:40])
        # Use the largest connected chunk of the subset.
        from repro.graphs.properties import induced_components

        component = max(induced_components(small_torus, nodes), key=len)
        result = sparse_cut_or_component(small_torus, component, 0.5)
        _check_lemma_guarantees(small_torus, component, 0.5, result)

    def test_tiny_inputs_return_component(self, small_grid):
        result = sparse_cut_or_component(small_grid, list(small_grid.nodes())[:3], 0.5)
        assert isinstance(result, LargeComponent)
        assert len(result.component) <= 3

    def test_empty_input(self, small_grid):
        result = sparse_cut_or_component(small_grid, [], 0.5)
        assert isinstance(result, LargeComponent)
        assert result.component == set()

    def test_rejects_bad_eps(self, small_grid):
        with pytest.raises(ValueError):
            sparse_cut_or_component(small_grid, small_grid.nodes(), 0.0)

    def test_rounds_charged(self, small_torus):
        ledger = RoundLedger()
        sparse_cut_or_component(small_torus, small_torus.nodes(), 0.5, ledger=ledger)
        assert ledger.total_rounds > 0

    def test_deterministic(self, small_regular):
        first = sparse_cut_or_component(small_regular, small_regular.nodes(), 0.5)
        second = sparse_cut_or_component(small_regular, small_regular.nodes(), 0.5)
        assert first.kind == second.kind


class TestBarrierBehaviour:
    def test_barrier_graph_forces_large_diameter_component_or_heavy_cut(self):
        # Section 3 barrier: the subdivided expander admits no balanced sparse
        # cut with a light separator *and* no large component of small
        # diameter.  Our Lemma 3.1 implementation must still return one of the
        # two outcomes satisfying its guarantees (they are not contradictory:
        # the barrier only shows the diameter bound cannot be improved below
        # Theta(log^2 n / eps)), and for this graph the returned component's
        # diameter should be comparatively large.
        graph, meta = barrier_graph(400, 0.5, seed=1)
        result = sparse_cut_or_component(graph, graph.nodes(), 0.5)
        _check_lemma_guarantees(graph, graph.nodes(), 0.5, result)
        if isinstance(result, LargeComponent):
            # The subdivision length is a lower bound witness for the
            # intrinsic diameter of any sizable subgraph.
            assert subgraph_diameter(graph, result.component) >= meta["subdivision_length"] // 2
