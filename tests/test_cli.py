"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.family == "torus"
        assert args.method == "strong-log3"
        assert args.mode == "decomposition"
        assert args.n == 256

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--method", "bogus"])

    def test_rejects_unknown_family(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--family", "hyperbolic"])


class TestMain:
    def test_decomposition_run(self, capsys):
        exit_code = main(["--family", "grid", "--n", "36", "--method", "sequential"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "network decomposition" in output
        assert "colors" in output

    def test_carving_run(self, capsys):
        exit_code = main(
            ["--family", "cycle", "--n", "30", "--mode", "carving", "--method", "mpx", "--eps", "0.5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ball carving" in output

    def test_deterministic_strong_method(self, capsys):
        exit_code = main(["--family", "grid", "--n", "25", "--method", "strong-log3"])
        assert exit_code == 0
        assert "rounds" in capsys.readouterr().out

    def test_skip_validation_flag(self, capsys):
        exit_code = main(
            ["--family", "tree", "--n", "31", "--method", "sequential", "--skip-validation"]
        )
        assert exit_code == 0


class TestSuiteMode:
    def test_suite_from_flags(self, capsys):
        exit_code = main(
            ["--mode", "suite", "--family", "grid", "--n", "36", "--method", "sequential"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "suite 'cli-grid'" in output
        assert "executed 1 cell(s), 0 store hit(s)" in output

    def test_suite_from_spec_file_with_store_resume(self, tmp_path, capsys):
        import json
        import os

        spec_path = os.path.join(tmp_path, "spec.json")
        store_path = os.path.join(tmp_path, "store.jsonl")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "name": "cli-spec",
                    "scenarios": ["torus", "cycle"],
                    "sizes": [36],
                    "methods": ["sequential", "mpx"],
                    "mode": "carving",
                    "eps": [0.5],
                },
                handle,
            )
        argv = ["--mode", "suite", "--spec", spec_path, "--store", store_path]
        assert main(argv) == 0
        assert "executed 4 cell(s), 0 store hit(s)" in capsys.readouterr().out
        # Second invocation resumes entirely from the store.
        assert main(argv) == 0
        assert "executed 0 cell(s), 4 store hit(s)" in capsys.readouterr().out

    def test_suite_shared_graphs_flags(self, capsys):
        base = [
            "--mode", "suite", "--family", "torus", "--n", "36",
            "--method", "sequential",
        ]
        assert main(base + ["--shared-graphs", "on", "--arena-mb", "8"]) == 0
        on_output = capsys.readouterr().out
        assert "1 column(s) / 1 build(s) [column]" in on_output
        assert main(base + ["--shared-graphs", "off"]) == 0
        off_output = capsys.readouterr().out
        assert "column(s)" not in off_output

    def test_suite_mode_carving_from_flags(self, capsys):
        exit_code = main(
            [
                "--mode", "suite", "--suite-mode", "carving",
                "--family", "torus", "--n", "64",
                "--method", "sequential", "--eps", "0.25",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "carving" in output
        assert "0.25" in output

    def test_list_scenarios(self, capsys):
        assert main(["--list-scenarios"]) == 0
        output = capsys.readouterr().out
        for name in ("torus", "small-world", "expander-mix", "power-law", "weighted"):
            assert name in output

    def test_list_tasks(self, capsys):
        assert main(["--list-tasks"]) == 0
        output = capsys.readouterr().out
        for name in ("decompose", "mis", "coloring"):
            assert name in output

    def test_single_run_task(self, capsys):
        exit_code = main(
            ["--family", "torus", "--n", "36", "--method", "sequential", "--task", "mis"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "task mis" in output and "mis_size" in output

    def test_suite_tasks_axis_from_flags(self, capsys):
        exit_code = main(
            [
                "--mode", "suite", "--family", "torus", "--n", "36",
                "--method", "sequential", "--tasks", "mis,coloring",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "mis" in output and "coloring" in output
        assert "colors_used" in output and "mis_size" in output
        assert "2 cells" in output

    def test_suite_rejects_unknown_task(self, capsys):
        with pytest.raises(ValueError, match="unknown task"):
            main(
                [
                    "--mode", "suite", "--family", "torus", "--n", "36",
                    "--method", "sequential", "--tasks", "frobnicate",
                ]
            )

    def test_suite_into_sqlite_store_by_extension(self, tmp_path, capsys):
        import os

        store_path = os.path.join(tmp_path, "suite.sqlite")
        argv = [
            "--mode", "suite", "--family", "torus", "--n", "36",
            "--method", "sequential", "--store", store_path,
        ]
        assert main(argv) == 0
        assert "executed 1 cell(s)" in capsys.readouterr().out
        # Resumes from the SQLite store on the second invocation.
        assert main(argv) == 0
        assert "1 store hit(s)" in capsys.readouterr().out

    def test_store_backend_flag_forces_backend(self, tmp_path, capsys):
        import os
        import sqlite3

        store_path = os.path.join(tmp_path, "suite.data")
        assert main(
            [
                "--mode", "suite", "--family", "torus", "--n", "36",
                "--method", "sequential", "--store", store_path,
                "--store-backend", "sqlite",
            ]
        ) == 0
        count = sqlite3.connect(store_path).execute(
            "SELECT COUNT(*) FROM results"
        ).fetchone()[0]
        assert count == 1


class TestStoreVerbs:
    def _make_store(self, tmp_path, filename):
        import os

        store_path = os.path.join(tmp_path, filename)
        assert main(
            [
                "--mode", "suite", "--family", "torus", "--n", "36",
                "--method", "sequential", "--store", store_path,
            ]
        ) == 0
        return store_path

    def test_store_migrate_and_export_roundtrip(self, tmp_path, capsys):
        import os

        jsonl_path = self._make_store(tmp_path, "run.jsonl")
        sqlite_path = os.path.join(tmp_path, "run.sqlite")
        export_path = os.path.join(tmp_path, "export.jsonl")
        capsys.readouterr()

        assert main(["store", "migrate", jsonl_path, sqlite_path]) == 0
        assert "migrated 1 record(s)" in capsys.readouterr().out
        assert main(["store", "export", sqlite_path, export_path]) == 0
        assert "exported 1 record(s)" in capsys.readouterr().out
        with open(jsonl_path, "rb") as handle:
            original = handle.read()
        with open(export_path, "rb") as handle:
            assert handle.read() == original

    def test_store_info(self, tmp_path, capsys):
        jsonl_path = self._make_store(tmp_path, "run.jsonl")
        capsys.readouterr()
        assert main(["store", "info", jsonl_path]) == 0
        output = capsys.readouterr().out
        assert "backend=jsonl" in output and "cells=1" in output

    def test_store_requires_a_verb(self, capsys):
        with pytest.raises(SystemExit):
            main(["store"])
