"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.family == "torus"
        assert args.method == "strong-log3"
        assert args.mode == "decomposition"
        assert args.n == 256

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--method", "bogus"])

    def test_rejects_unknown_family(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--family", "hyperbolic"])


class TestMain:
    def test_decomposition_run(self, capsys):
        exit_code = main(["--family", "grid", "--n", "36", "--method", "sequential"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "network decomposition" in output
        assert "colors" in output

    def test_carving_run(self, capsys):
        exit_code = main(
            ["--family", "cycle", "--n", "30", "--mode", "carving", "--method", "mpx", "--eps", "0.5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ball carving" in output

    def test_deterministic_strong_method(self, capsys):
        exit_code = main(["--family", "grid", "--n", "25", "--method", "strong-log3"])
        assert exit_code == 0
        assert "rounds" in capsys.readouterr().out

    def test_skip_validation_flag(self, capsys):
        exit_code = main(
            ["--family", "tree", "--n", "31", "--method", "sequential", "--skip-validation"]
        )
        assert exit_code == 0
