"""Unit tests for graph / clustering I/O."""

import json
import os

import networkx as nx
import pytest

import repro
from repro.graphs.generators import grid_graph, torus_graph
from repro.graphs.io import (
    clustering_to_dict,
    read_clustering,
    read_edge_list,
    write_clustering,
    write_edge_list,
)


class TestEdgeListRoundtrip:
    def test_roundtrip_preserves_structure_and_uids(self, tmp_path):
        graph = torus_graph(4, 4, seed=3)
        path = os.path.join(tmp_path, "torus.edges")
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert set(loaded.nodes()) == set(graph.nodes())
        assert set(map(frozenset, loaded.edges())) == set(map(frozenset, graph.edges()))
        for node in graph.nodes():
            assert loaded.nodes[node]["uid"] == graph.nodes[node]["uid"]

    def test_isolated_nodes_survive(self, tmp_path):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_node(7)
        graph.nodes[0]["uid"] = 2
        graph.nodes[1]["uid"] = 0
        graph.nodes[7]["uid"] = 1
        path = os.path.join(tmp_path, "tiny.edges")
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert 7 in loaded.nodes()
        assert loaded.nodes[7]["uid"] == 1

    def test_missing_uids_are_assigned(self, tmp_path):
        path = os.path.join(tmp_path, "raw.edges")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("0 1\n1 2\n2 3\n")
        loaded = read_edge_list(path)
        uids = [loaded.nodes[node]["uid"] for node in loaded.nodes()]
        assert len(set(uids)) == len(uids)

    def test_blank_lines_and_comments_ignored(self, tmp_path):
        path = os.path.join(tmp_path, "messy.edges")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("# a comment that is not a uid line\n\n0 1\n\n1 2\n")
        loaded = read_edge_list(path)
        assert loaded.number_of_edges() == 2


class TestLabelTypePreservation:
    """Regression: int-looking *string* labels must stay strings.

    Before the fix, ``write_edge_list`` wrote the string node ``"5"`` and the
    integer node ``5`` identically, so the loader collapsed both to the
    integer — corrupting graphs whose labels are numeric strings (common in
    external edge-list datasets) and breaking uid association.
    """

    def test_numeric_string_labels_round_trip_as_strings(self, tmp_path):
        graph = nx.Graph()
        graph.add_edge("5", "alpha")
        graph.add_edge("alpha", 7)
        graph.nodes["5"]["uid"] = 0
        graph.nodes["alpha"]["uid"] = 1
        graph.nodes[7]["uid"] = 2
        path = os.path.join(tmp_path, "typed.edges")
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert set(loaded.nodes()) == {"5", "alpha", 7}
        assert loaded.nodes["5"]["uid"] == 0
        assert loaded.nodes[7]["uid"] == 2

    def test_mixed_int_and_string_twin_labels_stay_distinct(self, tmp_path):
        graph = nx.Graph()
        graph.add_edge(5, "5")  # int 5 and string "5" are different nodes
        path = os.path.join(tmp_path, "twins.edges")
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.number_of_nodes() == 2
        assert loaded.has_edge(5, "5")

    def test_plain_string_labels_stay_unquoted_and_readable(self, tmp_path):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        path = os.path.join(tmp_path, "plain.edges")
        write_edge_list(graph, path)
        with open(path, "r", encoding="utf-8") as handle:
            assert "a b" in handle.read()
        assert set(read_edge_list(path).nodes()) == {"a", "b"}

    def test_whitespace_labels_rejected_instead_of_corrupting(self, tmp_path):
        graph = nx.Graph()
        graph.add_edge("two words", "b")
        with pytest.raises(ValueError):
            write_edge_list(graph, os.path.join(tmp_path, "bad.edges"))

    def test_hash_prefixed_labels_round_trip_instead_of_parsing_as_comments(self, tmp_path):
        graph = nx.Graph()
        graph.add_edge("#v1", "b")
        path = os.path.join(tmp_path, "hash.edges")
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert set(loaded.nodes()) == {"#v1", "b"}
        assert loaded.has_edge("#v1", "b")


class TestClusteringSerialisation:
    def test_carving_roundtrip(self, tmp_path, small_grid):
        carving = repro.carve(small_grid, 0.5, method="sequential")
        path = os.path.join(tmp_path, "carving.json")
        write_clustering(carving, path)
        payload = read_clustering(path)
        assert payload["type"] == "ball_carving"
        assert payload["n"] == small_grid.number_of_nodes()
        total = sum(len(cluster["nodes"]) for cluster in payload["clusters"])
        assert total + len(payload["dead"]) == small_grid.number_of_nodes()

    def test_decomposition_roundtrip(self, tmp_path, small_grid):
        decomposition = repro.decompose(small_grid, method="sequential")
        path = os.path.join(tmp_path, "decomposition.json")
        write_clustering(decomposition, path)
        payload = read_clustering(path)
        assert payload["type"] == "network_decomposition"
        assert payload["colors"] == decomposition.num_colors
        assert all("color" in cluster for cluster in payload["clusters"])

    def test_dict_serialisation_is_json_compatible(self, small_grid):
        decomposition = repro.decompose(small_grid, method="mpx", seed=1)
        payload = clustering_to_dict(decomposition)
        json.dumps(payload, default=str)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            clustering_to_dict("not a clustering")

    def test_read_rejects_foreign_json(self, tmp_path):
        path = os.path.join(tmp_path, "foreign.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"something": "else"}, handle)
        with pytest.raises(ValueError):
            read_clustering(path)
