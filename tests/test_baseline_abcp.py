"""Unit tests for the ABCP96 transformation baseline (message-size study)."""

import math

import pytest

from repro.baselines.abcp import ABCPReport, abcp_strong_carving
from repro.clustering.validation import check_ball_carving, strong_diameter
from repro.congest.messages import default_bandwidth
from repro.graphs.generators import cycle_graph, grid_graph, torus_graph


class TestAbcpCarving:
    def test_structural_invariants_on_grid(self):
        graph = grid_graph(5, 5)
        carving, report = abcp_strong_carving(graph)
        check_ball_carving(carving)

    def test_structural_invariants_on_torus(self):
        graph = torus_graph(5, 5)
        carving, report = abcp_strong_carving(graph)
        check_ball_carving(carving)

    def test_diameter_is_logarithmic(self):
        graph = torus_graph(6, 6)
        carving, _ = abcp_strong_carving(graph)
        bound = 2 * math.ceil(math.log2(graph.number_of_nodes())) + 2
        for cluster in carving.clusters:
            assert strong_diameter(carving.graph, cluster.nodes) <= bound

    def test_dead_fraction_at_most_half(self):
        graph = cycle_graph(40)
        carving, _ = abcp_strong_carving(graph)
        assert carving.dead_fraction <= 0.5 + 1.0 / 40


class TestAbcpMessageSizes:
    def test_messages_exceed_congest_bandwidth(self):
        graph = torus_graph(6, 6)
        _, report = abcp_strong_carving(graph)
        assert report.max_message_bits > report.congest_bandwidth_bits
        assert report.blowup_factor > 1.0

    def test_bandwidth_field_matches_default(self):
        graph = grid_graph(4, 4)
        _, report = abcp_strong_carving(graph)
        assert report.congest_bandwidth_bits == default_bandwidth(16)

    def test_blowup_grows_with_graph_size(self):
        _, small = abcp_strong_carving(grid_graph(4, 4))
        _, large = abcp_strong_carving(grid_graph(8, 8))
        assert large.max_message_bits >= small.max_message_bits

    def test_power_graph_edges_recorded(self):
        graph = cycle_graph(20)
        _, report = abcp_strong_carving(graph)
        assert report.power_graph_edges >= graph.number_of_edges()

    def test_gathered_regions_positive(self):
        graph = grid_graph(4, 5)
        _, report = abcp_strong_carving(graph)
        assert report.gathered_regions >= 1


class TestAbcpReport:
    def test_blowup_with_zero_bandwidth(self):
        report = ABCPReport(max_message_bits=100, congest_bandwidth_bits=0)
        assert report.blowup_factor == float("inf")

    def test_blowup_ratio(self):
        report = ABCPReport(max_message_bits=100, congest_bandwidth_bits=25)
        assert report.blowup_factor == pytest.approx(4.0)
