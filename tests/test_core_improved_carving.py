"""Unit tests for the Theorem 3.2 / 3.3 diameter improvement."""

import math

import pytest

from repro.clustering.validation import (
    check_ball_carving,
    clusters_nonadjacent,
    strong_diameter,
)
from repro.congest.rounds import RoundLedger
from repro.core.improved_carving import (
    ImprovementTrace,
    improved_strong_carving,
    theorem33_carving,
)
from repro.baselines.sequential import greedy_sequential_carving
from repro.graphs.generators import cycle_graph, path_graph


class TestImprovedCarving:
    @pytest.mark.parametrize("eps", [0.5, 0.25])
    def test_structural_invariants(self, graph_zoo, eps):
        for name, graph in graph_zoo.items():
            carving = improved_strong_carving(graph, eps)
            check_ball_carving(carving)

    def test_dead_fraction_within_eps(self, graph_zoo):
        for name, graph in graph_zoo.items():
            carving = improved_strong_carving(graph, 0.5)
            assert carving.dead_fraction <= 0.5 + 1.0 / graph.number_of_nodes(), name

    def test_clusters_connected_and_nonadjacent(self, small_torus):
        carving = improved_strong_carving(small_torus, 0.5)
        assert clusters_nonadjacent(carving.graph, carving.clusters)
        for cluster in carving.clusters:
            strong_diameter(carving.graph, cluster.nodes)

    def test_diameter_within_log2_bound(self, small_torus):
        eps = 0.5
        carving = improved_strong_carving(small_torus, eps)
        n = small_torus.number_of_nodes()
        bound = 16 * (math.log2(n) ** 2) / eps + 8
        for cluster in carving.clusters:
            assert strong_diameter(carving.graph, cluster.nodes) <= bound

    def test_improves_or_matches_base_diameter_on_long_cycle(self):
        graph = cycle_graph(256, seed=1)
        eps = 0.5
        improved = improved_strong_carving(graph, eps)
        n = graph.number_of_nodes()
        bound = 8 * (math.log2(n) ** 2) / eps + 8
        worst = max(
            (strong_diameter(improved.graph, c.nodes) for c in improved.clusters), default=0
        )
        assert worst <= bound

    def test_deterministic(self, small_regular):
        first = improved_strong_carving(small_regular, 0.5)
        second = improved_strong_carving(small_regular, 0.5)
        assert first.cluster_of() == second.cluster_of()

    def test_trace_diagnostics(self, small_torus):
        trace = ImprovementTrace()
        improved_strong_carving(small_torus, 0.5, trace=trace)
        assert trace.base_carving_invocations >= 1
        assert trace.recursion_levels >= 1
        assert (
            trace.sparse_cut_events + trace.component_events + trace.accepted_clusters >= 1
        )

    def test_oversized_clusters_trigger_lemma31(self):
        # A long cycle forces the base carving's clusters over the
        # O(log^2 n / eps) target, so the Lemma 3.1 machinery must fire.
        graph = cycle_graph(700, seed=2)
        trace = ImprovementTrace()
        carving = improved_strong_carving(graph, 0.5, trace=trace)
        assert trace.sparse_cut_events + trace.component_events >= 1
        check_ball_carving(carving)

    def test_custom_base_algorithm(self, small_torus):
        carving = improved_strong_carving(
            small_torus, 0.5, base_algorithm=greedy_sequential_carving
        )
        check_ball_carving(carving)

    def test_subset_restriction(self, small_torus):
        nodes = set(list(small_torus.nodes())[:40])
        carving = improved_strong_carving(small_torus, 0.5, nodes=nodes)
        assert carving.clustered_nodes | carving.dead == nodes

    def test_disconnected_input(self, disconnected_graph):
        carving = improved_strong_carving(disconnected_graph, 0.5)
        check_ball_carving(carving)

    def test_empty_input(self, small_grid):
        carving = improved_strong_carving(small_grid, 0.5, nodes=[])
        assert carving.clusters == []

    def test_rejects_bad_eps(self, small_grid):
        with pytest.raises(ValueError):
            improved_strong_carving(small_grid, 0.0)

    def test_rounds_charged_per_level(self, small_grid):
        ledger = RoundLedger()
        improved_strong_carving(small_grid, 0.5, ledger=ledger)
        assert "theorem32_level" in ledger.breakdown()


class TestTheorem33:
    def test_valid_carving(self, small_torus):
        carving = theorem33_carving(small_torus, 0.5)
        check_ball_carving(carving)

    def test_rounds_exceed_theorem22(self, small_torus):
        from repro.core.strong_carving import theorem22_carving

        base = theorem22_carving(small_torus, 0.5)
        improved = theorem33_carving(small_torus, 0.5)
        # Theorem 3.3 pays extra rounds for the recursion (O(log^10) vs
        # O(log^7) asymptotically); on any fixed graph it must not be cheaper.
        assert improved.rounds >= base.rounds
