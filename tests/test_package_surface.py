"""Tests for the package surface: exports, node context defaults, examples.

These guard the parts a downstream user touches first: the top-level
re-exports, the ``python -m repro`` entry point, the node-program context
defaults, and the runnable examples (imported and executed on scaled-down
inputs so a broken example fails CI rather than the reader).
"""

import importlib
import runpy
import subprocess
import sys

import pytest

import repro
from repro.congest.algorithm import NodeContext


class TestPackageSurface:
    def test_top_level_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        for module_name in (
            "repro.core",
            "repro.graphs",
            "repro.congest",
            "repro.clustering",
            "repro.baselines",
            "repro.applications",
            "repro.analysis",
            "repro.pipeline",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), "{}.{}".format(module_name, name)

    def test_version_string(self):
        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_main_module_runs_help(self):
        process = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert process.returncode == 0
        assert "repro-decompose" in process.stdout


class TestNodeContext:
    def test_defaults(self):
        context = NodeContext(node=3, uid=7, neighbors=(1, 2), n=10)
        assert context.extra == {}
        assert context.uid == 7
        assert tuple(context.neighbors) == (1, 2)

    def test_extra_is_per_instance(self):
        first = NodeContext(node=0, uid=0, neighbors=(), n=1)
        second = NodeContext(node=1, uid=1, neighbors=(), n=1)
        first.extra["flag"] = True
        assert "flag" not in second.extra


class TestExamplesRun:
    @pytest.mark.parametrize(
        "example",
        ["quickstart", "compare_algorithms", "congest_simulation"],
    )
    def test_example_scripts_execute(self, example, monkeypatch, capsys):
        # Run the example modules in-process (import machinery, not a shell)
        # so failures surface with proper tracebacks; compare_algorithms takes
        # an optional size argument which we shrink for test speed.
        import os

        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        script = os.path.join(repo_root, "examples", "{}.py".format(example))
        monkeypatch.setattr(sys, "argv", ["example", "64"])
        runpy.run_path(script, run_name="__main__")
        output = capsys.readouterr().out
        assert output.strip()

    def test_download_roadnet_offline_full_runs_memmap(self, monkeypatch, capsys):
        """``--offline --full`` drives the out-of-core memmap pipeline on the
        committed fixture — no network, no networkx host for the workload."""
        import os

        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        script = os.path.join(repo_root, "examples", "download_roadnet.py")
        monkeypatch.setattr(sys, "argv", ["example", "--offline", "--full"])
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_path(script, run_name="__main__")
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert "fixture road network" in output
        assert "graph backend: memmap" in output
        assert "out-of-core" in output
