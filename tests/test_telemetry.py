"""Telemetry tests: spans, metrics, progress, and their suite integration.

The contract under test (ISSUE 9): observability is *additive* — a traced
and metered run stores byte-identical result records to an untelemetered
one (modulo wall time), every trace line is complete JSON even when cells
time out or workers are killed, metrics aggregate identically whichever
execution mode ran the cells, and the trace's phase totals reconcile with
the per-record ``timings`` the store already keeps.
"""

import io
import json
import os
import time

import pytest

import repro
from repro import telemetry
from repro.analysis.trace import (
    PHASE_SPANS,
    critical_path,
    format_critical_path,
    format_slowest,
    format_summary,
    load_trace,
    phase_totals,
    slowest,
    summarize,
)
from repro.cli import main as cli_main
from repro.pipeline import SuiteSpec, convert_store, open_store, run_suite
from tests.conftest import strip_volatile

from tests.test_chaos import strip_chaos


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Telemetry state is process-global: always reset it between tests."""
    yield
    telemetry.disable_tracing()
    telemetry.configure_metrics(False)
    telemetry.reset_metrics()


def _spec(**overrides):
    payload = {
        "name": "telemetry",
        "scenarios": ("torus",),
        "sizes": (36,),
        "methods": ("sequential", "mpx"),
        "mode": "decomposition",
        "seeds": (0, 1),
        "validate": True,
    }
    payload.update(overrides)
    return SuiteSpec(**payload)


def _read_lines(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [line for line in handle.read().splitlines() if line]


# ---------------------------------------------------------------------------
# Span tracing unit surface
# ---------------------------------------------------------------------------


class TestSpans:
    def test_disabled_path_is_shared_noop(self, tmp_path):
        assert not telemetry.tracing_enabled()
        first = telemetry.span("cell.task", cell="a")
        second = telemetry.span("suite")
        assert first is second  # the shared _NOOP singleton: no allocation
        with first as live:
            assert live.id is None
            live.set("key", "value")  # all no-ops
        telemetry.event("supervisor.retry")
        telemetry.emit_completed("congest.rounds", time.perf_counter())
        assert list(tmp_path.iterdir()) == []  # nothing written anywhere

    def test_nesting_parents_and_attrs(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure_tracing(path)
        with telemetry.span("suite", suite="t") as root:
            with telemetry.span("cell.group", cell="torus/n36") as child:
                assert telemetry.current_span_id() == child.id
                child.set("cells", 2)
        telemetry.disable_tracing()
        lines = [json.loads(line) for line in _read_lines(path)]
        assert [line["name"] for line in lines] == ["cell.group", "suite"]
        child_line, root_line = lines
        assert child_line["parent"] == root_line["id"]
        assert root_line["parent"] is None
        assert child_line["attrs"] == {"cell": "torus/n36", "cells": 2}
        assert root_line["dur_s"] >= child_line["dur_s"] >= 0

    def test_exception_closes_span_with_error_status(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure_tracing(path)
        with pytest.raises(ValueError):
            with telemetry.span("cell.decompose", method="mpx"):
                raise ValueError("boom")
        telemetry.disable_tracing()
        (line,) = [json.loads(line) for line in _read_lines(path)]
        assert line["status"] == "error" and line["error"] == "ValueError"

    def test_keyboard_interrupt_still_writes_complete_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure_tracing(path)
        with pytest.raises(KeyboardInterrupt):
            with telemetry.span("suite"):
                with telemetry.span("cell.task", cell="x"):
                    raise KeyboardInterrupt()
        telemetry.disable_tracing()
        lines = [json.loads(line) for line in _read_lines(path)]  # all parse
        assert [line["status"] for line in lines] == ["error", "error"]
        assert telemetry.current_span_id() is None  # stack fully unwound

    def test_event_and_emit_completed(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure_tracing(path)
        with telemetry.span("congest.run") as run_span:
            started = time.perf_counter()
            telemetry.emit_completed("congest.rounds", started, first=1, rounds=7)
            telemetry.event("supervisor.retry", attempt=2)
        telemetry.disable_tracing()
        by_name = {json.loads(line)["name"]: json.loads(line) for line in _read_lines(path)}
        batch = by_name["congest.rounds"]
        assert batch["parent"] == run_span.id  # retroactive spans still nest
        assert batch["attrs"] == {"first": 1, "rounds": 7}
        assert batch["dur_s"] >= 0
        assert by_name["supervisor.retry"]["dur_s"] == 0.0

    def test_default_parent_used_by_worker_spans(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure_tracing(path, parent="dead.beef")
        with telemetry.span("cell.group") as group:
            assert group.parent == "dead.beef"
        telemetry.disable_tracing()


# ---------------------------------------------------------------------------
# Metrics registry unit surface
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_disabled_by_default(self):
        telemetry.inc("cells_ok")
        telemetry.observe("phase_seconds", 0.5, phase="task")
        snap = telemetry.snapshot()
        assert snap == {"counters": {}, "histograms": {}}

    def test_counters_labels_and_histograms(self):
        telemetry.configure_metrics(True)
        telemetry.inc("cells_ok")
        telemetry.inc("cells_ok", 2)
        telemetry.inc("ledger_rounds", 5, primitive="bfs")
        telemetry.inc("ledger_rounds", 3, primitive="gather")
        telemetry.observe("phase_seconds", 0.002, phase="freeze")
        telemetry.observe("phase_seconds", 512.0, phase="freeze")  # +Inf bucket
        snap = telemetry.snapshot()
        assert snap["counters"]["cells_ok"] == 3
        assert snap["counters"]['ledger_rounds{primitive="bfs"}'] == 5
        assert snap["counters"]['ledger_rounds{primitive="gather"}'] == 3
        hist = snap["histograms"]['phase_seconds{phase="freeze"}']
        assert hist["count"] == 2 and hist["sum"] == pytest.approx(512.002)
        assert hist["counts"][1] == 1  # 0.002 <= 0.004 bound
        assert hist["counts"][-1] == 1  # 512 overflows every bound

    def test_marker_delta_and_merge_roundtrip(self):
        telemetry.configure_metrics(True)
        telemetry.inc("cells_ok", 10)  # pre-existing state a fork would inherit
        mark = telemetry.marker()
        telemetry.inc("cells_ok", 4)
        telemetry.observe("phase_seconds", 0.1, phase="task")
        delta = telemetry.delta_since(mark)
        assert delta["counters"] == {"cells_ok": 4}  # inherited 10 cancels out
        merged = telemetry.MetricsRegistry()
        merged.merge(delta)
        merged.merge(delta)
        snap = merged.snapshot()
        assert snap["counters"]["cells_ok"] == 8
        assert snap["histograms"]['phase_seconds{phase="task"}']["count"] == 2

    def test_delta_and_summary_record_shapes(self):
        delta = telemetry.delta_record({"counters": {"cells_ok": 1}})
        assert telemetry.is_delta_record(delta)
        summary = telemetry.summary_record(
            {"counters": {"cells_ok": 1}}, run_info={"suite": "t"}
        )
        assert summary["kind"] == "telemetry"
        assert not telemetry.is_delta_record(summary)
        assert summary["run"]["suite"] == "t"
        json.dumps(summary)  # store-safe

    def test_render_prometheus(self):
        registry = telemetry.MetricsRegistry()
        registry.inc("cells_ok", 3)
        registry.inc('faults_injected{kind="crash"}', 2)
        registry.observe('phase_seconds{phase="task"}', 0.01)
        text = telemetry.render_prometheus(registry.snapshot())
        assert "# TYPE repro_cells_ok_total counter" in text
        assert "repro_cells_ok_total 3" in text
        assert 'repro_faults_injected_total{kind="crash"} 2' in text
        assert 'repro_phase_seconds_bucket{phase="task",le="+Inf"} 1' in text
        assert 'repro_phase_seconds_count{phase="task"} 1' in text
        assert text.endswith("\n")


# ---------------------------------------------------------------------------
# Progress reporter
# ---------------------------------------------------------------------------


class TestProgress:
    def test_heartbeat_counts_and_finish(self):
        stream = io.StringIO()
        reporter = telemetry.ProgressReporter(4, stream=stream, min_interval=0.0)
        reporter.set_column("torus/n36/s0")
        reporter.cell_done(ok=True)
        reporter.cell_done(ok=False)
        reporter.cell_done(ok=True, retries=2)
        reporter.finish()
        lines = stream.getvalue().splitlines()
        assert len(lines) >= 4
        assert "[suite] 3/4 cells" in lines[-1]
        assert "ok=2 failed=1 retried=2" in lines[-1]
        assert "col=torus/n36/s0" in lines[0]
        assert "col=" not in lines[-1]  # finish clears the column

    def test_rate_limit_and_closed_stream_are_safe(self):
        stream = io.StringIO()
        reporter = telemetry.ProgressReporter(100, stream=stream, min_interval=60.0)
        for _ in range(50):
            reporter.cell_done()
        # The first completion emits, every later one is throttled.
        assert len(stream.getvalue().splitlines()) == 1
        stream.close()
        reporter.finish()  # closed stream must never raise


# ---------------------------------------------------------------------------
# Suite integration
# ---------------------------------------------------------------------------


class TestSuiteIntegration:
    def test_records_identical_on_vs_off(self, tmp_path):
        spec = _spec()
        off = run_suite(spec, store=str(tmp_path / "off.jsonl"))
        on = run_suite(
            spec,
            store=str(tmp_path / "on.jsonl"),
            trace=str(tmp_path / "trace.jsonl"),
            metrics=True,
        )
        key = lambda r: r["cell"]
        for before, after in zip(
            sorted(off.records, key=key), sorted(on.records, key=key)
        ):
            assert strip_volatile(before) == strip_volatile(after)
        # The only store-level difference: the per-run telemetry summary.
        assert off.store.summaries() == []
        (summary,) = on.store.summaries()
        assert summary["kind"] == "telemetry"
        assert summary["run"]["suite"] == "telemetry"
        assert summary["run"]["executed"] == len(spec.expand())
        assert summary["metrics"]["counters"]["cells_ok"] == len(spec.expand())

    def test_trace_is_wellformed_and_uses_registered_names(self, tmp_path):
        spec = _spec()
        trace_path = str(tmp_path / "trace.jsonl")
        run_suite(spec, store=str(tmp_path / "runs.jsonl"), trace=trace_path)
        trace = load_trace(trace_path)
        assert trace.skipped_lines == 0
        names = {span.name for span in trace.spans}
        assert names <= set(telemetry.SPAN_NAMES)
        suites = trace.named("suite")
        assert len(suites) == 1
        # Serial run: a single tree rooted at the suite span, no orphans.
        assert [root.name for root in trace.roots] == ["suite"]
        assert len(trace.named("cell.task")) >= 1
        assert len(trace.named("cell.decompose")) >= 1
        assert suites[0].attrs["cells"] == len(spec.expand())

    def test_tracing_disabled_after_run(self, tmp_path):
        run_suite(
            _spec(seeds=(0,), methods=("mpx",)),
            store=str(tmp_path / "runs.jsonl"),
            trace=str(tmp_path / "trace.jsonl"),
            metrics=True,
        )
        assert not telemetry.tracing_enabled()
        assert not telemetry.metrics_enabled()

    def test_progress_stream_receives_heartbeat(self, tmp_path):
        stream = io.StringIO()
        run_suite(
            _spec(seeds=(0,)),
            store=str(tmp_path / "runs.jsonl"),
            progress=stream,
        )
        final = stream.getvalue().splitlines()[-1]
        assert "[telemetry] 2/2 cells" in final
        assert "ok=2 failed=0" in final

    @pytest.mark.parametrize(
        "mode_kwargs",
        [
            {"workers": 1, "shared_graphs": True},
            {"workers": 2, "shared_graphs": False},
            {"workers": 2, "shared_graphs": True},
        ],
        ids=["serial-shared", "pool-unshared", "pool-arena"],
    )
    def test_metrics_aggregate_identically_across_modes(
        self, tmp_path, mode_kwargs
    ):
        """Worker deltas make pooled counters equal the serial ground truth."""
        spec = _spec()
        baseline = run_suite(
            spec, store=str(tmp_path / "base.jsonl"), metrics=True
        )
        result = run_suite(
            spec, store=str(tmp_path / "mode.jsonl"), metrics=True, **mode_kwargs
        )

        def mode_independent(counters):
            return {
                key: value
                for key, value in counters.items()
                if key == "cells_ok"
                or key.startswith("ledger_rounds")
                or key.startswith("kernel_selected")
            }

        (base_summary,) = baseline.store.summaries()
        (mode_summary,) = result.store.summaries()
        base_counters = mode_independent(base_summary["metrics"]["counters"])
        mode_counters = mode_independent(mode_summary["metrics"]["counters"])
        assert base_counters["cells_ok"] == len(spec.expand())
        assert base_counters == mode_counters

    def test_summary_on_sqlite_and_conversion(self, tmp_path):
        spec = _spec(seeds=(0,), methods=("mpx",))
        result = run_suite(
            spec, store=str(tmp_path / "runs.sqlite"), metrics=True
        )
        (summary,) = result.store.summaries()
        assert summary["kind"] == "telemetry"
        # Conversion to the other backend keeps the summary record.
        converted_path = str(tmp_path / "converted.jsonl")
        convert_store(str(tmp_path / "runs.sqlite"), converted_path)
        converted = open_store(converted_path)
        try:
            assert converted.summaries() == [summary]
        finally:
            converted.close()


# ---------------------------------------------------------------------------
# Supervision: trace integrity under faults, attempt provenance (ISSUE 9 c/d)
# ---------------------------------------------------------------------------


class TestSupervisedTelemetry:
    def test_retried_cell_rounds_reflect_only_the_successful_attempt(
        self, tmp_path
    ):
        """A healed cell's trace must not accumulate failed-attempt rounds."""
        spec = _spec()
        twin = run_suite(spec, store=str(tmp_path / "twin.jsonl"))
        healed = run_suite(
            spec,
            store=str(tmp_path / "healed.jsonl"),
            faults="crash:1",
            max_retries=2,
        )
        assert healed.supervisor["retried_ok"] >= 1
        retried = [r for r in healed.records if r.get("attempts", 1) > 1]
        assert retried, "forced first-attempt crash must retry at least one cell"
        twins = {r["cell"]: r for r in twin.records}
        for record in retried:
            assert record["rounds"]["attempt"] == record["attempts"]
            assert record["rounds"]["attempt"] >= 2
            # Modulo the attempt stamp, the round ledger equals the
            # fault-free twin's: only the successful attempt is charged.
            assert strip_chaos(record) == strip_chaos(twins[record["cell"]])

    def test_unsupervised_records_stamp_attempt_one(self, tmp_path):
        result = run_suite(
            _spec(seeds=(0,), methods=("mpx",)), store=str(tmp_path / "r.jsonl")
        )
        for record in result.records:
            assert record["rounds"]["attempt"] == 1

    def test_pool_hang_timeout_leaves_no_torn_trace_lines(self, tmp_path):
        """Killed/timed-out workers may drop spans but never corrupt lines."""
        spec = _spec(seeds=(0,))
        trace_path = str(tmp_path / "trace.jsonl")
        result = run_suite(
            spec,
            store=str(tmp_path / "runs.jsonl"),
            workers=2,
            faults="hang:1.0",
            cell_timeout=0.5,
            max_retries=0,
            trace=trace_path,
            metrics=True,
        )
        for record in result.records:
            assert record["status"] == "failed"
        for line in _read_lines(trace_path):
            json.loads(line)  # every surviving line is complete JSON
        trace = load_trace(trace_path)
        assert trace.skipped_lines == 0
        assert len(trace.named("suite")) == 1
        assert len(trace.named("supervisor.attempt")) >= 1
        (summary,) = result.store.summaries()
        counters = summary["metrics"]["counters"]
        assert counters["cells_failed"] == len(spec.expand())
        assert counters["supervisor_timeouts"] >= 1


# ---------------------------------------------------------------------------
# Trace analysis + CLI verbs
# ---------------------------------------------------------------------------


def _grid_24():
    return SuiteSpec(
        name="telemetry-recon",
        scenarios=("torus", "grid"),
        sizes=(36, 64),
        methods=("mpx", "strong-log3", "weak-rg20"),
        mode="decomposition",
        seeds=(0, 1),
    )


class TestTraceAnalysis:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        """One 24-cell traced serial run shared by the analysis tests."""
        tmp = tmp_path_factory.mktemp("traced")
        trace_path = str(tmp / "trace.jsonl")
        spec = _grid_24()
        result = repro.run_suite(
            spec,
            store=str(tmp / "runs.jsonl"),
            shared_graphs=False,
            trace=trace_path,
            metrics=True,
        )
        telemetry.disable_tracing()
        telemetry.configure_metrics(False)
        return spec, result, trace_path

    def test_phase_totals_reconcile_with_store_timings(self, traced_run):
        """Acceptance: trace phases match the store's timings within 5%."""
        spec, result, trace_path = traced_run
        assert len(result.records) == 24
        totals = phase_totals(load_trace(trace_path))
        timing_sums = {"graph_build": 0.0, "freeze": 0.0, "algo": 0.0}
        for record in result.records:
            timings = record["timings"]
            timing_sums["graph_build"] += timings.get("graph_build_s", 0.0)
            timing_sums["freeze"] += timings.get("freeze_s", 0.0)
            timing_sums["algo"] += timings.get("algo_s", 0.0)

        def close(span_total, timing_total):
            # 5% relative, with an absolute floor for sub-ms phases where
            # per-call timer overhead dominates.
            return abs(span_total - timing_total) <= max(
                0.05 * timing_total, 0.02
            )

        assert close(totals.get("graph_build", 0.0), timing_sums["graph_build"])
        assert close(totals.get("freeze", 0.0), timing_sums["freeze"])
        # algo_s = clustering + member-cell task time = decompose + task spans
        # (cell.validate nests inside cell.decompose, so it is not re-added).
        assert close(
            totals.get("decompose", 0.0) + totals.get("task", 0.0),
            timing_sums["algo"],
        )

    def test_summarize_slowest_critical_path(self, traced_run):
        _, _, trace_path = traced_run
        trace = load_trace(trace_path)
        summary = summarize(trace)
        assert summary["spans"] == len(trace.spans)
        assert summary["errors"] == 0
        assert summary["wall_s"] > 0
        assert set(PHASE_SPANS) <= set(summary["phases"])
        top = slowest(trace, top=5)
        assert len(top) == 5
        assert all(
            earlier.dur_s >= later.dur_s for earlier, later in zip(top, top[1:])
        )
        named = slowest(trace, top=3, name="cell.group")
        assert all(span.name == "cell.group" for span in named)
        path = critical_path(trace)
        assert path[0].name == "suite"
        assert len(path) >= 2
        # Formatters render without raising and mention their headline data.
        assert "spans" in format_summary(trace)
        assert "torus/" in format_slowest(trace, top=24, name="cell.group")
        assert "suite" in format_critical_path(trace)

    def test_trace_cli_verbs(self, traced_run, capsys):
        _, _, trace_path = traced_run
        assert cli_main(["trace", "summarize", trace_path]) == 0
        assert cli_main(["trace", "slowest", trace_path, "--top", "3"]) == 0
        assert cli_main(["trace", "critical-path", trace_path]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "suite" in out
        assert cli_main(["trace", "summarize", trace_path + ".missing"]) == 1

    def test_telemetry_export_cli(self, traced_run, capsys):
        spec, result, _ = traced_run
        assert (
            cli_main(["telemetry", "export", "--store", result.store.path]) == 0
        )
        out = capsys.readouterr().out
        assert "# TYPE repro_cells_ok_total counter" in out
        assert "repro_cells_ok_total {}".format(len(spec.expand())) in out
