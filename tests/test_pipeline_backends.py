"""Store-backend tests: selection, SQLite backend, parity, conversion.

The contract under test: every backend behind
:class:`repro.pipeline.RunStoreBase` is interchangeable — identical suites
produce identical records whichever backend persists them, resume works
mid-suite on both, and conversion between backends is lossless to the byte.
"""

import json
import os
import sqlite3
import warnings

import pytest

import repro
from repro.pipeline import (
    RunStore,
    SCHEMA_VERSION,
    SqliteRunStore,
    StoreCorruptError,
    StoreSchemaError,
    SuiteSpec,
    backend_for_path,
    convert_store,
    open_store,
    read_records,
)
from tests.conftest import strip_volatile


def _record(cell_id, method="mpx", scenario="torus", n=36, eps=None, seed=0, rounds=1):
    return {
        "cell": cell_id,
        "scenario": scenario,
        "n": n,
        "method": method,
        "eps": eps,
        "seed": seed,
        "metrics": {"rounds": rounds},
    }


class TestBackendSelection:
    def test_extension_selects_backend(self):
        assert backend_for_path("runs/a.jsonl") == "jsonl"
        assert backend_for_path("runs/a.txt") == "jsonl"
        assert backend_for_path(None) == "jsonl"
        for extension in (".sqlite", ".sqlite3", ".db", ".SQLITE"):
            assert backend_for_path("runs/a" + extension) == "sqlite"

    def test_explicit_backend_overrides_extension(self):
        assert backend_for_path("a.jsonl", backend="sqlite") == "sqlite"
        assert backend_for_path("a.sqlite", backend="jsonl") == "jsonl"
        with pytest.raises(ValueError, match="unknown store backend"):
            backend_for_path("a.jsonl", backend="parquet")

    def test_open_store_returns_matching_backend(self, tmp_path):
        jsonl = open_store(os.path.join(tmp_path, "a.jsonl"))
        sqlite_store = open_store(os.path.join(tmp_path, "a.sqlite"))
        assert jsonl.backend == "jsonl" and isinstance(jsonl, RunStore)
        assert sqlite_store.backend == "sqlite"
        assert isinstance(sqlite_store, SqliteRunStore)
        sqlite_store.close()

    def test_sqlite_backend_rejects_in_memory(self):
        with pytest.raises(ValueError, match="file path"):
            SqliteRunStore(None)


class TestSqliteRunStore:
    def test_records_persist_and_reload(self, tmp_path):
        path = os.path.join(tmp_path, "store.sqlite")
        store = SqliteRunStore(path, suite="demo", metadata={"host": "test"})
        store.add(_record("a", rounds=3))
        store.add(_record("b", rounds=5))
        store.close()

        reloaded = SqliteRunStore(path)
        assert reloaded.suite == "demo"
        assert reloaded.metadata == {"host": "test"}
        assert len(reloaded) == 2
        assert "a" in reloaded and "b" in reloaded and "c" not in reloaded
        assert reloaded.completed_cells()["a"]["metrics"]["rounds"] == 3
        assert [record["cell"] for record in reloaded.results()] == ["a", "b"]
        reloaded.close()

    def test_wal_mode_is_active(self, tmp_path):
        path = os.path.join(tmp_path, "store.sqlite")
        store = SqliteRunStore(path)
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        store.close()

    def test_grid_columns_are_indexed(self, tmp_path):
        path = os.path.join(tmp_path, "store.sqlite")
        store = SqliteRunStore(path)
        indexes = {
            row[1]
            for row in store._conn.execute("PRAGMA index_list('results')").fetchall()
        }
        for column in ("scenario", "n", "method", "eps", "seed"):
            assert "idx_results_{}".format(column) in indexes
        # The filtered-query plan must actually use an index, not scan.
        plan = store._conn.execute(
            "EXPLAIN QUERY PLAN SELECT record FROM results WHERE method = ?", ("mpx",)
        ).fetchall()
        assert any("idx_results_method" in str(row) for row in plan)
        store.close()

    def test_query_filters_on_columns_and_json_fields(self, tmp_path):
        path = os.path.join(tmp_path, "store.sqlite")
        store = SqliteRunStore(path)
        store.add_many(
            [
                _record("t/n36/mpx/eps0.5/s0", method="mpx", eps=0.5),
                _record("t/n36/mpx/eps0.25/s0", method="mpx", eps=0.25),
                _record("t/n36/ls93/eps0.5/s0", method="ls93", eps=0.5),
            ]
        )
        assert len(store.query(method="mpx")) == 2
        assert len(store.query(method="mpx", eps=0.5)) == 1
        assert len(store.query(eps=None)) == 0
        assert store.query(cell="t/n36/ls93/eps0.5/s0")[0]["method"] == "ls93"
        with pytest.raises(ValueError, match="unknown query filter"):
            store.query(flavour="strawberry")
        store.close()

    def test_jsonl_query_matches_sqlite_query(self, tmp_path):
        records = [
            _record("c/{}".format(index), method="mpx" if index % 2 else "ls93")
            for index in range(10)
        ]
        jsonl = open_store(os.path.join(tmp_path, "q.jsonl"))
        sqlite_store = open_store(os.path.join(tmp_path, "q.sqlite"))
        jsonl.add_many(records)
        sqlite_store.add_many(records)
        assert jsonl.query(method="mpx") == sqlite_store.query(method="mpx")
        sqlite_store.close()

    def test_schema_version_rejection(self, tmp_path):
        path = os.path.join(tmp_path, "future.sqlite")
        store = SqliteRunStore(path)
        store._conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema'", (str(SCHEMA_VERSION + 1),)
        )
        store._conn.commit()
        store.close()
        with pytest.raises(StoreSchemaError):
            SqliteRunStore(path)

    def test_not_a_database_fails_clearly(self, tmp_path):
        path = os.path.join(tmp_path, "fake.sqlite")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"kind": "header", "schema": 3}\n')  # a JSONL file
        with pytest.raises(StoreCorruptError, match="not a readable SQLite"):
            SqliteRunStore(path)

    def test_truncated_database_fails_clearly(self, tmp_path):
        path = os.path.join(tmp_path, "torn.sqlite")
        store = SqliteRunStore(path, suite="demo")
        store.add_many([_record("cell/{}".format(index)) for index in range(64)])
        store.close()
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])  # rip the file in half
        with pytest.raises(StoreCorruptError):
            SqliteRunStore(path)

    def test_read_records_selects_backend_by_extension(self, tmp_path):
        path = os.path.join(tmp_path, "store.sqlite")
        store = SqliteRunStore(path)
        store.add(_record("a"))
        store.close()
        assert read_records(path)[0]["cell"] == "a"


class TestBackendParity:
    _SPEC = dict(
        name="parity",
        scenarios=("torus",),
        sizes=(36,),
        methods=("sequential", "mpx"),
        mode="carving",
        eps=(0.5,),
        seeds=(0,),
    )

    def test_identical_suites_yield_identical_records(self, tmp_path):
        jsonl_path = os.path.join(tmp_path, "run.jsonl")
        sqlite_path = os.path.join(tmp_path, "run.sqlite")
        jsonl_result = repro.run_suite(SuiteSpec(**self._SPEC), store=jsonl_path)
        sqlite_result = repro.run_suite(SuiteSpec(**self._SPEC), store=sqlite_path)
        assert sqlite_result.store.backend == "sqlite"
        assert list(map(strip_volatile, jsonl_result.records)) == list(
            map(strip_volatile, sqlite_result.records)
        )

    def test_roundtrip_through_sqlite_is_byte_identical(self, tmp_path):
        """jsonl -> sqlite -> jsonl reproduces the original file bytes."""
        jsonl_path = os.path.join(tmp_path, "run.jsonl")
        repro.run_suite(SuiteSpec(**self._SPEC), store=jsonl_path)
        sqlite_path = os.path.join(tmp_path, "run.sqlite")
        export_path = os.path.join(tmp_path, "export.jsonl")
        convert_store(jsonl_path, sqlite_path).close()
        convert_store(sqlite_path, export_path)
        with open(jsonl_path, "rb") as handle:
            original = handle.read()
        with open(export_path, "rb") as handle:
            exported = handle.read()
        assert exported == original

    def test_migrate_preserves_header_and_resume(self, tmp_path):
        jsonl_path = os.path.join(tmp_path, "run.jsonl")
        spec = SuiteSpec(**self._SPEC)
        repro.run_suite(spec, store=jsonl_path)
        sqlite_path = os.path.join(tmp_path, "migrated.sqlite")
        migrated = convert_store(jsonl_path, sqlite_path)
        assert migrated.suite == "parity"
        assert migrated.metadata["spec"]["name"] == "parity"
        migrated.close()
        # Resuming against the migrated store is a full store hit.
        rerun = repro.run_suite(spec, store=sqlite_path)
        assert rerun.executed == 0 and rerun.skipped == 2

    def test_convert_refuses_to_clobber_existing_store(self, tmp_path):
        jsonl_path = os.path.join(tmp_path, "run.jsonl")
        repro.run_suite(SuiteSpec(**self._SPEC), store=jsonl_path)
        with pytest.raises(ValueError, match="already exists"):
            convert_store(jsonl_path, jsonl_path)

    @pytest.mark.parametrize("extension", ["jsonl", "sqlite"])
    def test_resume_mid_suite(self, tmp_path, extension):
        """A partially-filled store resumes computing exactly the missing cells."""
        store_path = os.path.join(tmp_path, "resume." + extension)
        partial = dict(self._SPEC, methods=("sequential",))
        first = repro.run_suite(SuiteSpec(**partial), store=store_path)
        assert first.executed == 1
        full = repro.run_suite(SuiteSpec(**self._SPEC), store=store_path)
        assert full.executed == 1 and full.skipped == 1
        assert len(open_store(store_path).results()) == 2

    @pytest.mark.parametrize("extension", ["jsonl", "sqlite"])
    def test_resume_rejects_other_configuration(self, tmp_path, extension):
        store_path = os.path.join(tmp_path, "cfg." + extension)
        repro.run_suite(SuiteSpec(**self._SPEC), store=store_path)
        with pytest.raises(ValueError, match="master_seed|seed"):
            repro.run_suite(
                SuiteSpec(master_seed=99, **self._SPEC), store=store_path
            )

    def test_explicit_store_backend_overrides_extension(self, tmp_path):
        path = os.path.join(tmp_path, "actually-sqlite.jsonl")
        result = repro.run_suite(
            SuiteSpec(**self._SPEC), store=path, store_backend="sqlite"
        )
        assert result.store.backend == "sqlite"
        assert sqlite3.connect(path).execute("SELECT COUNT(*) FROM results").fetchone()[
            0
        ] == 2


class TestLedgerRounds:
    def test_records_carry_ledger_rounds_breakdown(self):
        result = repro.run_suite(
            SuiteSpec(
                name="rounds",
                scenarios=("torus",),
                sizes=(36,),
                methods=("strong-log3",),
            )
        )
        rounds = result.records[0]["rounds"]
        assert rounds["total"] >= 0
        assert isinstance(rounds["by_primitive"], dict)
        assert sum(rounds["by_primitive"].values()) == rounds["total"]
        # The flattened table surfaces the charged total.
        assert result.rows()[0]["ledger_rounds"] == rounds["total"]

    def test_ledger_rounds_deterministic_across_runs(self):
        spec = SuiteSpec(
            name="rounds-det", scenarios=("torus",), sizes=(36,), methods=("mpx",)
        )
        first = repro.run_suite(spec).records[0]["rounds"]
        second = repro.run_suite(spec).records[0]["rounds"]
        assert first == second

    def test_conversion_preserves_old_schema_versions(self, tmp_path):
        """Migrating a schema-1 store must not rebrand it as schema 3."""
        source = os.path.join(tmp_path, "v1.jsonl")
        with open(source, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"kind": "header", "schema": 1, "suite": "old", "metadata": {}})
                + "\n"
            )
            handle.write(json.dumps({"kind": "result", "cell": "a", "metrics": {}}) + "\n")
        with open(source, "rb") as handle:
            original = handle.read()
        sqlite_path = os.path.join(tmp_path, "v1.sqlite")
        roundtrip_path = os.path.join(tmp_path, "roundtrip.jsonl")
        migrated = convert_store(source, sqlite_path)
        assert migrated.schema == 1
        migrated.close()
        convert_store(sqlite_path, roundtrip_path)
        with open(roundtrip_path, "rb") as handle:
            assert handle.read() == original

    def test_schema_2_records_still_load_without_rounds(self, tmp_path):
        path = os.path.join(tmp_path, "v2.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "header", "schema": 2, "suite": "old"}) + "\n")
            handle.write(
                json.dumps({"kind": "result", "cell": "a", "metrics": {"rounds": 4}})
                + "\n"
            )
        store = open_store(path)
        assert "a" in store
        assert "rounds" not in store.completed_cells()["a"]
        from repro.analysis.tables import rows_from_records

        assert "ledger_rounds" not in rows_from_records(store.results())[0]


class TestTaskSchema:
    """Schema 4: the task axis on both backends, with 1–3 still loading."""

    def _task_suite(self, store_path):
        spec = SuiteSpec(
            name="task-schema",
            scenarios=("torus",),
            sizes=(36,),
            methods=("sequential",),
            tasks=("decompose", "mis", "coloring"),
        )
        return repro.run_suite(spec, store=store_path)

    @pytest.mark.parametrize("extension", ["jsonl", "sqlite"])
    def test_new_stores_are_schema_4_with_task_records(self, tmp_path, extension):
        path = os.path.join(tmp_path, "tasks." + extension)
        self._task_suite(path)
        store = open_store(path)
        assert store.schema == SCHEMA_VERSION == 7
        mis_records = store.query(task="mis")
        assert len(mis_records) == 1
        assert mis_records[0]["task_metrics"]["verified"] is True
        assert len(store.query(task="decompose")) == 1
        store.close()

    def test_sqlite_task_column_is_indexed(self, tmp_path):
        path = os.path.join(tmp_path, "tasks.sqlite")
        self._task_suite(path)
        connection = sqlite3.connect(path)
        indexes = {row[1] for row in connection.execute("PRAGMA index_list(results)")}
        assert "idx_results_task" in indexes
        plan = connection.execute(
            "EXPLAIN QUERY PLAN SELECT record FROM results WHERE task = ?", ("mis",)
        ).fetchall()
        assert any("idx_results_task" in str(row) for row in plan)
        connection.close()

    def test_schema_3_store_loads_under_schema_4(self, tmp_path):
        path = os.path.join(tmp_path, "v3.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "header", "schema": 3, "suite": "old"}) + "\n")
            handle.write(
                json.dumps(
                    {
                        "kind": "result",
                        "cell": "torus/n36/mpx/s0",
                        "method": "mpx",
                        "metrics": {"rounds": 4},
                        "rounds": {"total": 4, "by_primitive": {"bfs": 4}},
                    }
                )
                + "\n"
            )
        store = open_store(path)
        assert store.schema == 3
        record = store.completed_cells()["torus/n36/mpx/s0"]
        assert "task" not in record
        from repro.analysis.tables import rows_from_records

        row = rows_from_records(store.results())[0]
        assert "task_rounds" not in row and "mis_size" not in row

    def test_pre_task_sqlite_database_gains_task_column_on_open(self, tmp_path):
        """A PR-4-era SQLite store (no task column) must open and query."""
        path = os.path.join(tmp_path, "legacy.sqlite")
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)")
        connection.execute(
            """CREATE TABLE results (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                cell TEXT NOT NULL UNIQUE,
                scenario TEXT, n INTEGER, method TEXT, eps REAL, seed INTEGER,
                record TEXT NOT NULL)"""
        )
        connection.executemany(
            "INSERT INTO meta (key, value) VALUES (?, ?)",
            [("schema", "3"), ("suite", "legacy"), ("metadata", "{}")],
        )
        connection.execute(
            "INSERT INTO results (cell, scenario, n, method, eps, seed, record) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            ("c1", "torus", 36, "mpx", None, 0, json.dumps({"kind": "result", "cell": "c1"})),
        )
        connection.commit()
        connection.close()
        store = open_store(path)
        assert store.schema == 3
        assert store.query(task="mis") == []
        assert len(store.query(task=None)) == 1  # legacy rows read NULL
        store.add(_record("torus/n36/mpx/mis/s0") | {"task": "mis"})
        assert [r["cell"] for r in store.query(task="mis")] == ["torus/n36/mpx/mis/s0"]
        store.close()

    @pytest.mark.parametrize("extension", ["jsonl", "sqlite"])
    def test_task_records_roundtrip_between_backends(self, tmp_path, extension):
        source = os.path.join(tmp_path, "src." + extension)
        self._task_suite(source)
        other = "sqlite" if extension == "jsonl" else "jsonl"
        destination = os.path.join(tmp_path, "dst." + other)
        converted = convert_store(source, destination)
        assert [r["cell"] for r in converted.query(task="coloring")] == [
            "torus/n36/sequential/coloring/s0"
        ]
        converted.close()
