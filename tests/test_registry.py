"""Unit tests for the method/task registry (repro.registry)."""

import pytest

import repro
from repro.registry import (
    CARVING_METHODS,
    DECOMPOSITION_METHODS,
    METHODS,
    TASK_NAMES,
    TASKS,
    MethodSpec,
    TaskSpec,
)


class TestMethodRegistry:
    def test_six_builtin_methods(self):
        assert METHODS.names() == (
            "strong-log3",
            "strong-log2",
            "weak-rg20",
            "ls93",
            "mpx",
            "sequential",
        )
        assert CARVING_METHODS == METHODS.names()
        assert DECOMPOSITION_METHODS == CARVING_METHODS

    def test_determinism_and_kind_semantics(self):
        assert METHODS.randomized() == ("ls93", "mpx")
        for name in ("strong-log3", "strong-log2", "weak-rg20", "sequential"):
            assert METHODS.get(name).deterministic
            assert not METHODS.get(name).uses_seed
        assert METHODS.get("ls93").kind == "weak"
        assert METHODS.get("weak-rg20").kind == "weak"
        assert METHODS.get("mpx").kind == "strong"
        assert METHODS.get("strong-log3").kind == "strong"
        assert METHODS.get("sequential").centralized

    def test_table_order_is_the_papers_row_order(self):
        assert METHODS.table_order() == (
            "ls93",
            "weak-rg20",
            "mpx",
            "strong-log3",
            "strong-log2",
            "sequential",
        )

    def test_unknown_method_rejected_with_catalogue(self):
        with pytest.raises(ValueError) as excinfo:
            METHODS.get("atlantis")
        assert "strong-log3" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        spec = METHODS.get("mpx")
        with pytest.raises(ValueError):
            METHODS.register(spec)
        # overwrite=True round-trips without changing the catalogue.
        METHODS.register(spec, overwrite=True)
        assert METHODS.get("mpx") is spec

    def test_registry_callables_drive_the_api(self, small_torus):
        # carve/decompose dispatch through the registered callables; the
        # registry's kind matches the produced clustering's kind.
        for spec in METHODS:
            decomposition = repro.decompose(small_torus, method=spec.name, seed=2)
            assert decomposition.kind == spec.kind, spec.name

    def test_no_hardcoded_method_tuples_outside_registry(self):
        # The acceptance criterion of the registry refactor: the six method
        # strings appear as a tuple only in repro/registry.py.
        import os
        import re

        src_root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
        )
        tuple_pattern = re.compile(
            r"\(\s*['\"]strong-log3['\"]\s*,\s*['\"]strong-log2['\"]|"
            r"\(\s*['\"]ls93['\"]\s*,\s*['\"]mpx['\"]\s*\)"
        )
        offenders = []
        for dirpath, _, filenames in os.walk(src_root):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                if os.path.relpath(path, src_root) == "registry.py":
                    continue
                with open(path, "r", encoding="utf-8") as handle:
                    if tuple_pattern.search(handle.read()):
                        offenders.append(os.path.relpath(path, src_root))
        assert not offenders, "hardcoded method tuples outside registry.py: {}".format(
            offenders
        )


class TestTaskRegistry:
    def test_builtin_tasks(self):
        assert TASKS.names() == ("decompose", "mis", "coloring")
        assert TASK_NAMES == TASKS.names()
        assert TASKS.get("decompose").solve is None
        for name in ("mis", "coloring"):
            spec = TASKS.get(name)
            assert spec.solve is not None
            assert spec.verify is not None
            assert spec.measure is not None

    def test_unknown_task_rejected_with_catalogue(self):
        with pytest.raises(ValueError) as excinfo:
            TASKS.get("leader-election")
        assert "coloring" in str(excinfo.value)

    def test_solvable_tasks_must_be_checkable(self):
        with pytest.raises(ValueError):
            TASKS.register(
                TaskSpec(name="unchecked", description="", solve=lambda d, l: None)
            )

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            TASKS.register(TaskSpec(name="mis", description="again"))


class TestRunTask:
    def test_mis_task(self, small_torus):
        result = repro.run_task(small_torus, method="mpx", task="mis", seed=3)
        assert result.task == "mis"
        assert result.metrics["verified"] is True
        assert result.metrics["mis_size"] == len(result.solution)
        assert result.rounds > 0
        # The template cost is bounded by the C*D argument.
        from repro.clustering.validation import max_cluster_diameter

        diameter = max_cluster_diameter(
            small_torus, result.decomposition.clusters, kind=result.decomposition.kind
        )
        assert result.rounds <= result.decomposition.num_colors * (2 * diameter + 2)

    def test_coloring_task(self, small_grid):
        result = repro.run_task(small_grid, method="sequential", task="coloring")
        assert result.metrics["verified"] is True
        assert result.metrics["colors_used"] == max(result.solution.values()) + 1

    def test_decompose_task_is_the_default_noop(self, small_grid):
        result = repro.run_task(small_grid, method="sequential", task="decompose")
        assert result.solution is None
        assert result.rounds == 0
        assert result.metrics == {}
        assert result.decomposition is not None

    def test_decomposition_reuse_matches_fresh_run(self, small_torus):
        base = repro.run_task(small_torus, method="mpx", task="mis", seed=5)
        reused = repro.run_task(
            small_torus, method="mpx", task="mis", decomposition=base.decomposition
        )
        assert reused.solution == base.solution
        assert reused.rounds == base.rounds
        assert reused.metrics == base.metrics

    def test_task_rounds_charge_into_caller_ledger(self, small_grid):
        ledger = repro.RoundLedger()
        result = repro.run_task(
            small_grid, method="sequential", task="coloring", ledger=ledger
        )
        # Decomposition cost + task cost both land in the caller's ledger.
        assert ledger.total_rounds >= result.rounds
        assert ledger.total_rounds >= result.decomposition.rounds

    def test_unknown_task_rejected(self, small_grid):
        with pytest.raises(ValueError):
            repro.run_task(small_grid, task="frobnicate")

    def test_foreign_decomposition_rejected(self, small_grid, small_torus):
        decomposition = repro.decompose(small_grid, method="sequential")
        with pytest.raises(ValueError, match="different graph"):
            repro.run_task(small_torus, task="mis", decomposition=decomposition)

    def test_as_row_renders(self, small_grid):
        row = repro.run_task(small_grid, method="sequential", task="mis").as_row()
        assert row["task"] == "mis"
        assert "mis_size" in row and "task_rounds" in row
