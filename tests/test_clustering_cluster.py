"""Unit tests for Cluster and SteinerTree."""

import networkx as nx
import pytest

from repro.clustering.cluster import Cluster, SteinerTree, edge_congestion
from repro.graphs.generators import path_graph, star_graph


def _path_tree(length):
    """A Steiner tree that is simply a path 0 - 1 - ... - length."""
    parent = {0: None}
    for node in range(1, length + 1):
        parent[node] = node - 1
    return SteinerTree(root=0, parent=parent)


class TestSteinerTree:
    def test_root_gets_parent_none_automatically(self):
        tree = SteinerTree(root=5, parent={6: 5})
        assert tree.parent[5] is None

    def test_root_with_non_none_parent_rejected(self):
        with pytest.raises(ValueError):
            SteinerTree(root=0, parent={0: 1, 1: None})

    def test_nodes_and_edges(self):
        tree = _path_tree(3)
        assert tree.nodes == {0, 1, 2, 3}
        assert tree.edges == {(0, 1), (1, 2), (2, 3)}

    def test_depth_of_path_tree(self):
        assert _path_tree(4).depth() == 4
        assert SteinerTree(root=0, parent={0: None}).depth() == 0

    def test_depth_of_branching_tree(self):
        parent = {0: None, 1: 0, 2: 0, 3: 1, 4: 3}
        assert SteinerTree(root=0, parent=parent).depth() == 3

    def test_path_to_root(self):
        tree = _path_tree(4)
        assert tree.path_to_root(4) == (4, 3, 2, 1, 0)
        assert tree.path_to_root(0) == (0,)

    def test_cycle_detection(self):
        tree = SteinerTree(root=0, parent={0: None, 1: 2, 2: 1})
        with pytest.raises(ValueError):
            tree.path_to_root(1)

    def test_validate_against_graph(self):
        graph = path_graph(5)
        tree = _path_tree(4)
        tree.validate_against(graph)  # should not raise

    def test_validate_rejects_non_edges(self):
        graph = path_graph(5)
        tree = SteinerTree(root=0, parent={0: None, 4: 0})
        with pytest.raises(ValueError):
            tree.validate_against(graph)


class TestCluster:
    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            Cluster(nodes=frozenset(), label="x")

    def test_len_and_contains(self):
        cluster = Cluster(nodes=frozenset({1, 2, 3}), label="c")
        assert len(cluster) == 3
        assert 2 in cluster
        assert 9 not in cluster

    def test_tree_must_contain_terminals(self):
        tree = _path_tree(2)
        with pytest.raises(ValueError):
            Cluster(nodes=frozenset({0, 1, 2, 99}), label="c", tree=tree)

    def test_tree_may_contain_extra_steiner_nodes(self):
        tree = _path_tree(4)
        cluster = Cluster(nodes=frozenset({0, 4}), label="c", tree=tree)
        assert cluster.tree.nodes == {0, 1, 2, 3, 4}

    def test_with_color(self):
        cluster = Cluster(nodes=frozenset({1}), label="c")
        colored = cluster.with_color(3)
        assert colored.color == 3
        assert colored.nodes == cluster.nodes
        assert cluster.color is None

    def test_adjacency_detection(self):
        graph = path_graph(6)
        left = Cluster(nodes=frozenset({0, 1}), label="l")
        right = Cluster(nodes=frozenset({2, 3}), label="r")
        far = Cluster(nodes=frozenset({5}), label="f")
        assert left.is_adjacent_to(right, graph)
        assert right.is_adjacent_to(left, graph)
        assert not left.is_adjacent_to(far, graph)


class TestEdgeCongestion:
    def test_counts_shared_edges(self):
        tree_a = _path_tree(3)
        tree_b = SteinerTree(root=0, parent={0: None, 1: 0})
        cluster_a = Cluster(nodes=frozenset({0, 3}), label="a", tree=tree_a)
        cluster_b = Cluster(nodes=frozenset({0, 1}), label="b", tree=tree_b)
        usage = edge_congestion([cluster_a, cluster_b])
        assert usage[(0, 1)] == 2
        assert usage[(2, 3)] == 1

    def test_clusters_without_trees_contribute_nothing(self):
        cluster = Cluster(nodes=frozenset({0, 1}), label="bare")
        assert edge_congestion([cluster]) == {}
