"""Tests for sharded suite stores and byte-lossless ``store merge``
(repro.pipeline.backends.merge_stores + the shard provenance protocol).

The contract under test: a grid split across ``run_suite(shard=(i, k))``
invocations — each writing its own store — merges back into a store that
``--mode diff``, tables and resume cannot tell apart from an unsharded
run's, on either backend.  Merge is idempotent, refuses conflicting cells
and mismatched specs with typed errors, and records its provenance.
"""

import json
import os

import pytest

import repro
from repro.pipeline import (
    StoreMergeError,
    convert_store,
    merge_stores,
    open_store,
    shard_provenance,
)
from tests.conftest import strip_volatile

_SPEC = {
    "name": "merge-test",
    "scenarios": ["torus", "grid"],
    "sizes": [36],
    "methods": ["mpx", "sequential"],
    "seeds": [0, 1],
    "tasks": ["decompose", "mis"],
}


def _run_shards(tmp_path, extension, count=2):
    """Run every shard of a ``count``-way split; return the store paths."""
    paths = []
    for index in range(count):
        path = os.path.join(tmp_path, "shard{}{}".format(index, extension))
        repro.run_suite(dict(_SPEC), store=path, shard=(index, count))
        paths.append(path)
    return paths


class TestShardUnion:
    @pytest.mark.parametrize("extension", [".jsonl", ".sqlite"])
    def test_disjoint_shard_union_matches_unsharded(self, tmp_path, extension):
        full_path = os.path.join(tmp_path, "full" + extension)
        full = repro.run_suite(dict(_SPEC), store=full_path)
        shards = _run_shards(tmp_path, extension)
        merged = merge_stores(
            shards, os.path.join(tmp_path, "merged" + extension)
        )
        # Same records in the same (column-batched grid) order, modulo wall
        # clock; cell coverage is exact — nothing duplicated, nothing lost.
        full_store = open_store(full_path)
        assert [r["cell"] for r in merged.results()] == [
            r["cell"] for r in full_store.results()
        ]
        assert [strip_volatile(r) for r in merged.results()] == [
            strip_volatile(r) for r in full_store.results()
        ]
        assert len(merged) == len(full.records)

    def test_merge_is_byte_lossless_across_backends(self, tmp_path):
        shards = _run_shards(tmp_path, ".jsonl")
        as_jsonl = merge_stores(shards, os.path.join(tmp_path, "m.jsonl"))
        as_sqlite = merge_stores(shards, os.path.join(tmp_path, "m.sqlite"))
        exported = convert_store(
            os.path.join(tmp_path, "m.sqlite"), os.path.join(tmp_path, "e.jsonl")
        )
        # The same merge through SQLite and back reproduces the JSONL
        # merge's records exactly — merge rides the convert_store contract.
        assert [json.dumps(r) for r in exported.results()] == [
            json.dumps(r) for r in as_jsonl.results()
        ]
        assert [json.dumps(r) for r in as_sqlite.results()] == [
            json.dumps(r) for r in as_jsonl.results()
        ]

    def test_merge_is_idempotent(self, tmp_path):
        shards = _run_shards(tmp_path, ".jsonl")
        merge_stores(shards, os.path.join(tmp_path, "m1.jsonl"))
        merge_stores(shards, os.path.join(tmp_path, "m2.jsonl"))
        with open(os.path.join(tmp_path, "m1.jsonl"), "rb") as a:
            with open(os.path.join(tmp_path, "m2.jsonl"), "rb") as b:
                assert a.read() == b.read()

    def test_overlapping_identical_sources_dedupe(self, tmp_path):
        shards = _run_shards(tmp_path, ".jsonl")
        merged = merge_stores(shards, os.path.join(tmp_path, "m.jsonl"))
        overlapped = merge_stores(
            [shards[0]] + shards, os.path.join(tmp_path, "o.jsonl")
        )
        assert [json.dumps(r) for r in overlapped.results()] == [
            json.dumps(r) for r in merged.results()
        ]

    def test_merged_store_records_provenance(self, tmp_path):
        shards = _run_shards(tmp_path, ".jsonl")
        merged = merge_stores(shards, os.path.join(tmp_path, "m.jsonl"))
        provenance = shard_provenance(merged)
        assert provenance is not None
        sources = provenance["merged_from"]
        assert [entry["source"] for entry in sources] == shards
        assert [entry["shard"] for entry in sources] == [
            {"index": 0, "count": 2},
            {"index": 1, "count": 2},
        ]
        assert sum(entry["cells"] for entry in sources) == len(merged)

    def test_resume_after_merge_recomputes_nothing(self, tmp_path):
        shards = _run_shards(tmp_path, ".jsonl")
        merged_path = os.path.join(tmp_path, "m.jsonl")
        merge_stores(shards, merged_path)
        resumed = repro.run_suite(dict(_SPEC), store=merged_path)
        assert resumed.executed == 0
        assert resumed.skipped == len(resumed.records)

    def test_tables_work_on_merged_store(self, tmp_path):
        from repro.analysis.tables import rows_from_records

        shards = _run_shards(tmp_path, ".jsonl")
        merged = merge_stores(shards, os.path.join(tmp_path, "m.jsonl"))
        rows = rows_from_records(merged.results())
        assert len(rows) == len(merged)


class TestMergeValidation:
    def test_conflicting_cell_rejected(self, tmp_path):
        shards = _run_shards(tmp_path, ".jsonl")
        original = open_store(shards[0])
        record = dict(original.results()[0])
        record["metrics"] = dict(record["metrics"], rounds=10**6)
        conflicting = open_store(
            os.path.join(tmp_path, "conflict.jsonl"),
            suite=original.suite,
            metadata=original.metadata,
        )
        conflicting.add(record)
        conflicting.close()
        with pytest.raises(StoreMergeError, match="conflicts"):
            merge_stores(
                [shards[0], os.path.join(tmp_path, "conflict.jsonl")],
                os.path.join(tmp_path, "m.jsonl"),
            )

    def test_mismatched_spec_rejected(self, tmp_path):
        shards = _run_shards(tmp_path, ".jsonl")
        other = os.path.join(tmp_path, "other.jsonl")
        repro.run_suite(dict(_SPEC, seeds=[0]), store=other)
        with pytest.raises(StoreMergeError, match="specs differ"):
            merge_stores([shards[0], other], os.path.join(tmp_path, "m.jsonl"))

    def test_mismatched_suite_name_rejected(self, tmp_path):
        shards = _run_shards(tmp_path, ".jsonl")
        other = os.path.join(tmp_path, "other.jsonl")
        repro.run_suite(dict(_SPEC, name="something-else"), store=other)
        with pytest.raises(StoreMergeError, match="different suites"):
            merge_stores([shards[0], other], os.path.join(tmp_path, "m.jsonl"))

    def test_mismatched_shard_counts_rejected(self, tmp_path):
        two = os.path.join(tmp_path, "of2.jsonl")
        three = os.path.join(tmp_path, "of3.jsonl")
        repro.run_suite(dict(_SPEC), store=two, shard="0/2")
        repro.run_suite(dict(_SPEC), store=three, shard="0/3")
        with pytest.raises(StoreMergeError, match="shard counts"):
            merge_stores([two, three], os.path.join(tmp_path, "m.jsonl"))

    def test_missing_source_rejected(self, tmp_path):
        shards = _run_shards(tmp_path, ".jsonl")
        with pytest.raises(StoreMergeError, match="does not exist"):
            merge_stores(
                [shards[0], os.path.join(tmp_path, "nope.jsonl")],
                os.path.join(tmp_path, "m.jsonl"),
            )

    def test_empty_source_list_rejected(self, tmp_path):
        with pytest.raises(StoreMergeError, match="at least one"):
            merge_stores([], os.path.join(tmp_path, "m.jsonl"))

    def test_nonempty_destination_refused(self, tmp_path):
        shards = _run_shards(tmp_path, ".jsonl")
        destination = os.path.join(tmp_path, "m.jsonl")
        merge_stores(shards, destination)
        with pytest.raises(ValueError, match="already exists"):
            merge_stores(shards, destination)


class TestMergeCli:
    def test_store_merge_verb(self, tmp_path, capsys):
        from repro.cli import _store_main

        shards = _run_shards(tmp_path, ".jsonl")
        merged_path = os.path.join(tmp_path, "m.jsonl")
        assert _store_main(["merge"] + shards + [merged_path]) == 0
        out = capsys.readouterr().out
        assert "merged" in out and "2 store(s)" in out
        assert _store_main(["info", merged_path]) == 0
        info = capsys.readouterr().out
        assert "merged-from" in info and "shard 0/2" in info

    def test_store_info_prints_shard_stamp(self, tmp_path, capsys):
        from repro.cli import _store_main

        shards = _run_shards(tmp_path, ".jsonl")
        assert _store_main(["info", shards[1]]) == 0
        assert "shard: 1/2" in capsys.readouterr().out

    def test_store_merge_verb_reports_conflicts(self, tmp_path, capsys):
        from repro.cli import _store_main

        shards = _run_shards(tmp_path, ".jsonl")
        assert (
            _store_main(
                ["merge", shards[0], os.path.join(tmp_path, "nope.jsonl"), "x.jsonl"]
            )
            == 1
        )
        assert "does not exist" in capsys.readouterr().err
