"""Unit tests for metrics extraction, polylog fitting, and table rendering."""

import math

import pytest

import repro
from repro.analysis.fitting import PolylogFit, fit_polylog, is_polylog_bounded
from repro.analysis.metrics import (
    CarvingMetrics,
    DecompositionMetrics,
    evaluate_carving,
    evaluate_decomposition,
)
from repro.analysis.tables import format_table


class TestMetrics:
    def test_carving_metrics_fields(self, small_grid):
        carving = repro.carve(small_grid, 0.5, method="sequential")
        metrics = evaluate_carving(carving, "sequential")
        assert isinstance(metrics, CarvingMetrics)
        assert metrics.n == small_grid.number_of_nodes()
        assert metrics.algorithm == "sequential"
        assert 0.0 <= metrics.dead_fraction <= 1.0
        assert metrics.rounds == carving.rounds

    def test_carving_metrics_row(self, small_grid):
        carving = repro.carve(small_grid, 0.25, method="sequential")
        row = evaluate_carving(carving, "seq").as_row()
        assert row["algorithm"] == "seq"
        assert row["eps"] == 0.25
        assert "diameter" in row and "rounds" in row

    def test_decomposition_metrics_fields(self, small_grid):
        decomposition = repro.decompose(small_grid, method="sequential")
        metrics = evaluate_decomposition(decomposition, "sequential")
        assert isinstance(metrics, DecompositionMetrics)
        assert metrics.colors == decomposition.num_colors
        assert metrics.clusters == len(decomposition.clusters)

    def test_weak_carving_metrics_use_weak_diameter(self, small_torus):
        carving = repro.carve(small_torus, 0.5, method="weak-rg20")
        metrics = evaluate_carving(carving, "weak")
        assert metrics.kind == "weak"
        assert metrics.max_diameter >= 0


class TestPolylogFit:
    def test_fits_exact_polylog_data(self):
        sizes = [2 ** k for k in range(4, 12)]
        values = [3.0 * (math.log2(n) ** 2) for n in sizes]
        fit = fit_polylog(sizes, values)
        assert fit.exponent == pytest.approx(2.0, abs=0.05)
        assert fit.coefficient == pytest.approx(3.0, rel=0.1)
        assert fit.residual < 1e-6

    def test_predict_matches_data(self):
        sizes = [2 ** k for k in range(4, 10)]
        values = [5.0 * math.log2(n) for n in sizes]
        fit = fit_polylog(sizes, values)
        assert fit.predict(1024) == pytest.approx(50.0, rel=0.1)

    def test_polynomial_data_has_large_polynomial_exponent(self):
        sizes = [2 ** k for k in range(4, 12)]
        values = [0.5 * n for n in sizes]
        fit = fit_polylog(sizes, values)
        assert fit.polynomial_exponent == pytest.approx(1.0, abs=0.05)

    def test_is_polylog_bounded_accepts_polylog(self):
        sizes = [2 ** k for k in range(4, 12)]
        values = [2.0 * (math.log2(n) ** 3) for n in sizes]
        assert is_polylog_bounded(sizes, values)

    def test_is_polylog_bounded_rejects_exponential_exponent(self):
        sizes = [2 ** k for k in range(4, 12)]
        values = [math.log2(n) ** 20 for n in sizes]
        assert not is_polylog_bounded(sizes, values, max_exponent=12.0)

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            fit_polylog([16], [3.0])
        with pytest.raises(ValueError):
            fit_polylog([16, 32], [0.0, 1.0])
        with pytest.raises(ValueError):
            fit_polylog([16, 32], [1.0])


class TestTableRendering:
    def test_renders_rows_and_header(self):
        rows = [{"name": "a", "value": 1}, {"name": "bb", "value": 22}]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert any("bb" in line for line in lines)

    def test_column_selection_and_missing_cells(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        table = format_table(rows, columns=["a", "b"])
        assert "2" in table
        assert table.count("|") >= 2

    def test_empty_rows(self):
        assert format_table([], title="nothing") == "nothing"
        assert format_table([]) == "(no rows)"

    def test_float_formatting(self):
        table = format_table([{"x": 0.123456}])
        assert "0.123" in table
