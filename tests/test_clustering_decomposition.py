"""Unit tests for the NetworkDecomposition result type."""

import pytest

from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger
from repro.graphs.generators import cycle_graph, path_graph


def _decomposition_on_path():
    graph = path_graph(6)
    clusters = [
        Cluster(nodes=frozenset({0, 1}), label="a", color=0),
        Cluster(nodes=frozenset({3, 4}), label="b", color=0),
        Cluster(nodes=frozenset({2}), label="c", color=1),
        Cluster(nodes=frozenset({5}), label="d", color=1),
    ]
    ledger = RoundLedger()
    ledger.charge("work", 9)
    return graph, NetworkDecomposition(graph=graph, clusters=clusters, ledger=ledger)


class TestNetworkDecomposition:
    def test_requires_colors(self):
        graph = path_graph(2)
        with pytest.raises(ValueError):
            NetworkDecomposition(
                graph=graph, clusters=[Cluster(nodes=frozenset({0, 1}), label="x")]
            )

    def test_num_colors_and_colors(self):
        _, decomposition = _decomposition_on_path()
        assert decomposition.num_colors == 2
        assert decomposition.colors == [0, 1]

    def test_clusters_of_color(self):
        _, decomposition = _decomposition_on_path()
        labels = {cluster.label for cluster in decomposition.clusters_of_color(0)}
        assert labels == {"a", "b"}

    def test_color_of_mapping(self):
        _, decomposition = _decomposition_on_path()
        colors = decomposition.color_of()
        assert colors[0] == 0
        assert colors[2] == 1
        assert len(colors) == 6

    def test_cluster_of_mapping(self):
        _, decomposition = _decomposition_on_path()
        mapping = decomposition.cluster_of()
        assert mapping[3] == "b"
        assert mapping[5] == "d"

    def test_covered_nodes(self):
        _, decomposition = _decomposition_on_path()
        assert decomposition.covered_nodes() == set(range(6))

    def test_rounds_from_ledger(self):
        _, decomposition = _decomposition_on_path()
        assert decomposition.rounds == 9

    def test_summary(self):
        _, decomposition = _decomposition_on_path()
        summary = decomposition.summary()
        assert summary["colors"] == 2
        assert summary["clusters"] == 4
        assert summary["n"] == 6
        assert summary["max_cluster_size"] == 2

    def test_invalid_kind_rejected(self):
        graph = cycle_graph(4)
        with pytest.raises(ValueError):
            NetworkDecomposition(graph=graph, clusters=[], kind="loose")
