"""Unit tests for the high-level API (carve / decompose)."""

import pytest

import repro
from repro.clustering.carving import BallCarving
from repro.clustering.decomposition import NetworkDecomposition
from repro.clustering.validation import check_ball_carving, check_network_decomposition
from repro.congest.rounds import RoundLedger
from tests.conftest import RANDOMIZED_DEAD_SLACK

RANDOMIZED = {"ls93", "mpx"}


class TestCarveApi:
    @pytest.mark.parametrize("method", repro.CARVING_METHODS)
    def test_every_method_produces_valid_carving(self, small_torus, method):
        carving = repro.carve(small_torus, 0.5, method=method, seed=1)
        assert isinstance(carving, BallCarving)
        slack = RANDOMIZED_DEAD_SLACK if method in RANDOMIZED else None
        check_ball_carving(carving, max_dead_fraction=slack)

    def test_unknown_method_rejected(self, small_grid):
        with pytest.raises(ValueError):
            repro.carve(small_grid, 0.5, method="nonsense")

    def test_ledger_passthrough(self, small_grid):
        ledger = RoundLedger()
        carving = repro.carve(small_grid, 0.5, method="strong-log3", ledger=ledger)
        assert carving.rounds == ledger.total_rounds

    def test_seed_controls_randomized_methods(self, small_torus):
        first = repro.carve(small_torus, 0.5, method="mpx", seed=11)
        second = repro.carve(small_torus, 0.5, method="mpx", seed=11)
        third = repro.carve(small_torus, 0.5, method="mpx", seed=12)
        assert first.cluster_of() == second.cluster_of()
        assert first.cluster_of() != third.cluster_of() or first.dead != third.dead

    def test_strong_methods_report_strong_kind(self, small_grid):
        for method in ("strong-log3", "strong-log2", "mpx", "sequential"):
            assert repro.carve(small_grid, 0.5, method=method, seed=0).kind == "strong"

    def test_weak_methods_report_weak_kind(self, small_grid):
        for method in ("weak-rg20", "ls93"):
            assert repro.carve(small_grid, 0.5, method=method, seed=0).kind == "weak"


class TestDecomposeApi:
    @pytest.mark.parametrize("method", repro.DECOMPOSITION_METHODS)
    def test_every_method_produces_valid_decomposition(self, small_torus, method):
        decomposition = repro.decompose(small_torus, method=method, seed=1)
        assert isinstance(decomposition, NetworkDecomposition)
        check_network_decomposition(decomposition)

    def test_unknown_method_rejected(self, small_grid):
        with pytest.raises(ValueError):
            repro.decompose(small_grid, method="nonsense")

    def test_ledger_passthrough(self, small_grid):
        ledger = RoundLedger()
        decomposition = repro.decompose(small_grid, method="sequential", ledger=ledger)
        assert decomposition.rounds == ledger.total_rounds

    @pytest.mark.parametrize("method", sorted(RANDOMIZED))
    def test_randomized_methods_are_seedable(self, small_torus, method):
        first = repro.decompose(small_torus, method=method, seed=3)
        second = repro.decompose(small_torus, method=method, seed=3)
        assert first.color_of() == second.color_of()

    def test_package_exports(self):
        assert set(repro.CARVING_METHODS) == set(repro.DECOMPOSITION_METHODS)
        assert "strong-log3" in repro.CARVING_METHODS
        assert repro.__version__
