"""Tests for the out-of-core graph path: streaming ingest, ``.csrbin``
files, the ``np.memmap``-backed facade, and crash/resume semantics.

The ingester's contract mirrors the run store's: a finished file is only
published atomically (``os.replace``), partial artifacts from a killed
build are detected and discarded with a warning, and a torn final line is
skipped with a warning while mid-file corruption is a hard error.
"""

import os
import warnings

import numpy as np
import pytest

import repro
from repro.graphs import memmap
from repro.graphs.io import read_edge_list
from repro.graphs.memmap import (
    CSRFileError,
    ingest_edge_list,
    load_csr_graph,
    load_graph,
    read_csr_header,
    write_csr_file,
)

EDGES = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3), (4, 0)]


def _write_edgelist(path, edges=EDGES, extra_lines=()):
    with open(path, "w", encoding="utf-8") as handle:
        for u, v in edges:
            handle.write("{} {}\n".format(u, v))
        for line in extra_lines:
            handle.write(line)
    return str(path)


@pytest.fixture
def edgelist(tmp_path):
    return _write_edgelist(tmp_path / "graph.edges")


def decomposition_signature(decomposition):
    return frozenset(
        (cluster.color, frozenset(cluster.nodes)) for cluster in decomposition.clusters
    )


class TestIngestRoundTrip:
    def test_matches_read_edge_list(self, edgelist):
        host = read_edge_list(edgelist)
        graph = load_graph(ingest_edge_list(edgelist, edgelist + ".csrbin"))
        assert graph.number_of_nodes() == host.number_of_nodes()
        assert graph.number_of_edges() == host.number_of_edges()
        assert sorted(graph.nodes()) == sorted(host.nodes())
        for node in host.nodes():
            assert sorted(graph.neighbors(node)) == sorted(host.neighbors(node))
            assert graph.nodes[node]["uid"] == host.nodes[node]["uid"]
        ooc = repro.decompose(graph, method="strong-log3")
        ram = repro.decompose(host, method="strong-log3")
        assert decomposition_signature(ooc) == decomposition_signature(ram)

    def test_uid_headers_and_isolated_nodes(self, tmp_path):
        source = _write_edgelist(
            tmp_path / "g.edges",
            edges=[(5, 6)],
            extra_lines=["# uid 5 77\n", "9\n"],
        )
        graph = load_graph(ingest_edge_list(source, source + ".csrbin"))
        host = read_edge_list(source)
        assert sorted(graph.nodes()) == sorted(host.nodes())
        assert graph.nodes[5]["uid"] == host.nodes[5]["uid"] == 77
        assert graph.degree[9] == 0

    def test_self_loops_dropped_with_warning(self, tmp_path):
        source = _write_edgelist(tmp_path / "g.edges", edges=[(0, 1), (1, 1)])
        with pytest.warns(UserWarning, match="self-loop"):
            graph = load_graph(ingest_edge_list(source, source + ".csrbin"))
        assert graph.number_of_edges() == 1

    def test_write_csr_file_round_trip(self, tmp_path, small_torus):
        from repro.graphs.csr import CSRGraph

        csr = CSRGraph.from_networkx(small_torus, cache=False)
        path = str(tmp_path / "torus.csrbin")
        write_csr_file(csr, path)
        loaded = load_csr_graph(path)
        assert loaded.n == csr.n
        assert loaded.nodes == csr.nodes
        assert np.array_equal(
            np.asarray(loaded.indices), np.asarray(csr.indices)
        )
        assert loaded.frozen


class TestCrashResume:
    def test_finished_file_reused_without_rebuild(self, edgelist):
        dest = ingest_edge_list(edgelist, edgelist + ".csrbin")
        before = os.stat(dest).st_mtime_ns
        assert ingest_edge_list(edgelist, edgelist + ".csrbin") == dest
        assert os.stat(dest).st_mtime_ns == before

    def test_changed_source_rebuilds_with_warning(self, edgelist):
        dest = ingest_edge_list(edgelist, edgelist + ".csrbin")
        _write_edgelist(edgelist, edges=EDGES + [(4, 2)])
        with pytest.warns(UserWarning, match="stale cache"):
            ingest_edge_list(edgelist, dest)
        assert load_csr_graph(dest).built_edges == len(EDGES) + 1

    def test_corrupt_cache_rebuilds_with_warning(self, edgelist):
        dest = ingest_edge_list(edgelist, edgelist + ".csrbin")
        with open(dest, "wb") as handle:
            handle.write(b"not a csrbin file at all")
        with pytest.warns(UserWarning, match="invalid cache"):
            ingest_edge_list(edgelist, dest)
        assert read_csr_header(dest)["n"] == 5

    def test_stale_partials_discarded_with_warning(self, edgelist):
        dest_path = edgelist + ".csrbin"
        partials = [dest_path + ".tmp.4242", dest_path + ".pairs.tmp.4242"]
        for partial in partials:
            with open(partial, "wb") as handle:
                handle.write(b"\x00" * 64)
        with pytest.warns(UserWarning, match="interrupted run"):
            ingest_edge_list(edgelist, dest_path)
        for partial in partials:
            assert not os.path.exists(partial)
        assert read_csr_header(dest_path)["n"] == 5

    def test_mid_build_crash_leaves_no_destination_and_resumes(
        self, edgelist, monkeypatch
    ):
        """A build killed between staging and publish must leave the
        destination absent; the next run discards the partial and succeeds."""
        dest_path = edgelist + ".csrbin"

        def boom(*args, **kwargs):
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr(memmap, "_write_sections", boom)
        with pytest.raises(RuntimeError, match="simulated crash"):
            ingest_edge_list(edgelist, dest_path)
        assert not os.path.exists(dest_path)
        monkeypatch.undo()
        with pytest.warns(UserWarning, match="interrupted run"):
            dest = ingest_edge_list(edgelist, dest_path)
        graph = load_graph(dest)
        assert graph.number_of_edges() == len(EDGES)

    def test_truncated_final_line_skipped_with_warning(self, tmp_path):
        source = _write_edgelist(
            tmp_path / "torn.edges", extra_lines=["7 8x"]
        )
        with pytest.warns(UserWarning, match="truncated final line"):
            dest = ingest_edge_list(source, source + ".csrbin")
        graph = load_graph(dest)
        assert graph.number_of_edges() == len(EDGES)
        # The torn line contributes nothing: parsing fails before either
        # endpoint is recorded.
        assert 7 not in graph and 8 not in graph

    def test_truncated_final_line_warns_once_per_path(self, tmp_path):
        """Re-parsing the same torn file must not repeat the warning.

        Force rebuilds re-run the parse pass over the unchanged source; a
        single damaged download should be reported once per process, not
        once per rebuild."""
        source = _write_edgelist(
            tmp_path / "torn-twice.edges", extra_lines=["9 10x"]
        )
        dest = str(tmp_path / "torn-twice.csrbin")
        with pytest.warns(UserWarning, match="truncated final line"):
            ingest_edge_list(source, dest)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ingest_edge_list(source, dest, force=True)
        assert not [
            w for w in caught if "truncated final line" in str(w.message)
        ]
        # A *different* torn file still gets its own (single) warning.
        other = _write_edgelist(
            tmp_path / "torn-other.edges", extra_lines=["9 10x"]
        )
        with pytest.warns(UserWarning, match="truncated final line"):
            ingest_edge_list(other, str(tmp_path / "torn-other.csrbin"))

    def test_malformed_line_mid_file_is_fatal(self, tmp_path):
        source = tmp_path / "bad.edges"
        with open(source, "w", encoding="utf-8") as handle:
            handle.write("0 1\nnot numbers\n2 3\n")
        with pytest.raises(CSRFileError, match="followed by more data"):
            ingest_edge_list(str(source), str(source) + ".csrbin")

    def test_truncated_destination_header_is_invalid(self, edgelist):
        dest = ingest_edge_list(edgelist, edgelist + ".csrbin")
        size = os.path.getsize(dest)
        with open(dest, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(CSRFileError):
            load_csr_graph(dest)
