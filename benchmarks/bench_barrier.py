"""Experiment: the Section-3 barrier construction.

The paper closes Section 3 with a graph showing that the ``O(log^2 n / eps)``
diameter is the limit of the Lemma 3.1 approach: a constant-degree expander
with every edge subdivided into a path of length ``log n / eps``.  Such a
graph has conductance ``Theta(eps / log n)``, admits no balanced sparse cut
with a light separator, and every subset with at least ``n/3`` nodes induces a
subgraph of diameter ``Omega(log^2 n / eps)``.

This benchmark builds the construction, measures those three properties, and
runs the Lemma 3.1 procedure on it to confirm that whichever outcome it
returns pays the predicted price (a large-diameter component), while a
"benign" workload of the same size does not.
"""

import math

import pytest

from _harness import benchmark_torus, emit_table, run_once
from repro.core.sparse_cut import LargeComponent, SparseCut, sparse_cut_or_component
from repro.graphs.expanders import barrier_graph
from repro.graphs.properties import graph_conductance_lower_bound, subgraph_diameter

_EPS = 0.5
_TARGET_N = 500


def _analyse(graph, eps):
    result = sparse_cut_or_component(graph, graph.nodes(), eps)
    n = graph.number_of_nodes()
    row = {"n": n, "outcome": result.kind}
    if isinstance(result, LargeComponent):
        row["component_size"] = len(result.component)
        row["component_diameter"] = subgraph_diameter(graph, result.component)
        row["boundary"] = len(result.boundary)
    else:
        row["side_a"] = len(result.side_a)
        row["side_b"] = len(result.side_b)
        row["separator"] = len(result.separator)
    return result, row


@pytest.mark.benchmark(group="barrier")
def test_barrier_construction_properties(benchmark):
    def build_and_measure():
        graph, meta = barrier_graph(_TARGET_N, _EPS, seed=5)
        conductance = graph_conductance_lower_bound(graph, samples=48, seed=1)
        result, row = _analyse(graph, _EPS)
        row.update(
            {
                "subdivision": meta["subdivision_length"],
                "conductance": round(conductance, 4),
            }
        )
        return graph, meta, result, row

    graph, meta, result, row = run_once(benchmark, build_and_measure)
    emit_table("barrier_properties", [row], "Section 3 barrier graph — measured properties")

    n = graph.number_of_nodes()
    log_n = math.log2(n)
    # Conductance is tiny (Theta(eps / log n) up to constants).
    assert row["conductance"] <= 4 * _EPS / log_n + 0.1
    # Whatever Lemma 3.1 returns, a large component on this graph must have
    # diameter at least on the order of the subdivision length (the barrier's
    # lower-bound witness), i.e. it cannot be a genuinely low-diameter chunk.
    if isinstance(result, LargeComponent):
        assert row["component_diameter"] >= meta["subdivision_length"] // 2


@pytest.mark.benchmark(group="barrier")
def test_benign_graph_has_no_such_barrier(benchmark):
    """Control: a torus of comparable size yields a small-diameter component."""
    graph = benchmark_torus(_TARGET_N)
    result, row = run_once(benchmark, lambda: _analyse(graph, _EPS))
    emit_table("barrier_control_torus", [row], "Control — Lemma 3.1 on a torus of similar size")
    n = graph.number_of_nodes()
    if isinstance(result, LargeComponent):
        assert row["component_diameter"] <= 16 * math.log2(n) ** 2 / _EPS + 8
