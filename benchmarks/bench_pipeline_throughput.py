"""Pipeline throughput experiment: suite fan-out and store-hit reruns.

Measures the batched experiment pipeline (:func:`repro.run_suite`) on a
24-cell ``scenario x n x method`` grid:

1. **serial** — ``workers=1``, per-cell rebuilds, fresh store: the baseline
   one-cell-at-a-time sweep every hand-rolled benchmark script used to be;
2. **parallel** — ``workers=min(4, cpu_count)``, per-cell rebuilds, fresh
   store: the plain ``multiprocessing`` fan-out;
3. **parallel+arena** — same pool with ``shared_graphs=on``: one topology
   build per grid column, published through the zero-copy shared-memory
   arena (see ``bench_arena_speedup.py`` for the dedicated experiment);
4. **rerun** — same store as the parallel run: every cell must be a store
   hit, i.e. a completed suite re-runs with **zero recomputation**.

Acceptance targets (ISSUE 2): parallel fan-out >= 2x faster than serial on a
>= 24-cell grid, and the rerun executes 0 cells.  The speedup target needs
actual cores — process pools cannot beat serial on a single-CPU box — so the
parallel assertion scales with the CPUs the runner actually has (asserted at
>= 2x with 4+ CPUs, >= 1.2x with 2–3, recorded but not asserted on 1); the
store-hit target is asserted unconditionally, as is the arena leg's
one-build-per-column accounting (ISSUE 3).

Run with ``pytest benchmarks/bench_pipeline_throughput.py -s`` or directly
with ``python benchmarks/bench_pipeline_throughput.py``.
"""

import os
import sys
import tempfile
import time

import pytest

import repro
from _harness import emit_metrics, emit_table
from repro.pipeline import SuiteSpec

TARGET_SPEEDUP = 2.0
PARALLEL_WORKERS = min(4, os.cpu_count() or 1)

GRID = SuiteSpec(
    name="pipeline-throughput",
    scenarios=("torus", "grid", "tree"),
    sizes=(100, 196),
    methods=("strong-log3", "weak-rg20", "mpx", "ls93"),
    mode="decomposition",
    seeds=(0,),
)  # 3 scenarios x 2 sizes x 4 methods = 24 cells


def _timed_run(workers, store_path, shared_graphs="off"):
    start = time.perf_counter()
    result = repro.run_suite(
        GRID, store=store_path, workers=workers, shared_graphs=shared_graphs
    )
    return time.perf_counter() - start, result


def throughput_rows():
    """Serial / parallel / arena / rerun timings of the 24-cell grid."""
    cells = len(GRID.expand())
    with tempfile.TemporaryDirectory() as tmp:
        serial_seconds, serial = _timed_run(1, os.path.join(tmp, "serial.jsonl"))
        store_path = os.path.join(tmp, "parallel.jsonl")
        parallel_seconds, parallel = _timed_run(PARALLEL_WORKERS, store_path)
        arena_seconds, arena = _timed_run(
            PARALLEL_WORKERS, os.path.join(tmp, "arena.jsonl"), shared_graphs="on"
        )
        rerun_seconds, rerun = _timed_run(PARALLEL_WORKERS, store_path)

    def row(label, workers, seconds, result):
        return {
            "run": label,
            "workers": workers,
            "cells": cells,
            "executed": result.executed,
            "store hits": result.skipped,
            "graph builds": result.arena.get("graph_builds", result.executed),
            "seconds": round(seconds, 3),
            "speedup": round(serial_seconds / seconds, 2) if seconds > 0 else float("inf"),
        }

    return [
        row("serial", 1, serial_seconds, serial),
        row("parallel", PARALLEL_WORKERS, parallel_seconds, parallel),
        row("parallel+arena", PARALLEL_WORKERS, arena_seconds, arena),
        row("rerun (warm store)", PARALLEL_WORKERS, rerun_seconds, rerun),
    ]


def _check(rows):
    """Assert the acceptance targets; returns (ok, message) for script mode."""
    by_run = {row["run"]: row for row in rows}
    serial, parallel = by_run["serial"], by_run["parallel"]
    rerun = by_run["rerun (warm store)"]
    arena = by_run["parallel+arena"]

    assert serial["cells"] >= 24
    assert serial["executed"] == serial["cells"]
    # A completed suite re-runs with zero recomputation: every cell is
    # satisfied from the store, and the rerun is dominated by I/O, not work.
    assert rerun["executed"] == 0
    assert rerun["store hits"] == rerun["cells"]
    assert rerun["seconds"] < serial["seconds"]
    # The arena leg executes everything too, but builds each of the grid's
    # topologies exactly once (24 cells over 6 scenario x size columns).
    assert arena["executed"] == arena["cells"]
    assert arena["graph builds"] == 6

    cpus = os.cpu_count() or 1
    if cpus >= 4:
        target = TARGET_SPEEDUP
    elif cpus >= 2:
        target = 1.2
    else:
        return True, "single CPU: parallel speedup recorded ({}x) but not asserted".format(
            parallel["speedup"]
        )
    ok = parallel["speedup"] >= target
    return ok, "parallel speedup {}x on {} CPUs (target {}x)".format(
        parallel["speedup"], cpus, target
    )


def _emit(rows):
    emit_table(
        "pipeline_throughput",
        rows,
        "Pipeline throughput — 24-cell grid, serial vs parallel vs arena vs warm rerun "
        "(cpus={})".format(os.cpu_count() or 1),
    )
    by_run = {row["run"]: row for row in rows}
    metrics = [
        {
            "metric": "{}_s".format(key),
            "value": by_run[label]["seconds"],
            "unit": "s",
            "n": by_run[label]["cells"],
        }
        for key, label in (
            ("serial", "serial"),
            ("parallel", "parallel"),
            ("parallel_arena", "parallel+arena"),
            ("rerun_warm", "rerun (warm store)"),
        )
    ]
    metrics.append(
        {
            "metric": "parallel_speedup",
            "value": by_run["parallel"]["speedup"],
            "unit": "x",
            "n": by_run["parallel"]["cells"],
        }
    )
    metrics.append(
        {
            "metric": "arena_graph_builds",
            "value": by_run["parallel+arena"]["graph builds"],
            "unit": "builds",
            "n": by_run["parallel+arena"]["cells"],
        }
    )
    emit_metrics(
        "pipeline_throughput",
        metrics,
        config={
            "cells": rows[0]["cells"],
            "workers": PARALLEL_WORKERS,
            "cpus": os.cpu_count() or 1,
        },
    )


@pytest.mark.benchmark(group="pipeline-throughput")
def test_pipeline_throughput():
    rows = throughput_rows()
    _emit(rows)
    ok, message = _check(rows)
    print("\n" + message)
    assert ok, message


def main() -> int:
    rows = throughput_rows()
    _emit(rows)
    ok, message = _check(rows)
    print("{} ({})".format(message, "PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
