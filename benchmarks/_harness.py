"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper (see
DESIGN.md §4).  The helpers here build the workload graphs, run one algorithm
per table row, collect the measured parameters, render them with
:func:`repro.analysis.tables.format_table`, and archive the rendered tables
under ``benchmarks/results/`` so that EXPERIMENTS.md can quote them.

Run the harness with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import os
import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import networkx as nx

import repro
from repro.analysis.metrics import evaluate_carving, evaluate_decomposition
from repro.analysis.tables import format_table
from repro.graphs.generators import random_regular_graph, torus_graph

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

# The algorithm rows of Table 1 / Table 2, in the paper's order — derived
# from the method registry (repro.registry is the single source of truth).
from repro.registry import METHODS

DECOMPOSITION_ROWS = tuple(
    (METHODS.get(method).decomposition_label, method) for method in METHODS.table_order()
)

CARVING_ROWS = tuple(
    (METHODS.get(method).carving_label, method) for method in METHODS.table_order()
)

# method string -> display label, for labelling suite-pipeline rows.
DECOMPOSITION_LABELS = {method: label for label, method in DECOMPOSITION_ROWS}
CARVING_LABELS = {method: label for label, method in CARVING_ROWS}

# The Table 1 / Table 2 method axis in the paper's row order.
TABLE_METHODS = tuple(method for _, method in DECOMPOSITION_ROWS)


def suite_rows(spec, labels=None, store=None, workers=1):
    """Run a suite spec through the pipeline and return labelled table rows.

    The batched replacement for hand-rolled ``decomposition_row`` /
    ``carving_row`` loops: one :func:`repro.run_suite` call per table, with
    rows flattened by :func:`repro.analysis.tables.rows_from_records` and
    method strings mapped to the paper's row labels.
    """
    from repro.analysis.tables import rows_from_records

    result = repro.run_suite(spec, store=store, workers=workers)
    return rows_from_records(result.records, labels=labels)


def benchmark_torus(n: int, seed: int = 7) -> nx.Graph:
    """The default benchmark workload: a roughly square torus with ~n nodes."""
    side = max(3, int(round(n ** 0.5)))
    return torus_graph(side, side, seed=seed)


def benchmark_regular(n: int, seed: int = 7) -> nx.Graph:
    """The expander-like workload: a random 4-regular graph with ~n nodes."""
    size = n if (n * 4) % 2 == 0 else n + 1
    return random_regular_graph(size, 4, seed=seed)


def decomposition_row(
    graph: nx.Graph, label: str, method: str, seed: int = 0, backend: Optional[str] = None
) -> Dict[str, Any]:
    """Run one decomposition algorithm and return its Table 1 row.

    ``backend`` selects the graph backend (``"csr"`` flat arrays by default,
    ``"nx"`` for the original walks — see :mod:`repro.graphs.backend`).
    """
    decomposition = repro.decompose(graph, method=method, seed=seed, backend=backend)
    return evaluate_decomposition(decomposition, label).as_row()


def carving_row(
    graph: nx.Graph,
    label: str,
    method: str,
    eps: float,
    seed: int = 0,
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one ball carving algorithm and return its Table 2 row."""
    carving = repro.carve(graph, eps, method=method, seed=seed, backend=backend)
    return evaluate_carving(carving, label).as_row()


def emit_table(name: str, rows: Sequence[Dict[str, Any]], title: str) -> str:
    """Render, print and archive one reproduced table."""
    table = format_table(list(rows), title=title)
    print("\n" + table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "{}.txt".format(name))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    return table


def emit_metrics(
    name: str,
    metrics: Sequence[Dict[str, Any]],
    config: Optional[Dict[str, Any]] = None,
) -> str:
    """Archive machine-readable results as ``results/<name>.json``.

    The structured companion of :func:`emit_table`: each entry of
    ``metrics`` is one measured quantity (``{"metric": ..., "value": ...,
    "unit": ..., "n": ..., ...}``), ``config`` records the benchmark's
    configuration once.  CI and regression tooling read these instead of
    parsing the rendered ``.txt`` tables.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": name,
        "config": dict(config or {}),
        "results": [dict(metric) for metric in metrics],
    }
    path = os.path.join(RESULTS_DIR, "{}.json".format(name))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_once(benchmark, func: Callable[[], Any]) -> Any:
    """Run ``func`` exactly once under pytest-benchmark timing.

    The algorithms under study are deterministic-cost simulations, not
    micro-kernels; a single timed execution per benchmark keeps the harness
    fast while still recording wall-clock numbers alongside the round counts.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
