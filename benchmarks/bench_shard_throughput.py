"""Shard throughput experiment: deterministic fan-out and lossless reassembly.

Measures the ``--shard I/K`` suite slicing (see docs/pipeline.md) in four
legs:

1. **partition** — expand a >= 10^4-cell grid and split it K ways for
   several K: every cell lands in exactly one shard (zero duplicated, zero
   missing — asserted always, no execution needed), columns and task
   groups stay intact, and the assignment is stable under grid reordering;
2. **equivalence** — run a small grid unsharded and as two shard runs,
   ``merge_stores`` the shard stores, and compare: the merged records are
   identical to the unsharded run's modulo wall clock (asserted always);
3. **throughput** — two shard *processes* running concurrently vs one
   unsharded process on the same grid.  Target: >= 1.8x at K=2 —
   asserted only with >= 2 CPUs (two processes cannot beat one on a
   single-CPU box; recorded either way);
4. **builder overlap** — a pool-arena run's ``arena["builder"]`` stats:
   the builder thread should hide >= 50 % of column build time behind
   cell execution — asserted only with >= 2 CPUs, recorded always.

Run with ``pytest benchmarks/bench_shard_throughput.py -s`` or directly
with ``python benchmarks/bench_shard_throughput.py``.
"""

import json
import os
import subprocess
import sys
import tempfile
import time

import pytest

import repro
from _harness import emit_metrics, emit_table
from repro.pipeline import SuiteSpec, merge_stores, open_store, shard_cells
from repro.pipeline.arena import shared_memory_available

TARGET_SHARD_SPEEDUP = 1.8
TARGET_OVERLAP_FRACTION = 0.5
PARTITION_COUNTS = (2, 3, 5, 8)

#: The partition leg's grid: 4 x 5 x 5 x 50 x 2 = 10 000 cells, expanded
#: but never executed — the partition property is pure arithmetic.
PARTITION_GRID = SuiteSpec(
    name="shard-partition",
    scenarios=("torus", "grid", "cycle", "tree"),
    sizes=(36, 64, 100, 144, 196),
    methods=("strong-log3", "strong-log2", "weak-rg20", "mpx", "ls93"),
    mode="decomposition",
    seeds=tuple(range(50)),
    tasks=("decompose", "mis"),
)

#: The executed grids: small enough to run four times in a benchmark.
RUN_SPEC = {
    "name": "shard-throughput",
    "scenarios": ["torus", "grid"],
    "sizes": [100, 196],
    "methods": ["mpx", "sequential"],
    "seeds": [0, 1],
    "tasks": ["decompose", "mis"],
}

_VOLATILE = ("seconds", "timings")


def _strip(record):
    return {k: v for k, v in record.items() if k not in _VOLATILE}


def partition_rows():
    """Split the 10^4-cell grid K ways; count duplicates and misses."""
    cells = PARTITION_GRID.expand()
    ids = [cell.cell_id for cell in cells]
    rows = []
    for count in PARTITION_COUNTS:
        shards = [shard_cells(cells, (i, count)) for i in range(count)]
        union = [cell.cell_id for shard in shards for cell in shard]
        shard_of_cell = {
            cell.cell_id: shard_index
            for shard_index, shard in enumerate(shards)
            for cell in shard
        }
        columns_split = sum(
            1
            for column_cells in _by_column(cells).values()
            if len({shard_of_cell[cell.cell_id] for cell in column_cells}) > 1
        )
        rows.append(
            {
                "k": count,
                "cells": len(ids),
                "shard sizes": "/".join(str(len(shard)) for shard in shards),
                "duplicated": len(union) - len(set(union)),
                "missing": len(set(ids) - set(union)),
                "columns split": columns_split,
            }
        )
    return rows


def _by_column(cells):
    columns = {}
    for cell in cells:
        columns.setdefault(cell.column_key, []).append(cell)
    return columns


def equivalence_rows(tmp):
    """Unsharded vs two merged shard runs: identical records, no recompute."""
    full_path = os.path.join(tmp, "full.jsonl")
    full = repro.run_suite(dict(RUN_SPEC), store=full_path)
    shard_paths = []
    for index in range(2):
        path = os.path.join(tmp, "shard{}.jsonl".format(index))
        repro.run_suite(dict(RUN_SPEC), store=path, shard=(index, 2))
        shard_paths.append(path)
    merged_path = os.path.join(tmp, "merged.jsonl")
    merged = merge_stores(shard_paths, merged_path)
    full_records = open_store(full_path).results()
    identical = [_strip(r) for r in merged.results()] == [
        _strip(r) for r in full_records
    ]
    resumed = repro.run_suite(dict(RUN_SPEC), store=merged_path)
    return [
        {
            "comparison": "merged(2 shards) vs unsharded",
            "cells": len(full.records),
            "identical (modulo wall clock)": identical,
            "resume recomputed": resumed.executed,
        }
    ]


def _shard_command(spec_path, store_path, shard):
    command = [
        sys.executable,
        "-m",
        "repro",
        "--mode",
        "suite",
        "--spec",
        spec_path,
        "--store",
        store_path,
    ]
    if shard is not None:
        command += ["--shard", shard]
    return command


def throughput_rows(tmp):
    """Two concurrent shard processes vs one unsharded process."""
    spec_path = os.path.join(tmp, "spec.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(RUN_SPEC, handle)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (
            os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
            env.get("PYTHONPATH"),
        )
        if p
    )

    start = time.perf_counter()
    subprocess.run(
        _shard_command(spec_path, os.path.join(tmp, "solo.jsonl"), None),
        check=True,
        env=env,
        stdout=subprocess.DEVNULL,
    )
    solo_seconds = time.perf_counter() - start

    start = time.perf_counter()
    procs = [
        subprocess.Popen(
            _shard_command(
                spec_path,
                os.path.join(tmp, "t-shard{}.jsonl".format(index)),
                "{}/2".format(index),
            ),
            env=env,
            stdout=subprocess.DEVNULL,
        )
        for index in range(2)
    ]
    for proc in procs:
        assert proc.wait() == 0
    sharded_seconds = time.perf_counter() - start

    speedup = solo_seconds / sharded_seconds if sharded_seconds > 0 else float("inf")
    return [
        {
            "run": "unsharded (1 process)",
            "seconds": round(solo_seconds, 3),
            "speedup": 1.0,
        },
        {
            "run": "2 shards (2 processes)",
            "seconds": round(sharded_seconds, 3),
            "speedup": round(speedup, 2),
        },
    ]


def builder_rows():
    """One pool-arena run's builder-pipeline accounting."""
    if not shared_memory_available():
        return []
    result = repro.run_suite(dict(RUN_SPEC), workers=2, shared_graphs="on")
    builder = result.arena.get("builder", {})
    build_s = builder.get("build_s", 0.0)
    overlap = builder.get("overlap_s", 0.0) / build_s if build_s > 0 else 0.0
    return [
        {
            "columns": builder.get("columns", 0),
            "build_s": builder.get("build_s", 0.0),
            "overlap_s": builder.get("overlap_s", 0.0),
            "blocked_s": builder.get("blocked_s", 0.0),
            "overlap fraction": round(overlap, 3),
        }
    ]


def _check(partition, equivalence, throughput, builder):
    problems = []
    for row in partition:
        if row["duplicated"] or row["missing"]:
            problems.append(
                "k={}: {} duplicated / {} missing cells".format(
                    row["k"], row["duplicated"], row["missing"]
                )
            )
        if row["columns split"]:
            problems.append("k={}: {} columns split".format(row["k"], row["columns split"]))
    for row in equivalence:
        if not row["identical (modulo wall clock)"]:
            problems.append("merged shard records differ from the unsharded run")
        if row["resume recomputed"]:
            problems.append(
                "resume after merge recomputed {} cells".format(row["resume recomputed"])
            )
    cpus = os.cpu_count() or 1
    messages = []
    speedup = throughput[-1]["speedup"]
    if cpus >= 2:
        if speedup < TARGET_SHARD_SPEEDUP:
            problems.append(
                "2-shard speedup {}x below the {}x target on {} CPUs".format(
                    speedup, TARGET_SHARD_SPEEDUP, cpus
                )
            )
        messages.append("2-shard speedup {}x on {} CPUs".format(speedup, cpus))
    else:
        messages.append(
            "single CPU: 2-shard speedup recorded ({}x) but not asserted".format(speedup)
        )
    if builder:
        fraction = builder[0]["overlap fraction"]
        if cpus >= 2 and fraction < TARGET_OVERLAP_FRACTION:
            problems.append(
                "builder hid {:.0%} of column build time (target {:.0%})".format(
                    fraction, TARGET_OVERLAP_FRACTION
                )
            )
        messages.append(
            "builder overlap {:.0%}{}".format(
                fraction, "" if cpus >= 2 else " (recorded, 1 CPU)"
            )
        )
    return problems, "; ".join(messages)


def _emit(partition, equivalence, throughput, builder):
    cpus = os.cpu_count() or 1
    emit_table(
        "shard_partition",
        partition,
        "Shard partition — {} cells split K ways (duplicates/misses must be 0)".format(
            partition[0]["cells"]
        ),
    )
    emit_table(
        "shard_equivalence",
        equivalence,
        "Shard equivalence — two merged shard runs vs one unsharded run",
    )
    emit_table(
        "shard_throughput",
        throughput,
        "Shard throughput — 2 concurrent shard processes vs 1 unsharded "
        "process, {} cells (cpus={})".format(equivalence[0]["cells"], cpus),
    )
    if builder:
        emit_table(
            "shard_builder_overlap",
            builder,
            "Builder-worker pipeline — column build time hidden behind cell "
            "execution (workers=2, cpus={})".format(cpus),
        )
    metrics = [
        {
            "metric": "partition_max_duplicated",
            "value": max(row["duplicated"] for row in partition),
            "unit": "cells",
            "n": partition[0]["cells"],
        },
        {
            "metric": "partition_max_missing",
            "value": max(row["missing"] for row in partition),
            "unit": "cells",
            "n": partition[0]["cells"],
        },
        {
            "metric": "merged_identical",
            "value": all(row["identical (modulo wall clock)"] for row in equivalence),
            "unit": "bool",
            "n": equivalence[0]["cells"],
        },
        {
            "metric": "unsharded_s",
            "value": throughput[0]["seconds"],
            "unit": "s",
            "n": equivalence[0]["cells"],
        },
        {
            "metric": "two_shard_s",
            "value": throughput[1]["seconds"],
            "unit": "s",
            "n": equivalence[0]["cells"],
        },
        {
            "metric": "two_shard_speedup",
            "value": throughput[1]["speedup"],
            "unit": "x",
            "n": equivalence[0]["cells"],
        },
    ]
    if builder:
        metrics.append(
            {
                "metric": "builder_overlap_fraction",
                "value": builder[0]["overlap fraction"],
                "unit": "fraction",
                "n": builder[0]["columns"],
            }
        )
    emit_metrics(
        "shard_throughput",
        metrics,
        config={
            "partition_cells": partition[0]["cells"],
            "partition_counts": list(PARTITION_COUNTS),
            "run_cells": equivalence[0]["cells"],
            "cpus": cpus,
        },
    )


def _run(assert_targets):
    partition = partition_rows()
    with tempfile.TemporaryDirectory() as tmp:
        equivalence = equivalence_rows(tmp)
        throughput = throughput_rows(tmp)
    builder = builder_rows()
    _emit(partition, equivalence, throughput, builder)
    problems, message = _check(partition, equivalence, throughput, builder)
    print(
        "{} -> {}".format(message, "PASS" if not problems else "; ".join(problems))
    )
    if assert_targets:
        assert not problems, problems
    return problems


@pytest.mark.benchmark(group="shard-throughput")
def test_shard_throughput():
    _run(assert_targets=True)


def main() -> int:
    return 1 if _run(assert_targets=False) else 0


if __name__ == "__main__":
    sys.exit(main())
