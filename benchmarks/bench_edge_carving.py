"""Experiment: the edge version of ball carving (end of Section 1.3).

The paper notes that all Table 2 results also hold for the edge version,
where at most an ``eps`` fraction of *edges* is removed.  This benchmark runs
the library's edge-version algorithms (sequential edge ball growing, the MPX
edge version, and the node-to-edge adapter over Theorem 2.2) and checks the
same qualitative shape as the node version: removal budgets hold (exactly for
the deterministic variants, in expectation for the randomized one), and the
cluster diameters of the surviving graph carry the familiar ``1/eps`` factor.
"""

import math
import random

import pytest

from _harness import benchmark_torus, emit_table, run_once
from repro.core.edge_carving import (
    check_edge_carving,
    edge_carving_from_node_carving,
    mpx_edge_carving,
    sequential_edge_carving,
)
from repro.graphs.properties import subgraph_diameter

_N = 256
_EPS = 0.25


def _row(name, carving):
    survivor = carving.surviving_graph()
    diameter = max(
        (subgraph_diameter(survivor, cluster.nodes) for cluster in carving.clusters), default=0
    )
    summary = carving.summary()
    return {
        "algorithm": name,
        "n": summary["n"],
        "m": summary["m"],
        "clusters": summary["clusters"],
        "removed edges": summary["removed_edges"],
        "removed %": round(100 * summary["removed_fraction"], 2),
        "diameter": diameter,
        "rounds": summary["rounds"],
    }


@pytest.mark.benchmark(group="edge-carving")
def test_edge_carving_variants(benchmark):
    graph = benchmark_torus(_N)

    def run_all():
        rows = []
        sequential = sequential_edge_carving(graph, _EPS)
        check_edge_carving(sequential)
        rows.append(_row("sequential edge growing (deterministic)", sequential))

        randomized = mpx_edge_carving(graph, _EPS, rng=random.Random(1))
        check_edge_carving(randomized, max_removed_fraction=0.95)
        rows.append(_row("MPX edge version (randomized)", randomized))

        adapted = edge_carving_from_node_carving(graph, _EPS)
        check_edge_carving(adapted, max_removed_fraction=0.95)
        rows.append(_row("Theorem 2.2 node-to-edge adapter", adapted))
        return rows

    rows = run_once(benchmark, run_all)
    emit_table("edge_carving", rows, "Edge-version ball carving — torus, eps={}".format(_EPS))

    m = graph.number_of_edges()
    by_name = {row["algorithm"]: row for row in rows}
    assert by_name["sequential edge growing (deterministic)"]["removed %"] <= 100 * _EPS + 100.0 / m
    assert by_name["Theorem 2.2 node-to-edge adapter"]["removed %"] <= 100 * _EPS + 100.0 / m
    log_m = math.log2(max(2, m))
    assert by_name["sequential edge growing (deterministic)"]["diameter"] <= 8 * log_m / _EPS + 8
