"""Backend speedup experiment: flat-array CSR core vs. networkx walks.

Measures wall-clock time of the paper's decompositions under the two graph
backends (see :mod:`repro.graphs.backend`) on the torus workload.  The CSR
refactor exists purely for throughput — both backends produce identical
cluster assignments (asserted here on the measured instances and, more
broadly, by ``tests/test_backend_differential.py``) — so the whole result of
this experiment is the speedup column.

Acceptance target (ISSUE 1): ``strong-log3`` decomposition at n≈2000 on the
torus family must run at least 3x faster under ``backend="csr"`` than under
``backend="nx"``.

Run with ``pytest benchmarks/bench_backend_speedup.py -s`` or directly with
``python benchmarks/bench_backend_speedup.py``.
"""

import sys
import time

import pytest

import repro
from _harness import benchmark_torus, emit_table

SIZES = (256, 1024, 2025)
TARGET_N = 2025
TARGET_SPEEDUP = 3.0
REPEATS = 3


def _time_decomposition(graph, method, backend, repeats=REPEATS):
    """Best-of-N wall time plus the produced decomposition (for the check)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = repro.decompose(graph, method=method, seed=1, backend=backend)
        best = min(best, time.perf_counter() - start)
    return best, result


def _signature(decomposition):
    return frozenset(
        (cluster.color, frozenset(cluster.nodes)) for cluster in decomposition.clusters
    )


def backend_speedup_rows(method="strong-log3", sizes=SIZES):
    """One table row per size: nx time, csr time, speedup, equivalence."""
    rows = []
    for n in sizes:
        graph = benchmark_torus(n)
        nx_time, nx_result = _time_decomposition(graph, method, "nx")
        csr_time, csr_result = _time_decomposition(graph, method, "csr")
        rows.append(
            {
                "method": method,
                "n": graph.number_of_nodes(),
                "nx seconds": round(nx_time, 4),
                "csr seconds": round(csr_time, 4),
                "speedup": round(nx_time / csr_time, 2),
                "identical": _signature(nx_result) == _signature(csr_result),
            }
        )
    return rows


@pytest.mark.benchmark(group="backend-speedup")
def test_backend_speedup_strong_log3():
    rows = backend_speedup_rows("strong-log3")
    emit_table(
        "backend_speedup_strong_log3",
        rows,
        "Backend speedup — Theorem 2.3 decomposition, torus workload",
    )
    for row in rows:
        assert row["identical"], "backends diverged at n={}".format(row["n"])
    target_row = max(rows, key=lambda row: row["n"])
    assert target_row["n"] >= 0.9 * TARGET_N
    assert target_row["speedup"] >= TARGET_SPEEDUP, (
        "CSR backend only {}x faster at n={} (target {}x)".format(
            target_row["speedup"], target_row["n"], TARGET_SPEEDUP
        )
    )


@pytest.mark.benchmark(group="backend-speedup")
def test_backend_speedup_other_methods():
    """The CSR core must never be slower than the walks it replaced."""
    rows = []
    for method in ("strong-log2", "weak-rg20"):
        rows.extend(backend_speedup_rows(method, sizes=(1024,)))
    emit_table(
        "backend_speedup_other_methods",
        rows,
        "Backend speedup — other deterministic methods, torus n=1024",
    )
    for row in rows:
        assert row["identical"]
        # 0.9 rather than 1.0: wall-clock ties on a loaded machine can round
        # either way; the guard is against real regressions, not noise.
        assert row["speedup"] >= 0.9, "{} regressed: {}".format(row["method"], row)


def main() -> int:
    rows = backend_speedup_rows("strong-log3")
    emit_table(
        "backend_speedup_strong_log3",
        rows,
        "Backend speedup — Theorem 2.3 decomposition, torus workload",
    )
    worst = max(rows, key=lambda row: row["n"])
    ok = worst["speedup"] >= TARGET_SPEEDUP and all(row["identical"] for row in rows)
    print(
        "target: >= {}x at n≈{} -> measured {}x ({})".format(
            TARGET_SPEEDUP, TARGET_N, worst["speedup"], "PASS" if ok else "FAIL"
        )
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
