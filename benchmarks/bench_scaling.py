"""Experiment "scaling figure": polylogarithmic growth of the round counts.

The paper's claim is qualitative — the deterministic strong-diameter
decomposition runs in poly(log n) rounds.  This benchmark sweeps ``n`` over a
geometric range on the torus workload with one suite-pipeline grid
(methods x sizes, shared topologies per size), measures the charged rounds
and the cluster diameters, fits a ``c * (log2 n)^k`` curve, and checks that
the data are consistent with a polylogarithmic bound (and inconsistent with
linear growth), which is the "figure" a systems reader would want to see.
"""

import math

import pytest

from _harness import emit_table, run_once, suite_rows
from repro.analysis.fitting import fit_polylog, is_polylog_bounded
from repro.pipeline import SuiteSpec

_SIZES = (64, 144, 256, 400, 576)


def _sweep(methods, seed=1):
    spec = SuiteSpec(
        name="scaling-torus",
        scenarios=("torus",),
        sizes=_SIZES,
        methods=tuple(methods),
        mode="decomposition",
        seeds=(seed,),
    )
    return suite_rows(spec)


def _method_rows(rows, method):
    return [row for row in rows if row["method"] == method]


@pytest.mark.benchmark(group="scaling")
def test_scaling_deterministic_strong(benchmark):
    rows = run_once(benchmark, lambda: _sweep(("strong-log3",)))
    emit_table("scaling_strong_log3", rows, "Scaling — Theorem 2.3 rounds/diameter vs n (torus)")

    sizes = [row["n"] for row in rows]
    rounds = [max(1, row["rounds"]) for row in rows]
    fit = fit_polylog(sizes, rounds)
    print("\npolylog fit: rounds ~ {:.2f} * (log2 n)^{:.2f}  (poly exponent {:.2f})".format(
        fit.coefficient, fit.exponent, fit.polynomial_exponent))
    # Consistent with a polylog bound of degree at most the paper's log^8.
    assert is_polylog_bounded(sizes, rounds, max_exponent=12.0)
    # Colors stay logarithmic across the sweep.
    for row in rows:
        assert row["colors"] <= 2 * math.ceil(math.log2(row["n"])) + 2


@pytest.mark.benchmark(group="scaling")
def test_scaling_randomized_baseline_cheaper(benchmark):
    """One grid, two method columns on identical per-size topologies."""

    def sweep():
        return _sweep(("strong-log3", "mpx"))

    rows = run_once(benchmark, sweep)
    randomized = _method_rows(rows, "mpx")
    deterministic = _method_rows(rows, "strong-log3")
    emit_table("scaling_mpx", randomized, "Scaling — MPX/EN16 rounds vs n (torus)")
    for det_row, rand_row in zip(deterministic, randomized):
        assert rand_row["n"] == det_row["n"]
        assert rand_row["rounds"] <= det_row["rounds"]


@pytest.mark.benchmark(group="scaling")
def test_scaling_diameters_stay_polylog(benchmark):
    rows = run_once(benchmark, lambda: _sweep(("strong-log2",)))
    emit_table("scaling_strong_log2", rows, "Scaling — Theorem 3.4 diameter vs n (torus)")
    for row in rows:
        bound = 16 * math.log2(row["n"]) ** 2 / 0.5 + 8
        assert row["diameter"] <= bound
