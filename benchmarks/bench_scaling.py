"""Experiment "scaling figure": polylogarithmic growth of the round counts.

The paper's claim is qualitative — the deterministic strong-diameter
decomposition runs in poly(log n) rounds.  This benchmark sweeps ``n`` over a
geometric range on the torus workload, measures the charged rounds and the
cluster diameters, fits a ``c * (log2 n)^k`` curve, and checks that the data
are consistent with a polylogarithmic bound (and inconsistent with linear
growth), which is the "figure" a systems reader would want to see.
"""

import math

import pytest

from _harness import benchmark_torus, emit_table, run_once
from repro.analysis.fitting import fit_polylog, is_polylog_bounded
from repro.analysis.metrics import evaluate_decomposition
import repro

_SIZES = (64, 144, 256, 400, 576)


def _sweep(method, seed=1):
    rows = []
    for n in _SIZES:
        graph = benchmark_torus(n)
        decomposition = repro.decompose(graph, method=method, seed=seed)
        row = evaluate_decomposition(decomposition, method).as_row()
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="scaling")
def test_scaling_deterministic_strong(benchmark):
    rows = run_once(benchmark, lambda: _sweep("strong-log3"))
    emit_table("scaling_strong_log3", rows, "Scaling — Theorem 2.3 rounds/diameter vs n (torus)")

    sizes = [row["n"] for row in rows]
    rounds = [max(1, row["rounds"]) for row in rows]
    fit = fit_polylog(sizes, rounds)
    print("\npolylog fit: rounds ~ {:.2f} * (log2 n)^{:.2f}  (poly exponent {:.2f})".format(
        fit.coefficient, fit.exponent, fit.polynomial_exponent))
    # Consistent with a polylog bound of degree at most the paper's log^8.
    assert is_polylog_bounded(sizes, rounds, max_exponent=12.0)
    # Colors stay logarithmic across the sweep.
    for row in rows:
        assert row["colors"] <= 2 * math.ceil(math.log2(row["n"])) + 2


@pytest.mark.benchmark(group="scaling")
def test_scaling_randomized_baseline_cheaper(benchmark):
    deterministic = _sweep("strong-log3")

    def randomized():
        return _sweep("mpx", seed=3)

    rows = run_once(benchmark, randomized)
    emit_table("scaling_mpx", rows, "Scaling — MPX/EN16 rounds vs n (torus)")
    for det_row, rand_row in zip(deterministic, rows):
        assert rand_row["rounds"] <= det_row["rounds"]


@pytest.mark.benchmark(group="scaling")
def test_scaling_diameters_stay_polylog(benchmark):
    rows = run_once(benchmark, lambda: _sweep("strong-log2"))
    emit_table("scaling_strong_log2", rows, "Scaling — Theorem 3.4 diameter vs n (torus)")
    for row in rows:
        bound = 16 * math.log2(row["n"]) ** 2 / 0.5 + 8
        assert row["diameter"] <= bound
