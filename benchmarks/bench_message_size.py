"""Experiment: message sizes — ABCP96 gathering vs the small-message pipeline.

The reason Theorem 2.1 matters is bandwidth: the previously known
weak-to-strong transformation of Awerbuch et al. [ABCP96] gathers whole
cluster topologies at cluster centres, which requires messages of
``Theta(local edges * log n)`` bits, while the paper's transformation only
ever ships identifiers, counters and layer sizes — all ``O(log n)`` bits.

This benchmark measures, as ``n`` grows:

* the largest message the ABCP96 gathering step needs (and its blow-up factor
  over the CONGEST bandwidth ``B = O(log n)``);
* the largest message observed when the *distributed primitives* our pipeline
  is built from (BFS, layer counting, convergecast) run on the message-level
  simulator — which must stay within ``B``.
"""

import pytest

from _harness import emit_table, run_once
from repro.baselines.abcp import abcp_strong_carving
from repro.congest.messages import default_bandwidth
from repro.congest.primitives import bfs_tree, convergecast_sum, count_nodes_at_distances
from repro.graphs.generators import torus_graph

_SIDES = (5, 7, 9)


def _abcp_row(side):
    graph = torus_graph(side, side, seed=1)
    _, report = abcp_strong_carving(graph)
    return {
        "n": graph.number_of_nodes(),
        "ABCP96 max bits": report.max_message_bits,
        "CONGEST bandwidth": report.congest_bandwidth_bits,
        "blowup": round(report.blowup_factor, 1),
    }


def _primitive_row(side):
    graph = torus_graph(side, side, seed=1)
    root = 0
    parents, distances, bfs_report = bfs_tree(graph, root)
    _, cc_report = convergecast_sum(graph, parents, {node: 1 for node in graph.nodes()})
    _, lc_report = count_nodes_at_distances(graph, root, max_radius=max(distances.values()))
    worst = max(
        bfs_report.max_message_bits, cc_report.max_message_bits, lc_report.max_message_bits
    )
    return {
        "n": graph.number_of_nodes(),
        "primitive max bits": worst,
        "CONGEST bandwidth": default_bandwidth(graph.number_of_nodes()),
        "within budget": worst <= default_bandwidth(graph.number_of_nodes()),
    }


@pytest.mark.benchmark(group="message-size")
def test_abcp_messages_blow_up(benchmark):
    rows = run_once(benchmark, lambda: [_abcp_row(side) for side in _SIDES])
    emit_table("message_size_abcp", rows, "ABCP96 transformation — topology-gathering message sizes")
    for row in rows:
        assert row["ABCP96 max bits"] > row["CONGEST bandwidth"]
    # The blow-up grows with n (more topology to gather).
    assert rows[-1]["ABCP96 max bits"] >= rows[0]["ABCP96 max bits"]


@pytest.mark.benchmark(group="message-size")
def test_our_primitives_stay_within_bandwidth(benchmark):
    rows = run_once(benchmark, lambda: [_primitive_row(side) for side in _SIDES])
    emit_table(
        "message_size_primitives",
        rows,
        "Small-message pipeline — largest message of the distributed primitives",
    )
    for row in rows:
        assert row["within budget"], row
