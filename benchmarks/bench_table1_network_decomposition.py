"""Experiment "Table 1": network decomposition in the CONGEST model.

The paper's Table 1 compares network-decomposition algorithms by their number
of colors, cluster diameter, and round complexity.  This benchmark drives the
suite pipeline (:func:`repro.run_suite`) over a one-column grid per workload
— every implemented algorithm on a torus and on a random 4-regular
expander-like graph — and reports the *measured* colors, maximal cluster
diameter (strong or weak as appropriate), and charged CONGEST rounds.

Expected shape (what the paper's table predicts qualitatively):

* every algorithm uses O(log n) colors;
* the randomized algorithms (LS93, MPX/EN16) need far fewer rounds than the
  deterministic ones;
* the deterministic strong-diameter algorithms (Theorems 2.3 / 3.4) pay the
  largest round counts — that is the price of determinism + strong diameter
  with small messages;
* all measured cluster diameters stay well below the polylog bounds.
"""

import math

import pytest

from _harness import DECOMPOSITION_LABELS, TABLE_METHODS, emit_table, run_once, suite_rows
from repro.pipeline import SuiteSpec

_N = 256


def _spec(scenario):
    return SuiteSpec(
        name="table1-{}".format(scenario),
        scenarios=(scenario,),
        sizes=(_N,),
        methods=TABLE_METHODS,
        mode="decomposition",
        seeds=(1,),
    )


@pytest.mark.benchmark(group="table1")
def test_table1_torus(benchmark):
    rows = run_once(benchmark, lambda: suite_rows(_spec("torus"), labels=DECOMPOSITION_LABELS))
    n = rows[0]["n"]
    emit_table("table1_torus", rows, "Table 1 (reproduced) — torus, n={}".format(n))

    log_n = math.ceil(math.log2(n))
    by_label = {row["algorithm"]: row for row in rows}
    for row in rows:
        assert row["colors"] <= 4 * log_n + 8
    # Determinism + strong diameter costs the most rounds.
    assert by_label["Theorem 2.3 (strong, deterministic)"]["rounds"] >= by_label[
        "MPX13/EN16 (strong, randomized)"]["rounds"]
    assert by_label["Theorem 3.4 (strong, deterministic)"]["rounds"] >= by_label[
        "Theorem 2.3 (strong, deterministic)"]["rounds"]


@pytest.mark.benchmark(group="table1")
def test_table1_random_regular(benchmark):
    rows = run_once(
        benchmark, lambda: suite_rows(_spec("regular"), labels=DECOMPOSITION_LABELS)
    )
    n = rows[0]["n"]
    emit_table("table1_regular", rows, "Table 1 (reproduced) — random 4-regular, n={}".format(n))

    log_n = math.ceil(math.log2(n))
    for row in rows:
        assert row["colors"] <= 4 * log_n + 8
        # Every strong-diameter row's diameter stays below the paper's
        # poly-log bound envelope (log^3 n is the loosest of them).
        assert row["diameter"] <= 8 * log_n ** 3
