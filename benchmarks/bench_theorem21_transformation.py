"""Experiment: the Theorem 2.1 transformation's headline guarantee.

Theorem 2.1 promises that the produced strong-diameter clusters have diameter
at most ``2 R(n, eps/(2 log n)) + O(log n / eps)`` where ``R`` is the Steiner
tree depth of the inner weak carving, while removing at most an ``eps``
fraction of nodes.  This benchmark measures both sides of that inequality on
several workloads and records the certified bound next to the measured
diameter.
"""

import math

import pytest

from _harness import emit_table, run_once
from repro.analysis.metrics import evaluate_carving
from repro.clustering.validation import check_ball_carving, max_cluster_diameter
from repro.core.strong_carving import TransformationTrace, strong_carving_from_weak
from repro.graphs.generators import workload_suite

_N = 220
_EPS = 0.5


def _run_on_family(family):
    graph = family.build(_N)
    trace = TransformationTrace()
    carving = strong_carving_from_weak(graph, _EPS, trace=trace)
    check_ball_carving(carving)
    n = graph.number_of_nodes()
    certified = 2 * max(trace.max_weak_tree_depth, trace.max_ball_radius) + int(
        4 * math.log2(n) / _EPS + 4
    )
    row = evaluate_carving(carving, family.name).as_row()
    row["weak_R"] = trace.max_weak_tree_depth
    row["ball_r*"] = trace.max_ball_radius
    row["certified_bound"] = certified
    row["giant_events"] = trace.giant_cluster_events
    return row


@pytest.mark.benchmark(group="theorem21")
def test_theorem21_bound_certificate(benchmark):
    rows = run_once(benchmark, lambda: [_run_on_family(f) for f in workload_suite()])
    emit_table(
        "theorem21_certificate",
        rows,
        "Theorem 2.1 — measured diameter vs certified 2R + O(log n / eps) bound (eps=0.5)",
    )
    for row in rows:
        assert row["diameter"] <= row["certified_bound"], row
        assert row["dead%"] <= 100 * _EPS + 1.0


@pytest.mark.benchmark(group="theorem21")
def test_theorem21_eps_budget(benchmark):
    """Dead-node budget: the transformation must respect eps for every eps."""
    from repro.graphs.generators import torus_graph

    graph = torus_graph(16, 16, seed=3)

    def sweep():
        rows = []
        for eps in (0.5, 0.25, 0.1):
            carving = strong_carving_from_weak(graph, eps)
            row = evaluate_carving(carving, "eps={}".format(eps)).as_row()
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    emit_table("theorem21_eps_budget", rows, "Theorem 2.1 — dead-node budget per eps (torus 256)")
    for row, eps in zip(rows, (0.5, 0.25, 0.1)):
        assert row["dead%"] <= 100 * eps + 100.0 / graph.number_of_nodes()
