"""Telemetry overhead experiment: observability must be (nearly) free.

The unified telemetry layer (``--trace`` / ``--metrics``; see
``docs/telemetry.md``) instruments every pipeline phase, the arena, the
supervisor, the CONGEST simulator and the memmap ingester.  Two promises
back that ubiquity:

1. **enabled is cheap** — a suite run with span tracing *and* the metrics
   registry on stays within a few percent of the untelemetered wall clock
   (spans are one ``os.write`` per close, counters one dict add);
2. **disabled is free** — every entry point is a single module-boolean
   check returning a shared no-op, so the instrumentation's cost with
   telemetry off is measured in nanoseconds per call site.

Three legs over a 24-cell serial grid, interleaved to decorrelate machine
drift, ``REPS`` repetitions each after one warmup:

* **off** — ``run_suite(spec, store=...)``: telemetry disabled (the
  default path every existing caller takes);
* **on** — the same run with ``trace=...`` and ``metrics=True``;
* **disabled-path micro** — ``span()`` / ``inc()`` hammered in a loop with
  telemetry off, converted to the share of the *off* wall clock that the
  run's actual call volume (span lines + counter updates of the *on* leg)
  would cost.

Acceptance targets (ISSUE 9):

* best-of-``REPS`` enabled wall clock within **3%** of disabled;
* the disabled-path share is below **0.5%** of the suite wall clock;
* the *on* and *off* stores hold **identical** result records modulo the
  volatile wall-clock fields — the only store-level difference is the
  per-run ``telemetry`` summary record the *on* leg appends.

Run with ``pytest benchmarks/bench_telemetry_overhead.py -s`` or directly
with ``PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py``.
"""

import json
import os
import statistics
import sys
import tempfile
import time

import pytest

import repro
from _harness import emit_metrics, emit_table
from repro import telemetry
from repro.pipeline import SuiteSpec

MAX_ENABLED_OVERHEAD = 0.03  # enabled best-of-N within 3% of disabled best
MAX_DISABLED_SHARE = 0.005  # disabled-path cost below 0.5% of the wall clock
REPS = 5
MICRO_OPS = 200_000

GRID = SuiteSpec(
    name="telemetry-overhead",
    scenarios=("torus", "grid"),
    sizes=(400, 900),
    methods=("strong-log3", "mpx", "weak-rg20"),
    mode="decomposition",
    seeds=(0, 1),
)  # 2 scenarios x 2 sizes x 3 methods x 2 seeds = 24 cells

#: Wall-clock fields that legitimately differ between repetitions.
VOLATILE_KEYS = ("seconds", "timings")


def _timed_run(tmp, label, **kwargs):
    """One fresh-store serial suite run; returns (seconds, SuiteResult)."""
    store = os.path.join(tmp, "{}.jsonl".format(label))
    start = time.perf_counter()
    result = repro.run_suite(GRID, store=store, **kwargs)
    return time.perf_counter() - start, result


def _strip_volatile(record):
    return {key: value for key, value in record.items() if key not in VOLATILE_KEYS}


def _record_key(record):
    return (record["scenario"], record["n"], record["method"], record["seed"])


def _micro_disabled_per_op():
    """Seconds per disabled-path telemetry call (span/inc averaged)."""
    assert not telemetry.tracing_enabled() and not telemetry.metrics_enabled()
    start = time.perf_counter()
    for _ in range(MICRO_OPS):
        with telemetry.span("cell.task", cell="micro"):
            pass
        telemetry.inc("cells_ok")
    # Each iteration is two entry-point calls (one span, one counter).
    return (time.perf_counter() - start) / (2 * MICRO_OPS)


#: The telemetry entry points the pipeline calls on its hot paths.
_ENTRY_POINTS = ("span", "inc", "observe", "event", "emit_completed")


def _call_volume(tmp):
    """Count the instrumentation calls one (serial) suite run makes.

    Wraps the telemetry entry points with counting shims and replays the
    grid once with telemetry off — every call found here is a call the
    disabled path pays for, so ``volume * per_op`` bounds its total cost.
    """
    calls = [0]
    originals = {name: getattr(telemetry, name) for name in _ENTRY_POINTS}

    def counting(func):
        def shim(*args, **kwargs):
            calls[0] += 1
            return func(*args, **kwargs)

        return shim

    try:
        for name, func in originals.items():
            setattr(telemetry, name, counting(func))
        _timed_run(tmp, "volume")
    finally:
        for name, func in originals.items():
            setattr(telemetry, name, func)
    return calls[0]


def overhead_rows():
    """Interleaved off/on timings plus the micro-benchmark derived share."""
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        _timed_run(tmp, "warmup")  # imports, first-touch allocations
        off_seconds, on_seconds = [], []
        off_result = on_result = None
        trace_path = os.path.join(tmp, "trace.jsonl")
        for rep in range(REPS):
            seconds, off_result = _timed_run(tmp, "off{}".format(rep))
            off_seconds.append(seconds)
            if os.path.exists(trace_path):
                os.remove(trace_path)
            seconds, on_result = _timed_run(
                tmp, "on{}".format(rep), trace=trace_path, metrics=True
            )
            on_seconds.append(seconds)
        summaries = on_result.store.summaries()
        assert len(summaries) == 1, "expected one telemetry summary record"
        volume = _call_volume(tmp)

        # Record identity: on vs off, modulo wall-clock fields.  The
        # summary record lives outside results(), so the record lists
        # must match exactly.
        off_records = sorted(off_result.records, key=_record_key)
        on_records = sorted(on_result.records, key=_record_key)
        assert len(off_records) == len(on_records) == len(GRID.expand())
        for before, after in zip(off_records, on_records):
            assert _strip_volatile(before) == _strip_volatile(after), (
                "telemetry changed the record for {}".format(_record_key(before))
            )

    per_op = _micro_disabled_per_op()
    enabled_overhead = min(on_seconds) / min(off_seconds) - 1.0
    disabled_share = volume * per_op / min(off_seconds)

    def leg_row(label, samples):
        return {
            "run": label,
            "cells": len(GRID.expand()),
            "reps": REPS,
            "best s": round(min(samples), 3),
            "median s": round(statistics.median(samples), 3),
        }

    rows = [
        leg_row("telemetry off", off_seconds),
        leg_row("trace + metrics on", on_seconds),
        {
            "run": "enabled overhead",
            "best s": "{:+.2%}".format(enabled_overhead),
            "median s": "{:+.2%}".format(
                statistics.median(on_seconds) / statistics.median(off_seconds) - 1.0
            ),
        },
        {
            "run": "disabled path",
            "best s": "{:.0f}ns/op".format(per_op * 1e9),
            "median s": "{:.3%} of wall".format(disabled_share),
        },
    ]
    metrics = [
        {"metric": "off_best_s", "value": round(min(off_seconds), 4), "unit": "s", "n": 24},
        {"metric": "on_best_s", "value": round(min(on_seconds), 4), "unit": "s", "n": 24},
        {
            "metric": "enabled_overhead_pct",
            "value": round(100.0 * enabled_overhead, 3),
            "unit": "%",
            "n": 24,
        },
        {
            "metric": "disabled_ns_per_op",
            "value": round(per_op * 1e9, 1),
            "unit": "ns",
            "n": MICRO_OPS,
        },
        {
            "metric": "disabled_share_pct",
            "value": round(100.0 * disabled_share, 4),
            "unit": "%",
            "n": volume,
        },
        {"metric": "call_volume", "value": volume, "unit": "ops", "n": 24},
    ]
    return rows, metrics, enabled_overhead, disabled_share


def _check(enabled_overhead, disabled_share):
    ok = (
        enabled_overhead < MAX_ENABLED_OVERHEAD
        and disabled_share < MAX_DISABLED_SHARE
    )
    return ok, (
        "telemetry overhead {:+.2%} enabled (target < {:.0%}), disabled-path "
        "share {:.3%} (target < {:.1%}), best of {}".format(
            enabled_overhead,
            MAX_ENABLED_OVERHEAD,
            disabled_share,
            MAX_DISABLED_SHARE,
            REPS,
        )
    )


def _emit(rows, metrics):
    emit_table(
        "telemetry_overhead",
        rows,
        "Telemetry overhead — 24-cell serial grid, off vs trace+metrics, "
        "best/median of {}".format(REPS),
    )
    emit_metrics(
        "telemetry_overhead",
        metrics,
        config={"cells": 24, "reps": REPS, "mode": "serial", "micro_ops": MICRO_OPS},
    )


@pytest.mark.benchmark(group="telemetry-overhead")
def test_telemetry_overhead():
    rows, metrics, enabled_overhead, disabled_share = overhead_rows()
    _emit(rows, metrics)
    ok, message = _check(enabled_overhead, disabled_share)
    print("\n" + message)
    assert ok, message


def main() -> int:
    rows, metrics, enabled_overhead, disabled_share = overhead_rows()
    _emit(rows, metrics)
    ok, message = _check(enabled_overhead, disabled_share)
    print("{} ({})".format(message, "PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
