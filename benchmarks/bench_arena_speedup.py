"""Shared-graph arena experiment: column-batched builds vs per-cell rebuilds.

The suite grid deliberately reuses one topology across every method/eps cell
of a *column* — yet the per-cell-rebuild baseline re-runs the generator and
the CSR freeze for each cell.  This benchmark measures what the
column-batched scheduler (``shared_graphs=on``) eliminates, on a 24-cell
``2 scenarios x 2 sizes x 3 methods x 2 eps`` carving grid (4 topology
columns, 6 cells each):

1. **baseline** — ``shared_graphs=off``, serial: every cell rebuilds;
2. **column**  — ``shared_graphs=on``, serial: one in-process build per
   column, cells reuse the graph object;
3. **arena**   — ``shared_graphs=on`` over a process pool: one parent-side
   build per column, published as a zero-copy shared-memory segment that
   workers reattach (no generator, no freeze, no pickled adjacency);
4. **pool-off** — ``shared_graphs=off`` over the same pool: the fan-out
   baseline the arena run is compared against at equal parallelism.

Asserted **always** (single-CPU safe, exact by construction):

* redundant graph builds per column == 0 in both shared runs
  (``graph_builds == columns``, no arena fallbacks);
* the column-batched scheduler eliminates >= 90% of the baseline's
  redundant column build time (serial shared mode pays zero per-cell
  build/freeze after each column's first cell — measured from the
  per-record ``timings`` breakdown, so the table shows the attribution);
* records (assignments, metrics, seeds) are identical across all runs —
  the arena is a pure transport optimization.

Asserted **only with >= 2 CPUs** (wall-clock ratios need real cores):

* arena suite throughput >= 1.5x the serial per-cell-rebuild baseline.

Run with ``pytest benchmarks/bench_arena_speedup.py -s`` or directly with
``python benchmarks/bench_arena_speedup.py``.
"""

import os
import sys
import time

import pytest

import repro
from _harness import emit_table
from repro.pipeline import SuiteSpec

TARGET_SPEEDUP = 1.5
TARGET_ELIMINATION = 0.9
POOL_WORKERS = min(4, os.cpu_count() or 1)

GRID = SuiteSpec(
    name="arena-speedup",
    scenarios=("torus", "regular"),
    sizes=(100, 256),
    methods=("sequential", "mpx", "ls93"),
    mode="carving",
    eps=(0.5, 0.25),
    seeds=(0,),
)  # 2 scenarios x 2 sizes x 3 methods x 2 eps = 24 cells over 4 columns


def _timed_run(**kwargs):
    start = time.perf_counter()
    result = repro.run_suite(GRID, **kwargs)
    return time.perf_counter() - start, result


def _build_seconds(record):
    timings = record.get("timings", {})
    return timings.get("graph_build_s", 0.0) + timings.get("freeze_s", 0.0)


def _per_record_build_s(result):
    return sum(_build_seconds(record) for record in result.records)


def _redundant_build_s(result):
    """Per-record build time beyond one build per column (the redundant part).

    One build per column is legitimate work; everything past it is the
    redundancy the arena exists to remove.  ``max`` picks the column's one
    real build as the legitimate one (in shared runs the other cells record
    exactly zero build time).
    """
    per_column = {}
    for record in result.records:
        key = (record["scenario"], record["n"], record["seed"])
        per_column.setdefault(key, []).append(_build_seconds(record))
    return sum(sum(builds) - max(builds) for builds in per_column.values())


def _strip(record):
    return {k: v for k, v in record.items() if k not in ("seconds", "timings")}


def arena_rows():
    """Timings + build accounting for the four scheduling configurations."""
    cells = len(GRID.expand())
    baseline_seconds, baseline = _timed_run(shared_graphs="off", workers=1)
    column_seconds, column = _timed_run(shared_graphs="on", workers=1)
    pool_off_seconds, pool_off = _timed_run(shared_graphs="off", workers=POOL_WORKERS)
    arena_seconds, arena = _timed_run(shared_graphs="on", workers=POOL_WORKERS)

    def row(label, workers, seconds, result):
        stats = result.arena
        return {
            "run": label,
            "workers": workers,
            "cells": cells,
            "columns": stats["columns"],
            "graph builds": stats["graph_builds"],
            "redundant builds": stats["graph_builds"] - stats["columns"],
            "cell build_s": round(_per_record_build_s(result), 4),
            "seconds": round(seconds, 3),
            "speedup": round(baseline_seconds / seconds, 2) if seconds > 0 else float("inf"),
            "_result": result,
            "_seconds": seconds,
        }

    return [
        row("baseline (rebuild/cell)", 1, baseline_seconds, baseline),
        row("column (shared, serial)", 1, column_seconds, column),
        row("pool-off (rebuild/cell)", POOL_WORKERS, pool_off_seconds, pool_off),
        row("arena (shared, pool)", POOL_WORKERS, arena_seconds, arena),
    ]


def _check(rows):
    """Assert the acceptance targets; returns (ok, message) for script mode."""
    by_run = {row["run"]: row for row in rows}
    baseline = by_run["baseline (rebuild/cell)"]
    column = by_run["column (shared, serial)"]
    arena = by_run["arena (shared, pool)"]

    assert baseline["cells"] >= 18 and len(GRID.methods) >= 3
    assert baseline["columns"] >= 3

    # Redundant graph builds per column == 0, always: each shared run built
    # every topology exactly once (and no column fell back to rebuilds).
    for shared_row in (column, arena):
        assert shared_row["graph builds"] == shared_row["columns"], shared_row
        assert shared_row["redundant builds"] == 0, shared_row
        assert shared_row["_result"].arena.get("fallback_cells", 0) == 0

    # The arena is a pure transport optimization: identical records.
    reference = [_strip(record) for record in baseline["_result"].records]
    for other in (column, arena, by_run["pool-off (rebuild/cell)"]):
        assert [_strip(record) for record in other["_result"].records] == reference

    # >= 90% of the redundant column build time is eliminated.  In serial
    # shared mode cells after a column's first pay zero build/freeze, so the
    # remaining redundant time is exactly the post-first per-record build
    # time — 0 by construction; the inequality guards the accounting.
    redundant_baseline = _redundant_build_s(baseline["_result"])
    remaining = _redundant_build_s(column["_result"])
    eliminated = 1.0 - (remaining / redundant_baseline) if redundant_baseline > 0 else 1.0
    assert eliminated >= TARGET_ELIMINATION, (
        "column batching eliminated only {:.0%} of redundant build time".format(eliminated)
    )

    cpus = os.cpu_count() or 1
    if cpus < 2:
        return True, (
            "redundant builds/column == 0, {:.0%} redundant build time eliminated; "
            "single CPU: arena speedup recorded ({}x) but not asserted".format(
                eliminated, arena["speedup"]
            )
        )
    ok = arena["speedup"] >= TARGET_SPEEDUP
    return ok, (
        "redundant builds/column == 0, {:.0%} redundant build time eliminated; "
        "arena speedup {}x on {} CPUs (target {}x)".format(
            eliminated, arena["speedup"], cpus, TARGET_SPEEDUP
        )
    )


def _emit(rows):
    printable = [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]
    emit_table(
        "arena_speedup",
        printable,
        "Shared-graph arena — 24-cell grid, per-cell rebuild vs column-batched "
        "vs shared-memory arena (cpus={})".format(os.cpu_count() or 1),
    )


@pytest.mark.benchmark(group="arena-speedup")
def test_arena_speedup():
    rows = arena_rows()
    _emit(rows)
    ok, message = _check(rows)
    print("\n" + message)
    assert ok, message


def main() -> int:
    rows = arena_rows()
    _emit(rows)
    ok, message = _check(rows)
    print("{} ({})".format(message, "PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
