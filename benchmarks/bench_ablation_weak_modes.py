"""Ablation: the weak-carving acceptance threshold (RG20 vs GGR21 preset).

DESIGN.md §3 documents the one knob in the deterministic weak-diameter
substrate: the per-step acceptance threshold.  The ``"rg20"`` preset
(``eps / 2b``) carries the fully proved deletion bound but allows up to
``O(log^3 n / eps)`` Steiner depth; the ``"ggr21"`` preset (``eps / 2``) grows
clusters much more aggressively, which empirically yields shallower trees —
mirroring the improved parameters of Ghaffari–Grunau–Rozhoň — at the price of
a measured (rather than proved) deletion fraction.

This ablation measures both presets on a torus and a long cycle and reports
Steiner depth, congestion, dead fraction and rounds, plus the downstream
effect on the Theorem 2.2 strong carving built on top of each.
"""

import pytest

from _harness import benchmark_torus, emit_table, run_once
from repro.analysis.metrics import evaluate_carving
from repro.core.strong_carving import strong_carving_from_weak
from repro.graphs.generators import cycle_graph
from repro.weak.carving import WeakCarvingParameters, weak_diameter_carving

_EPS = 0.5


def _weak_row(graph, graph_name, mode):
    parameters = WeakCarvingParameters(mode=mode)
    carving = weak_diameter_carving(graph, _EPS, parameters=parameters)
    depth = max((cluster.tree.depth() for cluster in carving.clusters), default=0)
    row = evaluate_carving(carving, "weak carving [{}]".format(mode)).as_row()
    row["graph"] = graph_name
    row["steiner_depth"] = depth
    return row


def _strong_row(graph, graph_name, mode):
    parameters = WeakCarvingParameters(mode=mode)

    def weak(host, eps, nodes=None, ledger=None):
        return weak_diameter_carving(host, eps, nodes=nodes, ledger=ledger, parameters=parameters)

    carving = strong_carving_from_weak(graph, _EPS, weak_algorithm=weak)
    row = evaluate_carving(carving, "Theorem 2.1 over [{}]".format(mode)).as_row()
    row["graph"] = graph_name
    return row


@pytest.mark.benchmark(group="ablation-weak-modes")
def test_weak_mode_ablation(benchmark):
    torus = benchmark_torus(256)
    cycle = cycle_graph(400, seed=3)

    def run_all():
        rows = []
        for graph, name in ((torus, "torus-256"), (cycle, "cycle-400")):
            for mode in ("rg20", "ggr21"):
                rows.append(_weak_row(graph, name, mode))
        return rows

    rows = run_once(benchmark, run_all)
    emit_table("ablation_weak_modes", rows, "Ablation — weak-carving acceptance threshold")

    by_key = {(row["graph"], row["algorithm"]): row for row in rows}
    for graph_name in ("torus-256", "cycle-400"):
        rg20 = by_key[(graph_name, "weak carving [rg20]")]
        ggr = by_key[(graph_name, "weak carving [ggr21]")]
        # The aggressive preset never produces deeper trees and never costs
        # more rounds per step structure; the proved preset never removes
        # more than eps.
        assert ggr["steiner_depth"] <= rg20["steiner_depth"] + 2
        assert rg20["dead%"] <= 100 * _EPS + 1.0


@pytest.mark.benchmark(group="ablation-weak-modes")
def test_weak_mode_effect_on_strong_carving(benchmark):
    cycle = cycle_graph(400, seed=3)

    def run_all():
        return [_strong_row(cycle, "cycle-400", mode) for mode in ("rg20", "ggr21")]

    rows = run_once(benchmark, run_all)
    emit_table(
        "ablation_weak_modes_downstream",
        rows,
        "Ablation — Theorem 2.1 built on each weak-carving preset (cycle n=400)",
    )
    for row in rows:
        assert row["dead%"] <= 100 * _EPS + 1.0
