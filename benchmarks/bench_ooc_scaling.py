"""Out-of-core scaling experiment: million-node graphs under an RSS budget.

Exercises the ISSUE 7 tier end to end, with **no networkx object at any
point** for the scaled rows:

* a torus edge list is synthesized arithmetically (streamed to a text file,
  never held in memory),
* :func:`repro.graphs.memmap.ingest_edge_list` converts it into an on-disk
  ``.csrbin`` CSR with the two-pass streaming build,
* the ``np.memmap``-backed facade (:func:`repro.graphs.memmap.load_graph`)
  feeds :func:`repro.decompose` directly — optionally through the
  partitioned path (``partition_nodes``), which bounds the carving working
  set by decomposing deterministic BFS-ordered chunks.

Each row records the ingest / load / decompose wall times, the resulting
color and cluster counts, and the process RSS read from
``/proc/self/status`` (``VmRSS`` current, ``VmHWM`` lifetime peak).  The
experiment **fails** if the peak RSS exceeds the ceiling — that is the
out-of-core guarantee made measurable: the O(m) adjacency lives in the page
cache, not the heap.

A small-scale equivalence row additionally asserts that the memmap route
produces *identical* color and cluster assignments to the classic
``read_edge_list`` -> in-memory decomposition route (same seeds, same
ledger totals) — the differential contract behind ``--graph-backend``.

Environment knobs (the CI smoke run shrinks the workload and lowers the
ceiling to match; the job itself is report-only):

* ``REPRO_BENCH_OOC_N`` — largest target node count (default ``1000000``);
* ``REPRO_BENCH_OOC_METHOD`` — decomposition method (default ``mpx``);
* ``REPRO_BENCH_OOC_PARTITION`` — chunk budget for the partitioned path
  (default ``250000``; ``0`` decomposes unpartitioned);
* ``REPRO_BENCH_OOC_RSS_MB`` — peak-RSS ceiling in MiB (default ``1600``).

Run with ``python benchmarks/bench_ooc_scaling.py`` (or ``pytest
benchmarks/bench_ooc_scaling.py -s``).
"""

import os
import shutil
import sys
import tempfile
import time

import repro
from _harness import emit_metrics, emit_table
from repro.graphs.io import read_edge_list
from repro.graphs.memmap import ingest_edge_list, load_graph

N = int(os.environ.get("REPRO_BENCH_OOC_N", "1000000"))
METHOD = os.environ.get("REPRO_BENCH_OOC_METHOD", "mpx")
PARTITION = int(os.environ.get("REPRO_BENCH_OOC_PARTITION", "250000"))
RSS_CEILING_MB = float(os.environ.get("REPRO_BENCH_OOC_RSS_MB", "1600"))
EQUIVALENCE_N = 2500


def _status_mb(field):
    """Read one VmRSS/VmHWM-style field of /proc/self/status, in MiB."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith(field + ":"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return float("nan")


def synthesize_torus_edgelist(side, path):
    """Stream a side x side torus edge list to ``path`` — no graph object.

    Node ``(r, c)`` is the integer ``r * side + c``; each node emits its
    right and down neighbour (wrapping), so every edge appears exactly once
    and the file has ``2 * side^2`` lines.
    """
    with open(path, "w", encoding="ascii") as handle:
        chunk = []
        for r in range(side):
            base = r * side
            down = ((r + 1) % side) * side
            for c in range(side):
                u = base + c
                chunk.append("{} {}\n".format(u, base + (c + 1) % side))
                chunk.append("{} {}\n".format(u, down + c))
            if len(chunk) >= 100000:
                handle.write("".join(chunk))
                chunk = []
        handle.write("".join(chunk))
    return path


def _sizes():
    targets = sorted({n for n in (10000, 100000, N) if n <= N})
    return targets or [N]


def scaling_rows(workdir):
    """One row per target size: the full file -> CSR -> decomposition path."""
    rows = []
    partition = PARTITION if PARTITION > 0 else None
    for target in _sizes():
        side = max(3, int(round(target ** 0.5)))
        source = os.path.join(workdir, "torus-{}.edges".format(side))
        synthesize_torus_edgelist(side, source)

        start = time.perf_counter()
        dest = ingest_edge_list(source, source + ".csrbin")
        ingest_s = time.perf_counter() - start

        start = time.perf_counter()
        graph = load_graph(dest)
        load_s = time.perf_counter() - start

        start = time.perf_counter()
        decomposition = repro.decompose(
            graph, method=METHOD, seed=1, partition_nodes=partition
        )
        decompose_s = time.perf_counter() - start

        rows.append(
            {
                "n": graph.number_of_nodes(),
                "m": graph.number_of_edges(),
                "ingest_s": round(ingest_s, 2),
                "load_s": round(load_s, 3),
                "decompose_s": round(decompose_s, 2),
                "colors": decomposition.num_colors,
                "clusters": len(decomposition.clusters),
                "rss_mb": round(_status_mb("VmRSS"), 1),
                "peak_mb": round(_status_mb("VmHWM"), 1),
            }
        )
        del graph, decomposition
        os.remove(source)
        os.remove(dest)
    return rows


def equivalence_rows(workdir):
    """Assert memmap == in-memory decompositions on a small shared file."""
    side = max(3, int(round(EQUIVALENCE_N ** 0.5)))
    source = synthesize_torus_edgelist(
        side, os.path.join(workdir, "equiv-{}.edges".format(side))
    )
    facade = load_graph(ingest_edge_list(source, source + ".csrbin"))
    host = read_edge_list(source)
    rows = []
    for partition in (None, max(100, EQUIVALENCE_N // 4)):
        ooc = repro.decompose(facade, method=METHOD, seed=1, partition_nodes=partition)
        ram = repro.decompose(host, method=METHOD, seed=1, partition_nodes=partition)
        identical = (
            ooc.color_of() == ram.color_of()
            and ooc.cluster_of() == ram.cluster_of()
            and ooc.rounds == ram.rounds
        )
        rows.append(
            {
                "route": "partitioned" if partition else "whole-graph",
                "n": facade.number_of_nodes(),
                "colors": ooc.num_colors,
                "rounds": ooc.rounds,
                "identical": identical,
            }
        )
    return rows


def _check(scaling, equivalence):
    problems = []
    for row in equivalence:
        if not row["identical"]:
            problems.append("memmap diverged from in-memory ({})".format(row["route"]))
    peak = max(row["peak_mb"] for row in scaling)
    if peak > RSS_CEILING_MB:
        problems.append(
            "peak RSS {:.0f} MiB exceeds the {:.0f} MiB ceiling".format(
                peak, RSS_CEILING_MB
            )
        )
    return problems


def _run(assert_targets):
    workdir = tempfile.mkdtemp(prefix="ooc-bench-")
    try:
        equivalence = equivalence_rows(workdir)
        scaling = scaling_rows(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    emit_table(
        "ooc_equivalence",
        equivalence,
        "Out-of-core equivalence — memmap vs in-memory, {} n={}".format(
            METHOD, EQUIVALENCE_N
        ),
    )
    emit_table(
        "ooc_scaling",
        scaling,
        "Out-of-core scaling — {} over memmap CSR, partition={}, no networkx".format(
            METHOD, PARTITION if PARTITION > 0 else "off"
        ),
    )
    metrics = []
    for row in scaling:
        for field, unit in (
            ("ingest_s", "s"),
            ("decompose_s", "s"),
            ("peak_mb", "MiB"),
        ):
            metrics.append(
                {
                    "metric": "n{}_{}".format(row["n"], field),
                    "value": row[field],
                    "unit": unit,
                    "n": row["n"],
                }
            )
    metrics.append(
        {
            "metric": "equivalence_identical",
            "value": all(row["identical"] for row in equivalence),
            "unit": "bool",
            "n": EQUIVALENCE_N,
        }
    )
    emit_metrics(
        "ooc_scaling",
        metrics,
        config={
            "method": METHOD,
            "max_n": N,
            "partition": PARTITION,
            "rss_ceiling_mb": RSS_CEILING_MB,
        },
    )
    problems = _check(scaling, equivalence)
    print(
        "targets: identical assignments, peak RSS <= {:.0f} MiB at n = {} -> {}".format(
            RSS_CEILING_MB, N, "PASS" if not problems else "; ".join(problems)
        )
    )
    if assert_targets:
        assert not problems, problems
    return problems


def test_ooc_scaling():
    _run(assert_targets=True)


def main():
    return 1 if _run(assert_targets=False) else 0


if __name__ == "__main__":
    sys.exit(main())
