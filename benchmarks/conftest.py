"""Pytest configuration for the benchmark harness."""

import sys
import os

# Make the sibling `_harness` module importable regardless of how pytest was
# invoked (``pytest benchmarks/`` from the repository root or from elsewhere).
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
