"""Kernel-tier speedup experiment: vectorised hot paths vs the pure loops.

Measures the two layers the kernel subsystem (:mod:`repro.kernels`)
accelerates, on workloads at the ISSUE 6 scale (n >= 10^5):

* the **BFS micro-kernel** — ``multi_source_bfs`` driven by the tier's
  frontier expansion over the frozen CSR arrays; and
* the **end-to-end decomposition path** — ``strong-log3`` through the full
  pipeline (weak phases with the tier's proposal engine, strong carving,
  tree materialisation).

Every row also asserts tier equivalence: the kernels are differential by
contract (byte-identical layers, cluster assignments and ledger charges —
see ``tests/test_kernels.py``), so the whole result of this experiment is
the speedup column.

Acceptance targets (ISSUE 6): the ``numpy`` tier must beat ``pure`` by
>= 10x on BFS at n >= 10^5 (met on the constant-degree expander workloads)
and >= 3x on the end-to-end decomposition at that scale (met on the
16-regular workload; the sparser rows are reported alongside).

Set ``REPRO_BENCH_KERNELS_N`` to shrink the workloads (the CI smoke run
uses a few thousand nodes and reports without asserting targets — the
vectorisation only pays off at scale, which is the point of the tier
split).  Run with ``pytest benchmarks/bench_kernels.py -s`` or directly
with ``python benchmarks/bench_kernels.py``.
"""

import os
import sys
import time

import pytest

import repro
from _harness import emit_table
from repro.graphs.csr import CSRGraph, refresh_csr_cache
from repro.graphs.generators import random_regular_graph, torus_graph
from repro.kernels import KERNELS

N = int(os.environ.get("REPRO_BENCH_KERNELS_N", "100000"))
FULL_SCALE = N >= 100000
TARGET_BFS_SPEEDUP = 10.0
TARGET_E2E_SPEEDUP = 3.0
REPEATS = 3

# The BFS workloads: the two canonical constant-degree families (torus and
# random-regular expanders) at several degrees.  The asserted >= 10x rows
# are the regular-4/regular-8 expanders; the rest are reported for context.
BFS_WORKLOADS = (
    ("regular-4", lambda: random_regular_graph(N, 4, seed=7)),
    ("regular-8", lambda: random_regular_graph(N, 8, seed=7)),
    ("regular-16", lambda: random_regular_graph(N, 16, seed=7)),
    ("torus", lambda: _torus()),
)

# The end-to-end workloads; the asserted >= 3x row is regular-16 (the
# denser the graph, the larger the share of work the engine vectorises).
E2E_WORKLOADS = (
    ("regular-8", lambda: random_regular_graph(N, 8, seed=7)),
    ("regular-16", lambda: random_regular_graph(N, 16, seed=7)),
)
E2E_TARGET_WORKLOAD = "regular-16"
E2E_METHOD = "strong-log3"


def _torus():
    side = max(3, int(round(N ** 0.5)))
    return torus_graph(side, side, seed=7)


def _tiers():
    """The measured kernel tiers: pure always, the others when available."""
    return [name for name in KERNELS.names() if name in KERNELS.available_names()]


def _time_bfs(kernel_name, csr, source=0, repeats=REPEATS):
    """Best-of-N multi-source BFS wall time plus its layer signature."""
    kernel = KERNELS.instantiate(kernel_name)
    best = float("inf")
    result = None
    for _ in range(repeats):
        blocked = bytearray(csr.n)
        blocked[source] = 1
        start = time.perf_counter()
        result = kernel.multi_source_bfs(csr, [source], blocked)
        best = min(best, time.perf_counter() - start)
    blocked = bytearray(csr.n)
    blocked[source] = 1
    layers = kernel.bfs_layers(csr, [source], blocked)
    return best, (result, layers)


def bfs_rows(workloads=BFS_WORKLOADS):
    """One row per workload: per-tier BFS milliseconds and speedups."""
    rows = []
    for label, build in workloads:
        graph = build()
        csr = CSRGraph.from_networkx(graph)
        pure_time, pure_sig = _time_bfs("pure", csr)
        row = {
            "workload": label,
            "n": csr.n,
            "pure ms": round(pure_time * 1000, 1),
        }
        identical = True
        for tier in _tiers():
            if tier == "pure":
                continue
            tier_time, tier_sig = _time_bfs(tier, csr)
            row["{} ms".format(tier)] = round(tier_time * 1000, 1)
            row["{} speedup".format(tier)] = round(pure_time / tier_time, 2)
            identical = identical and tier_sig == pure_sig
        row["identical"] = identical
        rows.append(row)
    return rows


def _time_decomposition(graph, kernel_name, repeats=REPEATS):
    """Best-of-N end-to-end decomposition wall time plus the result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        refresh_csr_cache(graph)
        start = time.perf_counter()
        result = repro.decompose(
            graph, method=E2E_METHOD, seed=1, kernel=kernel_name
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def _signature(decomposition):
    return frozenset(
        (cluster.color, frozenset(cluster.nodes)) for cluster in decomposition.clusters
    )


def e2e_rows(workloads=E2E_WORKLOADS):
    """One row per workload: per-tier decomposition seconds and speedups."""
    rows = []
    for label, build in workloads:
        graph = build()
        pure_time, pure_result = _time_decomposition(graph, "pure")
        row = {
            "workload": label,
            "method": E2E_METHOD,
            "n": graph.number_of_nodes(),
            "pure s": round(pure_time, 2),
        }
        identical = True
        for tier in _tiers():
            if tier == "pure":
                continue
            tier_time, tier_result = _time_decomposition(graph, tier)
            row["{} s".format(tier)] = round(tier_time, 2)
            row["{} speedup".format(tier)] = round(pure_time / tier_time, 2)
            identical = identical and _signature(tier_result) == _signature(pure_result)
        row["identical"] = identical
        rows.append(row)
    return rows


def _check(bfs, e2e):
    """The acceptance predicates (only binding at full scale with numpy)."""
    problems = []
    if not all(row["identical"] for row in bfs + e2e):
        problems.append("kernel tiers diverged")
    if "numpy" not in _tiers():
        problems.append("numpy tier unavailable (install repro[fast])")
        return problems
    if FULL_SCALE:
        best_bfs = max(
            row["numpy speedup"]
            for row in bfs
            if row["workload"].startswith("regular")
        )
        if best_bfs < TARGET_BFS_SPEEDUP:
            problems.append(
                "BFS speedup {}x below target {}x".format(
                    best_bfs, TARGET_BFS_SPEEDUP
                )
            )
        target = next(r for r in e2e if r["workload"] == E2E_TARGET_WORKLOAD)
        if target["numpy speedup"] < TARGET_E2E_SPEEDUP:
            problems.append(
                "end-to-end speedup {}x below target {}x on {}".format(
                    target["numpy speedup"], TARGET_E2E_SPEEDUP, target["workload"]
                )
            )
    return problems


@pytest.mark.benchmark(group="kernels")
def test_kernel_bfs_speedup():
    rows = bfs_rows()
    emit_table(
        "kernel_bfs_speedup",
        rows,
        "Kernel tiers — multi-source BFS over the CSR arrays, n≈{}".format(N),
    )
    for row in rows:
        assert row["identical"], "tiers diverged on {}".format(row["workload"])
    if FULL_SCALE and "numpy" in _tiers():
        best = max(
            row["numpy speedup"]
            for row in rows
            if row["workload"].startswith("regular")
        )
        assert best >= TARGET_BFS_SPEEDUP, rows


@pytest.mark.benchmark(group="kernels")
def test_kernel_e2e_speedup():
    rows = e2e_rows()
    emit_table(
        "kernel_e2e_speedup",
        rows,
        "Kernel tiers — {} decomposition end to end, n≈{}".format(E2E_METHOD, N),
    )
    for row in rows:
        assert row["identical"], "tiers diverged on {}".format(row["workload"])
    if FULL_SCALE and "numpy" in _tiers():
        target = next(r for r in rows if r["workload"] == E2E_TARGET_WORKLOAD)
        assert target["numpy speedup"] >= TARGET_E2E_SPEEDUP, rows


def main() -> int:
    bfs = bfs_rows()
    emit_table(
        "kernel_bfs_speedup",
        bfs,
        "Kernel tiers — multi-source BFS over the CSR arrays, n≈{}".format(N),
    )
    e2e = e2e_rows()
    emit_table(
        "kernel_e2e_speedup",
        e2e,
        "Kernel tiers — {} decomposition end to end, n≈{}".format(E2E_METHOD, N),
    )
    problems = _check(bfs, e2e)
    print(
        "targets: BFS >= {}x, end-to-end >= {}x at n >= 10^5 -> {}".format(
            TARGET_BFS_SPEEDUP,
            TARGET_E2E_SPEEDUP,
            "PASS" if not problems else "; ".join(problems),
        )
    )
    return 0 if not problems else 1


if __name__ == "__main__":
    sys.exit(main())
