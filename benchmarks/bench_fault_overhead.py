"""Supervision overhead experiment: the fault-tolerance layer must be free.

The self-healing suite runner (ISSUE 8; see ``docs/robustness.md``) wraps
every task group in an attempt loop — deadline bookkeeping, fault draws,
retry/backoff state, schema-5 status fields.  All of that is opt-in, but
opting in with **injection disabled** must not tax the actual work: a
`--max-retries`/`--cell-timeout` run with no fault plan should cost the
same wall clock as the legacy fail-fast path.

Two legs over a 24-cell serial grid, interleaved to decorrelate machine
drift, ``REPS`` repetitions each after one warmup:

1. **legacy** — ``run_suite(spec, store=...)``: supervision inactive, the
   historical execution path;
2. **supervised** — ``run_suite(spec, store=..., cell_timeout=300,
   max_retries=2)``: the supervised attempt loop, zero faults injected.

Acceptance targets (ISSUE 8, satellite 6):

* best-of-``REPS`` supervised wall clock within **5%** of the legacy best
  (best-of-N is the noise-robust comparison estimator; the medians are
  recorded alongside and are typically within run-to-run jitter);
* the supervised run performs **zero** fault-layer actions (no failures,
  retries, timeouts, quarantines, pool respawns);
* the supervised records are **identical** to the legacy records modulo
  the volatile fields (``seconds``/``timings``) and the supervision
  bookkeeping (``attempts``) — supervision must not change results.

Run with ``pytest benchmarks/bench_fault_overhead.py -s`` or directly with
``PYTHONPATH=src python benchmarks/bench_fault_overhead.py``.
"""

import os
import statistics
import sys
import tempfile
import time

import pytest

import repro
from _harness import emit_table
from repro.pipeline import SuiteSpec

MAX_OVERHEAD = 0.05  # supervised best-of-N within 5% of legacy best-of-N
REPS = 3

GRID = SuiteSpec(
    name="fault-overhead",
    scenarios=("torus", "grid"),
    sizes=(400, 900),
    methods=("strong-log3", "mpx", "weak-rg20"),
    mode="decomposition",
    seeds=(0, 1),
)  # 2 scenarios x 2 sizes x 3 methods x 2 seeds = 24 cells

# Fields that legitimately differ between the two legs: wall clock and the
# supervision attempt counter.  Everything else must match exactly.
VOLATILE_KEYS = ("seconds", "timings", "attempts", "fault_stats")


def _timed_run(**kwargs):
    """One fresh-store serial suite run; returns (seconds, SuiteResult)."""
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        result = repro.run_suite(GRID, store=os.path.join(tmp, "run.jsonl"), **kwargs)
        return time.perf_counter() - start, result


def _strip_volatile(record):
    return {key: value for key, value in record.items() if key not in VOLATILE_KEYS}


def _record_key(record):
    return (record["scenario"], record["n"], record["method"], record["seed"])


def overhead_rows():
    """Interleaved legacy/supervised timings plus the derived overhead row."""
    supervised_kwargs = {"cell_timeout": 300.0, "max_retries": 2}
    _timed_run()  # warmup: imports, first-touch allocations
    legacy_seconds, supervised_seconds = [], []
    legacy_result = supervised_result = None
    for _ in range(REPS):
        seconds, legacy_result = _timed_run()
        legacy_seconds.append(seconds)
        seconds, supervised_result = _timed_run(**supervised_kwargs)
        supervised_seconds.append(seconds)

    def leg_row(label, samples, result):
        return {
            "run": label,
            "cells": len(GRID.expand()),
            "executed": result.executed,
            "reps": REPS,
            "best s": round(min(samples), 3),
            "median s": round(statistics.median(samples), 3),
        }

    best_overhead = min(supervised_seconds) / min(legacy_seconds) - 1.0
    median_overhead = (
        statistics.median(supervised_seconds) / statistics.median(legacy_seconds) - 1.0
    )
    rows = [
        leg_row("legacy (fail-fast)", legacy_seconds, legacy_result),
        leg_row("supervised, no injection", supervised_seconds, supervised_result),
        {
            "run": "overhead",
            "best s": "{:+.2%}".format(best_overhead),
            "median s": "{:+.2%}".format(median_overhead),
        },
    ]
    return rows, best_overhead, legacy_result, supervised_result


def _check(best_overhead, legacy_result, supervised_result):
    """Assert the acceptance targets; returns a script-mode message."""
    # Supervision ran (the counters exist) but did nothing (all zero).
    stats = supervised_result.supervisor
    assert stats, "supervised run returned no supervisor stats"
    for counter in (
        "failures",
        "retries",
        "retried_ok",
        "quarantined",
        "timeouts",
        "pool_respawns",
        "serial_fallbacks",
    ):
        assert stats[counter] == 0, "idle supervision performed work: {}".format(stats)

    # Supervision must not change results: records identical modulo wall
    # clock and attempt bookkeeping.
    legacy = sorted(legacy_result.records, key=_record_key)
    supervised = sorted(supervised_result.records, key=_record_key)
    assert len(legacy) == len(supervised) == len(GRID.expand())
    for before, after in zip(legacy, supervised):
        assert _strip_volatile(before) == _strip_volatile(after), (
            "supervision changed the record for {}".format(_record_key(before))
        )

    ok = best_overhead < MAX_OVERHEAD
    return ok, "supervision overhead {:+.2%} (target < {:.0%}, best of {})".format(
        best_overhead, MAX_OVERHEAD, REPS
    )


@pytest.mark.benchmark(group="fault-overhead")
def test_fault_overhead():
    rows, best_overhead, legacy_result, supervised_result = overhead_rows()
    emit_table(
        "fault_overhead",
        rows,
        "Supervision overhead — 24-cell serial grid, legacy vs supervised "
        "(no injection), best/median of {}".format(REPS),
    )
    ok, message = _check(best_overhead, legacy_result, supervised_result)
    print("\n" + message)
    assert ok, message


def main() -> int:
    rows, best_overhead, legacy_result, supervised_result = overhead_rows()
    emit_table(
        "fault_overhead",
        rows,
        "Supervision overhead — 24-cell serial grid, legacy vs supervised "
        "(no injection), best/median of {}".format(REPS),
    )
    ok, message = _check(best_overhead, legacy_result, supervised_result)
    print("{} ({})".format(message, "PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
