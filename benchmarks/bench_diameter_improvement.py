"""Experiment: the Theorem 3.2 / Lemma 3.1 diameter improvement.

Section 3 improves the cluster diameter from ``O(log^3 n / eps)`` to
``O(log^2 n / eps)`` at the price of an ``O(log^3 n)`` factor more rounds.
This benchmark compares the Theorem 2.2 carving (before) and the Theorem 3.3
carving (after) on a high-diameter workload where the distinction is visible,
and verifies the expected trade-off:

* the improved carving's clusters satisfy the ``O(log^2 n / eps)`` envelope;
* the improved carving charges at least as many rounds;
* both remove at most an ``eps`` fraction of nodes.
"""

import math

import pytest

from _harness import emit_table, run_once
from repro.analysis.metrics import evaluate_carving
from repro.clustering.validation import check_ball_carving
from repro.core.improved_carving import theorem33_carving
from repro.core.strong_carving import theorem22_carving
from repro.graphs.generators import cycle_graph, torus_graph

_EPS = 0.5


def _compare_on(graph, graph_name):
    before = theorem22_carving(graph, _EPS)
    after = theorem33_carving(graph, _EPS)
    check_ball_carving(before)
    check_ball_carving(after)
    row_before = evaluate_carving(before, "Theorem 2.2 (log^3)").as_row()
    row_after = evaluate_carving(after, "Theorem 3.3 (log^2)").as_row()
    row_before["graph"] = graph_name
    row_after["graph"] = graph_name
    return [row_before, row_after]


@pytest.mark.benchmark(group="diameter-improvement")
def test_improvement_on_long_cycle(benchmark):
    graph = cycle_graph(700, seed=2)
    rows = run_once(benchmark, lambda: _compare_on(graph, "cycle-700"))
    emit_table("improvement_cycle", rows, "Theorem 2.2 vs Theorem 3.3 — cycle n=700, eps=0.5")

    n = graph.number_of_nodes()
    log_n = math.log2(n)
    before, after = rows
    assert after["diameter"] <= 16 * log_n ** 2 / _EPS + 8
    assert after["rounds"] >= before["rounds"]
    assert before["dead%"] <= 100 * _EPS + 100.0 / n
    assert after["dead%"] <= 100 * _EPS + 100.0 / n


@pytest.mark.benchmark(group="diameter-improvement")
def test_improvement_on_torus(benchmark):
    graph = torus_graph(18, 18, seed=2)
    rows = run_once(benchmark, lambda: _compare_on(graph, "torus-324"))
    emit_table("improvement_torus", rows, "Theorem 2.2 vs Theorem 3.3 — torus n=324, eps=0.5")
    before, after = rows
    n = graph.number_of_nodes()
    assert after["diameter"] <= 16 * math.log2(n) ** 2 / _EPS + 8
    assert after["rounds"] >= before["rounds"]
