"""Experiment: the C * D application tasks (MIS and coloring).

Section 1.1 motivates network decomposition through the standard template:
process colors one by one, solve inside each cluster, total cost proportional
to ``C * D``.  This benchmark covers the application layer from three sides:

* **Correctness / accounting** — MIS and (Δ+1)-coloring run on the
  decompositions of every method; solutions verify and the template cost is
  bounded by ``colors * (2 * max diameter + 2)``, i.e. better decomposition
  parameters translate directly into cheaper applications.
* **Task-loop backend speedup** — the flat-array CSR task loops vs the
  networkx oracle on an identical decomposition: identical solutions,
  >= 3x end-to-end speedup (mirroring the PR-1 carving backend result).
* **One decomposition, N tasks** — the suite's task-group scheduling
  reuses one decomposition for all requested tasks; zero redundant
  decompositions (asserted from the scheduling stats) and the measured
  speedup vs naively recomputing the decomposition per task.

Run with ``pytest benchmarks/bench_applications.py -s`` or directly with
``python benchmarks/bench_applications.py``.
"""

import sys
import time

import pytest

from _harness import benchmark_torus, emit_table, run_once
import repro
from repro.applications.coloring import delta_plus_one_coloring, verify_coloring
from repro.applications.mis import maximal_independent_set, verify_mis
from repro.clustering.validation import max_cluster_diameter
from repro.congest.rounds import RoundLedger
from repro.graphs.backend import use_backend
from repro.pipeline import SuiteSpec

_N = 256
_METHODS = ("sequential", "mpx", "ls93", "strong-log3")

# Backend-speedup experiment parameters: large enough that the task loops
# dominate interpreter noise, small enough for CI.
_SPEEDUP_N = 8100
_SPEEDUP_METHOD = "mpx"  # many clusters and colors: the busiest task loop
_SPEEDUP_TARGET = 3.0
_REPEATS = 5
_REUSE_N = 2025


def _application_row(graph, method):
    decomposition = repro.decompose(graph, method=method, seed=2)
    mis_ledger = RoundLedger()
    independent_set = maximal_independent_set(decomposition, ledger=mis_ledger)
    coloring_ledger = RoundLedger()
    coloring = delta_plus_one_coloring(decomposition, ledger=coloring_ledger)
    diameter = max_cluster_diameter(
        decomposition.graph, decomposition.clusters, kind=decomposition.kind
    )
    return {
        "method": method,
        "colors": decomposition.num_colors,
        "diameter": diameter,
        "decomposition rounds": decomposition.rounds,
        "MIS template rounds": mis_ledger.total_rounds,
        "coloring template rounds": coloring_ledger.total_rounds,
        "MIS valid": verify_mis(graph, independent_set),
        "coloring valid": verify_coloring(graph, coloring),
        "CxD bound": decomposition.num_colors * (2 * diameter + 2),
    }


@pytest.mark.benchmark(group="applications")
def test_applications_on_torus(benchmark):
    graph = benchmark_torus(_N)
    rows = run_once(benchmark, lambda: [_application_row(graph, method) for method in _METHODS])
    emit_table("applications_torus", rows, "Applications — MIS / coloring via the C*D template")
    for row in rows:
        assert row["MIS valid"] and row["coloring valid"], row
        assert row["MIS template rounds"] <= row["CxD bound"]
        assert row["coloring template rounds"] <= row["CxD bound"]


@pytest.mark.benchmark(group="applications")
def test_better_parameters_give_cheaper_template(benchmark):
    graph = benchmark_torus(_N)

    def compare():
        return {
            method: _application_row(graph, method) for method in ("sequential", "strong-log3")
        }

    rows = run_once(benchmark, compare)
    emit_table(
        "applications_comparison",
        list(rows.values()),
        "Applications — template cost follows C*D",
    )
    for row in rows.values():
        assert row["MIS template rounds"] <= row["CxD bound"]


# --------------------------------------------------------------------- #
# CSR vs nx task loops
# --------------------------------------------------------------------- #
def _time_tasks(decomposition, backend):
    """Best-of-N wall time of running both tasks on one decomposition."""
    best = float("inf")
    solutions = None
    for _ in range(_REPEATS):
        with use_backend(backend):
            start = time.perf_counter()
            independent_set = maximal_independent_set(decomposition)
            coloring = delta_plus_one_coloring(decomposition)
            elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        solutions = (independent_set, coloring)
    return best, solutions


def speedup_rows():
    graph = benchmark_torus(_SPEEDUP_N)
    decomposition = repro.decompose(graph, method=_SPEEDUP_METHOD, seed=2)
    # Warm the decomposition-geometry caches (per-cluster diameters, member
    # order) exactly as a suite's first task does — both backends then
    # measure the task loops themselves, not the shared one-off geometry.
    maximal_independent_set(decomposition)
    delta_plus_one_coloring(decomposition)
    nx_s, nx_solutions = _time_tasks(decomposition, "nx")
    csr_s, csr_solutions = _time_tasks(decomposition, "csr")
    assert csr_solutions[0] == nx_solutions[0], "MIS differs between backends"
    assert csr_solutions[1] == nx_solutions[1], "coloring differs between backends"
    assert verify_mis(graph, csr_solutions[0])
    assert verify_coloring(graph, csr_solutions[1])
    speedup = nx_s / csr_s if csr_s > 0 else float("inf")
    return [
        {
            "method": _SPEEDUP_METHOD,
            "n": graph.number_of_nodes(),
            "colors": decomposition.num_colors,
            "clusters": len(decomposition.clusters),
            "tasks": "mis+coloring",
            "nx_s": round(nx_s, 4),
            "csr_s": round(csr_s, 4),
            "speedup": round(speedup, 2),
            "identical": True,
        }
    ]


def _check_speedup(rows):
    speedup = rows[0]["speedup"]
    ok = speedup >= _SPEEDUP_TARGET
    return ok, "CSR task loops {:.1f}x over nx (target {:.0f}x)".format(
        speedup, _SPEEDUP_TARGET
    )


@pytest.mark.benchmark(group="applications")
def test_csr_task_loops_beat_nx(benchmark):
    rows = run_once(benchmark, speedup_rows)
    emit_table(
        "applications_speedup",
        rows,
        "Applications — CSR vs nx task loops (identical solutions)",
    )
    ok, message = _check_speedup(rows)
    print("\n" + message)
    assert ok, message


# --------------------------------------------------------------------- #
# One decomposition, N tasks
# --------------------------------------------------------------------- #
def reuse_rows():
    methods = ("strong-log3", "mpx")
    tasks = ("decompose", "mis", "coloring")

    def spec_for(task_axis, suffix):
        return SuiteSpec(
            name="bench-task-reuse-" + suffix,
            scenarios=("torus",),
            sizes=(_REUSE_N,),
            methods=methods,
            tasks=task_axis,
            seeds=(0,),
        )

    start = time.perf_counter()
    result = repro.run_suite(spec_for(tasks, "grouped"))
    suite_s = time.perf_counter() - start

    # The naive baseline a task-naive pipeline would run: one sweep per
    # task, each recomputing every cell's decomposition (and metrics) —
    # same cells, same records, no cross-task reuse.
    start = time.perf_counter()
    naive_records = 0
    for task in tasks:
        naive_records += len(repro.run_suite(spec_for((task,), task)).records)
    naive_s = time.perf_counter() - start

    arena = result.arena
    return [
        {
            "cells": len(result.records),
            "task_groups": arena.get("task_groups"),
            "algorithm_runs": arena.get("algorithm_runs"),
            "redundant_decompositions": arena.get("algorithm_runs")
            - arena.get("task_groups"),
            "graph_builds": arena.get("graph_builds"),
            "columns": arena.get("columns"),
            "suite_s": round(suite_s, 3),
            "naive_recompute_s": round(naive_s, 3),
            "speedup": round(naive_s / suite_s, 2) if suite_s > 0 else float("inf"),
        }
    ]


def _check_reuse(rows):
    row = rows[0]
    if row["redundant_decompositions"] != 0:
        return False, "scheduler ran {} redundant decompositions".format(
            row["redundant_decompositions"]
        )
    if row["graph_builds"] != row["columns"]:
        return False, "scheduler rebuilt topology columns"
    return True, (
        "one decomposition per task group ({} groups, {} cells); "
        "{:.1f}x over naive per-task recompute".format(
            row["task_groups"], row["cells"], row["speedup"]
        )
    )


@pytest.mark.benchmark(group="applications")
def test_one_decomposition_serves_all_tasks(benchmark):
    rows = run_once(benchmark, reuse_rows)
    emit_table(
        "applications_reuse",
        rows,
        "Applications — one decomposition, N tasks (suite task groups)",
    )
    ok, message = _check_reuse(rows)
    print("\n" + message)
    assert ok, message


def main() -> int:
    graph = benchmark_torus(_N)
    emit_table(
        "applications_torus",
        [_application_row(graph, method) for method in _METHODS],
        "Applications — MIS / coloring via the C*D template",
    )
    rows = speedup_rows()
    emit_table(
        "applications_speedup",
        rows,
        "Applications — CSR vs nx task loops (identical solutions)",
    )
    ok_speedup, speedup_message = _check_speedup(rows)
    rows = reuse_rows()
    emit_table(
        "applications_reuse",
        rows,
        "Applications — one decomposition, N tasks (suite task groups)",
    )
    ok_reuse, reuse_message = _check_reuse(rows)
    print("{} ({})".format(speedup_message, "PASS" if ok_speedup else "FAIL"))
    print("{} ({})".format(reuse_message, "PASS" if ok_reuse else "FAIL"))
    return 0 if (ok_speedup and ok_reuse) else 1


if __name__ == "__main__":
    sys.exit(main())
