"""Experiment: the C * D application template (MIS and coloring).

Section 1.1 motivates network decomposition through the standard template:
process colors one by one, solve inside each cluster, total cost proportional
to ``C * D``.  This benchmark runs MIS and (Δ+1)-coloring on top of the
decompositions produced by the different algorithms and reports the template's
round cost, confirming that

* every decomposition yields correct MIS / coloring solutions, and
* the template cost is bounded by ``colors * (2 * max diameter + 2)`` —
  i.e. better decomposition parameters translate directly into cheaper
  applications, which is why polylog ``C`` and ``D`` matter.
"""

import pytest

from _harness import benchmark_torus, emit_table, run_once
import repro
from repro.applications.coloring import delta_plus_one_coloring, verify_coloring
from repro.applications.mis import maximal_independent_set, verify_mis
from repro.clustering.validation import max_cluster_diameter
from repro.congest.rounds import RoundLedger

_N = 256
_METHODS = ("sequential", "mpx", "ls93", "strong-log3")


def _application_row(graph, method):
    decomposition = repro.decompose(graph, method=method, seed=2)
    mis_ledger = RoundLedger()
    independent_set = maximal_independent_set(decomposition, ledger=mis_ledger)
    coloring_ledger = RoundLedger()
    coloring = delta_plus_one_coloring(decomposition, ledger=coloring_ledger)
    diameter = max_cluster_diameter(
        decomposition.graph, decomposition.clusters, kind=decomposition.kind
    )
    return {
        "method": method,
        "colors": decomposition.num_colors,
        "diameter": diameter,
        "decomposition rounds": decomposition.rounds,
        "MIS template rounds": mis_ledger.total_rounds,
        "coloring template rounds": coloring_ledger.total_rounds,
        "MIS valid": verify_mis(graph, independent_set),
        "coloring valid": verify_coloring(graph, coloring),
        "CxD bound": decomposition.num_colors * (2 * diameter + 2),
    }


@pytest.mark.benchmark(group="applications")
def test_applications_on_torus(benchmark):
    graph = benchmark_torus(_N)
    rows = run_once(benchmark, lambda: [_application_row(graph, method) for method in _METHODS])
    emit_table("applications_torus", rows, "Applications — MIS / coloring via the C*D template")
    for row in rows:
        assert row["MIS valid"] and row["coloring valid"], row
        assert row["MIS template rounds"] <= row["CxD bound"]
        assert row["coloring template rounds"] <= row["CxD bound"]


@pytest.mark.benchmark(group="applications")
def test_better_parameters_give_cheaper_template(benchmark):
    graph = benchmark_torus(_N)

    def compare():
        return {
            method: _application_row(graph, method) for method in ("sequential", "strong-log3")
        }

    rows = run_once(benchmark, compare)
    emit_table(
        "applications_comparison",
        list(rows.values()),
        "Applications — template cost follows C*D",
    )
    for row in rows.values():
        assert row["MIS template rounds"] <= row["CxD bound"]
