"""Experiment "Table 2": ball carving in the CONGEST model.

The paper's Table 2 compares ball-carving algorithms by cluster diameter and
round complexity, both as functions of ``n`` and of the boundary parameter
``eps``.  This benchmark reproduces the rows on a torus workload for several
values of ``eps`` and checks the qualitative shape:

* all algorithms remove at most (roughly) an ``eps`` fraction of nodes
  (exactly for the deterministic ones, in expectation for the randomized
  ones);
* the deterministic strong-diameter carvings (Theorems 2.2 / 3.3) cost the
  most rounds;
* diameters grow as ``eps`` shrinks (the ``1/eps`` factor in every bound).
"""

import math

import pytest

from _harness import CARVING_ROWS, benchmark_torus, carving_row, emit_table, run_once

_N = 256
_EPSILONS = (0.5, 0.25, 0.125)


def _rows_for(graph, eps):
    rows = []
    for label, method in CARVING_ROWS:
        row = carving_row(graph, label, method, eps, seed=1)
        row["eps"] = eps
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("eps", _EPSILONS)
def test_table2_torus(benchmark, eps):
    graph = benchmark_torus(_N)
    rows = run_once(benchmark, lambda: _rows_for(graph, eps))
    emit_table(
        "table2_torus_eps{}".format(str(eps).replace(".", "_")),
        rows,
        "Table 2 (reproduced) — torus, n={}, eps={}".format(graph.number_of_nodes(), eps),
    )

    n = graph.number_of_nodes()
    log_n = math.ceil(math.log2(n))
    by_label = {row["algorithm"]: row for row in rows}

    # Deterministic algorithms respect eps exactly (integer slack of 1 node).
    for label in (
        "RG20/GGR21 (weak, deterministic)",
        "Theorem 2.2 (strong, deterministic)",
        "Theorem 3.3 (strong, deterministic)",
        "Greedy ball growing (centralized)",
    ):
        assert by_label[label]["dead%"] <= 100 * eps + 100.0 / n

    # Deterministic strong-diameter carving costs at least as much as the
    # randomized strong-diameter carving.
    assert (
        by_label["Theorem 2.2 (strong, deterministic)"]["rounds"]
        >= by_label["MPX13/EN16 (strong, randomized)"]["rounds"]
    )

    # Diameters stay below the asymptotic envelopes.
    assert by_label["Theorem 2.2 (strong, deterministic)"]["diameter"] <= 8 * log_n ** 3 / eps
    assert by_label["Theorem 3.3 (strong, deterministic)"]["diameter"] <= 16 * log_n ** 2 / eps


@pytest.mark.benchmark(group="table2")
def test_table2_eps_sweep_diameter_trend(benchmark):
    """The 1/eps dependence: smaller eps may only increase the deterministic
    strong-diameter carving's certified diameter bound, never shrink the
    measured rounds."""
    graph = benchmark_torus(_N)

    def sweep():
        return {
            eps: carving_row(graph, "Theorem 2.2", "strong-log3", eps, seed=1)
            for eps in _EPSILONS
        }

    rows = run_once(benchmark, sweep)
    emit_table(
        "table2_eps_sweep",
        [dict(row, eps=eps) for eps, row in rows.items()],
        "Table 2 (reproduced) — eps sweep of Theorem 2.2 on the torus",
    )
    assert rows[0.125]["rounds"] >= rows[0.5]["rounds"]
