"""Experiment "Table 2": ball carving in the CONGEST model.

The paper's Table 2 compares ball-carving algorithms by cluster diameter and
round complexity, both as functions of ``n`` and of the boundary parameter
``eps``.  This benchmark runs one suite-pipeline grid — every carving method
x every ``eps`` on the torus workload (:func:`repro.run_suite` expands and
caches the cells) — and checks the qualitative shape:

* all algorithms remove at most (roughly) an ``eps`` fraction of nodes
  (exactly for the deterministic ones, in expectation for the randomized
  ones);
* the deterministic strong-diameter carvings (Theorems 2.2 / 3.3) cost the
  most rounds;
* diameters grow as ``eps`` shrinks (the ``1/eps`` factor in every bound).
"""

import math

import pytest

from _harness import CARVING_LABELS, TABLE_METHODS, emit_table, run_once, suite_rows
from repro.pipeline import SuiteSpec

_N = 256
_EPSILONS = (0.5, 0.25, 0.125)


def _spec(eps=_EPSILONS, methods=TABLE_METHODS):
    return SuiteSpec(
        name="table2-torus",
        scenarios=("torus",),
        sizes=(_N,),
        methods=methods,
        mode="carving",
        eps=tuple(eps) if isinstance(eps, (tuple, list)) else (eps,),
        seeds=(1,),
    )


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("eps", _EPSILONS)
def test_table2_torus(benchmark, eps):
    all_rows = run_once(benchmark, lambda: suite_rows(_spec(eps), labels=CARVING_LABELS))
    rows = [row for row in all_rows if row["eps"] == eps]
    n = rows[0]["n"]
    emit_table(
        "table2_torus_eps{}".format(str(eps).replace(".", "_")),
        rows,
        "Table 2 (reproduced) — torus, n={}, eps={}".format(n, eps),
    )

    log_n = math.ceil(math.log2(n))
    by_label = {row["algorithm"]: row for row in rows}

    # Deterministic algorithms respect eps exactly (integer slack of 1 node).
    for label in (
        "RG20/GGR21 (weak, deterministic)",
        "Theorem 2.2 (strong, deterministic)",
        "Theorem 3.3 (strong, deterministic)",
        "Greedy ball growing (centralized)",
    ):
        assert by_label[label]["dead%"] <= 100 * eps + 100.0 / n

    # Deterministic strong-diameter carving costs at least as much as the
    # randomized strong-diameter carving.
    assert (
        by_label["Theorem 2.2 (strong, deterministic)"]["rounds"]
        >= by_label["MPX13/EN16 (strong, randomized)"]["rounds"]
    )

    # Diameters stay below the asymptotic envelopes.
    assert by_label["Theorem 2.2 (strong, deterministic)"]["diameter"] <= 8 * log_n ** 3 / eps
    assert by_label["Theorem 3.3 (strong, deterministic)"]["diameter"] <= 16 * log_n ** 2 / eps


@pytest.mark.benchmark(group="table2")
def test_table2_eps_sweep_diameter_trend(benchmark):
    """The 1/eps dependence: smaller eps may only increase the deterministic
    strong-diameter carving's certified diameter bound, never shrink the
    measured rounds."""

    def sweep():
        rows = suite_rows(
            _spec(_EPSILONS, methods=("strong-log3",)), labels=CARVING_LABELS
        )
        return {row["eps"]: row for row in rows}

    rows = run_once(benchmark, sweep)
    emit_table(
        "table2_eps_sweep",
        [rows[eps] for eps in _EPSILONS],
        "Table 2 (reproduced) — eps sweep of Theorem 2.2 on the torus",
    )
    assert rows[0.125]["rounds"] >= rows[0.5]["rounds"]
