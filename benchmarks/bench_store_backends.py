"""Store-backend experiment: JSONL vs SQLite at 50k-record scale.

The JSON-lines backend is the canonical interchange format, but it can only
answer a filtered question ("the ``mpx`` / ``eps=0.5`` slice, please") by
parsing the *entire* file.  The SQLite backend keeps the same records behind
indexed grid-parameter columns, so a filtered query reads — and JSON-parses
— only the matching slice.  This benchmark measures both backends on the
same ≥ 50 000 synthetic records:

1. **batched append** (``add_many``) — the bulk-load path used by store
   migration; one durability barrier per batch on either backend;
2. **per-record append** (``add``) on a smaller sample — the runner's
   streaming path (fsync per line vs commit per row; recorded, not
   asserted: both are dominated by the durability barrier);
3. **cold filtered query** — open the store file and retrieve one
   ``method``/``eps`` slice.  JSONL pays a full-file parse; SQLite pays an
   index lookup.

Acceptance target (ISSUE 4): the SQLite filtered query is **≥ 5×** faster
than the full JSONL scan at ≥ 50k records.

Run with ``pytest benchmarks/bench_store_backends.py -s`` or directly with
``python benchmarks/bench_store_backends.py``.
"""

import os
import sys
import tempfile
import time

import pytest

from _harness import emit_metrics, emit_table
from repro.pipeline import open_store

TOTAL_RECORDS = 50_000
STREAMING_RECORDS = 2_000
TARGET_QUERY_SPEEDUP = 5.0

from repro.registry import METHODS

_SCENARIOS = ("torus", "grid", "cycle", "tree", "regular")
_METHODS = METHODS.names()
_EPS = (0.5, 0.25, 0.125, 0.0625)
_SIZES = (256, 1024, 4096, 16384)

#: The measured slice: one method/eps cut, ~1/24 of the records.
QUERY = {"method": "mpx", "eps": 0.5}


def synthetic_records(total):
    """Deterministic result records shaped exactly like a carving sweep's."""
    records = []
    index = 0
    while len(records) < total:
        scenario = _SCENARIOS[index % len(_SCENARIOS)]
        method = _METHODS[(index // len(_SCENARIOS)) % len(_METHODS)]
        eps = _EPS[(index // (len(_SCENARIOS) * len(_METHODS))) % len(_EPS)]
        n = _SIZES[index % len(_SIZES)]
        seed = index // (len(_SCENARIOS) * len(_METHODS) * len(_EPS))
        records.append(
            {
                "cell": "{}/n{}/{}/eps{:g}/s{}".format(scenario, n, method, eps, seed),
                "scenario": scenario,
                "n": n,
                "method": method,
                "mode": "carving",
                "eps": eps,
                "seed": seed,
                "graph_seed": index * 2654435761 % 2**32,
                "algo_seed": index * 40503 % 2**32,
                "backend": "csr",
                "metrics": {
                    "algorithm": method,
                    "n": n,
                    "eps": eps,
                    "kind": "strong",
                    "clusters": 17 + index % 97,
                    "diameter": 4 + index % 23,
                    "dead%": round((index % 50) / 2.0, 2),
                    "congestion": 1,
                    "rounds": 100 + index % 4001,
                },
                "rounds": {
                    "total": 100 + index % 4001,
                    "by_primitive": {"bfs": 60 + index % 2000, "local_step": 40 + index % 2001},
                },
                "seconds": round(0.001 * (index % 500), 6),
                "timings": {
                    "graph_build_s": 0.0,
                    "freeze_s": 0.0,
                    "algo_s": round(0.001 * (index % 500), 6),
                    "source": "column",
                },
            }
        )
        index += 1
    return records


def _fresh(tmp, name):
    return open_store(os.path.join(tmp, name))


def backend_rows():
    """Measure append throughput and filtered-query latency per backend."""
    records = synthetic_records(TOTAL_RECORDS)
    streaming = records[:STREAMING_RECORDS]
    expected_matches = sum(
        1 for r in records if r["method"] == QUERY["method"] and r["eps"] == QUERY["eps"]
    )
    rows = []
    latencies = {}
    with tempfile.TemporaryDirectory() as tmp:
        for backend, filename in (("jsonl", "bulk.jsonl"), ("sqlite", "bulk.sqlite")):
            store = _fresh(tmp, filename)
            start = time.perf_counter()
            store.add_many(records)
            append_seconds = time.perf_counter() - start
            store.close()

            stream_store = _fresh(tmp, "stream." + filename.split(".")[1])
            start = time.perf_counter()
            for record in streaming:
                stream_store.add(record)
            stream_seconds = time.perf_counter() - start
            stream_store.close()

            # Cold query: a fresh open, as an analysis script would do it.
            # The JSONL open is the full-file scan; SQLite hits the index.
            start = time.perf_counter()
            reopened = open_store(os.path.join(tmp, filename))
            matches = reopened.query(**QUERY)
            query_seconds = time.perf_counter() - start
            reopened.close()
            assert len(matches) == expected_matches

            latencies[backend] = query_seconds
            rows.append(
                {
                    "backend": backend,
                    "records": len(records),
                    "batched append (rec/s)": int(len(records) / append_seconds),
                    "streamed append (rec/s)": int(len(streaming) / stream_seconds),
                    "slice": "{}/eps{:g}".format(QUERY["method"], QUERY["eps"]),
                    "slice rows": len(matches),
                    "cold query (s)": round(query_seconds, 4),
                    "bytes": os.path.getsize(os.path.join(tmp, filename)),
                }
            )
    for row in rows:
        row["query speedup"] = round(latencies["jsonl"] / latencies[row["backend"]], 2)
    return rows


def _check(rows):
    by_backend = {row["backend"]: row for row in rows}
    assert by_backend["jsonl"]["records"] >= 50_000
    speedup = by_backend["sqlite"]["query speedup"]
    ok = speedup >= TARGET_QUERY_SPEEDUP
    return ok, (
        "sqlite filtered query {}x faster than the full JSONL scan at {} records "
        "(target {}x)".format(
            speedup, by_backend["sqlite"]["records"], TARGET_QUERY_SPEEDUP
        )
    )


_TITLE = (
    "Store backends — batched/streamed append and one method/eps slice query "
    "at {} records".format(TOTAL_RECORDS)
)


def _emit(rows):
    emit_table("store_backends", rows, _TITLE)
    metrics = []
    for row in rows:
        backend = row["backend"]
        metrics.extend(
            [
                {
                    "metric": "{}_batched_append_rec_per_s".format(backend),
                    "value": row["batched append (rec/s)"],
                    "unit": "rec/s",
                    "n": row["records"],
                },
                {
                    "metric": "{}_streamed_append_rec_per_s".format(backend),
                    "value": row["streamed append (rec/s)"],
                    "unit": "rec/s",
                    "n": STREAMING_RECORDS,
                },
                {
                    "metric": "{}_cold_query_s".format(backend),
                    "value": row["cold query (s)"],
                    "unit": "s",
                    "n": row["slice rows"],
                },
                {
                    "metric": "{}_bytes".format(backend),
                    "value": row["bytes"],
                    "unit": "B",
                    "n": row["records"],
                },
            ]
        )
    by_backend = {row["backend"]: row for row in rows}
    metrics.append(
        {
            "metric": "sqlite_query_speedup",
            "value": by_backend["sqlite"]["query speedup"],
            "unit": "x",
            "n": by_backend["sqlite"]["records"],
        }
    )
    emit_metrics(
        "store_backends",
        metrics,
        config={
            "records": TOTAL_RECORDS,
            "streaming_records": STREAMING_RECORDS,
            "query": QUERY,
        },
    )


@pytest.mark.benchmark(group="store-backends")
def test_store_backends():
    rows = backend_rows()
    _emit(rows)
    ok, message = _check(rows)
    print("\n" + message)
    assert ok, message


def main() -> int:
    rows = backend_rows()
    _emit(rows)
    ok, message = _check(rows)
    print("{} ({})".format(message, "PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
