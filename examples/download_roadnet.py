"""Real-world workload: run the pipeline on a public road-network edge list.

Road networks are the classic "almost planar, locally sparse, huge
diameter" workload — the opposite end of the spectrum from the expander
scenarios, and exactly the regime where strong-diameter guarantees are
interesting.  This example

1. fetches a slice of a public road-network edge list (SNAP's
   ``roadNet-TX``), **streaming** the gzip download and stopping after
   ``--max-edges`` lines so only a few hundred kilobytes ever cross the
   network;
2. falls back to the committed fixture ``examples/data/roadnet_tiny.edges``
   whenever the download is unavailable (offline CI, firewalled boxes,
   ``--offline``) — the example always runs;
3. extracts the largest connected component, caps it at ``--max-nodes``
   nodes (breadth-first from the smallest node id, so the slice is a
   connected road patch, not confetti), and writes it in the repository's
   edge-list format;
4. drives the standard suite pipeline over it through the ``edgelist:``
   scenario — every method of the paper on the same real topology — and
   prints the resulting table.

With ``--full`` the example switches to the **out-of-core** path: the whole
SNAP file (roadNet-TX: ~1.4M nodes, ~1.9M edges) is streamed to disk, the
streaming ingester converts it into a memory-mapped ``.csrbin`` CSR, and
the suite runs on ``graph_backend="memmap"`` with the partitioned
decomposition — no networkx object is ever built for the full graph, so
the resident set stays bounded.  ``--offline --full`` exercises the same
memmap pipeline on the committed fixture, so the path is testable without
a network.

Run it::

    PYTHONPATH=src python examples/download_roadnet.py             # tries the download
    PYTHONPATH=src python examples/download_roadnet.py --offline   # fixture only
    PYTHONPATH=src python examples/download_roadnet.py --full      # whole graph, memmap
"""

import argparse
import gzip
import os
import sys

import networkx as nx

import repro
from repro.analysis.tables import format_table, rows_from_records
from repro.graphs.generators import assign_unique_identifiers
from repro.graphs.io import read_edge_list, write_edge_list

DEFAULT_URL = "https://snap.stanford.edu/data/roadNet-TX.txt.gz"
DATA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")
FIXTURE = os.path.join(DATA_DIR, "roadnet_tiny.edges")


def stream_edges(url, max_edges, timeout):
    """Yield up to ``max_edges`` edges from a gzipped edge-list URL.

    gzip decompresses strictly in stream order, so reading the first
    ``max_edges`` data lines downloads only the prefix of the file — the
    connection is closed long before the multi-megabyte tail.
    """
    from urllib.request import urlopen

    edges = []
    with urlopen(url, timeout=timeout) as response:
        with gzip.GzipFile(fileobj=response) as stream:
            for raw in stream:
                line = raw.decode("utf-8", "replace").strip()
                if not line or line.startswith("#"):
                    continue
                tokens = line.split()
                if len(tokens) >= 2:
                    edges.append((int(tokens[0]), int(tokens[1])))
                    if len(edges) >= max_edges:
                        break
    return edges


def stream_full_edgelist(url, dest, timeout):
    """Stream the *entire* gzipped edge list to ``dest`` — no graph object.

    Lines pass through as ``u v`` text; the streaming ingester downstream
    handles comment filtering, dedup and CSR construction, so this function
    needs O(1) memory however large the file is.
    """
    from urllib.request import urlopen

    lines = 0
    with urlopen(url, timeout=timeout) as response:
        with gzip.GzipFile(fileobj=response) as stream:
            with open(dest, "w", encoding="utf-8") as out:
                for raw in stream:
                    line = raw.decode("utf-8", "replace").strip()
                    if not line or line.startswith("#"):
                        continue
                    tokens = line.split()
                    if len(tokens) >= 2:
                        out.write("{} {}\n".format(int(tokens[0]), int(tokens[1])))
                        lines += 1
    return lines


def road_patch(edges, max_nodes):
    """The largest component of ``edges``, trimmed to a connected patch."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    component = max(nx.connected_components(graph), key=len)
    graph = graph.subgraph(component)
    if graph.number_of_nodes() > max_nodes:
        root = min(graph.nodes())
        keep = [root]
        for _, node in nx.bfs_edges(graph, root):
            keep.append(node)
            if len(keep) >= max_nodes:
                break
        graph = graph.subgraph(keep)
        component = max(nx.connected_components(graph), key=len)
        graph = graph.subgraph(component)
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    return assign_unique_identifiers(graph, seed=0)


def obtain_workload(args):
    """The road-network edge-list path: downloaded slice, or the fixture."""
    if args.full and not args.offline:
        try:
            print("downloading the full {} ...".format(args.url))
            path = os.path.join(DATA_DIR, "roadnet_full.edges")
            lines = stream_full_edgelist(args.url, path, args.timeout)
            print("streamed {} edge lines -> {}".format(lines, path))
            return path
        except Exception as error:  # offline CI, DNS failure, moved dataset...
            print("download unavailable ({}); using the committed fixture".format(error))
    elif not args.offline:
        try:
            print("downloading {} (first {} edges)...".format(args.url, args.max_edges))
            edges = stream_edges(args.url, args.max_edges, args.timeout)
            graph = road_patch(edges, args.max_nodes)
            path = os.path.join(DATA_DIR, "roadnet_sample.edges")
            write_edge_list(graph, path)
            print(
                "downloaded road patch: {} nodes, {} edges -> {}".format(
                    graph.number_of_nodes(), graph.number_of_edges(), path
                )
            )
            return path
        except Exception as error:  # offline CI, DNS failure, moved dataset...
            print("download unavailable ({}); using the committed fixture".format(error))
    graph = read_edge_list(FIXTURE)
    print(
        "fixture road network: {} nodes, {} edges ({})".format(
            graph.number_of_nodes(), graph.number_of_edges(), FIXTURE
        )
    )
    return FIXTURE


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=DEFAULT_URL, help="gzipped edge-list URL")
    parser.add_argument(
        "--max-edges", type=int, default=4000, help="edges to read from the stream"
    )
    parser.add_argument(
        "--max-nodes", type=int, default=600, help="node cap of the extracted patch"
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, help="download timeout in seconds"
    )
    parser.add_argument(
        "--offline",
        action="store_true",
        help="skip the download and use the committed fixture",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="stream the whole SNAP graph and run it out-of-core on the "
        "memmap graph backend (with --offline: the fixture, same pipeline)",
    )
    parser.add_argument(
        "--partition-nodes",
        type=int,
        default=250_000,
        help="chunk budget for the partitioned decomposition in --full mode",
    )
    args = parser.parse_args(argv)

    path = obtain_workload(args)
    spec = {
        "name": "roadnet",
        "scenarios": ["edgelist:" + path],
        "sizes": [0],  # the file fixes the size
        "methods": ["strong-log3", "strong-log2", "mpx", "sequential"],
        "mode": "decomposition",
    }
    title = "road network — every strong method on one real topology"
    spill_dir = None
    if args.full:
        # Million-node regime: one randomized strong method, BFS-partitioned,
        # with the topology living in a memory-mapped CSR file instead of
        # the heap.  The conversion cache and scratch land in a temp dir so
        # the repository tree stays clean.
        import tempfile

        spill_dir = tempfile.mkdtemp(prefix="roadnet-ooc-")
        spec.update(
            {
                "methods": ["mpx"],
                "backend": "csr",
                "graph_backend": "memmap",
                "spill_dir": spill_dir,
                "partition_nodes": args.partition_nodes,
                "validate": False,  # validation walks the whole graph
            }
        )
        title = "road network — out-of-core (memmap CSR, partitioned mpx)"
        print("graph backend: memmap (partition budget {} nodes)".format(
            args.partition_nodes
        ))
    try:
        result = repro.run_suite(spec)
    finally:
        if spill_dir is not None:
            import shutil

            shutil.rmtree(spill_dir, ignore_errors=True)
    print()
    print(format_table(rows_from_records(result.records), title=title))
    return 0


if __name__ == "__main__":
    sys.exit(main())
