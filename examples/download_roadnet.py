"""Real-world workload: run the pipeline on a public road-network edge list.

Road networks are the classic "almost planar, locally sparse, huge
diameter" workload — the opposite end of the spectrum from the expander
scenarios, and exactly the regime where strong-diameter guarantees are
interesting.  This example

1. fetches a slice of a public road-network edge list (SNAP's
   ``roadNet-TX``), **streaming** the gzip download and stopping after
   ``--max-edges`` lines so only a few hundred kilobytes ever cross the
   network;
2. falls back to the committed fixture ``examples/data/roadnet_tiny.edges``
   whenever the download is unavailable (offline CI, firewalled boxes,
   ``--offline``) — the example always runs;
3. extracts the largest connected component, caps it at ``--max-nodes``
   nodes (breadth-first from the smallest node id, so the slice is a
   connected road patch, not confetti), and writes it in the repository's
   edge-list format;
4. drives the standard suite pipeline over it through the ``edgelist:``
   scenario — every method of the paper on the same real topology — and
   prints the resulting table.

Run it::

    PYTHONPATH=src python examples/download_roadnet.py             # tries the download
    PYTHONPATH=src python examples/download_roadnet.py --offline   # fixture only
"""

import argparse
import gzip
import os
import sys

import networkx as nx

import repro
from repro.analysis.tables import format_table, rows_from_records
from repro.graphs.generators import assign_unique_identifiers
from repro.graphs.io import read_edge_list, write_edge_list

DEFAULT_URL = "https://snap.stanford.edu/data/roadNet-TX.txt.gz"
DATA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")
FIXTURE = os.path.join(DATA_DIR, "roadnet_tiny.edges")


def stream_edges(url, max_edges, timeout):
    """Yield up to ``max_edges`` edges from a gzipped edge-list URL.

    gzip decompresses strictly in stream order, so reading the first
    ``max_edges`` data lines downloads only the prefix of the file — the
    connection is closed long before the multi-megabyte tail.
    """
    from urllib.request import urlopen

    edges = []
    with urlopen(url, timeout=timeout) as response:
        with gzip.GzipFile(fileobj=response) as stream:
            for raw in stream:
                line = raw.decode("utf-8", "replace").strip()
                if not line or line.startswith("#"):
                    continue
                tokens = line.split()
                if len(tokens) >= 2:
                    edges.append((int(tokens[0]), int(tokens[1])))
                    if len(edges) >= max_edges:
                        break
    return edges


def road_patch(edges, max_nodes):
    """The largest component of ``edges``, trimmed to a connected patch."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    component = max(nx.connected_components(graph), key=len)
    graph = graph.subgraph(component)
    if graph.number_of_nodes() > max_nodes:
        root = min(graph.nodes())
        keep = [root]
        for _, node in nx.bfs_edges(graph, root):
            keep.append(node)
            if len(keep) >= max_nodes:
                break
        graph = graph.subgraph(keep)
        component = max(nx.connected_components(graph), key=len)
        graph = graph.subgraph(component)
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    return assign_unique_identifiers(graph, seed=0)


def obtain_workload(args):
    """The road-network edge-list path: downloaded slice, or the fixture."""
    if not args.offline:
        try:
            print("downloading {} (first {} edges)...".format(args.url, args.max_edges))
            edges = stream_edges(args.url, args.max_edges, args.timeout)
            graph = road_patch(edges, args.max_nodes)
            path = os.path.join(DATA_DIR, "roadnet_sample.edges")
            write_edge_list(graph, path)
            print(
                "downloaded road patch: {} nodes, {} edges -> {}".format(
                    graph.number_of_nodes(), graph.number_of_edges(), path
                )
            )
            return path
        except Exception as error:  # offline CI, DNS failure, moved dataset...
            print("download unavailable ({}); using the committed fixture".format(error))
    graph = read_edge_list(FIXTURE)
    print(
        "fixture road network: {} nodes, {} edges ({})".format(
            graph.number_of_nodes(), graph.number_of_edges(), FIXTURE
        )
    )
    return FIXTURE


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=DEFAULT_URL, help="gzipped edge-list URL")
    parser.add_argument(
        "--max-edges", type=int, default=4000, help="edges to read from the stream"
    )
    parser.add_argument(
        "--max-nodes", type=int, default=600, help="node cap of the extracted patch"
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, help="download timeout in seconds"
    )
    parser.add_argument(
        "--offline",
        action="store_true",
        help="skip the download and use the committed fixture",
    )
    args = parser.parse_args(argv)

    path = obtain_workload(args)
    result = repro.run_suite(
        {
            "name": "roadnet",
            "scenarios": ["edgelist:" + path],
            "sizes": [0],  # the file fixes the size
            "methods": ["strong-log3", "strong-log2", "mpx", "sequential"],
            "mode": "decomposition",
        }
    )
    print()
    print(
        format_table(
            rows_from_records(result.records),
            title="road network — every strong method on one real topology",
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
