"""CONGEST simulator example: message-level primitives and bandwidth limits.

Run with::

    python examples/congest_simulation.py

The paper's whole point is doing the weak-to-strong transformation with
*small messages*.  This example runs the library's message-level CONGEST
simulator on the distributed primitives the transformation is built from
(BFS, layer counting, convergecast, the MPX shifted BFS), reports their round
counts and largest messages, and then shows what happens when an algorithm —
the ABCP96-style topology gathering — tries to exceed the bandwidth.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.baselines.abcp import abcp_strong_carving
from repro.congest.messages import default_bandwidth
from repro.congest.primitives import (
    bfs_tree,
    convergecast_sum,
    count_nodes_at_distances,
    leader_election,
    shifted_multisource_bfs,
)
from repro.graphs import torus_graph


def main() -> None:
    graph = torus_graph(8, 8, seed=5)
    n = graph.number_of_nodes()
    bandwidth = default_bandwidth(n)
    print("network: 8x8 torus, {} nodes; CONGEST bandwidth = {} bits/message".format(n, bandwidth))

    rows = []

    # BFS tree from node 0: the building block of every ball-growing step.
    parents, distances, report = bfs_tree(graph, 0)
    rows.append({"primitive": "BFS tree", "rounds": report.rounds,
                 "messages": report.messages_sent, "max bits": report.max_message_bits})

    # Convergecast: the cluster root learns the cluster size through its tree.
    total, report = convergecast_sum(graph, parents, {node: 1 for node in graph.nodes()})
    rows.append({"primitive": "convergecast (size={})".format(total), "rounds": report.rounds,
                 "messages": report.messages_sent, "max bits": report.max_message_bits})

    # Layer counting: what case (II) of Theorem 2.1 uses to pick the boundary.
    counts, report = count_nodes_at_distances(graph, 0, max_radius=max(distances.values()))
    rows.append({"primitive": "layer counting", "rounds": report.rounds,
                 "messages": report.messages_sent, "max bits": report.max_message_bits})

    # Leader election by minimum-identifier flooding.
    leader, report = leader_election(graph)
    rows.append({"primitive": "leader election (uid={})".format(leader), "rounds": report.rounds,
                 "messages": report.messages_sent, "max bits": report.max_message_bits})

    # MPX shifted BFS: the randomized strong-diameter baseline, distributed.
    rng = random.Random(3)
    shifts = {node: rng.randrange(0, 4) for node in graph.nodes()}
    centers, _, report = shifted_multisource_bfs(graph, shifts)
    rows.append({"primitive": "shifted BFS ({} clusters)".format(len(set(centers.values()))),
                 "rounds": report.rounds, "messages": report.messages_sent,
                 "max bits": report.max_message_bits})

    print(format_table(rows, title="small-message primitives on the simulator"))
    over_budget = [row for row in rows if row["max bits"] > bandwidth]
    print("primitives exceeding the bandwidth: {}".format(len(over_budget)))

    # Contrast: the ABCP96 transformation must gather whole topologies.
    carving, abcp = abcp_strong_carving(graph)
    print(
        "\nABCP96 gathering needs messages of up to {} bits "
        "({}x the CONGEST bandwidth) — this is exactly the cost the paper's "
        "transformation avoids.".format(abcp.max_message_bits, round(abcp.blowup_factor, 1))
    )


if __name__ == "__main__":
    main()
