"""Algorithm comparison: every Table 1 / Table 2 row on one workload.

Run with::

    python examples/compare_algorithms.py [n]

Builds a torus with roughly ``n`` nodes (default 256), runs every
decomposition and every ball-carving algorithm the library implements, and
prints the measured parameters side by side — a miniature, single-machine
version of the benchmark harness that regenerates the paper's tables.
"""

from __future__ import annotations

import sys

import repro
from repro.analysis.metrics import evaluate_carving, evaluate_decomposition
from repro.analysis.tables import format_table
from repro.clustering.validation import check_network_decomposition
from repro.graphs import torus_graph

LABELS = {
    "ls93": "LS93 (weak, randomized)",
    "weak-rg20": "RG20/GGR21 (weak, deterministic)",
    "mpx": "MPX13/EN16 (strong, randomized)",
    "strong-log3": "Theorem 2.2/2.3 (strong, deterministic)",
    "strong-log2": "Theorem 3.3/3.4 (strong, deterministic)",
    "sequential": "LS93 existential (centralized)",
}


def main() -> None:
    target = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    side = max(3, int(round(target ** 0.5)))
    graph = torus_graph(side, side, seed=9)
    print("workload: {}x{} torus, {} nodes".format(side, side, graph.number_of_nodes()))

    decomposition_rows = []
    for method, label in LABELS.items():
        decomposition = repro.decompose(graph, method=method, seed=1)
        check_network_decomposition(decomposition)
        decomposition_rows.append(evaluate_decomposition(decomposition, label).as_row())
    print()
    print(format_table(decomposition_rows, title="network decompositions (Table 1 rows)"))

    carving_rows = []
    for method, label in LABELS.items():
        carving = repro.carve(graph, 0.5, method=method, seed=1)
        carving_rows.append(evaluate_carving(carving, label).as_row())
    print()
    print(format_table(carving_rows, title="ball carvings with eps = 1/2 (Table 2 rows)"))

    print(
        "\nReading guide: the deterministic strong-diameter rows (the paper's "
        "contribution) pay more rounds than the randomized baselines but keep "
        "polylogarithmic colors/diameter and, unlike the weak rows, their "
        "clusters are connected subgraphs."
    )


if __name__ == "__main__":
    main()
