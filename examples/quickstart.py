"""Quickstart: compute a strong-diameter network decomposition and inspect it.

Run with::

    python examples/quickstart.py

This is the 60-second tour of the library: build a workload graph, run the
paper's deterministic strong-diameter decomposition (Theorem 2.3), validate
every invariant the paper states, and print the measured parameters next to
the theoretical bounds.
"""

from __future__ import annotations

import math

import repro
from repro.analysis.metrics import evaluate_decomposition
from repro.analysis.tables import format_table
from repro.clustering.validation import check_network_decomposition, strong_diameter
from repro.graphs import torus_graph


def main() -> None:
    # 1. A workload graph: a 16x16 torus (256 nodes, diameter 16).  Every node
    #    carries a unique O(log n)-bit identifier, as the CONGEST model assumes.
    graph = torus_graph(16, 16, seed=42)
    n = graph.number_of_nodes()
    print("graph: {} nodes, {} edges".format(n, graph.number_of_edges()))

    # 2. The paper's first headline result (Theorem 2.3): a deterministic
    #    strong-diameter network decomposition with O(log n) colors and
    #    O(log^3 n) diameter, computed with small messages.
    decomposition = repro.decompose(graph, method="strong-log3")

    # 3. Validate every invariant: full coverage, disjoint clusters,
    #    same-color clusters non-adjacent, connected (strong-diameter) clusters.
    check_network_decomposition(decomposition)
    print("validation: all invariants hold")

    # 4. Measured parameters vs the paper's bounds.
    metrics = evaluate_decomposition(decomposition, "Theorem 2.3")
    log_n = math.log2(n)
    print(format_table([metrics.as_row()], title="measured parameters"))
    print(
        "bounds: colors O(log n) ~ {:.0f}, diameter O(log^3 n) ~ {:.0f}".format(
            log_n, log_n ** 3
        )
    )

    # 5. Look inside: the largest cluster and its strong diameter.
    largest = max(decomposition.clusters, key=len)
    print(
        "largest cluster: {} nodes, color {}, strong diameter {}".format(
            len(largest), largest.color, strong_diameter(graph, largest.nodes)
        )
    )

    # 6. Rounds: the ledger records where the CONGEST rounds went.
    print("round breakdown:", decomposition.ledger.breakdown())


if __name__ == "__main__":
    main()
