"""Barrier example: why the O(log^2 n / eps) diameter is hard to beat.

Run with::

    python examples/barrier_exploration.py

Section 3 of the paper ends with a lower-bound construction for its own
technique: subdivide every edge of a constant-degree expander into a path of
length ``log n / eps``.  The resulting graph has conductance
``Theta(eps / log n)``; it admits no balanced sparse cut with a light
separator, and every subset with at least ``n/3`` nodes induces a subgraph of
diameter ``Omega(log^2 n / eps)`` — so the Lemma 3.1 dichotomy cannot produce
anything better than what Theorem 3.2 already achieves.

This example builds the barrier graph, runs Lemma 3.1 on it and on a benign
torus of the same size, and prints the contrast.
"""

from __future__ import annotations

import math

from repro.analysis.tables import format_table
from repro.core.sparse_cut import LargeComponent, SparseCut, sparse_cut_or_component
from repro.graphs import barrier_graph, torus_graph
from repro.graphs.properties import graph_conductance_lower_bound, subgraph_diameter

EPS = 0.5


def analyse(name: str, graph) -> dict:
    """Run Lemma 3.1 and summarise the outcome."""
    n = graph.number_of_nodes()
    result = sparse_cut_or_component(graph, graph.nodes(), EPS)
    row = {
        "graph": name,
        "n": n,
        "conductance (upper est.)": round(graph_conductance_lower_bound(graph, samples=48), 4),
        "outcome": result.kind,
    }
    if isinstance(result, LargeComponent):
        row["component size"] = len(result.component)
        row["component diameter"] = subgraph_diameter(graph, result.component)
        row["boundary"] = len(result.boundary)
    else:
        row["sides"] = "{} / {}".format(len(result.side_a), len(result.side_b))
        row["separator"] = len(result.separator)
    row["log^2 n / eps"] = int(math.log2(n) ** 2 / EPS)
    return row


def main() -> None:
    barrier, meta = barrier_graph(500, EPS, seed=3)
    print(
        "barrier graph: {}-node expander, every edge subdivided into a {}-edge path "
        "-> {} nodes".format(
            meta["base_expander_nodes"], meta["subdivision_length"], meta["result_nodes"]
        )
    )

    benign = torus_graph(22, 22, seed=3)
    rows = [analyse("barrier (subdivided expander)", barrier), analyse("torus (benign control)", benign)]
    print()
    print(format_table(rows, title="Lemma 3.1 on the barrier graph vs a benign graph"))

    print(
        "\nOn the torus the lemma finds a genuinely small-diameter component; on the "
        "barrier graph any component of comparable size is forced to have diameter on "
        "the order of log^2 n / eps — which is why beating O(log^2 n / eps) needs a "
        "different technique (the paper's closing open problem)."
    )


if __name__ == "__main__":
    main()
