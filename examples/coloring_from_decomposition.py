"""Application example: distributed (Δ+1)-coloring and MIS via decomposition.

Run with::

    python examples/coloring_from_decomposition.py

The introduction of the paper motivates network decomposition through the
standard "process colors one by one" template: clusters of one color are
non-adjacent, so they compute in parallel; their small diameter makes each
step cheap; the total cost is proportional to ``C * D``.  This example runs
that template for the two classic problems the paper cites — maximal
independent set and (Δ+1)-coloring — on decompositions produced by different
algorithms, and shows how the decomposition quality translates into the
template's round cost.
"""

from __future__ import annotations

import repro
from repro.analysis.tables import format_table
from repro.applications.coloring import delta_plus_one_coloring, verify_coloring
from repro.applications.mis import maximal_independent_set, verify_mis
from repro.clustering.validation import max_cluster_diameter
from repro.congest.rounds import RoundLedger
from repro.graphs import random_regular_graph


def run_for_method(graph, method: str) -> dict:
    """Decompose, then solve MIS and coloring through the template."""
    decomposition = repro.decompose(graph, method=method, seed=7)

    mis_ledger = RoundLedger()
    independent_set = maximal_independent_set(decomposition, ledger=mis_ledger)

    coloring_ledger = RoundLedger()
    coloring = delta_plus_one_coloring(decomposition, ledger=coloring_ledger)

    assert verify_mis(graph, independent_set), "MIS invariant violated"
    assert verify_coloring(graph, coloring), "coloring invariant violated"

    diameter = max_cluster_diameter(graph, decomposition.clusters, kind=decomposition.kind)
    return {
        "method": method,
        "colors (C)": decomposition.num_colors,
        "diameter (D)": diameter,
        "C*D": decomposition.num_colors * max(1, diameter),
        "MIS size": len(independent_set),
        "MIS rounds": mis_ledger.total_rounds,
        "coloring rounds": coloring_ledger.total_rounds,
        "palette used": max(coloring.values()) + 1,
    }


def main() -> None:
    graph = random_regular_graph(200, 4, seed=11)
    print(
        "graph: random 4-regular, {} nodes, {} edges".format(
            graph.number_of_nodes(), graph.number_of_edges()
        )
    )

    rows = [
        run_for_method(graph, method)
        for method in ("sequential", "mpx", "ls93", "strong-log3", "strong-log2")
    ]
    print(format_table(rows, title="MIS and (Δ+1)-coloring via the C*D template"))
    print(
        "\nNote how the template's round cost tracks C*D: that product is exactly "
        "why the paper insists on polylogarithmic colors AND diameter."
    )


if __name__ == "__main__":
    main()
