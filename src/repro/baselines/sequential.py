"""Centralized sequential ball growing (the [LS93] existential construction).

Linial and Saks observed that *every* graph admits a strong-diameter network
decomposition with ``O(log n)`` colors and ``O(log n)`` diameter, via a simple
sequential argument: repeatedly pick an arbitrary unclustered node, grow a
ball around it until the next layer would less than double the ball, take the
ball as a cluster and defer its boundary layer to the next color class.

This is *not* a distributed algorithm — it is the quality reference line the
benchmarks compare the distributed algorithms' cluster diameters and color
counts against (the "existential optimum" rows).  The carving variant
(:func:`greedy_sequential_carving`) stops growing a ball once its boundary
layer is at most an ``eps`` fraction of the enlarged ball, yielding diameter
``O(log n / eps)``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger
from repro.graphs.properties import bfs_layers_within


def _grow_ball(
    graph: nx.Graph,
    center: Any,
    allowed: Set[Any],
    stop_ratio: float,
) -> Tuple[Set[Any], Set[Any], int]:
    """Grow a ball around ``center`` until the next layer is light.

    Returns ``(ball, boundary_layer, radius)`` where ``boundary_layer`` is the
    first layer outside the ball and
    ``len(boundary_layer) <= stop_ratio * (len(ball) + len(boundary_layer))``.
    """
    layers = bfs_layers_within(graph, [center], allowed=allowed)
    ball: Set[Any] = set(layers[0])
    radius = 0
    while radius + 1 < len(layers):
        next_layer = layers[radius + 1]
        if len(next_layer) <= stop_ratio * (len(ball) + len(next_layer)):
            return ball, set(next_layer), radius
        ball |= next_layer
        radius += 1
    return ball, set(), radius


def greedy_sequential_carving(
    graph: nx.Graph,
    eps: float,
    nodes: Optional[Iterable[Any]] = None,
    ledger: Optional[RoundLedger] = None,
) -> BallCarving:
    """Centralized strong-diameter ball carving with parameter ``eps``.

    Repeatedly grows balls (from the smallest-identifier unprocessed node)
    until each ball's boundary layer is at most an ``eps`` fraction of the
    enlarged ball; the boundary layers are the removed nodes.  Cluster
    diameter is ``O(log n / eps)`` because every growth step multiplies the
    ball size by at least ``1 / (1 - eps)``.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie strictly between 0 and 1")
    ledger = ledger if ledger is not None else RoundLedger()
    participating: Set[Any] = set(graph.nodes()) if nodes is None else set(nodes)
    working_graph = graph.subgraph(participating)

    uid_of = {node: working_graph.nodes[node].get("uid", node) for node in participating}
    remaining = set(participating)
    clusters: List[Cluster] = []
    dead: Set[Any] = set()
    index = 0
    max_radius = 0

    while remaining:
        center = min(remaining, key=lambda node: uid_of[node])
        ball, boundary, radius = _grow_ball(working_graph, center, remaining, stop_ratio=eps)
        clusters.append(Cluster(nodes=frozenset(ball), label=("seq", index)))
        dead |= boundary
        remaining -= ball
        remaining -= boundary
        max_radius = max(max_radius, radius)
        index += 1

    # The construction is centralized; we charge the cost of the equivalent
    # global BFS sweeps so the benchmarks can still put it on a rounds axis.
    ledger.charge("sequential_ball_growing", 2 * (max_radius + 1), detail="centralized")
    return BallCarving(
        graph=working_graph,
        clusters=clusters,
        dead=dead,
        eps=eps,
        ledger=ledger,
        kind="strong",
    )


def greedy_sequential_decomposition(
    graph: nx.Graph,
    ledger: Optional[RoundLedger] = None,
) -> NetworkDecomposition:
    """The [LS93] existential ``(O(log n), O(log n))`` strong decomposition.

    Per color class: sequentially carve balls (doubling condition, i.e.
    ``eps = 1/2``) from the nodes still uncolored, sending each ball's
    boundary layer to the pool of later colors.  At least half of the pool is
    clustered per color, so ``O(log n)`` colors suffice; every ball has radius
    at most ``log2 n``.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    remaining: Set[Any] = set(graph.nodes())
    uid_of = {node: graph.nodes[node].get("uid", node) for node in graph.nodes()}
    clusters: List[Cluster] = []
    color = 0
    n = graph.number_of_nodes()
    max_colors = 4 * max(1, int(math.ceil(math.log2(max(2, n))))) + 8

    while remaining:
        if color >= max_colors:
            raise RuntimeError("sequential decomposition exceeded the expected color count")
        pool = set(remaining)
        clustered_this_color: Set[Any] = set()
        index = 0
        while pool:
            center = min(pool, key=lambda node: uid_of[node])
            ball, boundary, _ = _grow_ball(graph, center, pool, stop_ratio=0.5)
            clusters.append(
                Cluster(nodes=frozenset(ball), label=("seq", color, index), color=color)
            )
            clustered_this_color |= ball
            pool -= ball
            pool -= boundary
            index += 1
        remaining -= clustered_this_color
        color += 1
        ledger.charge("sequential_color_class", 2 * max(1, int(math.ceil(math.log2(max(2, n))))))

    return NetworkDecomposition(graph=graph, clusters=clusters, ledger=ledger, kind="strong")
