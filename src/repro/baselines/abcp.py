"""The ABCP96 weak-to-strong transformation (LOCAL model, unbounded messages).

Awerbuch, Berger, Cowen and Peleg showed how to turn a weak-diameter network
decomposition into a strong-diameter ball carving: run the weak decomposition
on the power graph ``G^{2d}`` (``d = log n``), then process the colors one by
one; per color, every cluster *gathers the entire topology* of itself and its
``d``-hop neighbourhood at its centre and carves strong-diameter balls there
by local computation.  Because clusters of one color are at distance at least
``2d + 1``, the gathered regions are disjoint.

The catch — and the motivation for the paper we reproduce — is the gathering
step: shipping a whole induced subgraph to the centre requires messages of
``Theta(E_local * log n)`` bits, far beyond the CONGEST bandwidth.  This
module implements the transformation and *measures* the message sizes it
would need, so the message-size benchmark can contrast it with the
small-message transformation of Theorem 2.1.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.baselines.sequential import _grow_ball
from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.messages import default_bandwidth
from repro.congest.rounds import RoundLedger
from repro.graphs.power import power_graph
from repro.graphs.properties import neighborhood_ball


@dataclasses.dataclass
class ABCPReport:
    """Message-size accounting of one ABCP96 run.

    Attributes:
        max_message_bits: The largest single message the topology-gathering
            step needs (the induced subgraph of a gathered region, encoded at
            ``2 * ceil(log2 n)`` bits per edge).
        congest_bandwidth_bits: The CONGEST bandwidth ``B = O(log n)`` for the
            same ``n``, for direct comparison.
        gathered_regions: Number of gather operations performed.
        power_graph_edges: Edge count of ``G^{2d}`` (the power graph the weak
            decomposition runs on — itself another source of large messages).
    """

    max_message_bits: int = 0
    congest_bandwidth_bits: int = 0
    gathered_regions: int = 0
    power_graph_edges: int = 0

    @property
    def blowup_factor(self) -> float:
        """How many times the CONGEST bandwidth the largest message exceeds."""
        if self.congest_bandwidth_bits == 0:
            return float("inf")
        return self.max_message_bits / self.congest_bandwidth_bits


def abcp_strong_carving(
    graph: nx.Graph,
    weak_decomposition: Optional[Callable[[nx.Graph], NetworkDecomposition]] = None,
    ledger: Optional[RoundLedger] = None,
) -> Tuple[BallCarving, ABCPReport]:
    """Run the ABCP96 transformation and report its message-size footprint.

    Args:
        graph: Host graph.
        weak_decomposition: The weak-diameter decomposition to run on the
            power graph ``G^{2d}``; defaults to the centralized sequential
            construction (any decomposition works — the message-size numbers
            are dominated by the gathering step, not by this choice).
        ledger: Round ledger (LOCAL-model rounds).

    Returns:
        ``(carving, report)`` where ``carving`` is a strong-diameter ball
        carving with ``eps = 1/2`` and ``report`` quantifies the unbounded
        messages the transformation needs.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    n = graph.number_of_nodes()
    if n == 0:
        return (
            BallCarving(graph=graph, clusters=[], dead=set(), eps=0.5, ledger=ledger),
            ABCPReport(congest_bandwidth_bits=default_bandwidth(1)),
        )

    if weak_decomposition is None:
        from repro.baselines.sequential import greedy_sequential_decomposition

        weak_decomposition = greedy_sequential_decomposition

    d = max(1, int(math.ceil(math.log2(max(2, n)))))
    bits_per_edge = 2 * max(1, int(math.ceil(math.log2(max(2, n)))))
    report = ABCPReport(congest_bandwidth_bits=default_bandwidth(n))

    powered = power_graph(graph, 2 * d)
    report.power_graph_edges = powered.number_of_edges()
    decomposition = weak_decomposition(powered)
    ledger.charge(
        "abcp_weak_decomposition_on_power_graph",
        decomposition.rounds * 2 * d,
        detail="each power-graph round needs 2d real rounds (with large messages)",
    )

    uid_of = {node: graph.nodes[node].get("uid", node) for node in graph.nodes()}
    remaining: Set[Any] = set(graph.nodes())
    clusters: List[Cluster] = []
    dead: Set[Any] = set()
    index = 0

    for color in decomposition.colors:
        for cluster in decomposition.clusters_of_color(color):
            members = set(cluster.nodes) & remaining
            if not members:
                continue
            # Gather the topology of the cluster plus its (d+1)-hop
            # neighbourhood (restricted to still-remaining nodes) at the
            # cluster centre; the extra hop guarantees that every carved
            # ball's boundary layer lies inside the gathered region.
            region = neighborhood_ball(graph, members, d + 1, allowed=remaining)
            region_edges = sum(
                1 for u, v in graph.edges() if u in region and v in region
            )
            gather_bits = max(1, region_edges) * bits_per_edge
            report.max_message_bits = max(report.max_message_bits, gather_bits)
            report.gathered_regions += 1
            ledger.charge("abcp_gather", 2 * d, detail="topology gathering (unbounded messages)")

            # Centralized sequential ball carving inside the gathered region,
            # but only carving balls around nodes of the weak cluster itself.
            pool = set(region)
            seeds = set(members)
            while seeds & pool:
                center = min(seeds & pool, key=lambda node: uid_of[node])
                ball, boundary, _ = _grow_ball(graph, center, pool, stop_ratio=0.5)
                clusters.append(Cluster(nodes=frozenset(ball), label=("abcp", index)))
                index += 1
                dead |= boundary
                pool -= ball
                pool -= boundary
                remaining -= ball
                remaining -= boundary
            ledger.charge("abcp_report_back", 2 * d, detail="informing the region of the carving")

    # Every node belongs to some weak cluster, so by the time all colors have
    # been processed every node has been swallowed by a carved ball or a
    # boundary layer: `remaining` must be empty here.  The assertion documents
    # (and enforces) this invariant of the transformation.
    if remaining - dead:
        raise RuntimeError(
            "ABCP96 transformation left {} nodes unprocessed; "
            "the weak decomposition did not cover the graph".format(len(remaining - dead))
        )

    carving = BallCarving(
        graph=graph,
        clusters=clusters,
        dead=dead,
        eps=0.5,
        ledger=ledger,
        kind="strong",
    )
    return carving, report
