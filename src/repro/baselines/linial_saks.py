"""Linial–Saks randomized weak-diameter clustering [LS93].

Each node ``v`` independently draws a radius ``r_v`` from a truncated
geometric distribution and (conceptually) broadcasts ``(uid_v, r_v)`` to its
``r_v``-hop neighbourhood.  Every node ``u`` considers the candidates ``v``
with ``dist(u, v) <= r_v`` and joins the cluster of the candidate with the
largest identifier; ``u`` is *captured* (clustered) when that distance is
strictly smaller than ``r_v``, and left unclustered (for this repetition) when
the distance equals ``r_v`` exactly.  The memorylessness of the geometric
distribution makes the capture probability at least the distribution's
continuation probability, independently for every node.

Parameters (matching Table 2's weak randomized row): with continuation
probability ``p = 1 - eps/2`` and radius cap ``B = O(log n / eps)`` the
clusters have weak diameter ``O(log n / eps)`` and the expected unclustered
fraction is at most ``eps`` (``eps/2`` from capture failures plus an
``n^{-Omega(1)}`` term from the truncation).
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster, SteinerTree
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger
from repro.core.decomposition import decomposition_via_carving
from repro.graphs.properties import bfs_layers_within


def _truncated_geometric(rng: random.Random, continuation: float, cap: int) -> int:
    """Draw ``r`` with ``P(r >= k+1 | r >= k) = continuation``, capped."""
    radius = 0
    while radius < cap and rng.random() < continuation:
        radius += 1
    return radius


def _radius_cap(n: int, eps: float) -> int:
    """Truncation point ``B = O(log n / eps)``: the probability that an
    untruncated geometric exceeds ``B`` is below ``1/n``."""
    continuation = 1.0 - eps / 2.0
    if continuation <= 0.0:
        return 1
    bound = math.log(max(2, n)) / -math.log(continuation)
    return max(1, int(math.ceil(bound)) + 1)


def linial_saks_carving(
    graph: nx.Graph,
    eps: float,
    nodes: Optional[Iterable[Any]] = None,
    ledger: Optional[RoundLedger] = None,
    rng: Optional[random.Random] = None,
) -> BallCarving:
    """One repetition of the LS93 clustering as a weak-diameter ball carving.

    Args:
        graph: Host graph.
        eps: Boundary parameter — the *expected* unclustered fraction is at
            most ``eps`` (this is a randomized guarantee; the benchmarks
            report the measured fraction).
        nodes: Optional node subset to operate on.
        ledger: Round ledger; the repetition costs ``O(log n / eps)`` rounds
            (broadcasting within the radius cap, as in [LS93]).
        rng: Random source (seed it for reproducibility).

    Returns:
        A weak-diameter :class:`~repro.clustering.carving.BallCarving`.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie strictly between 0 and 1")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()

    participating: Set[Any] = set(graph.nodes()) if nodes is None else set(nodes)
    working_graph = graph.subgraph(participating)
    n = len(participating)
    if n == 0:
        return BallCarving(graph=working_graph, clusters=[], dead=set(), eps=eps, ledger=ledger, kind="weak")

    continuation = 1.0 - eps / 2.0
    cap = _radius_cap(n, eps)
    uid_of = {node: working_graph.nodes[node].get("uid", node) for node in participating}
    radius_of = {node: _truncated_geometric(rng, continuation, cap) for node in participating}

    # For every node, the best candidate is the centre with the largest
    # identifier among those whose radius reaches it.  We compute, for every
    # centre, the BFS layers up to its radius, and fold them into per-node
    # "best offers"; ties cannot occur because identifiers are unique.
    best_offer: Dict[Any, Tuple[int, int, Any]] = {}
    for center in participating:
        layers = bfs_layers_within(working_graph, [center], allowed=participating,
                                   max_radius=radius_of[center])
        for distance, layer in enumerate(layers):
            for node in layer:
                offer = (uid_of[center], -distance, center)
                if node not in best_offer or offer > best_offer[node]:
                    best_offer[node] = offer

    members: Dict[Any, Set[Any]] = {}
    dead: Set[Any] = set()
    for node in participating:
        offer = best_offer.get(node)
        if offer is None:
            dead.add(node)
            continue
        center_uid, negative_distance, center = offer
        distance = -negative_distance
        if distance < radius_of[center]:
            members.setdefault(center, set()).add(node)
        else:
            dead.add(node)

    clusters = _build_clusters(working_graph, participating, members, uid_of)
    ledger.charge("ls93_broadcast", 2 * cap + 2, detail="radius-capped candidate broadcast")
    return BallCarving(
        graph=working_graph,
        clusters=clusters,
        dead=dead,
        eps=eps,
        ledger=ledger,
        kind="weak",
    )


def _build_clusters(
    graph: nx.Graph,
    participating: Set[Any],
    members: Dict[Any, Set[Any]],
    uid_of: Dict[Any, int],
) -> List[Cluster]:
    """Attach BFS-path Steiner trees (in the host graph) to the LS93 clusters."""
    clusters: List[Cluster] = []
    for center, node_set in sorted(members.items(), key=lambda item: uid_of[item[0]]):
        parent: Dict[Any, Optional[Any]] = {center: None}
        layers = bfs_layers_within(graph, [center], allowed=participating)
        for depth in range(1, len(layers)):
            for node in layers[depth]:
                for neighbour in graph.neighbors(node):
                    if neighbour in layers[depth - 1] and neighbour in parent:
                        parent[node] = neighbour
                        break
        # Prune to the paths of the actual members (plus Steiner nodes).
        needed: Set[Any] = {center}
        for node in node_set:
            current = node
            while current is not None and current not in needed:
                needed.add(current)
                current = parent.get(current)
        pruned = {node: parent.get(node) for node in needed}
        pruned[center] = None
        tree = SteinerTree(root=center, parent=pruned)
        clusters.append(Cluster(nodes=frozenset(node_set), label=("ls93", uid_of[center]), tree=tree))
    return clusters


def linial_saks_decomposition(
    graph: nx.Graph,
    ledger: Optional[RoundLedger] = None,
    rng: Optional[random.Random] = None,
) -> NetworkDecomposition:
    """The full LS93 weak-diameter network decomposition: ``O(log n)`` colors
    and ``O(log n)`` weak diameter with high probability, via repetitions of
    :func:`linial_saks_carving` with ``eps = 1/2``."""
    rng = rng or random.Random(0)

    def carving(host, eps, nodes=None, ledger=None):
        return linial_saks_carving(host, eps, nodes=nodes, ledger=ledger, rng=rng)

    return decomposition_via_carving(graph, carving, eps=0.5, ledger=ledger, kind="weak")
