"""A fully message-level MPX ball carving, run on the CONGEST simulator.

:mod:`repro.baselines.mpx` computes the Miller–Peng–Xu clustering centrally
(with real-valued exponential shifts) and charges rounds through the ledger.
This module is its *end-to-end simulated* counterpart: integer geometric
shifts, the competing-BFS node program of
:func:`repro.congest.primitives.shifted_multisource_bfs`, plus one extra
round in which every node compares its cluster with its neighbours' and the
"later" endpoint of every cross-cluster edge retires.  Every round and every
message of the execution is accounted for by the simulator, so the reported
round count and maximum message size are measured, not modelled.

The price of the fully distributed rule is a slightly weaker per-run deletion
guarantee (the expected removed fraction is ``O(eps * average_degree)`` in
the worst case, measured per run by the caller), which is why the
ledger-based :func:`repro.baselines.mpx.mpx_carving` remains the default
Table 2 row; this variant exists to certify, on the simulator, that a
strong-diameter carving really is achievable end to end with ``O(log n)``-bit
messages — the property the paper's whole story revolves around.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster, SteinerTree
from repro.congest.primitives import shifted_multisource_bfs
from repro.congest.rounds import RoundLedger
from repro.congest.simulator import SimulationReport
from repro.graphs.properties import induced_components


def _geometric_shift(rng: random.Random, eps: float, cap: int) -> int:
    """An integer shift with ``P(shift >= k+1 | shift >= k) = 1 - eps``, capped."""
    shift = 0
    while shift < cap and rng.random() > eps:
        shift += 1
    return shift


def mpx_distributed_carving(
    graph: nx.Graph,
    eps: float,
    rng: Optional[random.Random] = None,
    ledger: Optional[RoundLedger] = None,
) -> Tuple[BallCarving, SimulationReport]:
    """Run the simulated MPX carving and return it with the simulator report.

    Args:
        graph: Host graph (connected or not; every node participates).
        eps: Controls the geometric shift distribution (rate ``eps``) and
            hence the cluster radius ``O(log n / eps)`` and the expected
            fraction of cross-cluster edges.
        rng: Random source for the shifts.
        ledger: Optional ledger; the simulator-measured rounds (plus the one
            comparison round) are charged into it.

    Returns:
        ``(carving, report)`` where ``carving`` is a strong-diameter
        :class:`~repro.clustering.carving.BallCarving` and ``report`` is the
        :class:`~repro.congest.simulator.SimulationReport` of the shifted-BFS
        execution (rounds, messages, maximum message bits).
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie strictly between 0 and 1")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()

    n = graph.number_of_nodes()
    if n == 0:
        raise ValueError("cannot carve an empty graph")
    cap = max(1, int(math.ceil(2 * math.log(max(2, n)) / eps)))
    shifts = {node: _geometric_shift(rng, eps, cap) for node in graph.nodes()}

    centers, parents, report = shifted_multisource_bfs(graph, shifts)
    ledger.charge("mpx_distributed_bfs", report.rounds, detail="simulated shifted BFS")
    ledger.local_step(1, detail="cross-edge comparison")

    # One exchange round: for every cross-cluster edge, the endpoint whose
    # capture was "later" (larger distance from its centre, ties by larger
    # centre identifier, then by larger own identifier) retires.  After this,
    # no two alive neighbours belong to different clusters.
    distance_of: Dict[Any, int] = {}
    for node, result in report.outputs.items():
        distance_of[node] = result["distance"] if result["distance"] is not None else 0

    def retire_key(node: Any) -> Tuple[int, int, int]:
        uid = graph.nodes[node].get("uid", node)
        return (distance_of[node], centers[node], uid)

    dead: Set[Any] = set()
    for u, v in graph.edges():
        if centers.get(u) != centers.get(v):
            dead.add(max((u, v), key=retire_key))

    alive_by_center: Dict[int, Set[Any]] = {}
    for node in graph.nodes():
        if node in dead:
            continue
        alive_by_center.setdefault(centers[node], set()).add(node)

    clusters: List[Cluster] = []
    for center_uid, members in sorted(alive_by_center.items()):
        # Killing nodes can split a cluster; each surviving component becomes
        # its own cluster (components of the same centre are non-adjacent by
        # definition, and components of different centres are non-adjacent
        # because every cross-centre edge lost one endpoint).
        for index, component in enumerate(induced_components(graph, members)):
            root = min(component, key=lambda node: (distance_of[node], str(node)))
            tree = _component_bfs_tree(graph, component, root)
            clusters.append(
                Cluster(nodes=frozenset(component), label=("mpx-sim", center_uid, index), tree=tree)
            )

    carving = BallCarving(
        graph=graph, clusters=clusters, dead=dead, eps=eps, ledger=ledger, kind="strong"
    )
    return carving, report


def _component_bfs_tree(graph: nx.Graph, component: Set[Any], root: Any) -> SteinerTree:
    """A BFS tree of the connected ``component`` rooted at ``root``.

    Strong-diameter clusters only need an internal (congestion-1) tree; a BFS
    tree inside the component is the canonical choice.
    """
    from repro.graphs.properties import bfs_layers_within

    parent: Dict[Any, Optional[Any]] = {root: None}
    layers = bfs_layers_within(graph, [root], allowed=component)
    for depth in range(1, len(layers)):
        for node in layers[depth]:
            for neighbour in graph.neighbors(node):
                if neighbour in layers[depth - 1] and neighbour in parent:
                    parent[node] = neighbour
                    break
    return SteinerTree(root=root, parent=parent)
