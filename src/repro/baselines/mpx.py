"""Miller–Peng–Xu / Elkin–Neiman randomized strong-diameter clustering.

Every node ``v`` draws a shift ``delta_v`` from an exponential distribution
with rate ``beta``; node ``u`` is assigned to the centre ``v`` minimising the
*shifted distance* ``dist(u, v) - delta_v``.  The resulting clusters are
connected (each node's shortest-path predecessor towards its centre is in the
same cluster), have strong radius ``max_v delta_v = O(log n / beta)`` with
high probability, and every node's "slack" (second-best shifted distance
minus best) exceeds 1 with probability at least ``e^{-beta} >= 1 - beta``.

For the **ball carving** variant we remove exactly the low-slack nodes
(slack <= 1): any two adjacent surviving nodes must then belong to the same
cluster, and the surviving part of each cluster remains connected because a
surviving node's predecessor has even larger slack.  Taking ``beta = eps``
yields an expected removed fraction of at most ``eps`` and strong diameter
``O(log n / eps)`` — the strong randomized row of Table 2.

For the **network decomposition** (Table 1's strong randomized row) we apply
the usual reduction: repeat the carving with ``eps = 1/2`` and give color
``i`` to the clusters of repetition ``i``  [MPX13, EN16].
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster, SteinerTree
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger
from repro.core.decomposition import decomposition_via_carving


def _two_nearest_centers(
    graph: nx.Graph,
    allowed: Set[Any],
    shifts: Dict[Any, float],
    uid_of: Dict[Any, int],
) -> Dict[Any, List[Tuple[float, int, Any, Optional[Any]]]]:
    """For every node, the two best (shifted distance, centre) labels.

    Runs a multi-source Dijkstra where every node starts as a centre with
    initial key ``-delta_v``; each node retains the best two labels coming
    from *distinct* centres, together with the predecessor realising the best
    label (used to build the intra-cluster tree).  Ties are broken by centre
    identifier, which makes the assignment deterministic given the shifts.
    """
    labels: Dict[Any, List[Tuple[float, int, Any, Optional[Any]]]] = {node: [] for node in allowed}
    # Heap entries carry a monotone counter so that comparisons never fall
    # through to the node / predecessor fields (which may not be orderable).
    counter = 0
    heap: List[Tuple[float, int, int, Any, Any, Optional[Any]]] = []
    for center in sorted(allowed, key=lambda node: uid_of[node]):
        heapq.heappush(heap, (-shifts[center], uid_of[center], counter, center, center, None))
        counter += 1

    while heap:
        distance, center_uid, _, center, node, predecessor = heapq.heappop(heap)
        existing = labels[node]
        if any(entry[2] == center for entry in existing):
            continue
        if len(existing) >= 2:
            continue
        existing.append((distance, center_uid, center, predecessor))
        # Both retained labels propagate: the wave realising a node's
        # second-nearest centre may have to travel through nodes where that
        # centre is also only second-nearest, so dropping it would
        # overestimate slacks and wrongly keep boundary nodes alive.
        for neighbour in graph.neighbors(node):
            if neighbour in allowed:
                heapq.heappush(
                    heap, (distance + 1.0, center_uid, counter, center, neighbour, node)
                )
                counter += 1
    return labels


def mpx_carving(
    graph: nx.Graph,
    eps: float,
    nodes: Optional[Iterable[Any]] = None,
    ledger: Optional[RoundLedger] = None,
    rng: Optional[random.Random] = None,
) -> BallCarving:
    """The MPX/EN16 strong-diameter ball carving with parameter ``eps``.

    Args:
        graph: Host graph.
        eps: Boundary parameter; the exponential shift rate ``beta`` is set to
            ``eps`` so the expected removed fraction is at most ``eps``.
        nodes: Optional node subset to operate on.
        ledger: Round ledger; the algorithm costs ``O(max_shift + cluster
            radius) = O(log n / eps)`` rounds (the shifted BFS of
            :func:`repro.congest.primitives.shifted_multisource_bfs` realises
            exactly this schedule on the message-passing simulator).
        rng: Random source (seed for reproducibility).

    Returns:
        A strong-diameter :class:`~repro.clustering.carving.BallCarving`.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie strictly between 0 and 1")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()

    participating: Set[Any] = set(graph.nodes()) if nodes is None else set(nodes)
    working_graph = graph.subgraph(participating)
    n = len(participating)
    if n == 0:
        return BallCarving(graph=working_graph, clusters=[], dead=set(), eps=eps, ledger=ledger)

    beta = eps
    uid_of = {node: working_graph.nodes[node].get("uid", node) for node in participating}
    shifts = {node: rng.expovariate(beta) for node in participating}

    labels = _two_nearest_centers(working_graph, participating, shifts, uid_of)

    assignment: Dict[Any, Any] = {}
    predecessor: Dict[Any, Optional[Any]] = {}
    dead: Set[Any] = set()
    for node in participating:
        entries = labels[node]
        if not entries:
            dead.add(node)
            continue
        best = entries[0]
        slack = (entries[1][0] - best[0]) if len(entries) > 1 else float("inf")
        if slack <= 1.0:
            dead.add(node)
        else:
            assignment[node] = best[2]
            predecessor[node] = best[3]

    members: Dict[Any, Set[Any]] = {}
    for node, center in assignment.items():
        members.setdefault(center, set()).add(node)

    clusters: List[Cluster] = []
    for center, node_set in sorted(members.items(), key=lambda item: uid_of[item[0]]):
        parent: Dict[Any, Optional[Any]] = {center: None}
        for node in node_set:
            if node != center:
                parent[node] = predecessor[node]
        tree = SteinerTree(root=center, parent=parent)
        clusters.append(Cluster(nodes=frozenset(node_set), label=("mpx", uid_of[center]), tree=tree))

    max_shift = max(shifts.values()) if shifts else 0.0
    max_radius = 0
    for cluster in clusters:
        if cluster.tree is not None:
            max_radius = max(max_radius, cluster.tree.depth())
    ledger.charge(
        "mpx_shifted_bfs",
        int(math.ceil(max_shift)) + max_radius + 2,
        detail="competing shifted BFS waves",
    )

    return BallCarving(
        graph=working_graph,
        clusters=clusters,
        dead=dead,
        eps=eps,
        ledger=ledger,
        kind="strong",
    )


def mpx_decomposition(
    graph: nx.Graph,
    ledger: Optional[RoundLedger] = None,
    rng: Optional[random.Random] = None,
) -> NetworkDecomposition:
    """The randomized strong-diameter network decomposition of [MPX13, EN16]:
    ``O(log n)`` colors and ``O(log n)`` strong diameter with high
    probability, via repetitions of :func:`mpx_carving` with ``eps = 1/2``."""
    rng = rng or random.Random(0)

    def carving(host, eps, nodes=None, ledger=None):
        return mpx_carving(host, eps, nodes=nodes, ledger=ledger, rng=rng)

    return decomposition_via_carving(graph, carving, eps=0.5, ledger=ledger, kind="strong")
