"""Baseline algorithms from prior work (the other rows of Tables 1 and 2).

* :mod:`repro.baselines.linial_saks` — the randomized weak-diameter
  decomposition of Linial and Saks [LS93].
* :mod:`repro.baselines.mpx` — the randomized strong-diameter clustering of
  Miller, Peng and Xu [MPX13] / Elkin and Neiman [EN16] via exponential
  random shifts.
* :mod:`repro.baselines.sequential` — the centralized existential
  construction of [LS93] (sequential ball growing); not a distributed
  algorithm, used as the quality reference line.
* :mod:`repro.baselines.abcp` — the ABCP96 transformation that gathers
  cluster topologies with *unbounded* messages; used by the message-size
  experiment to quantify why small messages are the hard part.
"""

from repro.baselines.linial_saks import linial_saks_carving, linial_saks_decomposition
from repro.baselines.mpx import mpx_carving, mpx_decomposition
from repro.baselines.mpx_distributed import mpx_distributed_carving
from repro.baselines.sequential import (
    greedy_sequential_carving,
    greedy_sequential_decomposition,
)
from repro.baselines.abcp import ABCPReport, abcp_strong_carving

__all__ = [
    "linial_saks_carving",
    "linial_saks_decomposition",
    "mpx_carving",
    "mpx_decomposition",
    "mpx_distributed_carving",
    "greedy_sequential_carving",
    "greedy_sequential_decomposition",
    "ABCPReport",
    "abcp_strong_carving",
]
