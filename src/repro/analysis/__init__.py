"""Measurement, curve fitting and table rendering for the benchmark harness.

* :mod:`repro.analysis.metrics` — extract the quantities Tables 1 and 2
  report (colors, max strong/weak cluster diameter, rounds, dead fraction,
  congestion) from carvings and decompositions.
* :mod:`repro.analysis.fitting` — check that measured round counts /
  diameters grow polylogarithmically (fit ``c * log^k n`` and report the
  exponent).
* :mod:`repro.analysis.tables` — plain-text table rendering used by the
  benchmarks and EXPERIMENTS.md.
"""

from repro.analysis.metrics import (
    CarvingMetrics,
    DecompositionMetrics,
    evaluate_carving,
    evaluate_decomposition,
)
from repro.analysis.fitting import PolylogFit, fit_polylog, is_polylog_bounded
from repro.analysis.tables import format_table
from repro.analysis.report import collect_archived_tables, generate_report, quick_summary

__all__ = [
    "collect_archived_tables",
    "generate_report",
    "quick_summary",
    "CarvingMetrics",
    "DecompositionMetrics",
    "evaluate_carving",
    "evaluate_decomposition",
    "PolylogFit",
    "fit_polylog",
    "is_polylog_bounded",
    "format_table",
]
