"""Trace analysis: span-tree reconstruction and reports over a JSONL trace.

A trace file (written by :mod:`repro.telemetry.spans` under ``--trace``)
holds one JSON line per *closed* span, appended concurrently by the parent
process and every pool worker.  This module turns that flat stream back
into the suite's execution tree and answers the questions a perf
investigation starts with:

* :func:`summarize` — per-span-name counts/totals plus the per-phase
  breakdown (``graph_build`` / ``freeze`` / ``decompose`` / ``task``) that
  reconciles with the run store's ``timings`` sums (``cell.validate``
  nests *inside* ``cell.decompose``, so validation time is not double
  counted);
* :func:`slowest` — the top-N spans by duration, optionally filtered by
  name;
* :func:`critical_path` — the heaviest root-to-leaf chain of the tree
  (where the wall-clock actually went);
* :func:`outliers` — cell groups whose clustering time sits ``sigma``
  standard deviations above their cohort (same grid column, other seeds).

Loading is tolerant by construction: a worker killed mid-write can tear at
most its final line, so unparseable lines are *skipped and counted*, never
fatal — the same truncated-tail policy as the JSONL run store.  The CLI
verbs ``repro trace summarize|slowest|critical-path`` are thin wrappers
over these functions.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Dict, List, Optional, Tuple

#: Top-level phase spans summed for the per-phase breakdown.  ``cell.validate``
#: is deliberately absent: it runs nested inside ``cell.decompose`` and would
#: double-count (it is still reported per-name by :func:`summarize`).
PHASE_SPANS: Dict[str, str] = {
    "graph_build": "cell.graph_build",
    "freeze": "cell.freeze",
    "decompose": "cell.decompose",
    "task": "cell.task",
}


@dataclasses.dataclass
class TraceSpan:
    """One reconstructed span (a parsed trace line plus its children)."""

    name: str
    span_id: str
    parent: Optional[str]
    pid: int
    ts: float
    dur_s: float
    status: str
    error: Optional[str] = None
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    children: List["TraceSpan"] = dataclasses.field(default_factory=list)

    @property
    def label(self) -> str:
        """A short human label: the name plus its most telling attribute."""
        for key in ("cell", "base_id", "column", "source", "suite"):
            if key in self.attrs:
                return "{}[{}]".format(self.name, self.attrs[key])
        return self.name


@dataclasses.dataclass
class Trace:
    """A loaded trace: all spans, the id index, and the forest roots."""

    spans: List[TraceSpan]
    by_id: Dict[str, TraceSpan]
    roots: List[TraceSpan]
    skipped_lines: int = 0

    def named(self, name: str) -> List[TraceSpan]:
        return [span for span in self.spans if span.name == name]


def load_trace(path: str) -> Trace:
    """Load a trace file and rebuild the span forest.

    Unparseable or non-span lines are skipped and counted in
    ``skipped_lines`` — a torn final line from a killed worker must not
    make the rest of the trace unreadable.  Spans whose parent never
    closed (the parent process died mid-span) become roots.
    """
    spans: List[TraceSpan] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(record, dict) or record.get("kind") != "span":
                skipped += 1
                continue
            try:
                spans.append(
                    TraceSpan(
                        name=str(record["name"]),
                        span_id=str(record["id"]),
                        parent=record.get("parent"),
                        pid=int(record.get("pid", 0)),
                        ts=float(record.get("ts", 0.0)),
                        dur_s=float(record.get("dur_s", 0.0)),
                        status=str(record.get("status", "ok")),
                        error=record.get("error"),
                        attrs=dict(record.get("attrs") or {}),
                    )
                )
            except (KeyError, TypeError, ValueError):
                skipped += 1
    by_id = {span.span_id: span for span in spans}
    roots: List[TraceSpan] = []
    for span in spans:
        parent = by_id.get(span.parent) if span.parent else None
        if parent is None:
            roots.append(span)
        else:
            parent.children.append(span)
    for span in spans:
        span.children.sort(key=lambda child: child.ts)
    roots.sort(key=lambda root: root.ts)
    return Trace(spans=spans, by_id=by_id, roots=roots, skipped_lines=skipped)


# --------------------------------------------------------------------- #
# Reports
# --------------------------------------------------------------------- #
def phase_totals(trace: Trace) -> Dict[str, float]:
    """Seconds per pipeline phase, summed over the phase's spans.

    The four phases cover disjoint spans (validation nests inside
    ``cell.decompose``), so the totals reconcile with the run store's
    ``timings`` sums: ``graph_build ≈ Σ graph_build_s`` (shared columns
    build once), ``freeze ≈ Σ freeze_s``, ``decompose + task ≈ Σ algo_s``.
    """
    totals = {phase: 0.0 for phase in PHASE_SPANS}
    for phase, span_name in PHASE_SPANS.items():
        totals[phase] = sum(span.dur_s for span in trace.named(span_name))
    return totals


def summarize(trace: Trace) -> Dict[str, Any]:
    """Aggregate view: per-name stats, per-phase totals, error counts."""
    by_name: Dict[str, Dict[str, Any]] = {}
    errors = 0
    for span in trace.spans:
        stats = by_name.setdefault(
            span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        stats["count"] += 1
        stats["total_s"] += span.dur_s
        stats["max_s"] = max(stats["max_s"], span.dur_s)
        if span.status != "ok":
            errors += 1
    suites = trace.named("suite")
    wall = sum(span.dur_s for span in suites)
    return {
        "spans": len(trace.spans),
        "skipped_lines": trace.skipped_lines,
        "errors": errors,
        "wall_s": wall,
        "cells": sum(stats["count"] for name, stats in by_name.items() if name == "cell.task"),
        "phases": phase_totals(trace),
        "by_name": by_name,
    }


def slowest(
    trace: Trace, top: int = 10, name: Optional[str] = None
) -> List[TraceSpan]:
    """The ``top`` longest spans, optionally restricted to one span name."""
    spans = trace.named(name) if name else list(trace.spans)
    spans.sort(key=lambda span: span.dur_s, reverse=True)
    return spans[: max(0, int(top))]


def critical_path(trace: Trace) -> List[TraceSpan]:
    """The heaviest root-to-leaf chain: where the wall-clock actually went.

    Starts at the longest root span and, at every level, descends into the
    longest child.  With pool workers the children of one parent overlap in
    real time, so this is the *dominant* chain rather than a strict serial
    path — exactly the span to shrink first either way.
    """
    if not trace.roots:
        return []
    path: List[TraceSpan] = []
    current = max(trace.roots, key=lambda span: span.dur_s)
    while current is not None:
        path.append(current)
        current = max(current.children, key=lambda span: span.dur_s, default=None)
    return path


def _cohort_key(base_id: str) -> str:
    """A group's cohort: its base id with the trailing seed axis dropped."""
    parts = base_id.rsplit("/", 1)
    if len(parts) == 2 and parts[1].startswith("s") and parts[1][1:].isdigit():
        return parts[0]
    return base_id


def outliers(
    trace: Trace, sigma: float = 2.0, min_cohort: int = 3
) -> List[Dict[str, Any]]:
    """Cell groups abnormally slow versus their column cohort.

    Groups ``cell.group`` spans by grid column (base id minus the seed
    axis) and flags spans more than ``sigma`` standard deviations above
    the cohort mean.  Cohorts smaller than ``min_cohort`` are skipped —
    a two-seed cohort has no meaningful spread.
    """
    cohorts: Dict[str, List[TraceSpan]] = {}
    for span in trace.named("cell.group"):
        base_id = str(span.attrs.get("base_id", ""))
        cohorts.setdefault(_cohort_key(base_id), []).append(span)
    flagged: List[Dict[str, Any]] = []
    for cohort, members in sorted(cohorts.items()):
        if len(members) < min_cohort:
            continue
        durations = [span.dur_s for span in members]
        mean = sum(durations) / len(durations)
        variance = sum((d - mean) ** 2 for d in durations) / len(durations)
        spread = math.sqrt(variance)
        threshold = mean + sigma * spread
        for span in members:
            if spread > 0.0 and span.dur_s > threshold:
                flagged.append(
                    {
                        "cohort": cohort,
                        "base_id": span.attrs.get("base_id"),
                        "dur_s": span.dur_s,
                        "cohort_mean_s": mean,
                        "cohort_std_s": spread,
                        "sigmas": (span.dur_s - mean) / spread,
                    }
                )
    flagged.sort(key=lambda entry: entry["sigmas"], reverse=True)
    return flagged


# --------------------------------------------------------------------- #
# Plain-text rendering (the `repro trace` CLI verbs)
# --------------------------------------------------------------------- #
def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return "{:.0f}s".format(value)
    if value >= 1:
        return "{:.2f}s".format(value)
    return "{:.1f}ms".format(value * 1e3)


def format_summary(trace: Trace) -> str:
    """Render :func:`summarize` (plus outliers) as the CLI report."""
    summary = summarize(trace)
    lines = [
        "trace: {} spans, {} skipped line(s), {} error span(s)".format(
            summary["spans"], summary["skipped_lines"], summary["errors"]
        ),
        "wall (suite spans): {}".format(_fmt_seconds(summary["wall_s"])),
        "",
        "phase breakdown:",
    ]
    phases = summary["phases"]
    total = sum(phases.values()) or 1.0
    for phase in PHASE_SPANS:
        seconds = phases[phase]
        lines.append(
            "  {:<12} {:>10}  {:5.1f}%".format(
                phase, _fmt_seconds(seconds), 100.0 * seconds / total
            )
        )
    lines.append("")
    lines.append("spans by name:")
    lines.append(
        "  {:<22} {:>6} {:>10} {:>10}".format("name", "count", "total", "max")
    )
    for name, stats in sorted(
        summary["by_name"].items(), key=lambda item: -item[1]["total_s"]
    ):
        lines.append(
            "  {:<22} {:>6} {:>10} {:>10}".format(
                name,
                stats["count"],
                _fmt_seconds(stats["total_s"]),
                _fmt_seconds(stats["max_s"]),
            )
        )
    flagged = outliers(trace)
    if flagged:
        lines.append("")
        lines.append("outlier cell groups (vs column cohort):")
        for entry in flagged[:10]:
            lines.append(
                "  {}  {}  ({:+.1f} sigma, cohort mean {})".format(
                    entry["base_id"],
                    _fmt_seconds(entry["dur_s"]),
                    entry["sigmas"],
                    _fmt_seconds(entry["cohort_mean_s"]),
                )
            )
    return "\n".join(lines)


def format_slowest(trace: Trace, top: int = 10, name: Optional[str] = None) -> str:
    """Render :func:`slowest` as an aligned plain-text table."""
    spans = slowest(trace, top=top, name=name)
    if not spans:
        return "no matching spans"
    lines = ["{:>10}  {:<8} {}".format("dur", "status", "span")]
    for span in spans:
        lines.append(
            "{:>10}  {:<8} {}".format(
                _fmt_seconds(span.dur_s), span.status, span.label
            )
        )
    return "\n".join(lines)


def format_critical_path(trace: Trace) -> str:
    """Render :func:`critical_path` as an indented chain."""
    path = critical_path(trace)
    if not path:
        return "empty trace"
    lines = []
    for depth, span in enumerate(path):
        lines.append(
            "{}{}  {}".format("  " * depth, _fmt_seconds(span.dur_s), span.label)
        )
    return "\n".join(lines)


__all__ = [
    "PHASE_SPANS",
    "Trace",
    "TraceSpan",
    "critical_path",
    "format_critical_path",
    "format_slowest",
    "format_summary",
    "load_trace",
    "outliers",
    "phase_totals",
    "slowest",
    "summarize",
]
