"""Experiment report generation.

The benchmark harness archives every reproduced table under
``benchmarks/results/``.  This module assembles those archives — plus a live
summary computed on a small workload — into a single Markdown report, which is
what ``repro-decompose --report`` (and the tests) use to produce an
up-to-date, self-contained experiment record.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import repro
from repro.analysis.metrics import evaluate_decomposition
from repro.analysis.tables import format_table, rows_from_records

# Human-readable titles for the archived benchmark tables, in report order.
_ARCHIVE_SECTIONS = (
    ("table1_torus", "Table 1 (torus workload)"),
    ("table1_regular", "Table 1 (random regular workload)"),
    ("table2_torus_eps0_5", "Table 2 (eps = 1/2)"),
    ("table2_eps_sweep", "Table 2 (eps sweep of Theorem 2.2)"),
    ("theorem21_certificate", "Theorem 2.1 bound certificate"),
    ("improvement_cycle", "Theorem 3.2 improvement (cycle)"),
    ("scaling_strong_log3", "Scaling of Theorem 2.3"),
    ("barrier_properties", "Section 3 barrier graph"),
    ("message_size_abcp", "ABCP96 message sizes"),
    ("message_size_primitives", "Small-message primitives"),
    ("applications_torus", "Applications (C*D template)"),
    ("applications_speedup", "Applications — CSR vs nx task loops"),
    ("applications_reuse", "Applications — one decomposition, N tasks"),
)


def quick_summary(n: int = 100, seed: int = 1) -> str:
    """A live summary table: every decomposition method on one small torus."""
    from repro.graphs.generators import torus_graph

    side = max(3, int(round(n ** 0.5)))
    graph = torus_graph(side, side, seed=seed)
    rows = []
    for method in repro.DECOMPOSITION_METHODS:
        decomposition = repro.decompose(graph, method=method, seed=seed)
        rows.append(evaluate_decomposition(decomposition, method).as_row())
    return format_table(
        rows, title="live summary — all methods on a {}x{} torus".format(side, side)
    )


def task_summary(n: int = 100, seed: int = 1) -> str:
    """A live applications table: every registered task on every method.

    One decomposition per method, reused across the tasks (exactly the
    suite runner's one-decomposition/N-tasks path), with the ``C * D``
    template cost and the verified task metrics per row.
    """
    from repro.graphs.generators import torus_graph
    from repro.registry import TASKS

    side = max(3, int(round(n ** 0.5)))
    graph = torus_graph(side, side, seed=seed)
    rows = []
    for method in repro.DECOMPOSITION_METHODS:
        decomposition = repro.decompose(graph, method=method, seed=seed)
        for task in TASKS.names():
            if TASKS.get(task).solve is None:
                continue
            result = repro.run_task(
                graph, method=method, task=task, decomposition=decomposition
            )
            rows.append(result.as_row())
    return format_table(
        rows, title="applications — tasks on a {}x{} torus".format(side, side)
    )


def collect_archived_tables(results_dir: str) -> List[Dict[str, str]]:
    """Load the archived benchmark tables from ``results_dir`` (if present).

    A missing, empty, or unreadable results directory — the state of every
    fresh checkout before the benchmark harness has run — yields an empty
    list; :func:`generate_report` then emits its placeholder section
    instead of failing the whole report over absent archives.
    """
    sections: List[Dict[str, str]] = []
    if not results_dir or not os.path.isdir(results_dir):
        return sections
    for stem, title in _ARCHIVE_SECTIONS:
        path = os.path.join(results_dir, "{}.txt".format(stem))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                content = handle.read().rstrip()
        except OSError:
            continue  # absent (or unreadable) archive: skip just that table
        sections.append({"title": title, "table": content})
    return sections


def suite_summary(store_path: str) -> str:
    """Render the results of one persisted suite run as a table.

    Args:
        store_path: Path of a run-store file as written by
            :func:`repro.run_suite` — any backend; JSON lines and SQLite
            stores are both recognised by extension.

    Returns:
        The rendered table, titled with the suite name and cell count.
    """
    from repro.pipeline.backends import open_store

    store = open_store(store_path)
    rows = rows_from_records(store.results())
    title = "suite {!r} — {} cells ({})".format(
        store.suite or os.path.basename(store_path), len(rows), store_path
    )
    return format_table(rows, title=title)


def generate_report(
    results_dir: Optional[str] = None,
    include_live_summary: bool = True,
    live_summary_n: int = 100,
    store_paths: Optional[Sequence[str]] = None,
    diffs: Optional[Sequence[Tuple[str, str]]] = None,
) -> str:
    """Assemble the Markdown experiment report.

    Args:
        results_dir: Directory holding the archived ``*.txt`` benchmark tables
            (defaults to ``benchmarks/results`` relative to the repository
            root, when it exists; a missing directory produces the
            placeholder section rather than an error).
        include_live_summary: Whether to run the quick live summary (a few
            seconds of compute) and embed it.
        live_summary_n: Workload size of the live summary.
        store_paths: Optional suite run-store files to summarise in a
            dedicated "Suite runs" section (see :func:`suite_summary`).
        diffs: Optional ``(current_store, baseline_store)`` path pairs; each
            is diffed with :func:`repro.analysis.diff.diff_stores` and the
            regression report embedded.

    Returns:
        The report as a Markdown string.
    """
    lines: List[str] = []
    lines.append("# Reproduction report — Strong-Diameter Network Decomposition")
    lines.append("")
    lines.append("Generated by `repro.analysis.report.generate_report`.")
    lines.append("")

    if include_live_summary:
        lines.append("## Live summary")
        lines.append("")
        lines.append("```")
        lines.append(quick_summary(n=live_summary_n))
        lines.append("```")
        lines.append("")
        lines.append("```")
        lines.append(task_summary(n=live_summary_n))
        lines.append("```")
        lines.append("")

    if store_paths:
        lines.append("## Suite runs")
        lines.append("")
        for store_path in store_paths:
            lines.append("```")
            lines.append(suite_summary(store_path))
            lines.append("```")
            lines.append("")

    if diffs:
        from repro.analysis.diff import diff_stores

        for current_path, baseline_path in diffs:
            lines.append(diff_stores(current_path, baseline_path).to_markdown())
            lines.append("")

    if results_dir is None:
        candidate = os.path.join(os.getcwd(), "benchmarks", "results")
        results_dir = candidate if os.path.isdir(candidate) else ""

    sections = collect_archived_tables(results_dir) if results_dir else []
    if sections:
        lines.append("## Archived benchmark tables")
        lines.append("")
        for section in sections:
            lines.append("### {}".format(section["title"]))
            lines.append("")
            lines.append("```")
            lines.append(section["table"])
            lines.append("```")
            lines.append("")
    else:
        lines.append(
            "_No archived benchmark tables found; run "
            "`pytest benchmarks/ --benchmark-only` first._"
        )
        lines.append("")

    return "\n".join(lines)
