"""Plain-text table rendering for the benchmark harness.

The benchmarks print the reproduced Table 1 / Table 2 rows to stdout (and the
same strings are pasted into EXPERIMENTS.md), so a small dependency-free
renderer is all that is needed.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dictionaries as an aligned monospace table.

    Args:
        rows: One dictionary per row; missing keys render as empty cells.
        columns: Column order; defaults to the keys of the first row.
        title: Optional title line printed above the table.

    Returns:
        The rendered table as a single string (no trailing newline).
    """
    if not rows:
        return title or "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, float):
            return "{:.3g}".format(value)
        return str(value)

    widths = {column: len(column) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = [render(row.get(column, "")) for column in columns]
        rendered_rows.append(cells)
        for column, cell in zip(columns, cells):
            widths[column] = max(widths[column], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines.append(header)
    lines.append(separator)
    for cells in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[column]) for column, cell in zip(columns, cells))
        )
    return "\n".join(lines)
