"""Plain-text table rendering for the benchmark harness.

The benchmarks print the reproduced Table 1 / Table 2 rows to stdout (and the
same strings are pasted into EXPERIMENTS.md), so a small dependency-free
renderer is all that is needed.  :func:`rows_from_records` flattens the
result records of a :class:`repro.pipeline.store.RunStore` into row
dictionaries for :func:`format_table`, so suite output feeds the same
renderer as the hand-built tables.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

# Grid parameters promoted into every flattened suite row, in column order.
_RECORD_PARAMS = ("scenario", "method", "task", "mode", "eps", "seed")


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dictionaries as an aligned monospace table.

    Args:
        rows: One dictionary per row; missing keys render as empty cells.
        columns: Column order; defaults to the union of all rows' keys in
            first-seen order (rows with different task metrics — ``mis_size``
            vs ``colors_used`` — must not hide each other's columns).
        title: Optional title line printed above the table.

    Returns:
        The rendered table as a single string (no trailing newline).
    """
    if not rows:
        return title or "(no rows)"
    if columns is None:
        seen = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)

    def render(value: Any) -> str:
        if isinstance(value, float):
            return "{:.3g}".format(value)
        return str(value)

    widths = {column: len(column) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = [render(row.get(column, "")) for column in columns]
        rendered_rows.append(cells)
        for column, cell in zip(columns, cells):
            widths[column] = max(widths[column], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines.append(header)
    lines.append(separator)
    for cells in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[column]) for column, cell in zip(columns, cells))
        )
    return "\n".join(lines)


def rows_from_records(
    records: Iterable[Dict[str, Any]],
    labels: Optional[Dict[str, str]] = None,
) -> List[Dict[str, Any]]:
    """Flatten suite result records into table rows.

    Each record produced by :func:`repro.pipeline.run_suite` carries the
    grid parameters next to a nested ``"metrics"`` dictionary.  This merges
    the two (grid parameters first, measured metrics after, per-cell wall
    time last) so the result renders directly with :func:`format_table`.

    Args:
        records: Result records (e.g. ``RunStore.results()`` or
            ``SuiteResult.records``).
        labels: Optional mapping of method string → display label; when
            given, a leading ``"algorithm"`` column is added.

    Returns:
        One flat row dictionary per record.  Schema-2 records additionally
        get ``build_s`` (generator/attach + CSR freeze) and ``algo_s``
        columns from their ``timings`` breakdown, schema-3 records a
        ``ledger_rounds`` column (the RoundLedger total charged by the
        algorithm), and schema-4 task records ``task``, ``task_rounds`` and
        their flattened ``task_metrics`` (``mis_size`` / ``colors_used`` /
        ``verified``), so build-vs-algorithm attribution, round budgets and
        task outcomes all render next to the metrics (older records simply
        lack the columns).  Records whose timings carry a ``kernel`` entry
        (runs since the hot-path kernel tiers landed) get a ``kernel``
        column with the resolved tier name.  Schema-5 quarantined cells
        (``status="failed"``) get ``status`` and ``error`` columns instead
        of metrics.
    """
    rows: List[Dict[str, Any]] = []
    for record in records:
        row: Dict[str, Any] = {}
        if labels is not None:
            row["algorithm"] = labels.get(record.get("method"), record.get("method"))
        for key in _RECORD_PARAMS:
            value = record.get(key)
            if value is not None:
                row[key] = value
        status = record.get("status", "ok")
        if status != "ok":
            # Schema-5 quarantined cells carry no metrics — surface the
            # status and the captured error class so failed cells render
            # as explicit rows instead of silently-blank ones.
            row["status"] = status
            error = record.get("error")
            if isinstance(error, dict) and error.get("type"):
                row["error"] = error["type"]
        for key, value in dict(record.get("metrics", {})).items():
            # Grid parameters win on clashes (metrics repeat method/eps).
            row.setdefault(key, value)
        task_metrics = record.get("task_metrics")
        if record.get("task") not in (None, "decompose"):
            # Schema-4 task records: the template cost and the task's own
            # measurements render next to the decomposition metrics.
            row["task_rounds"] = record.get("task_rounds")
            if isinstance(task_metrics, dict):
                for key, value in task_metrics.items():
                    row.setdefault(key, value)
        rounds = record.get("rounds")
        if isinstance(rounds, dict) and "total" in rounds:
            # Schema-3 records carry the RoundLedger aggregate next to the
            # measured metric rounds; surface the charged total so round
            # budgets render (and regress) alongside the measurements.
            row["ledger_rounds"] = rounds["total"]
        if "seconds" in record:
            row["seconds"] = record["seconds"]
        timings = record.get("timings")
        if isinstance(timings, dict):
            row["build_s"] = round(
                timings.get("graph_build_s", 0.0) + timings.get("freeze_s", 0.0), 6
            )
            row["algo_s"] = timings.get("algo_s", 0.0)
            if "kernel" in timings:
                # Records written since the kernel tiers landed say which
                # resolved tier ran the cell (pre-kernel records lack it).
                row["kernel"] = timings["kernel"]
        rows.append(row)
    return rows
