"""Cross-store regression diffing: align two run stores cell by cell.

Two sweeps of the same suite — different commits, different store backends,
different machines — should produce the same *measured* results wherever
the algorithms are deterministic, and comparable timings everywhere.  This
module makes that checkable: :func:`diff_stores` aligns two stores on their
derived cell keys and reports, per cell and aggregated per method,

* deltas in the discrete measurements — cluster count, max diameter, the
  metric round complexity, (schema ≥ 3) the :class:`RoundLedger` aggregate
  charged by the algorithm, and (schema ≥ 4) the task fields: the ``C * D``
  template cost ``task_rounds``, the task metrics ``mis_size`` /
  ``colors_used``, and the ``verified`` bit — where **any** difference is
  flagged as a regression by default (tolerance 0: a deterministic method
  changing its answer means the reproduction changed; a coloring that
  suddenly needs more colors, or an MIS whose verification flips, is
  exactly such a change);
* deltas in ``algo_s`` wall time, flagged only when the current run is
  slower than the baseline by *both* the relative and the absolute
  tolerance (timings are noisy; two honest runs of a small cell differ by
  microseconds, which must not fail a regression gate).

Tolerances are configurable per field (`tolerances={"clusters": 1}` lets
randomized baselines drift by one cluster; ``{"algo_s": (0.5, 1.0)}``
means "slower by ≥ 50 % *and* ≥ 1 s").  Cells present in only one store
are reported separately — a shrunken grid is a finding, not an error.

The result renders as a Markdown regression report
(:meth:`StoreDiff.to_markdown`), which ``repro-decompose --mode diff
--store A --baseline B`` prints and
:func:`repro.analysis.report.generate_report` can embed.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Default per-field tolerances.  Discrete measurements must match exactly;
#: timing regressions need to clear a 100 % relative *and* a 0.25 s
#: absolute bar before they flag (both bounds, so micro-cell noise and
#: one-off scheduler hiccups cannot fail a gate on their own).
DEFAULT_TOLERANCES: Dict[str, Any] = {
    "clusters": 0,
    "diameter": 0,
    "rounds": 0,
    "ledger_rounds": 0,
    "task_rounds": 0,
    "mis_size": 0,
    "colors_used": 0,
    "task_verified": 0,
    "algo_s": (1.0, 0.25),
}


def _task_metric(record: Dict[str, Any], key: str) -> Any:
    value = (record.get("task_metrics") or {}).get(key)
    # Booleans compare/delta as ints (True -> 1), so a verification flip is
    # a ±1 delta against tolerance 0.
    return int(value) if isinstance(value, bool) else value


def _task_rounds(record: Dict[str, Any]) -> Any:
    # Plain decompose cells carry task_rounds=0 as schema-4 filler; reading
    # them as "no task field" keeps schema-3 baselines diffing clean
    # instead of reporting a 0-vs-absent row for every aligned cell.
    if record.get("task") in (None, "decompose"):
        return None
    return record.get("task_rounds")


#: Field → how to read it off a result record.
_FIELD_READERS = {
    "clusters": lambda record: record.get("metrics", {}).get("clusters"),
    "diameter": lambda record: record.get("metrics", {}).get("diameter"),
    "rounds": lambda record: record.get("metrics", {}).get("rounds"),
    "ledger_rounds": lambda record: (record.get("rounds") or {}).get("total"),
    "task_rounds": _task_rounds,
    "mis_size": lambda record: _task_metric(record, "mis_size"),
    "colors_used": lambda record: _task_metric(record, "colors_used"),
    "task_verified": lambda record: _task_metric(record, "verified"),
    "algo_s": lambda record: (record.get("timings") or {}).get("algo_s"),
}

#: Fields compared symmetrically (any difference beyond tolerance flags).
DISCRETE_FIELDS = (
    "clusters",
    "diameter",
    "rounds",
    "ledger_rounds",
    "task_rounds",
    "mis_size",
    "colors_used",
    "task_verified",
)

#: Fields compared one-sidedly (only "current slower than baseline" flags).
TIMING_FIELDS = ("algo_s",)


@dataclasses.dataclass
class FieldDelta:
    """One compared field of one cell: current vs baseline."""

    field: str
    current: Any
    baseline: Any
    delta: float
    regression: bool


@dataclasses.dataclass
class CellDelta:
    """All differing fields of one aligned cell."""

    cell: str
    method: str
    fields: List[FieldDelta]

    @property
    def regressions(self) -> List[FieldDelta]:
        return [field for field in self.fields if field.regression]


@dataclasses.dataclass
class StoreDiff:
    """Outcome of :func:`diff_stores` — aligned cells, deltas, regressions.

    Attributes:
        current_path: Path (or label) of the store under test.
        baseline_path: Path (or label) of the baseline store.
        matched: Number of cells present in both stores.
        only_current: Cell ids present only in the current store.
        only_baseline: Cell ids present only in the baseline store.
        deltas: Aligned cells with at least one differing compared field.
        tolerances: The effective per-field tolerances used.
    """

    current_path: str
    baseline_path: str
    matched: int
    only_current: List[str]
    only_baseline: List[str]
    deltas: List[CellDelta]
    tolerances: Dict[str, Any]

    @property
    def regressions(self) -> List[CellDelta]:
        """Cells with at least one field exceeding its tolerance."""
        return [delta for delta in self.deltas if delta.regressions]

    @property
    def clean(self) -> bool:
        """Whether the diff found no regressions and no missing cells."""
        return not self.regressions and not self.only_baseline

    def per_method(self) -> Dict[str, Dict[str, Any]]:
        """Aggregate deltas per method: cells, changed cells, worst fields."""
        summary: Dict[str, Dict[str, Any]] = {}
        for delta in self.deltas:
            entry = summary.setdefault(
                delta.method,
                {"changed_cells": 0, "regressed_cells": 0, "worst": {}},
            )
            entry["changed_cells"] += 1
            if delta.regressions:
                entry["regressed_cells"] += 1
            for field in delta.fields:
                worst = entry["worst"].get(field.field)
                if worst is None or abs(field.delta) > abs(worst):
                    entry["worst"][field.field] = field.delta
        return summary

    def to_markdown(self) -> str:
        """Render the regression report as Markdown."""
        lines: List[str] = []
        lines.append("## Regression diff")
        lines.append("")
        lines.append("* current: `{}`".format(self.current_path))
        lines.append("* baseline: `{}`".format(self.baseline_path))
        lines.append(
            "* aligned cells: {} (current-only: {}, baseline-only: {})".format(
                self.matched, len(self.only_current), len(self.only_baseline)
            )
        )
        regressions = self.regressions
        if self.clean:
            lines.append(
                "* verdict: **PASS** — 0 regressions in {} aligned cells".format(
                    self.matched
                )
            )
        else:
            lines.append(
                "* verdict: **FAIL** — {} regressed cell(s), {} baseline cell(s) "
                "missing from the current store".format(
                    len(regressions), len(self.only_baseline)
                )
            )
        lines.append("")

        if self.deltas:
            lines.append("### Per-method deltas")
            lines.append("")
            lines.append("| method | changed cells | regressed cells | worst deltas |")
            lines.append("|--------|---------------|-----------------|--------------|")
            for method, entry in sorted(self.per_method().items()):
                worst = ", ".join(
                    "{} {:+g}".format(field, value)
                    for field, value in sorted(entry["worst"].items())
                )
                lines.append(
                    "| `{}` | {} | {} | {} |".format(
                        method, entry["changed_cells"], entry["regressed_cells"], worst
                    )
                )
            lines.append("")
            lines.append("### Changed cells")
            lines.append("")
            lines.append("| cell | field | baseline | current | delta | regression |")
            lines.append("|------|-------|----------|---------|-------|------------|")
            for delta in self.deltas:
                for field in delta.fields:
                    lines.append(
                        "| `{}` | {} | {} | {} | {:+g} | {} |".format(
                            delta.cell,
                            field.field,
                            field.baseline,
                            field.current,
                            field.delta,
                            "**yes**" if field.regression else "no",
                        )
                    )
            lines.append("")
        else:
            lines.append("No aligned cell differs in any compared field.")
            lines.append("")

        for title, cells in (
            ("Cells only in the current store", self.only_current),
            ("Cells only in the baseline store", self.only_baseline),
        ):
            if cells:
                lines.append("### {}".format(title))
                lines.append("")
                for cell in cells:
                    lines.append("* `{}`".format(cell))
                lines.append("")
        return "\n".join(lines).rstrip() + "\n"


def _timing_regression(
    current: float, baseline: float, tolerance: Union[float, Tuple[float, float]]
) -> bool:
    if isinstance(tolerance, (int, float)):
        relative, absolute = 0.0, float(tolerance)  # absolute-only bound
    else:
        relative, absolute = tolerance
    if baseline is None or current is None:
        return False
    slowdown = current - baseline
    return slowdown > absolute and slowdown > relative * max(baseline, 0.0)


def _resolve_store(store: Union[str, Any]):
    """Accept a path (opened by extension) or an already-open store."""
    if isinstance(store, str):
        from repro.pipeline.backends import open_store

        if not os.path.exists(store):
            # open_store would silently create an empty store here, and an
            # empty baseline diffs clean — a mistyped path must not let a
            # regression gate pass vacuously.
            raise FileNotFoundError("no such run store: {!r}".format(store))
        return open_store(store), store
    label = getattr(store, "path", None) or "<in-memory {}>".format(
        getattr(store, "backend", "store")
    )
    return store, str(label)


def diff_stores(
    current: Union[str, Any],
    baseline: Union[str, Any],
    tolerances: Optional[Dict[str, Any]] = None,
) -> StoreDiff:
    """Align two run stores cell by cell and compute their deltas.

    Args:
        current: Store under test — a path (any backend, selected by
            extension) or an open store object.
        baseline: Baseline store to compare against, same forms.
        tolerances: Per-field overrides of :data:`DEFAULT_TOLERANCES`.
            Discrete fields take an absolute number; ``algo_s`` takes a
            ``(relative, absolute_seconds)`` pair — a cell flags only when
            slower than the baseline by more than both.  Setting a field's
            tolerance to ``None`` excludes it from comparison entirely.

    Returns:
        A :class:`StoreDiff`; ``diff.clean`` is the regression-gate verdict.
    """
    effective = dict(DEFAULT_TOLERANCES)
    if tolerances:
        unknown = sorted(set(tolerances) - set(DEFAULT_TOLERANCES))
        if unknown:
            raise ValueError(
                "unknown diff field(s) {}; compared fields: {}".format(
                    ", ".join(unknown), ", ".join(sorted(DEFAULT_TOLERANCES))
                )
            )
        effective.update(tolerances)

    current_store, current_label = _resolve_store(current)
    baseline_store, baseline_label = _resolve_store(baseline)
    current_cells = current_store.completed_cells()
    baseline_cells = baseline_store.completed_cells()

    matched_keys = [key for key in current_cells if key in baseline_cells]
    deltas: List[CellDelta] = []
    for key in matched_keys:
        record = current_cells[key]
        base = baseline_cells[key]
        fields: List[FieldDelta] = []
        for field, reader in _FIELD_READERS.items():
            tolerance = effective.get(field)
            if tolerance is None:
                continue
            value, base_value = reader(record), reader(base)
            if value is None and base_value is None:
                continue  # neither run recorded the field (older schema)
            if value == base_value:
                continue
            try:
                delta = float(value) - float(base_value)
            except (TypeError, ValueError):
                delta = float("nan")
            if value is None or base_value is None:
                # One run predates the field (schema 1–2 baseline vs a
                # schema-3 current, say): report it, but a schema upgrade
                # is not a regression.
                regression = False
            elif field in TIMING_FIELDS:
                regression = _timing_regression(value, base_value, tolerance)
                if not regression:
                    # Wall times differ between any two honest runs; only a
                    # tolerance-breaking slowdown is a *delta* worth
                    # reporting (twin runs must diff clean).
                    continue
            else:
                regression = abs(delta) > float(tolerance)
            fields.append(
                FieldDelta(
                    field=field,
                    current=value,
                    baseline=base_value,
                    delta=delta,
                    regression=regression,
                )
            )
        if fields:
            deltas.append(
                CellDelta(cell=key, method=str(record.get("method")), fields=fields)
            )

    return StoreDiff(
        current_path=current_label,
        baseline_path=baseline_label,
        matched=len(matched_keys),
        only_current=[key for key in current_cells if key not in baseline_cells],
        only_baseline=[key for key in baseline_cells if key not in current_cells],
        deltas=deltas,
        tolerances=effective,
    )


def parse_tolerance_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    """Parse CLI ``field=value`` tolerance overrides.

    ``algo_s`` accepts ``rel,abs`` (e.g. ``algo_s=0.5,1.0``); every other
    field a single number; ``field=none`` disables the field.
    """
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(
                "tolerance override {!r} is not of the form field=value".format(pair)
            )
        field, _, raw = pair.partition("=")
        field = field.strip()
        raw = raw.strip()
        if raw.lower() in ("none", "off"):
            overrides[field] = None
        elif "," in raw:
            relative, _, absolute = raw.partition(",")
            overrides[field] = (float(relative), float(absolute))
        else:
            overrides[field] = float(raw)
    return overrides
