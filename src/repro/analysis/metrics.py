"""Metric extraction from carvings and decompositions.

Everything Tables 1 and 2 report — number of colors, cluster diameter (in the
appropriate strong/weak sense), round complexity — plus the quantities the
guarantees are stated over (dead fraction, Steiner congestion, cluster
counts).  All values are *measured* on the produced objects; nothing is read
off the theory.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from repro.clustering.carving import BallCarving
from repro.clustering.decomposition import NetworkDecomposition
from repro.clustering.validation import max_cluster_diameter


@dataclasses.dataclass(frozen=True)
class CarvingMetrics:
    """Measured parameters of one ball carving."""

    algorithm: str
    n: int
    eps: float
    kind: str
    clusters: int
    max_diameter: int
    dead_fraction: float
    congestion: int
    rounds: int

    def as_row(self) -> Dict[str, Any]:
        """Row dictionary for the table renderer."""
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "eps": round(self.eps, 4),
            "kind": self.kind,
            "clusters": self.clusters,
            "diameter": self.max_diameter,
            "dead%": round(100.0 * self.dead_fraction, 2),
            "congestion": self.congestion,
            "rounds": self.rounds,
        }


@dataclasses.dataclass(frozen=True)
class DecompositionMetrics:
    """Measured parameters of one network decomposition."""

    algorithm: str
    n: int
    kind: str
    colors: int
    clusters: int
    max_diameter: int
    rounds: int

    def as_row(self) -> Dict[str, Any]:
        """Row dictionary for the table renderer."""
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "kind": self.kind,
            "colors": self.colors,
            "clusters": self.clusters,
            "diameter": self.max_diameter,
            "rounds": self.rounds,
        }


def evaluate_carving(carving: BallCarving, algorithm: str) -> CarvingMetrics:
    """Measure the Table 2 quantities of a ball carving."""
    diameter = max_cluster_diameter(carving.graph, carving.clusters, kind=carving.kind)
    return CarvingMetrics(
        algorithm=algorithm,
        n=carving.graph.number_of_nodes(),
        eps=carving.eps,
        kind=carving.kind,
        clusters=len(carving.clusters),
        max_diameter=diameter,
        dead_fraction=carving.dead_fraction,
        congestion=carving.congestion(),
        rounds=carving.rounds,
    )


def evaluate_decomposition(
    decomposition: NetworkDecomposition, algorithm: str
) -> DecompositionMetrics:
    """Measure the Table 1 quantities of a network decomposition."""
    diameter = max_cluster_diameter(
        decomposition.graph, decomposition.clusters, kind=decomposition.kind
    )
    return DecompositionMetrics(
        algorithm=algorithm,
        n=decomposition.graph.number_of_nodes(),
        kind=decomposition.kind,
        colors=decomposition.num_colors,
        clusters=len(decomposition.clusters),
        max_diameter=diameter,
        rounds=decomposition.rounds,
    )
