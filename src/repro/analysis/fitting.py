"""Polylogarithmic growth checks for the scaling benchmark.

The paper's headline claim is qualitative: the deterministic strong-diameter
decomposition has *polylogarithmic* colors, diameter and round complexity.
The scaling benchmark measures those quantities over a range of ``n`` and
uses this module to check that the measurements are consistent with a
``c * (log n)^k`` curve (and to estimate ``k``), as opposed to a polynomial
``n^alpha`` growth.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class PolylogFit:
    """Least-squares fit of measurements to ``c * (log2 n)^k``.

    Attributes:
        coefficient: The fitted constant ``c``.
        exponent: The fitted exponent ``k``.
        residual: Root-mean-square error of the fit in log space.
        polynomial_exponent: For comparison, the exponent ``alpha`` of the
            best ``c' * n^alpha`` fit; a polylog-growing quantity has a small
            ``alpha`` that shrinks as the measured range widens.
    """

    coefficient: float
    exponent: float
    residual: float
    polynomial_exponent: float

    def predict(self, n: float) -> float:
        """Predicted value at ``n`` according to the polylog fit."""
        return self.coefficient * (math.log2(max(2.0, n)) ** self.exponent)


def fit_polylog(sizes: Sequence[float], values: Sequence[float]) -> PolylogFit:
    """Fit ``values ~ c * (log2 sizes)^k`` by least squares in log space.

    Args:
        sizes: The graph sizes ``n`` (at least two distinct values).
        values: The measured quantities (positive).

    Returns:
        A :class:`PolylogFit`; raises ``ValueError`` on degenerate input.
    """
    if len(sizes) != len(values):
        raise ValueError("sizes and values must have the same length")
    if len(sizes) < 2:
        raise ValueError("need at least two measurements to fit a curve")
    if any(value <= 0 for value in values) or any(size < 2 for size in sizes):
        raise ValueError("sizes must be >= 2 and values must be positive")

    log_log_n = np.array([math.log(math.log2(size)) for size in sizes])
    log_n = np.array([math.log(size) for size in sizes])
    log_values = np.array([math.log(value) for value in values])

    # Polylog fit: log(value) = log(c) + k * log(log2 n).
    design = np.vstack([np.ones_like(log_log_n), log_log_n]).T
    (intercept, exponent), *_ = np.linalg.lstsq(design, log_values, rcond=None)
    predictions = design @ np.array([intercept, exponent])
    residual = float(np.sqrt(np.mean((predictions - log_values) ** 2)))

    # Polynomial fit: log(value) = log(c') + alpha * log(n).
    design_poly = np.vstack([np.ones_like(log_n), log_n]).T
    (_, alpha), *_ = np.linalg.lstsq(design_poly, log_values, rcond=None)

    return PolylogFit(
        coefficient=float(math.exp(intercept)),
        exponent=float(exponent),
        residual=residual,
        polynomial_exponent=float(alpha),
    )


def is_polylog_bounded(
    sizes: Sequence[float],
    values: Sequence[float],
    max_exponent: float = 12.0,
) -> bool:
    """A coarse sanity check that measurements grow at most polylogarithmically.

    Accepts when the fitted polylog exponent is below ``max_exponent`` (the
    paper's worst bound is ``log^11 n``) *and* every measurement is below
    ``c * (log2 n)^max_exponent`` for the fitted constant — i.e. the data are
    consistent with some polylog bound of reasonable degree.
    """
    fit = fit_polylog(sizes, values)
    if fit.exponent > max_exponent:
        return False
    for size, value in zip(sizes, values):
        bound = max(1.0, fit.coefficient) * (math.log2(max(2.0, size)) ** max_exponent)
        if value > bound:
            return False
    return True
