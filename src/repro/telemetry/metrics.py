"""Metrics registry: named counters and histograms for the whole pipeline.

Every layer increments metrics through two module-level functions —
:func:`inc` for counters and :func:`observe` for histograms — which are
single-boolean no-ops when metrics are off.  The metric namespace is the
registry :data:`METRIC_NAMES` (pinned against docs/telemetry.md by the
docs-consistency tests).

**Cross-worker aggregation** rides the existing result-return path: a pool
worker takes a :func:`marker` before executing a task group, computes the
:func:`delta_since` it afterwards, and appends the delta to the record list
it already returns (a ``{"kind": "telemetry-delta"}`` sentinel).  The
parent filters the sentinel out before storing records and :func:`merge`\\ s
the delta into its own registry.  Marker deltas also make ``fork`` start
methods safe: whatever counter state a worker inherited from the parent at
fork time cancels out of the delta.

At the end of a run the registry :func:`snapshot` is written into the run
store as a per-run ``telemetry`` summary record (store schema 6) and can be
rendered to Prometheus text exposition format with
:func:`render_prometheus` (``python -m repro telemetry export``).

Labels are encoded into the metric key as ``name{key="value"}`` with keys
sorted, so snapshots merge and compare structurally.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

#: Metric name registry: everything the instrumentation emits, with docs
#: descriptions.  Labelled metrics list their label keys in brackets.
METRIC_NAMES: Dict[str, str] = {
    "cells_ok": "counter: cells that completed and stored an ok record",
    "cells_failed": "counter: cells quarantined as status=failed records",
    "cells_retried": "counter: cells that succeeded after >=1 failed attempt",
    "columns_built": "counter: grid columns whose topology was built",
    "graphs_shared": "counter: cells served from a shared column topology",
    "arena_published": "counter: columns published into arena shared memory",
    "arena_attach_hits": "counter: worker attaches served from the local cache",
    "arena_attach_misses": "counter: worker attaches that mapped the segment",
    "arena_evictions": "counter: arena segments evicted or released",
    "arena_spills": "counter: columns spilled to disk segments",
    "arena_spilled_bytes": "counter: bytes written to disk segment files",
    "supervisor_retries": "counter: failed attempts re-enqueued with backoff",
    "supervisor_timeouts": "counter: attempts cancelled by the cell timeout",
    "supervisor_respawns": "counter: worker pools terminated and respawned",
    "faults_injected[kind]": "counter: faults injected, by fault kind",
    "kernel_selected[kernel]": "counter: task groups executed, by kernel tier",
    "kernel_degraded": "counter: groups that fell down the kernel chain",
    "ledger_rounds[primitive]": "counter: CONGEST rounds charged, by primitive",
    "congest_rounds": "counter: rounds executed by the message simulator",
    "congest_messages": "counter: messages delivered by the simulator",
    "memmap_ingests": "counter: edge lists ingested into on-disk CSR files",
    "phase_seconds[phase]": "histogram: wall-time per pipeline phase",
}

#: Shared histogram bucket upper bounds (seconds), exponential; +Inf last.
HISTOGRAM_BUCKETS: Tuple[float, ...] = (
    0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0, 64.0, 256.0,
)

_ENABLED = False


def metrics_enabled() -> bool:
    """Whether the registry is currently recording in this process."""
    return _ENABLED


def configure_metrics(enabled: bool = True) -> None:
    """Turn the module-level registry on or off (does not clear values)."""
    global _ENABLED
    _ENABLED = enabled


def reset_metrics() -> None:
    """Clear all recorded values (used between runs and in tests)."""
    _REGISTRY.counters.clear()
    _REGISTRY.histograms.clear()


def _key(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(
        '{}="{}"'.format(k, labels[k]) for k in sorted(labels)
    )
    return "{}{{{}}}".format(name, inner)


class MetricsRegistry:
    """Counters plus fixed-bucket histograms, merge/diff-able as dicts."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, Any]] = {}

    def inc(self, key: str, value: float) -> None:
        self.counters[key] = self.counters.get(key, 0) + value

    def observe(self, key: str, value: float) -> None:
        hist = self.histograms.get(key)
        if hist is None:
            hist = {
                "counts": [0] * (len(HISTOGRAM_BUCKETS) + 1),
                "sum": 0.0,
                "count": 0,
            }
            self.histograms[key] = hist
        idx = len(HISTOGRAM_BUCKETS)
        for i, bound in enumerate(HISTOGRAM_BUCKETS):
            if value <= bound:
                idx = i
                break
        hist["counts"][idx] += 1
        hist["sum"] += value
        hist["count"] += 1

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe deep copy of the current state."""
        return {
            "counters": dict(self.counters),
            "histograms": {
                key: {
                    "counts": list(h["counts"]),
                    "sum": h["sum"],
                    "count": h["count"],
                }
                for key, h in self.histograms.items()
            },
        }

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Add a snapshot (e.g. a worker delta) into this registry."""
        for key, value in snap.get("counters", {}).items():
            self.inc(key, value)
        for key, h in snap.get("histograms", {}).items():
            mine = self.histograms.get(key)
            if mine is None:
                self.histograms[key] = {
                    "counts": list(h["counts"]),
                    "sum": h["sum"],
                    "count": h["count"],
                }
                continue
            for i, c in enumerate(h["counts"]):
                mine["counts"][i] += c
            mine["sum"] += h["sum"]
            mine["count"] += h["count"]


_REGISTRY = MetricsRegistry()


def inc(name: str, value: float = 1, **labels: Any) -> None:
    """Increment a counter.  Single-boolean no-op when metrics are off."""
    if not _ENABLED:
        return
    _REGISTRY.inc(_key(name, labels), value)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record one histogram observation (no-op when metrics are off)."""
    if not _ENABLED:
        return
    _REGISTRY.observe(_key(name, labels), value)


def snapshot() -> Dict[str, Any]:
    """Deep-copy the module registry (for summaries and worker markers)."""
    return _REGISTRY.snapshot()


def merge(snap: Mapping[str, Any]) -> None:
    """Merge a snapshot/delta into the module registry."""
    _REGISTRY.merge(snap)


def marker() -> Dict[str, Any]:
    """A snapshot taken *before* work, to diff against afterwards."""
    return _REGISTRY.snapshot()


def delta_since(mark: Mapping[str, Any]) -> Dict[str, Any]:
    """The registry's change since ``mark`` (drops zero counters)."""
    now = _REGISTRY.snapshot()
    counters: Dict[str, float] = {}
    before_counters = mark.get("counters", {})
    for key, value in now["counters"].items():
        diff = value - before_counters.get(key, 0)
        if diff:
            counters[key] = diff
    histograms: Dict[str, Any] = {}
    before_hists = mark.get("histograms", {})
    for key, h in now["histograms"].items():
        prev = before_hists.get(key)
        if prev is None:
            if h["count"]:
                histograms[key] = h
            continue
        counts = [c - p for c, p in zip(h["counts"], prev["counts"])]
        count = h["count"] - prev["count"]
        if count:
            histograms[key] = {
                "counts": counts,
                "sum": h["sum"] - prev["sum"],
                "count": count,
            }
    return {"counters": counters, "histograms": histograms}


def _parse_key(key: str) -> Tuple[str, str]:
    """Split ``name{labels}`` into (name, prometheus label block)."""
    if "{" in key:
        name, _, rest = key.partition("{")
        return name, "{" + rest
    return key, ""


def render_prometheus(snap: Mapping[str, Any], prefix: str = "repro_") -> str:
    """Render a snapshot in Prometheus text exposition format."""
    lines = []
    seen_help = set()
    for key in sorted(snap.get("counters", {})):
        name, labels = _parse_key(key)
        metric = prefix + name + "_total"
        if name not in seen_help:
            seen_help.add(name)
            lines.append("# TYPE {} counter".format(metric))
        value = snap["counters"][key]
        value_text = repr(value) if isinstance(value, float) else str(value)
        lines.append("{}{} {}".format(metric, labels, value_text))
    for key in sorted(snap.get("histograms", {})):
        name, labels = _parse_key(key)
        metric = prefix + name
        if name not in seen_help:
            seen_help.add(name)
            lines.append("# TYPE {} histogram".format(metric))
        hist = snap["histograms"][key]
        inner = labels[1:-1] if labels else ""
        cumulative = 0
        for bound, count in zip(HISTOGRAM_BUCKETS, hist["counts"]):
            cumulative += count
            le = 'le="{}"'.format(bound)
            block = "{" + (inner + "," + le if inner else le) + "}"
            lines.append("{}_bucket{} {}".format(metric, block, cumulative))
        cumulative += hist["counts"][-1]
        le = 'le="+Inf"'
        block = "{" + (inner + "," + le if inner else le) + "}"
        lines.append("{}_bucket{} {}".format(metric, block, cumulative))
        lines.append("{}_sum{} {}".format(metric, labels, repr(hist["sum"])))
        lines.append("{}_count{} {}".format(metric, labels, hist["count"]))
    return "\n".join(lines) + ("\n" if lines else "")


DELTA_KIND = "telemetry-delta"


def delta_record(delta: Mapping[str, Any]) -> Dict[str, Any]:
    """Wrap a worker delta as the sentinel appended to returned records."""
    return {"kind": DELTA_KIND, "metrics": dict(delta)}


def is_delta_record(record: Mapping[str, Any]) -> bool:
    return record.get("kind") == DELTA_KIND


def summary_record(
    snap: Mapping[str, Any], run_info: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Build the per-run ``telemetry`` summary stored at schema 6."""
    record: Dict[str, Any] = {"kind": "telemetry", "metrics": dict(snap)}
    if run_info:
        record["run"] = dict(run_info)
    return record
