"""Live progress heartbeat for suite runs (``--progress``).

A small, rate-limited stderr reporter owned by the *parent* process only:
pool workers never print (pool-safe by construction — worker completions
reach the parent through the result-return path the runner already has,
and the parent ticks the reporter as it stores records).

The line shows cells done/failed/retried out of the executable total, the
column currently being processed, the completion rate and an ETA::

    [suite] 18/24 cells  ok=17 failed=1 retried=2  col=torus/n=64/mpx/0.10  3.1 cells/s  eta=2s

Updates are throttled to one line per ``min_interval`` seconds (default
0.5) so tight serial loops do not flood the terminal; the final state is
always flushed by :meth:`ProgressReporter.finish`.
"""

from __future__ import annotations

import sys
import time
from typing import Optional


class ProgressReporter:
    """Rate-limited stderr heartbeat; all methods are parent-process only."""

    def __init__(
        self,
        total: int,
        stream=None,
        min_interval: float = 0.5,
        label: str = "suite",
    ) -> None:
        self.total = int(total)
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.column: Optional[str] = None
        self.label = label
        self.min_interval = float(min_interval)
        self._stream = stream if stream is not None else sys.stderr
        self._t0 = time.perf_counter()
        self._last_emit = 0.0
        self._lines = 0

    def set_column(self, column: Optional[str]) -> None:
        self.column = column

    def cell_done(self, ok: bool = True, retries: int = 0) -> None:
        self.done += 1
        if not ok:
            self.failed += 1
        if retries:
            self.retried += retries
        self._maybe_emit()

    def cell_retried(self) -> None:
        self.retried += 1
        self._maybe_emit()

    def _format(self) -> str:
        elapsed = max(time.perf_counter() - self._t0, 1e-9)
        rate = self.done / elapsed
        parts = [
            "[{}] {}/{} cells".format(self.label, self.done, self.total),
            "ok={} failed={} retried={}".format(
                self.done - self.failed, self.failed, self.retried
            ),
        ]
        if self.column:
            parts.append("col={}".format(self.column))
        parts.append("{:.1f} cells/s".format(rate))
        if rate > 0 and self.done < self.total:
            eta = (self.total - self.done) / rate
            parts.append("eta={:.0f}s".format(eta))
        return "  ".join(parts)

    def _emit(self) -> None:
        try:
            self._stream.write(self._format() + "\n")
            self._stream.flush()
        except (OSError, ValueError):  # closed stream: progress never fails a run
            pass
        self._lines += 1
        self._last_emit = time.perf_counter()

    def _maybe_emit(self) -> None:
        if time.perf_counter() - self._last_emit >= self.min_interval:
            self._emit()

    def finish(self) -> None:
        """Always emit the final state, bypassing the rate limit."""
        self.column = None
        self._emit()
