"""Span tracing: a process-safe JSONL trace of what the pipeline did when.

A **span** is one timed operation — a suite, a column build, a cell group's
clustering, an arena publish, a memmap ingest pass — written as one JSON
line when it *closes*.  The span taxonomy is the registry
:data:`SPAN_NAMES`; docs/telemetry.md carries the same table and a docs
test pins the two together.

Design constraints (see docs/telemetry.md):

* **~zero cost when off** — :func:`span` checks one module-level boolean
  and returns a shared no-op object; no string formatting, no allocation
  beyond the ``attrs`` dict the caller already built, happens on the
  disabled path;
* **process-safe** — every process (parent and pool workers alike) opens
  its *own* ``O_APPEND`` file descriptor on the shared trace file and
  emits each span as a single ``os.write`` of one complete line, so lines
  from concurrent writers never interleave (POSIX appends of this size are
  atomic) and a killed worker can tear at most the one line it was
  writing — which the reader skips, mirroring the run store's
  truncated-tail repair idiom;
* **parent/child ids propagate into workers** — the runner ships the
  ambient parent span id inside the task payload (next to the seed
  plumbing); spans opened in a worker attach below it, so the
  reconstructed tree covers the whole suite whatever the pool size;
* **complete lines only** — spans are written on close (including close
  via ``CellTimeout`` / ``KeyboardInterrupt`` unwinding, with
  ``status="error"``); a process that dies mid-span simply contributes no
  line for it, never a torn one.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, Optional

#: The span taxonomy: every name the instrumentation emits, with the docs
#: description.  tests/test_docs_consistency.py pins docs/telemetry.md to
#: this table, and tests/test_telemetry.py asserts traced runs emit only
#: registered names.
SPAN_NAMES: Dict[str, str] = {
    "suite": "one run_suite call (root span of a suite trace)",
    "suite.column": "one grid column: topology build + freeze (+ publish)",
    "cell.group": "one task group: clustering plus its member cells",
    "cell.graph_build": "scenario generator / memmap materialisation",
    "cell.freeze": "CSR index freeze of a column topology",
    "cell.decompose": "the group's clustering (decomposition or carving)",
    "cell.validate": "clustering validators (plain or under-faults)",
    "cell.task": "one member cell's task solve (mis / coloring / decompose)",
    "arena.publish": "column published into a shared-memory segment",
    "arena.spill": "column spilled to a disk segment file (over budget)",
    "arena.attach": "worker attach of a published column segment",
    "arena.evict": "segment released / evicted from the live window",
    "supervisor.attempt": "one supervised execution attempt of a task group",
    "supervisor.retry": "a failed attempt re-enqueued with backoff",
    "supervisor.quarantine": "a poison group written as status=failed records",
    "supervisor.respawn": "worker pool terminated and respawned",
    "memmap.ingest": "edge list streamed into an on-disk CSR file",
    "memmap.ingest.pass": "one of the two streaming ingest passes",
    "congest.run": "one message-level CONGEST simulation",
    "congest.rounds": "a batch of simulated CONGEST rounds",
}

#: Simulator rounds per ``congest.rounds`` batch span.
ROUND_BATCH = 256


class _TraceState:
    __slots__ = ("enabled", "path", "fd", "fd_pid", "counter", "local", "default_parent")

    def __init__(self) -> None:
        self.enabled = False
        self.path: Optional[str] = None
        self.fd: Optional[int] = None
        self.fd_pid: Optional[int] = None
        self.counter = itertools.count(1)
        # The ambient span stack is *thread-local*: helper threads (the
        # runner's column builder) push and pop their own spans without
        # ever corrupting the main thread's ambient parent.
        self.local = threading.local()
        self.default_parent: Optional[str] = None


_STATE = _TraceState()


def tracing_enabled() -> bool:
    """Whether span tracing is currently on in this process."""
    return _STATE.enabled


def _stack() -> list:
    """This thread's ambient span stack (created on first use)."""
    stack = getattr(_STATE.local, "stack", None)
    if stack is None:
        stack = _STATE.local.stack = []
    return stack


def current_span_id() -> Optional[str]:
    """The ambient span id new spans would attach to (or ``None``)."""
    stack = _stack()
    if stack:
        return stack[-1]
    thread_parent = getattr(_STATE.local, "parent", None)
    if thread_parent is not None:
        return thread_parent
    return _STATE.default_parent


def set_thread_parent(span_id: Optional[str]) -> None:
    """Set the ambient parent span id for the *current thread* only.

    Helper threads call this once at startup (the runner's column builder
    passes the suite span's id) so their spans attach below the right
    parent instead of floating as roots — the process-wide
    ``default_parent`` set by :func:`configure_tracing` stays untouched.
    """
    _STATE.local.parent = span_id


def configure_tracing(path: str, parent: Optional[str] = None) -> None:
    """Enable tracing into ``path`` (appending; one fd per process).

    ``parent`` sets the ambient parent span id — the runner passes the
    suite span's id into pool workers so their spans attach below it.
    """
    if _STATE.enabled and _STATE.path == path:
        if parent is not None:
            _STATE.default_parent = parent
        return
    disable_tracing()
    _STATE.path = path
    _STATE.enabled = True
    _STATE.default_parent = parent


def disable_tracing() -> None:
    """Turn tracing off and close this process's writer (idempotent)."""
    if _STATE.fd is not None and _STATE.fd_pid == os.getpid():
        try:
            os.close(_STATE.fd)
        except OSError:  # pragma: no cover - best effort
            pass
    _STATE.fd = None
    _STATE.fd_pid = None
    _STATE.enabled = False
    _STATE.path = None
    _STATE.local = threading.local()
    _STATE.default_parent = None
    _STATE.counter = itertools.count(1)


def _writer_fd() -> int:
    """This process's ``O_APPEND`` descriptor (re-opened after a fork)."""
    pid = os.getpid()
    if _STATE.fd is None or _STATE.fd_pid != pid:
        # After a fork the inherited fd would *work* (O_APPEND offsets are
        # kernel-side), but a private fd keeps close() per-process safe.
        _STATE.fd = os.open(
            _STATE.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        _STATE.fd_pid = pid
    return _STATE.fd


def _emit(payload: Dict[str, Any]) -> None:
    line = json.dumps(payload, separators=(",", ":")) + "\n"
    try:
        os.write(_writer_fd(), line.encode("utf-8"))
    except OSError:  # pragma: no cover - trace must never fail the run
        pass


def _next_id() -> str:
    # itertools.count.__next__ is atomic, so concurrent threads (main +
    # builder) never mint duplicate ids.
    return "{:x}.{:x}".format(os.getpid(), next(_STATE.counter))


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, _key: str, _value: Any) -> None:
        pass

    @property
    def id(self) -> Optional[str]:
        return None


_NOOP = _NoopSpan()


class Span:
    """A live span; use via ``with span("name", key=value):``."""

    __slots__ = ("name", "attrs", "span_id", "parent", "_t0", "_ts")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = _next_id()
        self.parent = current_span_id()
        self._ts = time.time()
        self._t0 = time.perf_counter()

    @property
    def id(self) -> str:
        return self.span_id

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute while the span is open."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        _stack().append(self.span_id)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        payload: Dict[str, Any] = {
            "kind": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent,
            "pid": os.getpid(),
            "ts": round(self._ts, 6),
            "dur_s": round(duration, 9),
            "status": "ok" if exc_type is None else "error",
        }
        if exc_type is not None:
            payload["error"] = exc_type.__name__
        if self.attrs:
            payload["attrs"] = self.attrs
        if _STATE.enabled:
            _emit(payload)
        return False


def span(name: str, **attrs: Any):
    """Open a span (context manager).  ~Free when tracing is off."""
    if not _STATE.enabled:
        return _NOOP
    return Span(name, attrs)


def emit_completed(name: str, started: float, **attrs: Any) -> None:
    """Emit a span retroactively from a ``perf_counter`` start time.

    For hot loops (the CONGEST round loop) that batch many iterations into
    one span: no context-manager push/pop per batch, nothing to unwind on
    an exception — the batch simply is not emitted, and the ambient stack
    stays consistent.  The span parents to the current ambient span.
    """
    if not _STATE.enabled:
        return
    duration = time.perf_counter() - started
    _emit(
        {
            "kind": "span",
            "name": name,
            "id": _next_id(),
            "parent": current_span_id(),
            "pid": os.getpid(),
            "ts": round(time.time() - duration, 6),
            "dur_s": round(duration, 9),
            "status": "ok",
            "attrs": attrs,
        }
    )


def event(name: str, **attrs: Any) -> None:
    """Emit a zero-duration span (a point event, e.g. a supervisor retry)."""
    if not _STATE.enabled:
        return
    _emit(
        {
            "kind": "span",
            "name": name,
            "id": _next_id(),
            "parent": current_span_id(),
            "pid": os.getpid(),
            "ts": round(time.time(), 6),
            "dur_s": 0.0,
            "status": "ok",
            "attrs": attrs,
        }
    )
