"""Unified telemetry: span tracing, metrics registry, live progress.

Zero third-party dependencies; every entry point is a cheap no-op unless
explicitly enabled (``--trace`` / ``--metrics`` / ``--progress`` on the
CLI, or the matching ``run_suite`` keyword arguments).  See
docs/telemetry.md for the span taxonomy, the metric name registry, and
the trace-analysis CLI walkthrough.
"""

from .metrics import (
    DELTA_KIND,
    HISTOGRAM_BUCKETS,
    METRIC_NAMES,
    MetricsRegistry,
    configure_metrics,
    delta_record,
    delta_since,
    inc,
    is_delta_record,
    marker,
    merge,
    metrics_enabled,
    observe,
    render_prometheus,
    reset_metrics,
    snapshot,
    summary_record,
)
from .progress import ProgressReporter
from .spans import (
    ROUND_BATCH,
    SPAN_NAMES,
    configure_tracing,
    current_span_id,
    disable_tracing,
    emit_completed,
    event,
    set_thread_parent,
    span,
    tracing_enabled,
)

__all__ = [
    "DELTA_KIND",
    "HISTOGRAM_BUCKETS",
    "METRIC_NAMES",
    "MetricsRegistry",
    "ProgressReporter",
    "ROUND_BATCH",
    "SPAN_NAMES",
    "configure_metrics",
    "configure_tracing",
    "current_span_id",
    "delta_record",
    "delta_since",
    "disable_tracing",
    "emit_completed",
    "event",
    "inc",
    "is_delta_record",
    "marker",
    "merge",
    "metrics_enabled",
    "observe",
    "render_prometheus",
    "reset_metrics",
    "set_thread_parent",
    "snapshot",
    "span",
    "summary_record",
    "tracing_enabled",
]
