"""The single source of truth for method strings and pipeline tasks.

Every algorithm of the reproduction is reachable through a **method** string
and every workload that runs *on top of* a decomposition through a **task**
string.  Both vocabularies used to be duplicated as hardcoded tuples across
the API, the CLI, the suite runner and the report generator; this module
collapses them into two small registries that every layer programs against:

* :class:`MethodRegistry` (module instance :data:`METHODS`) — one
  :class:`MethodSpec` per algorithm: its diameter guarantee (``kind``),
  determinism (and therefore its seed semantics: deterministic methods
  ignore ``seed``, randomized ones feed it to a private random stream), the
  paper row labels, and the carving / decomposition callables the API
  dispatches to.  :data:`CARVING_METHODS` / :data:`DECOMPOSITION_METHODS`
  are derived views of this registry.
* :class:`TaskRegistry` (module instance :data:`TASKS`) — one
  :class:`TaskSpec` per pipeline task: the §1.1 applications ``"mis"`` and
  ``"coloring"`` (solver + verifier + measured metrics), plus the default
  ``"decompose"`` task, which records the decomposition itself and runs no
  application on top.

A third registry rides along as a re-export: :data:`KERNELS`
(:class:`repro.kernels.KernelRegistry`), the hot-loop implementation tiers
behind the ``--kernel`` switch.  It lives in :mod:`repro.kernels` (the
graph layer must reach it without importing the algorithm registries), but
callers that already program against this module can validate kernel
strings here too.  The fault-kind vocabulary behind the ``--faults`` /
``--list-fault-kinds`` switches (:data:`FAULT_KINDS`, :class:`FaultPlan`;
home: :mod:`repro.congest.faults`) rides along the same way.

Tasks consume a :class:`~repro.clustering.decomposition.NetworkDecomposition`
and charge their CONGEST cost through the ``C * D`` color template
(:mod:`repro.applications.template`), which is why one decomposition can
serve many tasks — the suite runner exploits exactly that
(one decomposition per grid cell group, N task records).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.clustering.carving import BallCarving
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger
from repro.congest.faults import FAULT_KINDS, FAULT_KIND_NAMES, FaultKindSpec, FaultPlan
from repro.kernels import KERNEL_CHOICES, KERNELS, KernelRegistry, KernelSpec

# Callable shapes the registry stores.  ``rng`` is the method's private
# random stream (already seeded by the API layer); deterministic methods
# simply ignore it.
CarveFn = Callable[[nx.Graph, float, Optional[Iterable[Any]], Optional[RoundLedger], Any], BallCarving]
DecomposeFn = Callable[[nx.Graph, Optional[RoundLedger], Any], NetworkDecomposition]


@dataclasses.dataclass(frozen=True)
class MethodSpec:
    """One algorithm behind a ``method`` string.

    Attributes:
        name: The method string (``"strong-log3"``, ``"mpx"``, ...).
        kind: Diameter guarantee of the produced clustering: ``"strong"``
            or ``"weak"``.
        deterministic: Whether the algorithm is deterministic.  This *is*
            the seed semantics: deterministic methods ignore ``seed``;
            randomized ones use it to seed their private random stream
            (``seed=None`` behaves like ``seed=0``).
        centralized: Whether the construction is centralized (no CONGEST
            round guarantee) rather than distributed.
        description: One line on the algorithm (used by ``--list-methods``
            style output and the docs tables).
        carve: Callable ``(graph, eps, nodes, ledger, rng) -> BallCarving``.
        decompose: Callable ``(graph, ledger, rng) -> NetworkDecomposition``.
            Decompositions take no ``eps``: they fix their per-color budgets
            internally.
        carving_label: The paper's Table 2 row label.
        decomposition_label: The paper's Table 1 row label.
        table_rank: Position in the paper's table row order (the benchmark
            harness sorts by it; registration order is the API order).
    """

    name: str
    kind: str
    deterministic: bool
    centralized: bool
    description: str
    carve: CarveFn
    decompose: DecomposeFn
    carving_label: str
    decomposition_label: str
    table_rank: int

    @property
    def uses_seed(self) -> bool:
        """Whether ``seed`` changes this method's output (randomized only)."""
        return not self.deterministic


class MethodRegistry:
    """Registry of :class:`MethodSpec` by method string (insertion-ordered)."""

    def __init__(self) -> None:
        self._specs: Dict[str, MethodSpec] = {}

    def register(self, spec: MethodSpec, overwrite: bool = False) -> MethodSpec:
        """Add a method (``overwrite=False`` rejects name clashes)."""
        if spec.kind not in ("strong", "weak"):
            raise ValueError("method kind must be 'strong' or 'weak', got {!r}".format(spec.kind))
        if spec.name in self._specs and not overwrite:
            raise ValueError("method {!r} is already registered".format(spec.name))
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> MethodSpec:
        """Look up a method, raising ``ValueError`` with the catalogue."""
        try:
            return self._specs[name]
        except KeyError:
            raise ValueError(
                "unknown method {!r}; choose from {}".format(name, self.names())
            ) from None

    def names(self) -> Tuple[str, ...]:
        """All method strings, in registration (= API documentation) order."""
        return tuple(self._specs)

    def table_order(self) -> Tuple[str, ...]:
        """Method strings in the paper's table row order."""
        return tuple(
            spec.name for spec in sorted(self._specs.values(), key=lambda s: s.table_rank)
        )

    def randomized(self) -> Tuple[str, ...]:
        """The methods whose output depends on ``seed``."""
        return tuple(spec.name for spec in self._specs.values() if not spec.deterministic)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


# Task solvers receive the decomposition and a ledger to charge the template
# cost into, and return the task's solution object (a node set for MIS, a
# node -> palette color mapping for coloring).
TaskSolveFn = Callable[[NetworkDecomposition, RoundLedger], Any]
TaskVerifyFn = Callable[[nx.Graph, Any], bool]
TaskMeasureFn = Callable[[nx.Graph, Any], Dict[str, Any]]


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One pipeline task: what runs on top of a computed decomposition.

    Attributes:
        name: The task string (``"decompose"``, ``"mis"``, ``"coloring"``).
        description: One line on the task (``--list-tasks`` output).
        solve: Callable ``(decomposition, ledger) -> solution``, charging
            the ``C * D`` template cost into ``ledger``; ``None`` for the
            default ``"decompose"`` task, whose deliverable is the
            decomposition itself.
        verify: Callable ``(graph, solution) -> bool`` certifying the
            solution on the host graph (``None`` when ``solve`` is).
        measure: Callable ``(graph, solution) -> dict`` of task metrics
            (``mis_size`` / ``colors_used``; ``verified`` is added by the
            caller from :attr:`verify`).
    """

    name: str
    description: str
    solve: Optional[TaskSolveFn] = None
    verify: Optional[TaskVerifyFn] = None
    measure: Optional[TaskMeasureFn] = None


class TaskRegistry:
    """Registry of :class:`TaskSpec` by task string (insertion-ordered)."""

    def __init__(self) -> None:
        self._specs: Dict[str, TaskSpec] = {}

    def register(self, spec: TaskSpec, overwrite: bool = False) -> TaskSpec:
        """Add a task (``overwrite=False`` rejects name clashes)."""
        if spec.name in self._specs and not overwrite:
            raise ValueError("task {!r} is already registered".format(spec.name))
        if spec.solve is not None and (spec.verify is None or spec.measure is None):
            raise ValueError(
                "task {!r} has a solver but no verifier/measurer; solvable "
                "tasks must be checkable".format(spec.name)
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> TaskSpec:
        """Look up a task, raising ``ValueError`` with the catalogue."""
        try:
            return self._specs[name]
        except KeyError:
            raise ValueError(
                "unknown task {!r}; choose from {}".format(name, self.names())
            ) from None

    def names(self) -> Tuple[str, ...]:
        """All task strings, in registration order (``decompose`` first)."""
        return tuple(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


@dataclasses.dataclass
class TaskResult:
    """Outcome of :func:`repro.core.api.run_task`.

    Attributes:
        task: The task string that ran.
        method: The method string whose decomposition the task ran on.
        solution: The task's solution object (``None`` for ``"decompose"``).
        rounds: CONGEST rounds the task charged through the ``C * D``
            template (0 for ``"decompose"`` — the decomposition's own cost
            lives in ``decomposition.rounds``).
        metrics: Task metrics (``mis_size`` / ``colors_used`` plus
            ``verified``; empty for ``"decompose"``).
        decomposition: The decomposition the task ran on.
    """

    task: str
    method: str
    solution: Any
    rounds: int
    metrics: Dict[str, Any]
    decomposition: NetworkDecomposition

    def as_row(self) -> Dict[str, Any]:
        """Row dictionary for the table renderer."""
        row: Dict[str, Any] = {
            "method": self.method,
            "task": self.task,
            "task_rounds": self.rounds,
        }
        row.update(self.metrics)
        return row


METHODS = MethodRegistry()
TASKS = TaskRegistry()


def _register_builtin_methods() -> None:
    # Imported inside the function (not at module top) purely to keep the
    # registry free of import cycles with the algorithm layers; registration
    # still runs at module import time, so these modules load with it.
    from repro.baselines.linial_saks import linial_saks_carving, linial_saks_decomposition
    from repro.baselines.mpx import mpx_carving, mpx_decomposition
    from repro.baselines.sequential import (
        greedy_sequential_carving,
        greedy_sequential_decomposition,
    )
    from repro.core.decomposition import (
        theorem23_decomposition,
        theorem34_decomposition,
        weak_decomposition_rg20,
    )
    from repro.core.improved_carving import theorem33_carving
    from repro.core.strong_carving import theorem22_carving
    from repro.weak.carving import weak_diameter_carving

    METHODS.register(
        MethodSpec(
            name="strong-log3",
            kind="strong",
            deterministic=True,
            centralized=False,
            description="Theorem 2.2 / 2.3 — deterministic strong diameter O(log^3 n)",
            carve=lambda graph, eps, nodes, ledger, rng: theorem22_carving(
                graph, eps, nodes=nodes, ledger=ledger
            ),
            decompose=lambda graph, ledger, rng: theorem23_decomposition(graph, ledger=ledger),
            carving_label="Theorem 2.2 (strong, deterministic)",
            decomposition_label="Theorem 2.3 (strong, deterministic)",
            table_rank=3,
        )
    )
    METHODS.register(
        MethodSpec(
            name="strong-log2",
            kind="strong",
            deterministic=True,
            centralized=False,
            description="Theorem 3.3 / 3.4 — deterministic strong diameter O(log^2 n)",
            carve=lambda graph, eps, nodes, ledger, rng: theorem33_carving(
                graph, eps, nodes=nodes, ledger=ledger
            ),
            decompose=lambda graph, ledger, rng: theorem34_decomposition(graph, ledger=ledger),
            carving_label="Theorem 3.3 (strong, deterministic)",
            decomposition_label="Theorem 3.4 (strong, deterministic)",
            table_rank=4,
        )
    )
    METHODS.register(
        MethodSpec(
            name="weak-rg20",
            kind="weak",
            deterministic=True,
            centralized=False,
            description="deterministic weak-diameter substrate [RG20/GGR21]",
            carve=lambda graph, eps, nodes, ledger, rng: weak_diameter_carving(
                graph, eps, nodes=nodes, ledger=ledger
            ),
            decompose=lambda graph, ledger, rng: weak_decomposition_rg20(graph, ledger=ledger),
            carving_label="RG20/GGR21 (weak, deterministic)",
            decomposition_label="RG20/GGR21 (weak, deterministic)",
            table_rank=1,
        )
    )
    METHODS.register(
        MethodSpec(
            name="ls93",
            kind="weak",
            deterministic=False,
            centralized=False,
            description="randomized weak-diameter baseline [LS93]",
            carve=lambda graph, eps, nodes, ledger, rng: linial_saks_carving(
                graph, eps, nodes=nodes, ledger=ledger, rng=rng
            ),
            decompose=lambda graph, ledger, rng: linial_saks_decomposition(
                graph, ledger=ledger, rng=rng
            ),
            carving_label="LS93 (weak, randomized)",
            decomposition_label="LS93 (weak, randomized)",
            table_rank=0,
        )
    )
    METHODS.register(
        MethodSpec(
            name="mpx",
            kind="strong",
            deterministic=False,
            centralized=False,
            description="randomized strong-diameter baseline [MPX13, EN16]",
            carve=lambda graph, eps, nodes, ledger, rng: mpx_carving(
                graph, eps, nodes=nodes, ledger=ledger, rng=rng
            ),
            decompose=lambda graph, ledger, rng: mpx_decomposition(graph, ledger=ledger, rng=rng),
            carving_label="MPX13/EN16 (strong, randomized)",
            decomposition_label="MPX13/EN16 (strong, randomized)",
            table_rank=2,
        )
    )
    METHODS.register(
        MethodSpec(
            name="sequential",
            kind="strong",
            deterministic=True,
            centralized=True,
            description="centralized existential construction [LS93]",
            carve=lambda graph, eps, nodes, ledger, rng: greedy_sequential_carving(
                graph, eps, nodes=nodes, ledger=ledger
            ),
            decompose=lambda graph, ledger, rng: greedy_sequential_decomposition(
                graph, ledger=ledger
            ),
            carving_label="Greedy ball growing (centralized)",
            decomposition_label="LS93 existential (centralized)",
            table_rank=5,
        )
    )


def _register_builtin_tasks() -> None:
    from repro.applications.coloring import delta_plus_one_coloring, verify_coloring
    from repro.applications.mis import maximal_independent_set, verify_mis

    TASKS.register(
        TaskSpec(
            name="decompose",
            description="record the decomposition itself (the default task)",
        )
    )
    TASKS.register(
        TaskSpec(
            name="mis",
            description="maximal independent set via the C*D color template",
            solve=maximal_independent_set,
            verify=verify_mis,
            measure=lambda graph, solution: {"mis_size": len(solution)},
        )
    )
    TASKS.register(
        TaskSpec(
            name="coloring",
            description="(Δ+1)-coloring via the C*D color template",
            solve=delta_plus_one_coloring,
            verify=verify_coloring,
            measure=lambda graph, solution: {
                "colors_used": (max(solution.values()) + 1) if solution else 0
            },
        )
    )


_register_builtin_methods()
_register_builtin_tasks()

#: Derived views of the method registry — the legacy tuple names every layer
#: used to hardcode.  Kept as module-level tuples for backward compatibility;
#: the registry is the source of truth.
CARVING_METHODS: Tuple[str, ...] = METHODS.names()
DECOMPOSITION_METHODS: Tuple[str, ...] = CARVING_METHODS

#: Derived view of the task registry (``decompose`` first).
TASK_NAMES: Tuple[str, ...] = TASKS.names()

__all__ = [
    "CARVING_METHODS",
    "DECOMPOSITION_METHODS",
    "FAULT_KINDS",
    "FAULT_KIND_NAMES",
    "FaultKindSpec",
    "FaultPlan",
    "KERNELS",
    "KERNEL_CHOICES",
    "KernelRegistry",
    "KernelSpec",
    "METHODS",
    "MethodRegistry",
    "MethodSpec",
    "TASKS",
    "TASK_NAMES",
    "TaskRegistry",
    "TaskResult",
    "TaskSpec",
]
