"""repro — reproduction of "Strong-Diameter Network Decomposition" (PODC 2021).

The package implements the paper's deterministic weak-to-strong ball carving
transformation (Theorem 2.1), its diameter-improved variant (Theorem 3.2),
the resulting strong-diameter network decompositions (Theorems 2.3 and 3.4),
the weak-diameter substrate they consume, the randomized and centralized
baselines of Tables 1 and 2, a CONGEST-model simulator with bandwidth
accounting, and the graph workloads and analysis tools used by the benchmark
harness.

Quickstart::

    import repro
    from repro.graphs import torus_graph

    graph = torus_graph(16, 16)
    decomposition = repro.decompose(graph, method="strong-log3")
    print(decomposition.summary())

Whole experiment grids run through :func:`repro.run_suite` (see
:mod:`repro.pipeline` and ``docs/pipeline.md``): a declarative
``(scenario x n x method x eps x seed)`` suite spec is expanded into cells,
fanned out over a ``multiprocessing`` pool, and streamed into a persistent,
resumable run store.

The hot ball-growing loops run over the flat-array CSR graph core
(:mod:`repro.graphs.csr`) by default; pass ``backend="nx"`` to
:func:`~repro.core.api.carve` / :func:`~repro.core.api.decompose` (or use
:func:`repro.graphs.use_backend`) to run the original networkx walks, which
are kept as a differential-testing oracle.
"""

from repro.core.api import (
    CARVING_METHODS,
    DECOMPOSITION_METHODS,
    carve,
    decompose,
    run_suite,
    run_task,
)
from repro.registry import METHODS, TASK_NAMES, TASKS, TaskResult
from repro.clustering import (
    BallCarving,
    Cluster,
    NetworkDecomposition,
    SteinerTree,
    check_ball_carving,
    check_network_decomposition,
)
from repro.congest.rounds import RoundLedger

__version__ = "1.0.0"

__all__ = [
    "CARVING_METHODS",
    "DECOMPOSITION_METHODS",
    "METHODS",
    "TASKS",
    "TASK_NAMES",
    "TaskResult",
    "carve",
    "decompose",
    "run_suite",
    "run_task",
    "BallCarving",
    "Cluster",
    "NetworkDecomposition",
    "SteinerTree",
    "check_ball_carving",
    "check_network_decomposition",
    "RoundLedger",
    "__version__",
]
