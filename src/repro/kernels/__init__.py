"""Pluggable hot-path kernels: the ``--kernel`` switch and its registry.

Three tiers implement the same index-space primitives (see
:mod:`repro.kernels.base`):

* ``pure`` — the seed flat-array loops, extracted verbatim; always
  available; the differential oracle for the other tiers;
* ``numpy`` — vectorised frontier expansion and weak-phase proposal steps
  over zero-copy int32 buffer views (the ``repro[fast]`` extra);
* ``numba`` — lazily ``@njit``-compiled scalar loops (the ``repro[jit]``
  extra); explicit opt-in because its first-call compilation latency only
  pays off on long runs.

The active kernel is an ambient, process-wide setting mirroring the graph
backend switch (:mod:`repro.graphs.backend`): select per scope via
:func:`use_kernel`, per process via :func:`set_kernel`, on the CLI via
``--kernel``, or per suite via the spec's ``kernel`` field.  The default is
``"auto"``, which resolves to ``numpy`` when importable and otherwise
degrades to ``pure`` with a one-line warning.  Every tier produces
byte-identical clusters, ledger charges and task solutions (asserted by
``tests/test_kernels.py``); only the wall-clock cost differs.
"""

from __future__ import annotations

import contextlib
import warnings
from typing import Iterator, Optional, Tuple

from repro.kernels.base import (
    Kernel,
    KernelRegistry,
    KernelSpec,
    ProposalEngine,
)


def _numpy_available() -> bool:
    try:
        import importlib.util

        return importlib.util.find_spec("numpy") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic loaders
        return False


def _make_pure() -> Kernel:
    from repro.kernels.pure import PureKernel

    return PureKernel()


def _make_numpy() -> Kernel:
    from repro.kernels.numpy_kernel import NumpyKernel

    return NumpyKernel()


def _make_numba() -> Kernel:
    from repro.kernels.numba_kernel import NumbaKernel

    return NumbaKernel()


def _numba_available() -> bool:
    if not _numpy_available():  # numba consumes numpy arrays
        return False
    from repro.kernels.numba_kernel import numba_available

    return numba_available()


KERNELS = KernelRegistry()
KERNELS.register(
    KernelSpec(
        name="pure",
        description="seed flat-array loops (always available; the oracle)",
        factory=_make_pure,
        auto_rank=2,
    )
)
KERNELS.register(
    KernelSpec(
        name="numpy",
        description="vectorised frontier expansion + proposal steps [repro[fast]]",
        factory=_make_numpy,
        requires="numpy (the repro[fast] extra)",
        available=_numpy_available,
        auto_rank=1,
    )
)
KERNELS.register(
    KernelSpec(
        name="numba",
        description="lazily @njit-compiled loops, explicit opt-in [repro[jit]]",
        factory=_make_numba,
        requires="numba (the repro[jit] extra)",
        available=_numba_available,
        # Behind numpy on purpose: 'auto' never picks the JIT tier (first
        # call pays compilation); see the module docstring.
        auto_rank=3,
    )
)

#: Valid values of the ``--kernel`` flag / the suite spec's ``kernel`` field.
KERNEL_CHOICES: Tuple[str, ...] = ("auto",) + KERNELS.names()

_DEFAULT_KERNEL = "auto"
_current_kernel = _DEFAULT_KERNEL
_active_instance: Optional[Kernel] = None
_warned_degraded = False


def _resolve(name: str) -> Kernel:
    global _warned_degraded
    instance = KERNELS.resolve(name)
    if name == "auto" and instance.name == "pure" and not _warned_degraded:
        _warned_degraded = True
        warnings.warn(
            "repro.kernels: numpy is not installed; --kernel auto degrades "
            "to the 'pure' tier (install the repro[fast] extra for the "
            "vectorised kernels)",
            RuntimeWarning,
            stacklevel=3,
        )
    return instance


def get_kernel() -> str:
    """The currently selected kernel name (possibly ``"auto"``)."""
    return _current_kernel


def active_kernel() -> Kernel:
    """The resolved :class:`Kernel` instance of the ambient selection.

    This is on the hot path (the CSR primitives call it once per
    traversal), so resolution happens at :func:`set_kernel` time and this
    is a module-global read.
    """
    global _active_instance
    if _active_instance is None:
        _active_instance = _resolve(_current_kernel)
    return _active_instance


def set_kernel(name: str) -> str:
    """Set the ambient kernel; returns the previously selected name.

    Validates against the registry (``"auto"`` plus the registered tiers)
    and resolves eagerly, so an unavailable tier fails here — at selection
    time — rather than deep inside an algorithm.
    """
    global _current_kernel, _active_instance
    if name not in KERNEL_CHOICES:
        raise ValueError(
            "unknown kernel {!r}; choose from {}".format(name, KERNEL_CHOICES)
        )
    previous = _current_kernel
    _active_instance = _resolve(name)
    _current_kernel = name
    return previous


@contextlib.contextmanager
def use_kernel(name: Optional[str]) -> Iterator[str]:
    """Scope the kernel switch to a ``with`` block.

    ``None`` keeps the ambient kernel (for plumbing an optional
    ``kernel=`` keyword through API layers without forcing a choice).
    """
    if name is None:
        yield _current_kernel
        return
    previous = set_kernel(name)
    try:
        yield name
    finally:
        set_kernel(previous)


__all__ = [
    "KERNELS",
    "KERNEL_CHOICES",
    "Kernel",
    "KernelRegistry",
    "KernelSpec",
    "ProposalEngine",
    "active_kernel",
    "get_kernel",
    "set_kernel",
    "use_kernel",
]
