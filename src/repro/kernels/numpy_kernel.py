"""The ``numpy`` kernel: vectorised frontier expansion and proposal steps.

Frontier expansion gathers whole adjacency rows at once: for a frontier
``F`` it builds the flat index vector of every entry of every row of ``F``
(one ``repeat`` + one ``arange``), gathers the neighbour ids, masks them
against the shared ``bytearray`` visited mask (wrapped zero-copy with
``np.frombuffer`` — mutations flow back to the caller), and deduplicates to
**first-discovery order** so the produced layers are byte-identical to the
``pure`` tier's, not merely equal as sets.  The dedup is a sort-free O(k)
scatter: writing each candidate's position into a parked per-graph scratch
array *in reverse order* leaves every value holding its first-occurrence
position, and keeping exactly the elements sitting at their own
first-occurrence position yields the unique values in discovery order
(``np.unique`` would sort — measurably slower and the wrong order).  The
int32 ``indptr``/``indices`` buffers are wrapped zero-copy, which also
covers the shared-memory arena case (``CSRGraph.from_buffers`` hands in
memoryviews straight into the segment), and the BFS drivers keep frontiers
as int32 arrays between steps so the list round-trip is paid only at the
public API boundary.

Tiny frontiers fall back to the scalar loop: below a few dozen nodes the
fixed cost of the numpy call chain exceeds the loop it replaces, and the
carving recursion spends much of its life on exactly such small components.

The weak-phase proposal engine vectorises the "pick the adjacent red
cluster minimising ``(label, uid)``" rule with a single int64 composite key
``label * M + uid`` (``M = max uid + 1``) and a segment-minimum over the
blue frontier's concatenated rows.  It is only offered when every
participating uid is a non-negative ``int`` with ``M**2 < 2**63`` (every
generator in the scenario registry qualifies); otherwise
:meth:`NumpyKernel.proposal_engine` returns ``None`` and the driver keeps
the reference adjacency loop.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.kernels.base import Kernel, ProposalEngine
from repro.kernels.pure import PureKernel

# Below this frontier size the scalar loop wins (numpy call overhead).
_SMALL_FRONTIER = 32

_EMPTY_INT32 = np.empty(0, dtype=np.int32)
# Below this blue-set size the proposal step runs the scalar fallback.
_SMALL_BLUE = 32


class NumpyKernel(PureKernel):
    """Vectorised BFS/proposal tier (requires the ``repro[fast]`` extra).

    The MIS and first-fit coloring sweeps are *inherited* from
    :class:`~repro.kernels.pure.PureKernel`: they are uid-ordered greedy
    loops whose every decision depends on the previous one, so there is no
    batch to vectorise — the wins there come from the accelerated diameter
    and BFS primitives feeding the same task pipeline.
    """

    name = "numpy"

    def __init__(self) -> None:
        # csr -> (indptr view, indices view); weak keys so dropped graphs
        # free their views.  The values reference the csr's *buffers*, not
        # the csr itself, so no reference cycle keeps the index alive.
        self._views: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        # csr -> parked proposal-engine scratch (see _acquire_scratch).
        self._scratch: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def _arrays(self, csr: Any) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy int32 ``indptr``/``indices`` views + dedup scratch."""
        entry = self._views.get(csr)
        if entry is None:
            indptr = np.frombuffer(csr.indptr, dtype=np.int32)
            indices = np.frombuffer(csr.indices, dtype=np.int32)
            degrees = np.diff(indptr)
            # Constant-degree graphs (torus, random-regular — the canonical
            # scenarios) admit a 2-D row view: gathering whole rows with
            # np.take(..., axis=0) is a per-row memcpy, several times faster
            # than the element-wise flat gather, and needs no flat-position
            # vector at all.
            rows = None
            if degrees.size and indices.size == degrees.size * int(degrees[0]):
                degree = int(degrees[0])
                if degree > 0 and bool((degrees == degree).all()):
                    rows = indices.reshape(csr.n, degree)
            entry = (
                indptr,
                indices,
                # First-occurrence positions scratch for _expand_array; never
                # reset — every call writes the entries it reads.
                np.empty(csr.n, dtype=np.int32),
                # Degrees, so each expansion pays one indptr gather not two.
                degrees,
                rows,
            )
            self._views[csr] = entry
        return entry[:3]

    def _csr_views(
        self, csr: Any
    ) -> Tuple[
        np.ndarray, np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]
    ]:
        self._arrays(csr)
        return self._views[csr]

    # ------------------------------------------------------------------ #
    # BFS primitives
    # ------------------------------------------------------------------ #
    def _expand_array(
        self, csr: Any, frontier: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """One vectorised BFS step in array space (int32 in, int32 out).

        Everything stays int32: ``indices`` is int32 by construction, so
        flat positions fit too, and halving the element width on the ~m-size
        temporaries is a measurable win on 10^5-node graphs.
        """
        indptr, indices, first_pos, degrees, rows = self._csr_views(csr)
        if rows is not None:
            # Constant-degree fast path: whole rows via one 2-D gather, in
            # frontier-then-row-order (= first-discovery input order).
            neighbours = np.take(rows, frontier, axis=0).ravel()
        else:
            starts = np.take(indptr, frontier)
            counts = np.take(degrees, frontier)
            total = int(counts.sum())
            if total == 0:
                return _EMPTY_INT32
            # Flat gather of every row entry: position t of the concatenation
            # maps to starts[row(t)] + offset-within-row(t).
            offsets = np.cumsum(counts, dtype=np.int32) - counts
            flat = np.repeat(starts - offsets, counts) + np.arange(
                total, dtype=np.int32
            )
            neighbours = np.take(indices, flat)
        # flatnonzero + take instead of boolean fancy indexing: the bool
        # mask path re-counts and re-scans per call and measures ~4x slower
        # on >10^5-entry pulls.
        unvisited = np.flatnonzero(np.take(mask, neighbours) == 0)
        size = unvisited.size
        if size == 0:
            return _EMPTY_INT32
        candidates = np.take(neighbours, unvisited)
        # First-discovery dedup without sorting: scatter each element's
        # position in *reverse* order, so the surviving write per value is
        # its first occurrence; an element equal to its own value's first
        # occurrence IS that first occurrence.  Filtering by that predicate
        # keeps the unique values in the scalar loop's exact append order
        # (dict insertion orders downstream depend on it).
        positions = np.arange(size, dtype=np.int32)
        first_pos[candidates[::-1]] = positions[::-1]
        reached = np.take(
            candidates,
            np.flatnonzero(np.take(first_pos, candidates) == positions),
        )
        mask[reached] = 1
        return reached

    def frontier_expand(
        self, csr: Any, frontier: List[int], blocked: bytearray
    ) -> List[int]:
        if len(frontier) < _SMALL_FRONTIER:
            return PureKernel.frontier_expand(self, csr, frontier, blocked)
        fr = np.fromiter(frontier, count=len(frontier), dtype=np.int32)
        mask = np.frombuffer(blocked, dtype=np.uint8)
        return self._expand_array(csr, fr, mask).tolist()

    def bfs_layers(
        self,
        csr: Any,
        frontier: List[int],
        blocked: bytearray,
        max_radius: Optional[int] = None,
    ) -> List[List[int]]:
        layers: List[List[int]] = [frontier]
        mask = np.frombuffer(blocked, dtype=np.uint8)
        fr = np.fromiter(frontier, count=len(frontier), dtype=np.int32)
        radius = 0
        while fr.size and (max_radius is None or radius < max_radius):
            if fr.size < _SMALL_FRONTIER:
                fr = np.fromiter(
                    PureKernel.frontier_expand(self, csr, fr.tolist(), blocked),
                    dtype=np.int32,
                )
            else:
                fr = self._expand_array(csr, fr, mask)
            if not fr.size:
                break
            layers.append(fr.tolist())
            radius += 1
        return layers

    def bfs_tree_parents(
        self, csr: Any, layers: List[List[int]]
    ) -> List[List[int]]:
        indptr, indices, _, _, rows = self._csr_views(csr)
        previous = np.zeros(csr.n, dtype=np.uint8)
        layer0 = np.fromiter(layers[0], count=len(layers[0]), dtype=np.int32)
        previous[layer0] = 1
        parents: List[List[int]] = []
        last = layer0
        for depth in range(1, len(layers)):
            layer = np.fromiter(
                layers[depth], count=len(layers[depth]), dtype=np.int32
            )
            if rows is not None:
                neighbours = np.take(rows, layer, axis=0)
                # First neighbour (ascending row order) in the previous
                # layer: argmax of the boolean hit matrix returns the first
                # maximum, i.e. the leftmost hit of each row.
                hits = np.take(previous, neighbours)
                first = np.argmax(hits, axis=1)
                chosen = neighbours[np.arange(layer.size), first]
            else:
                starts = np.take(indptr, layer)
                counts = np.take(indptr, layer + 1) - starts
                offsets = np.cumsum(counts, dtype=np.int32) - counts
                flat = np.repeat(starts - offsets, counts) + np.arange(
                    int(counts.sum()), dtype=np.int32
                )
                neighbours = np.take(indices, flat)
                hit_positions = np.flatnonzero(np.take(previous, neighbours))
                # Every node below layer 0 has a hit inside its own segment,
                # so the first hit at-or-after each segment start is it.
                firsts = np.take(
                    hit_positions, np.searchsorted(hit_positions, offsets)
                )
                chosen = np.take(neighbours, firsts)
            parents.append(chosen.tolist())
            previous[last] = 0
            previous[layer] = 1
            last = layer
        return parents

    def multi_source_bfs(
        self, csr: Any, frontier: List[int], blocked: bytearray
    ) -> Tuple[int, int]:
        depth = 0
        reached = len(frontier)
        mask = np.frombuffer(blocked, dtype=np.uint8)
        fr = np.fromiter(frontier, count=len(frontier), dtype=np.int32)
        while fr.size:
            if fr.size < _SMALL_FRONTIER:
                fr = np.fromiter(
                    PureKernel.frontier_expand(self, csr, fr.tolist(), blocked),
                    dtype=np.int32,
                )
            else:
                fr = self._expand_array(csr, fr, mask)
            if not fr.size:
                break
            reached += fr.size
            depth += 1
        return depth, reached

    # ------------------------------------------------------------------ #
    # Weak-carving proposal engine
    # ------------------------------------------------------------------ #
    def _acquire_scratch(self, csr: Any) -> Tuple[np.ndarray, np.ndarray, bool]:
        """Parked per-csr ``(labels, uids)`` int64 scratch, both all ``-1``.

        The carving recursion spawns one engine per participating piece;
        fresh n-sized arrays per engine would cost Θ(n²) over Θ(n) small
        pieces, so the arrays are parked on the csr (engines reset exactly
        the entries they touched on close).  A busy flag falls back to a
        fresh allocation under reentrancy.
        """
        entry = self._scratch.get(csr)
        if entry is None:
            entry = {
                "labels": np.full(csr.n, -1, dtype=np.int64),
                "uids": np.full(csr.n, -1, dtype=np.int64),
                "busy": False,
            }
            self._scratch[csr] = entry
        if entry["busy"]:
            return (
                np.full(csr.n, -1, dtype=np.int64),
                np.full(csr.n, -1, dtype=np.int64),
                False,
            )
        entry["busy"] = True
        return entry["labels"], entry["uids"], True

    def _release_scratch(self, csr: Any, owned: bool) -> None:
        if owned:
            entry = self._scratch.get(csr)
            if entry is not None:
                entry["busy"] = False

    def proposal_engine(
        self,
        csr: Any,
        participating: Iterable[Any],
        uid_of: Dict[Any, int],
    ) -> Optional[ProposalEngine]:
        uids = []
        for uid in uid_of.values():
            if not isinstance(uid, int) or isinstance(uid, bool) or uid < 0:
                return None
            uids.append(uid)
        if not uids:
            return None
        modulus = max(uids) + 1
        # Labels are always uids of participating nodes, so the composite
        # key label * M + uid stays below M**2; bail out to the reference
        # loop rather than risk int64 overflow on exotic identifier spaces.
        if modulus * modulus >= 2**63:
            return None
        return _NumpyProposalEngine(self, csr, participating, uid_of, modulus)


class _NumpyProposalEngine(ProposalEngine):
    """Vectorised proposal steps for one weak-carving run."""

    supports_step_batches = True

    def __init__(
        self,
        kernel: NumpyKernel,
        csr: Any,
        participating: Iterable[Any],
        uid_of: Dict[Any, int],
        modulus: int,
    ) -> None:
        self._kernel = kernel
        self._csr = csr
        self._modulus = modulus
        self._indptr, self._indices, _ = kernel._arrays(csr)
        self._rows = kernel._csr_views(csr)[4]
        index = csr.index
        part = sorted(index[node] for node in participating)
        self._part = np.fromiter(part, count=len(part), dtype=np.int32)
        self._labels, self._uids, self._owned = kernel._acquire_scratch(csr)
        nodes = csr.nodes
        uid_arr = np.fromiter(
            (uid_of[nodes[i]] for i in part), count=len(part), dtype=np.int64
        )
        self._labels[self._part] = uid_arr
        self._uids[self._part] = uid_arr
        self._index = index
        self._blue = self._part[:0]
        self._bit = 0
        self._closed = False
        # Pending propose_step groups, settled by the next resolve_step.
        self._step_members = self._part[:0]
        self._step_targets = np.empty(0, dtype=np.int64)
        self._step_lengths = np.empty(0, dtype=np.int64)

    # -- state mirroring ------------------------------------------------ #
    def on_join(self, node: Any, new_label: int) -> None:
        self._labels[self._index[node]] = new_label

    def on_kill(self, node: Any) -> None:
        self._labels[self._index[node]] = -1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Reset exactly the entries this engine touched so the parked
        # scratch is all -1 again for the next engine on this csr.
        self._labels[self._part] = -1
        self._uids[self._part] = -1
        self._kernel._release_scratch(self._csr, self._owned)

    # -- proposal steps ------------------------------------------------- #
    def start_phase(self, bit: int) -> None:
        self._bit = bit
        labels = np.take(self._labels, self._part)
        # Dead nodes carry label -1 (arithmetic shift keeps the sign bit,
        # so the alive test below excludes them from blue).
        blue = (labels >= 0) & (((labels >> bit) & 1) == 0)
        self._blue = np.take(self._part, np.flatnonzero(blue))

    def red_cluster_sizes(self) -> Dict[int, int]:
        labels = np.take(self._labels, self._part)
        red = np.take(
            labels,
            np.flatnonzero((labels >= 0) & (((labels >> self._bit) & 1) == 1)),
        )
        uniques, counts = np.unique(red, return_counts=True)
        return dict(zip(uniques.tolist(), counts.tolist()))

    def _propose_arrays(
        self,
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """The raw per-proposer step result: ``(targets, proposers, vias)``.

        ``proposers`` are engine-space node indices in blue-scan order (the
        order the scalar loop would emit), ``targets`` the chosen red labels
        and ``vias`` the minimising neighbour per proposer.  Returns ``None``
        when no blue node has an alive red neighbour, and drops the
        proposers from the blue frontier as a side effect.
        """
        blue = self._blue
        bit = self._bit
        indptr, indices = self._indptr, self._indices
        labels, uids = self._labels, self._uids
        rows = self._rows
        if rows is not None:
            # Constant-degree fast path (torus / random-regular): one 2-D
            # row gather replaces the flat-position construction entirely.
            degree = rows.shape[1]
            neighbours = np.take(rows, blue, axis=0).ravel()
            owner = np.repeat(np.arange(blue.size, dtype=np.int32), degree)
        else:
            starts = np.take(indptr, blue)
            counts = np.take(indptr, blue + 1) - starts
            total = int(counts.sum())
            if total == 0:
                return None
            offsets = np.cumsum(counts, dtype=np.int32) - counts
            flat = np.repeat(starts - offsets, counts) + np.arange(
                total, dtype=np.int32
            )
            neighbours = np.take(indices, flat)
            owner = np.repeat(np.arange(blue.size, dtype=np.int32), counts)
        neighbour_labels = np.take(labels, neighbours)
        # Alive red neighbours only: dead and non-participating indices
        # carry label -1, blue neighbours have bit `bit` clear.
        red = np.flatnonzero(
            (neighbour_labels >= 0) & (((neighbour_labels >> bit) & 1) == 1)
        )
        if red.size == 0:
            return None
        neighbours = np.take(neighbours, red)
        owner = np.take(owner, red)
        neighbour_labels = np.take(neighbour_labels, red)
        key = neighbour_labels * self._modulus + np.take(uids, neighbours)
        # Segment minimum per proposing blue node.  `owner` is ascending
        # (rows were concatenated in blue order), so segments are the runs
        # of equal owner values — all non-empty by construction, which is
        # what makes reduceat safe here.
        segment_starts = np.flatnonzero(
            np.r_[True, owner[1:] != owner[:-1]]
        )
        minima = np.minimum.reduceat(key, segment_starts)
        segment_lengths = np.diff(np.r_[segment_starts, key.size])
        hits = np.flatnonzero(key == np.repeat(minima, segment_lengths))
        # Distinct neighbours have distinct uids, hence distinct keys, so
        # each segment has exactly one hit; searchsorted keeps the first
        # hit per segment regardless.
        firsts = np.take(hits, np.searchsorted(hits, segment_starts))
        proposer_positions = np.take(owner, firsts)
        # A proposer is resolved within the step (joins red or dies), so it
        # leaves the blue scan list either way.
        keep = np.ones(blue.size, dtype=bool)
        keep[proposer_positions] = False
        self._blue = np.take(blue, np.flatnonzero(keep))
        return (
            np.take(neighbour_labels, firsts),
            np.take(blue, proposer_positions),
            np.take(neighbours, firsts),
        )

    def propose(self) -> Dict[int, List[Tuple[Any, Any]]]:
        blue = self._blue
        if blue.size == 0:
            return {}
        if blue.size < _SMALL_BLUE:
            return self._propose_scalar()
        step = self._propose_arrays()
        if step is None:
            return {}
        targets, proposers, vias = step
        nodes = self._csr.nodes
        proposals: Dict[int, List[Tuple[Any, Any]]] = {}
        for target, proposer, via in zip(
            targets.tolist(), proposers.tolist(), vias.tolist()
        ):
            proposals.setdefault(target, []).append((nodes[proposer], nodes[via]))
        return proposals

    def propose_step(self) -> List[Tuple[int, List[Any], List[Any]]]:
        blue = self._blue
        if blue.size == 0:
            return []
        if blue.size < _SMALL_BLUE:
            return self._groups_from_dict(self._propose_scalar())
        step = self._propose_arrays()
        if step is None:
            return []
        targets, proposers, vias = step
        # Group by target label, ascending — exactly the order the per-node
        # driver visits `sorted(proposals.items())` — with each group's
        # proposers kept in blue-scan order (stable sort).
        order = np.argsort(targets, kind="stable")
        targets = np.take(targets, order)
        proposers = np.take(proposers, order)
        vias = np.take(vias, order)
        bounds = np.flatnonzero(np.r_[True, targets[1:] != targets[:-1]])
        group_targets = np.take(targets, bounds)
        # Pending until resolve_step: the step's proposers (grouped) plus
        # per-group labels/lengths, so the verdicts land in ONE scatter.
        self._step_members = proposers
        self._step_targets = group_targets
        self._step_lengths = np.diff(np.r_[bounds, targets.size])
        ends = np.r_[bounds[1:], targets.size]
        # Bulk node materialisation: one C-level map over the whole step,
        # then plain list slices per group.  Most steps produce thousands of
        # very small groups, so per-group numpy work (slice + tolist + map)
        # costs more than the whole step's bookkeeping.
        resolve = self._csr.nodes.__getitem__
        proposer_nodes = list(map(resolve, proposers.tolist()))
        via_nodes = list(map(resolve, vias.tolist()))
        groups: List[Tuple[int, List[Any], List[Any]]] = []
        for start, end, target in zip(
            bounds.tolist(), ends.tolist(), group_targets.tolist()
        ):
            groups.append(
                (target, proposer_nodes[start:end], via_nodes[start:end])
            )
        return groups

    def _groups_from_dict(
        self, proposals: Dict[int, List[Tuple[Any, Any]]]
    ) -> List[Tuple[int, List[Any], List[Any]]]:
        """Adapt a scalar-path proposal dict to the batched group shape."""
        index = self._index
        members: List[int] = []
        lengths: List[int] = []
        groups: List[Tuple[int, List[Any], List[Any]]] = []
        for target in sorted(proposals):
            pairs = proposals[target]
            members.extend(index[node] for node, _ in pairs)
            lengths.append(len(pairs))
            groups.append(
                (
                    target,
                    [node for node, _ in pairs],
                    [via for _, via in pairs],
                )
            )
        self._step_members = np.fromiter(
            members, count=len(members), dtype=np.int32
        )
        self._step_targets = np.fromiter(
            sorted(proposals), count=len(groups), dtype=np.int64
        )
        self._step_lengths = np.fromiter(lengths, count=len(groups), dtype=np.int64)
        return groups

    def resolve_step(self, decisions: List[bool]) -> None:
        flags = np.fromiter(decisions, count=len(decisions), dtype=bool)
        # Accepted groups take their target label, rejected ones -1 (dead):
        # one np.repeat + one scatter settles the whole step.
        verdicts = np.where(flags, self._step_targets, -1)
        self._labels[self._step_members] = np.repeat(verdicts, self._step_lengths)

    def _propose_scalar(self) -> Dict[int, List[Tuple[Any, Any]]]:
        """Scalar fallback for tiny blue sets (same rule, same results)."""
        bit = self._bit
        indptr, indices = self._indptr, self._indices
        labels, uids = self._labels, self._uids
        nodes = self._csr.nodes
        proposals: Dict[int, List[Tuple[Any, Any]]] = {}
        kept = []
        for position in range(self._blue.size):
            u = int(self._blue[position])
            best_label = -1
            best_uid = -1
            via = -1
            for p in range(indptr[u], indptr[u + 1]):
                v = int(indices[p])
                neighbour_label = int(labels[v])
                if neighbour_label < 0 or not (neighbour_label >> bit) & 1:
                    continue
                if via < 0 or neighbour_label < best_label:
                    best_label = neighbour_label
                    best_uid = int(uids[v])
                    via = v
                elif neighbour_label == best_label:
                    neighbour_uid = int(uids[v])
                    if neighbour_uid < best_uid:
                        best_uid = neighbour_uid
                        via = v
            if via >= 0:
                proposals.setdefault(best_label, []).append((nodes[u], nodes[via]))
            else:
                kept.append(position)
        if proposals:
            self._blue = self._blue[kept]
        return proposals
