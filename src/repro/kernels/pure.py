"""The ``pure`` kernel: the seed CSR loops, extracted verbatim.

This tier is the differential oracle for every other kernel — its loops are
byte-for-byte the flat-array loops that previously lived inline in
:class:`repro.graphs.csr.CSRGraph` and the application solvers, so "every
tier matches ``pure``" means "every tier matches the pre-kernel behaviour".
It has no dependencies beyond the standard library and is therefore always
available (the degradation target when the ``repro[fast]`` /
``repro[jit]`` extras are absent).
"""

from __future__ import annotations

from typing import Any, List

from repro.kernels.base import MIS_DOMINATED, MIS_SELECTED, Kernel


class PureKernel(Kernel):
    """Plain-Python loops over the int32 CSR buffers (always available)."""

    name = "pure"

    def frontier_expand(
        self, csr: Any, frontier: List[int], blocked: bytearray
    ) -> List[int]:
        indptr, indices = csr.indptr, csr.indices
        next_frontier: List[int] = []
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                if not blocked[v]:
                    blocked[v] = 1
                    next_frontier.append(v)
        return next_frontier

    def mis_sweep(
        self, csr: Any, member_indices: List[int], state: bytearray
    ) -> List[int]:
        rows = csr.neighbor_rows
        selected_indices: List[int] = []
        for i in member_indices:
            selected = MIS_SELECTED
            for j in rows[i]:
                if state[j] == MIS_SELECTED:
                    selected = MIS_DOMINATED
                    break
            state[i] = selected
            if selected == MIS_SELECTED:
                selected_indices.append(i)
        return selected_indices

    def greedy_color_sweep(
        self, csr: Any, member_indices: List[int], palette: Any
    ) -> List[int]:
        rows = csr.neighbor_rows
        values: List[int] = []
        for i in member_indices:
            # First-fit over the neighbour palette: a plain list beats a set
            # for the bounded degrees here, and the -1 "uncolored" sentinels
            # never collide with a candidate value >= 0.
            used = [palette[j] for j in rows[i]]
            value = 0
            while value in used:
                value += 1
            palette[i] = value
            values.append(value)
        return values

    # proposal_engine: inherited (None).  The reference proposal loop lives
    # in repro.weak.phases.run_phase over the flat subset adjacency — that
    # *is* the pure tier of the weak-carving hot path, and returning None
    # routes the driver onto it.
