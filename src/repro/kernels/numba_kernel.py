"""The ``numba`` kernel: lazily ``@njit``-compiled scalar loops.

Opt-in tier (``--kernel numba`` / the ``repro[jit]`` extra): the first call
of each primitive pays the JIT compilation, which only amortises on long
runs, so ``auto`` never selects it.  This module must only be imported when
:func:`numba_available` is true — the registry's availability probe gates
it, and the test suite skip-marks the tier when the import fails.

The compiled loops are line-for-line the ``pure`` loops over the same
zero-copy buffer views the ``numpy`` tier uses (``np.frombuffer`` over the
int32 CSR arrays and the ``bytearray`` masks), so discovery order — and
therefore every downstream record — is identical by construction.  The
weak-carving proposal engine is inherited from
:class:`~repro.kernels.numpy_kernel.NumpyKernel`.
"""

from __future__ import annotations

import importlib.util
from typing import Any, List

import numpy as np

from repro.kernels.numpy_kernel import NumpyKernel


def numba_available() -> bool:
    """Cheap import probe (no actual numba import at registry time)."""
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic loaders
        return False


_JIT = None  # compiled function table, built on first use


def _compiled():
    """Compile the jitted loops once, on first kernel use."""
    global _JIT
    if _JIT is not None:
        return _JIT
    from numba import njit  # deferred: only explicit --kernel numba pays this

    @njit(cache=True)
    def expand(indptr, indices, frontier, blocked, out):
        k = 0
        for t in range(frontier.size):
            u = frontier[t]
            for p in range(indptr[u], indptr[u + 1]):
                v = indices[p]
                if blocked[v] == 0:
                    blocked[v] = 1
                    out[k] = v
                    k += 1
        return k

    @njit(cache=True)
    def mis(indptr, indices, members, state, out):
        k = 0
        for t in range(members.size):
            i = members[t]
            selected = 1
            for p in range(indptr[i], indptr[i + 1]):
                if state[indices[p]] == 1:
                    selected = 2
                    break
            state[i] = selected
            if selected == 1:
                out[k] = i
                k += 1
        return k

    @njit(cache=True)
    def color(indptr, indices, members, palette, out):
        for t in range(members.size):
            i = members[t]
            value = 0
            searching = True
            while searching:
                searching = False
                for p in range(indptr[i], indptr[i + 1]):
                    if palette[indices[p]] == value:
                        value += 1
                        searching = True
                        break
            palette[i] = value
            out[t] = value

    _JIT = (expand, mis, color)
    return _JIT


class NumbaKernel(NumpyKernel):
    """JIT-compiled scalar loops (requires the ``repro[jit]`` extra)."""

    name = "numba"

    def frontier_expand(
        self, csr: Any, frontier: List[int], blocked: bytearray
    ) -> List[int]:
        expand, _, _ = _compiled()
        indptr, indices, _ = self._arrays(csr)
        fr = np.fromiter(frontier, count=len(frontier), dtype=np.int32)
        out = np.empty(csr.n, dtype=np.int32)
        k = expand(indptr, indices, fr, np.frombuffer(blocked, dtype=np.uint8), out)
        return out[:k].tolist()

    def mis_sweep(
        self, csr: Any, member_indices: List[int], state: bytearray
    ) -> List[int]:
        _, mis, _ = _compiled()
        indptr, indices, _ = self._arrays(csr)
        members = np.fromiter(
            member_indices, count=len(member_indices), dtype=np.int32
        )
        out = np.empty(members.size, dtype=np.int32)
        k = mis(indptr, indices, members, np.frombuffer(state, dtype=np.uint8), out)
        return out[:k].tolist()

    def greedy_color_sweep(
        self, csr: Any, member_indices: List[int], palette: Any
    ) -> List[int]:
        _, _, color = _compiled()
        indptr, indices, _ = self._arrays(csr)
        members = np.fromiter(
            member_indices, count=len(member_indices), dtype=np.int32
        )
        out = np.empty(members.size, dtype=np.int32)
        color(indptr, indices, members, np.frombuffer(palette, dtype=np.int32), out)
        return out.tolist()
