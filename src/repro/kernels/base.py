"""Kernel interface and registry for the hot flat-array loops.

A **kernel** is one implementation of the small set of index-space
primitives that dominate the reproduction's wall-clock time: frontier
expansion (the inner loop of every BFS), restricted BFS layering,
multi-source BFS to exhaustion (eccentricities / reachability), the
sequential MIS and first-fit coloring sweeps of the application tasks, and
the weak-phase proposal computation.  The :class:`repro.graphs.csr.CSRGraph`
primitives and the weak-carving driver dispatch through the ambient kernel
(see :mod:`repro.kernels`) instead of hardcoding one loop shape, which is
what lets the ``numpy`` tier vectorise the hot paths without forking the
algorithms.

Contracts shared by every kernel (asserted by the differential tests):

* all primitives work in **index space** over a frozen
  :class:`~repro.graphs.csr.CSRGraph` (int32 ``indptr``/``indices``), with
  ``bytearray`` masks whose mutations are visible to the caller;
* :meth:`Kernel.frontier_expand` must return the newly reached indices in
  **first-discovery order** — the order produced by scanning the frontier
  list in order and each CSR row ascending — so every tier yields not just
  equal sets but byte-identical layer lists, dict insertion orders and
  tie-breaks;
* the sweeps (:meth:`Kernel.mis_sweep`, :meth:`Kernel.greedy_color_sweep`)
  process the given member indices **strictly in order** (they are
  inherently sequential greedy loops);
* :meth:`Kernel.proposal_engine` may return ``None`` whenever the kernel
  has no accelerated engine for the given carving (the caller falls back to
  the flat adjacency-list loop, which is itself the pure reference).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

# Flat MIS node states shared by the kernels and repro.applications.mis.
MIS_UNDECIDED, MIS_SELECTED, MIS_DOMINATED = 0, 1, 2


class ProposalEngine:
    """Accelerated proposal computation for one weak-carving run.

    The weak-phase driver (:func:`repro.weak.phases.run_phase`) keeps the
    acceptance/rejection bookkeeping itself and only delegates the per-step
    *proposal collection* — "every alive blue node picks the adjacent red
    cluster minimising ``(cluster label, neighbour uid)``" — to the engine.
    The engine mirrors the driver's label updates through :meth:`on_join` /
    :meth:`on_kill` so its internal label array never drifts from
    ``CarvingState.label``.

    Engines may additionally opt into the **batched step protocol** by
    setting :attr:`supports_step_batches`.  The driver then calls
    :meth:`propose_step` (grouped per target cluster, ascending label order
    — the order ``sorted(proposals.items())`` produces), decides every
    group, and hands the per-group verdicts back in a single
    :meth:`resolve_step` call, instead of mirroring label updates one node
    at a time.  Cluster sizes of the phase's red clusters come from
    :meth:`red_cluster_sizes` so the driver never has to rescan the alive
    set.  The batched path must produce byte-identical decisions, join
    orders and tree bookkeeping to the per-node path — the differential
    tests drive both through the same carving runs.
    """

    #: When true the driver uses propose_step/resolve_step and
    #: red_cluster_sizes instead of propose/on_join/on_kill bookkeeping.
    supports_step_batches: bool = False

    def start_phase(self, bit: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def propose(self) -> Dict[int, List[Tuple[Any, Any]]]:  # pragma: no cover
        """Proposals of the current step: ``{target label: [(node, via)]}``."""
        raise NotImplementedError

    def red_cluster_sizes(self) -> Dict[int, int]:  # pragma: no cover
        """Alive-member counts of this phase's red clusters (batch protocol)."""
        raise NotImplementedError

    def propose_step(
        self,
    ) -> List[Tuple[int, List[Any], List[Any]]]:  # pragma: no cover
        """One batched proposal step (batch protocol).

        Returns ``[(target label, proposer nodes, via nodes)]`` sorted by
        target label ascending, with the proposers of each group in
        blue-scan order; the empty list ends the phase.  Proposers are
        resolved within the step, so the engine drops them from its blue
        frontier and keeps the step's member indices until
        :meth:`resolve_step` settles them.
        """
        raise NotImplementedError

    def resolve_step(self, decisions: List[bool]) -> None:  # pragma: no cover
        """Apply the driver's verdicts for the last :meth:`propose_step`.

        ``decisions`` is aligned with the returned groups: ``True`` joins
        every member of the group to its target label, ``False`` kills the
        group's members (label ``-1``), all in one batch.
        """
        raise NotImplementedError

    def on_join(self, node: Any, new_label: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def on_kill(self, node: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release any scratch the engine borrowed (idempotent)."""


class Kernel:
    """One implementation tier of the hot-path primitives.

    The base class implements :meth:`bfs_layers` and
    :meth:`multi_source_bfs` in terms of :meth:`frontier_expand`, so a tier
    only has to provide the expansion step (plus whatever sweeps it wants to
    accelerate) to participate.
    """

    name: str = "?"

    # ------------------------------------------------------------------ #
    # BFS primitives
    # ------------------------------------------------------------------ #
    def frontier_expand(
        self, csr: Any, frontier: List[int], blocked: bytearray
    ) -> List[int]:
        """One BFS step: the unblocked neighbours of ``frontier``.

        Marks every returned index in ``blocked`` (which doubles as the
        visited mask) and returns them in first-discovery order.
        """
        raise NotImplementedError  # pragma: no cover - interface

    def bfs_layers(
        self,
        csr: Any,
        frontier: List[int],
        blocked: bytearray,
        max_radius: Optional[int] = None,
    ) -> List[List[int]]:
        """BFS layers of node indices; layer 0 is the (pre-marked) frontier.

        The caller has already resolved labels to indices and marked the
        frontier in ``blocked``; only non-empty subsequent layers are
        appended (matching ``CSRGraph._bfs_layer_indices``).
        """
        layers: List[List[int]] = [frontier]
        radius = 0
        while frontier and (max_radius is None or radius < max_radius):
            frontier = self.frontier_expand(csr, frontier, blocked)
            if not frontier:
                break
            layers.append(frontier)
            radius += 1
        return layers

    def multi_source_bfs(
        self, csr: Any, frontier: List[int], blocked: bytearray
    ) -> Tuple[int, int]:
        """BFS from ``frontier`` to exhaustion: ``(eccentricity, reached)``.

        ``reached`` counts every visited index including the sources;
        ``eccentricity`` is the number of non-empty layers beyond layer 0.
        The frontier must already be marked in ``blocked``.
        """
        depth = 0
        reached = len(frontier)
        while frontier:
            frontier = self.frontier_expand(csr, frontier, blocked)
            if not frontier:
                break
            reached += len(frontier)
            depth += 1
        return depth, reached

    def bfs_tree_parents(
        self, csr: Any, layers: List[List[int]]
    ) -> List[List[int]]:
        """BFS-tree parents per layer, in index space.

        For each node of ``layers[d]`` (``d >= 1``), its parent is the
        **first neighbour in ascending CSR row order** that lies in
        ``layers[d - 1]`` — the choice the reference materialisation loop
        makes when it scans the CSR-backed neighbour resolver.  Returns one
        list per layer ``d >= 1``, aligned with ``layers[d]``.  Every node
        below layer 0 is guaranteed a parent (BFS layers are derived from
        the same adjacency), so no sentinel values appear.
        """
        indptr = csr.indptr
        indices = csr.indices
        previous = bytearray(csr.n)
        for i in layers[0]:
            previous[i] = 1
        parents: List[List[int]] = []
        for depth in range(1, len(layers)):
            layer = layers[depth]
            found: List[int] = []
            for i in layer:
                for j in indices[indptr[i] : indptr[i + 1]]:
                    if previous[j]:
                        found.append(j)
                        break
            parents.append(found)
            for i in layers[depth - 1]:
                previous[i] = 0
            for i in layer:
                previous[i] = 1
        return parents

    # ------------------------------------------------------------------ #
    # Application-task sweeps (inherently sequential greedy loops)
    # ------------------------------------------------------------------ #
    def mis_sweep(
        self, csr: Any, member_indices: List[int], state: bytearray
    ) -> List[int]:
        """Greedy MIS extension over ``member_indices`` (in order).

        ``state`` holds one byte per node (:data:`MIS_UNDECIDED` /
        :data:`MIS_SELECTED` / :data:`MIS_DOMINATED`); returns the indices
        selected by this sweep.
        """
        raise NotImplementedError  # pragma: no cover - interface

    def greedy_color_sweep(
        self, csr: Any, member_indices: List[int], palette: Any
    ) -> List[int]:
        """First-fit coloring over ``member_indices`` (in order).

        ``palette`` is an int buffer (``array('i')``) with ``-1`` marking
        uncolored nodes; returns the chosen colors, parallel to
        ``member_indices``.
        """
        raise NotImplementedError  # pragma: no cover - interface

    # ------------------------------------------------------------------ #
    # Weak-carving proposal engine
    # ------------------------------------------------------------------ #
    def proposal_engine(
        self,
        csr: Any,
        participating: Iterable[Any],
        uid_of: Dict[Any, int],
    ) -> Optional[ProposalEngine]:
        """An accelerated proposal engine for one carving, or ``None``.

        ``None`` means "no acceleration available for this input" and sends
        the caller down the reference adjacency-list loop (e.g. non-integer
        uids, which the vectorised composite keys cannot encode).
        """
        return None


@dataclasses.dataclass(frozen=True)
class KernelSpec:
    """One registered kernel tier.

    Attributes:
        name: The kernel string (``"pure"``, ``"numpy"``, ``"numba"``).
        description: One line for ``--list-kernels`` output and the docs.
        factory: Zero-argument callable building the :class:`Kernel`
            (imports of optional dependencies happen inside it, so merely
            registering a tier never imports its extras).
        requires: Short human-readable name of the optional dependency
            (``None`` for always-available tiers).
        available: Zero-argument callable probing whether the tier can be
            instantiated in this interpreter (cheap: an import probe).
        auto_rank: Position in the ``auto`` preference order — among the
            *available* tiers, the lowest rank wins.  The JIT tier sits
            behind ``numpy`` because its first-call compilation latency only
            pays off on long runs, so it stays explicit opt-in.
    """

    name: str
    description: str
    factory: Callable[[], Kernel]
    requires: Optional[str] = None
    available: Callable[[], bool] = lambda: True
    auto_rank: int = 0


class KernelRegistry:
    """Registry of :class:`KernelSpec` by kernel string (insertion-ordered).

    Mirrors :class:`repro.registry.MethodRegistry` /
    :class:`~repro.registry.TaskRegistry`: every layer (CLI, suite specs,
    the ambient switch) validates kernel strings against this one object.
    Instances are cached per spec, so the ambient switch hands out one
    kernel object per tier for the process lifetime (the tiers keep
    per-graph scratch keyed weakly on the CSR index).
    """

    def __init__(self) -> None:
        self._specs: Dict[str, KernelSpec] = {}
        self._instances: Dict[str, Kernel] = {}

    def register(self, spec: KernelSpec, overwrite: bool = False) -> KernelSpec:
        """Add a kernel tier (``overwrite=False`` rejects name clashes)."""
        if spec.name == "auto":
            raise ValueError("'auto' is the selection rule, not a registrable kernel")
        if spec.name in self._specs and not overwrite:
            raise ValueError("kernel {!r} is already registered".format(spec.name))
        self._specs[spec.name] = spec
        self._instances.pop(spec.name, None)
        return spec

    def get(self, name: str) -> KernelSpec:
        """Look up a kernel spec, raising ``ValueError`` with the catalogue."""
        try:
            return self._specs[name]
        except KeyError:
            raise ValueError(
                "unknown kernel {!r}; choose from {}".format(
                    name, ("auto",) + self.names()
                )
            ) from None

    def names(self) -> Tuple[str, ...]:
        """All kernel strings, in registration order (``pure`` first)."""
        return tuple(self._specs)

    def available_names(self) -> Tuple[str, ...]:
        """The kernels whose dependencies import in this interpreter."""
        return tuple(name for name, spec in self._specs.items() if spec.available())

    def instantiate(self, name: str) -> Kernel:
        """The (cached) kernel instance for an explicit tier name.

        Raises ``ValueError`` when the tier's optional dependency is
        missing, naming the extra that provides it.
        """
        spec = self.get(name)
        instance = self._instances.get(name)
        if instance is None:
            if not spec.available():
                raise ValueError(
                    "kernel {!r} requires {} which is not installed; "
                    "available kernels: {}".format(
                        name, spec.requires, self.available_names()
                    )
                )
            instance = spec.factory()
            self._instances[name] = instance
        return instance

    def resolve(self, name: str) -> Kernel:
        """Resolve ``name`` (including ``"auto"``) to a kernel instance.

        ``"auto"`` picks the available tier with the lowest
        :attr:`KernelSpec.auto_rank`; explicit names must be importable.
        """
        if name == "auto":
            candidates = [spec for spec in self._specs.values() if spec.available()]
            if not candidates:  # pragma: no cover - 'pure' is always available
                raise ValueError("no kernel tier is available")
            best = min(candidates, key=lambda spec: spec.auto_rank)
            return self.instantiate(best.name)
        return self.instantiate(name)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)
