"""Theorem 2.1 — strong-diameter ball carving via weak-diameter ball carving.

This is the paper's core technical contribution: a deterministic,
small-message reduction that turns any weak-diameter ball carving algorithm
``A`` into a strong-diameter ball carving algorithm ``B``.

Outline (Section 2 of the paper).  The algorithm runs for ``log n``
iterations and maintains connected components of *alive* nodes, with the
invariant that at the start of iteration ``i`` every component has at most
``n / 2^(i-1)`` nodes.  Per component ``S``:

1. run ``A`` on ``G[S]`` with boundary parameter ``eps' = eps / (2 log n)``,
   producing non-adjacent weak-diameter clusters with Steiner trees;
2. **case (I)** — every cluster has at most ``n / 2^i`` nodes: kill the nodes
   ``A`` left unclustered and recurse on the connected components of the
   survivors (each lies inside a single cluster, hence is small enough);
3. **case (II)** — one *giant* cluster ``C`` with more than ``n / 2^i``
   nodes exists (there can be at most one): let ``a`` be the root of its
   Steiner tree, grow a ball around ``a`` in ``G[S]`` starting from radius
   ``R`` (the tree depth, so the ball covers all of ``C``) until a radius
   ``r*`` with boundary at most an ``eps/2`` fraction of the ball is found,
   output ``B_{r*}(a)`` as one strong-diameter cluster, kill the boundary
   layer, and recurse on the remaining components.

The produced clusters have strong diameter ``2 R(n, eps/(2 log n)) +
O(log n / eps)`` and at most an ``eps`` fraction of nodes is killed.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster, SteinerTree
from repro.congest.rounds import RoundLedger
from repro.graphs.csr import csr_index_or_none
from repro.graphs.properties import bfs_layers_within, induced_components, neighbors_resolver
from repro.kernels import active_kernel
from repro.weak.carving import WeakCarvingParameters, weak_diameter_carving

# Type of the black-box weak carving algorithm "A" of Theorem 2.1: it receives
# the host graph, the boundary parameter, the node subset to run on, and a
# ledger, and returns a weak-diameter BallCarving of that subset.
WeakCarvingAlgorithm = Callable[..., BallCarving]


@dataclasses.dataclass
class TransformationTrace:
    """Diagnostics of one Theorem 2.1 run (consumed by the benchmarks).

    Attributes:
        iterations: Number of outer iterations executed.
        giant_cluster_events: How often case (II) fired.
        max_weak_tree_depth: Largest Steiner-tree depth ``R`` observed among
            the giant clusters (the paper's ``R(n, eps/(2 log n))``).
        max_ball_radius: Largest carved ball radius ``r*`` observed.
        eps_inner: The boundary parameter passed to the inner weak carving.
    """

    iterations: int = 0
    giant_cluster_events: int = 0
    max_weak_tree_depth: int = 0
    max_ball_radius: int = 0
    eps_inner: float = 0.0


def _find_boundary_radius(
    graph: nx.Graph,
    root: Any,
    allowed: Set[Any],
    start_radius: int,
    eps: float,
) -> Tuple[Set[Any], Set[Any], int]:
    """Grow a ball around ``root`` inside ``allowed`` until the boundary is light.

    Finds the smallest radius ``r* >= start_radius`` with
    ``|B_{r*}| / |B_{r*+1}| >= 1 - eps/2`` (equivalently, the next layer holds
    at most an ``eps/2`` fraction of the enlarged ball) and returns
    ``(B_{r*}, B_{r*+1} \\ B_{r*}, r*)``.

    The search is guaranteed to stop within ``O(log n / eps)`` radius-growth
    steps because each failing step grows the ball by a factor larger than
    ``1 / (1 - eps/2)`` and the ball cannot exceed ``|allowed|`` nodes.
    """
    layers = bfs_layers_within(graph, [root], allowed=allowed)
    cumulative: List[int] = []
    total = 0
    for layer in layers:
        total += len(layer)
        cumulative.append(total)

    def ball_size(radius: int) -> int:
        if radius < 0:
            return 0
        index = min(radius, len(cumulative) - 1)
        return cumulative[index]

    def ball_nodes(radius: int) -> Set[Any]:
        result: Set[Any] = set()
        for layer in layers[: radius + 1]:
            result |= layer
        return result

    max_radius = len(layers) - 1
    radius = start_radius
    while True:
        inner = ball_size(radius)
        outer = ball_size(radius + 1)
        if outer == 0:
            # Degenerate: the root is isolated inside `allowed`.
            return {root} & allowed, set(), radius
        if inner / outer >= 1.0 - eps / 2.0 or radius >= max_radius:
            ball = ball_nodes(radius)
            boundary = ball_nodes(radius + 1) - ball
            return ball, boundary, radius
        radius += 1


def strong_carving_from_weak(
    graph: nx.Graph,
    eps: float,
    nodes: Optional[Iterable[Any]] = None,
    weak_algorithm: Optional[WeakCarvingAlgorithm] = None,
    ledger: Optional[RoundLedger] = None,
    trace: Optional[TransformationTrace] = None,
) -> BallCarving:
    """The Theorem 2.1 transformation: strong carving from weak carving.

    Args:
        graph: Host graph (nodes should carry ``"uid"`` attributes).
        eps: Boundary parameter of the produced *strong*-diameter carving.
        nodes: Optional node subset to operate on; defaults to all nodes.
        weak_algorithm: The black-box weak-diameter carving ``A``; defaults to
            the deterministic carving of :mod:`repro.weak`.  It must accept
            ``(graph, eps, nodes=..., ledger=...)`` and return a weak
            :class:`~repro.clustering.carving.BallCarving`.
        ledger: Round ledger to charge into.
        trace: Optional :class:`TransformationTrace` to fill with diagnostics.

    Returns:
        A strong-diameter :class:`~repro.clustering.carving.BallCarving` whose
        clusters carry internal BFS Steiner trees (congestion 1).
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie strictly between 0 and 1")
    ledger = ledger if ledger is not None else RoundLedger()
    trace = trace if trace is not None else TransformationTrace()
    weak_algorithm = weak_algorithm or weak_diameter_carving

    participating: Set[Any] = set(graph.nodes()) if nodes is None else set(nodes)
    working_graph = graph.subgraph(participating)
    n = len(participating)
    if n == 0:
        return BallCarving(graph=working_graph, clusters=[], dead=set(), eps=eps, ledger=ledger)

    log_n = max(1, int(math.ceil(math.log2(max(2, n)))))
    eps_inner = eps / (2.0 * log_n)
    trace.eps_inner = eps_inner

    dead: Set[Any] = set()
    final_clusters: List[Set[Any]] = []
    # The BFS-shaped primitives take explicit `allowed` sets (all subsets of
    # `participating`), so they run on the host graph directly — under the
    # CSR backend this hits the cached flat-array index instead of paying the
    # subgraph view's per-edge filter calls.
    components: List[Set[Any]] = induced_components(graph, participating)

    iteration = 0
    max_iterations = 2 * log_n + 4  # Safety margin over the proved log n bound.
    while components and iteration < max_iterations:
        iteration += 1
        size_threshold = n / (2 ** iteration)
        next_components: List[Set[Any]] = []
        per_component_rounds: List[int] = []

        for component in components:
            if len(component) <= 1:
                final_clusters.append(set(component))
                continue

            component_ledger = RoundLedger()
            weak = weak_algorithm(
                graph, eps_inner, nodes=component, ledger=component_ledger
            )

            giant: Optional[Cluster] = None
            for cluster in weak.clusters:
                if len(cluster) > size_threshold:
                    giant = cluster
                    break

            if giant is None:
                # Case (I): no giant cluster.  Kill the unclustered nodes and
                # continue on the connected components of the survivors; each
                # survivor component lies inside one weak cluster, hence has
                # at most n / 2^iteration nodes.
                unclustered = component - weak.clustered_nodes
                dead |= unclustered
                survivors = component - unclustered
                # Checking cluster sizes via the Steiner trees costs depth x
                # congestion rounds (pipelined aggregation).
                component_ledger.tree_aggregate(
                    max(1, _max_tree_depth(weak)),
                    congestion=max(1, weak.congestion()),
                    detail="giant-cluster check",
                )
                next_components.extend(induced_components(graph, survivors))
            else:
                # Case (II): a giant cluster exists.  Ball-carve around the
                # root of its Steiner tree inside the whole component G[S].
                trace.giant_cluster_events += 1
                root = giant.tree.root if giant.tree is not None else next(iter(giant.nodes))
                tree_depth = giant.tree.depth() if giant.tree is not None else 0
                trace.max_weak_tree_depth = max(trace.max_weak_tree_depth, tree_depth)

                component_ledger.tree_aggregate(
                    max(1, _max_tree_depth(weak)),
                    congestion=max(1, weak.congestion()),
                    detail="giant-cluster check",
                )
                ball, boundary, radius = _find_boundary_radius(
                    graph,
                    root,
                    allowed=component,
                    start_radius=tree_depth,
                    eps=eps,
                )
                trace.max_ball_radius = max(trace.max_ball_radius, radius)
                component_ledger.layer_count(radius + 1, detail="case (II) BFS and layer sizes")

                final_clusters.append(ball)
                dead |= boundary
                remaining = component - ball - boundary
                next_components.extend(induced_components(graph, remaining))

            per_component_rounds.append(component_ledger.total_rounds)

        # Components of one iteration run in parallel; the iteration costs the
        # maximum of their individual round counts.
        if per_component_rounds:
            ledger.charge(
                "theorem21_iteration",
                max(per_component_rounds),
                detail="iteration {}".format(iteration),
            )
        components = next_components

    # Any leftovers after the iteration cap become their own clusters (the
    # proof guarantees they are singletons; the cap is just defensive).
    for component in components:
        final_clusters.append(set(component))

    trace.iterations = iteration
    clusters = _materialise_clusters(graph, final_clusters)
    return BallCarving(
        graph=working_graph,
        clusters=clusters,
        dead=dead,
        eps=eps,
        ledger=ledger,
        kind="strong",
    )


def _max_tree_depth(weak: BallCarving) -> int:
    """Largest Steiner-tree depth among the weak clusters."""
    depth = 0
    for cluster in weak.clusters:
        if cluster.tree is not None:
            depth = max(depth, cluster.tree.depth())
    return depth


def _materialise_clusters(graph: nx.Graph, node_sets: List[Set[Any]]) -> List[Cluster]:
    """Turn node sets into :class:`Cluster` objects with internal BFS trees.

    Strong-diameter clusters do not need external Steiner trees; a BFS tree
    inside the cluster (congestion 1) is attached so that downstream users
    (e.g. the application template) have a communication backbone.
    """
    clusters: List[Cluster] = []
    csr = csr_index_or_none(graph)
    kernel = active_kernel() if csr is not None else None
    neighbours_of = neighbors_resolver(graph)
    for index, node_set in enumerate(node_sets):
        if not node_set:
            continue
        root = min(node_set, key=lambda node: (graph.nodes[node].get("uid", node), str(node)))
        parent: Dict[Any, Optional[Any]] = {root: None}
        layers = bfs_layers_within(graph, [root], allowed=node_set)
        if csr is not None and len(layers) > 1:
            # Kernel fast path: parent finding in index space.  The CSR
            # neighbour resolver yields rows in ascending order, so "first
            # neighbour in the previous layer" is exactly the kernel's
            # bfs_tree_parents contract, for every tier.
            node_index = csr.index
            node_list = csr.nodes
            index_layers = [[node_index[node] for node in layer] for layer in layers]
            layer_parents = kernel.bfs_tree_parents(csr, index_layers)
            for depth in range(1, len(layers)):
                for i, p in zip(index_layers[depth], layer_parents[depth - 1]):
                    parent[node_list[i]] = node_list[p]
        else:
            for depth in range(1, len(layers)):
                # Set membership for the previous layer: the list scan is
                # quadratic in layer width on fat clusters, and the first
                # qualifying neighbour (in adjacency order) is unchanged.
                previous = set(layers[depth - 1])
                for node in layers[depth]:
                    for neighbour in neighbours_of(node):
                        if neighbour in previous and neighbour in parent:
                            parent[node] = neighbour
                            break
        tree = SteinerTree(root=root, parent=parent)
        label = graph.nodes[root].get("uid", root)
        clusters.append(Cluster(nodes=frozenset(node_set), label=("strong", label, index), tree=tree))
    return clusters


def theorem22_carving(
    graph: nx.Graph,
    eps: float,
    nodes: Optional[Iterable[Any]] = None,
    ledger: Optional[RoundLedger] = None,
    weak_parameters: Optional[WeakCarvingParameters] = None,
) -> BallCarving:
    """Theorem 2.2 — the transformation instantiated with the deterministic
    weak-diameter substrate of :mod:`repro.weak`.

    Produces a strong-diameter ball carving removing at most an ``eps``
    fraction of the nodes, with cluster diameter ``O(log^3 n / eps)`` in the
    proved ``"rg20"`` mode.
    """
    parameters = weak_parameters or WeakCarvingParameters()

    def weak_algorithm(host, inner_eps, nodes=None, ledger=None):
        return weak_diameter_carving(
            host, inner_eps, nodes=nodes, ledger=ledger, parameters=parameters
        )

    return strong_carving_from_weak(
        graph, eps, nodes=nodes, weak_algorithm=weak_algorithm, ledger=ledger
    )
