"""Theorem 3.2 / 3.3 — improving the cluster diameter to ``O(log^2 n / eps)``.

The transformation of Theorem 2.1 loses an ``O(log n)`` factor in the cluster
diameter.  Section 3 of the paper recovers it: given any strong-diameter ball
carving algorithm ``A`` (we use Theorem 2.2's), recursively apply the
Lemma 3.1 procedure to each of its clusters:

* if Lemma 3.1 returns a **balanced sparse cut**, recurse on both sides (the
  separator nodes die);
* if it returns a **large small-diameter component** ``U``, accept ``U`` as a
  final cluster, kill the nodes of the cluster adjacent to ``U``, and recurse
  on the rest.

Every recursion level shrinks the part sizes by a constant factor, so there
are ``O(log n)`` levels; each level re-runs ``A`` (because the diameter of the
pieces is unbounded between levels) with boundary parameter
``Theta(eps / log n)``, and each level's Lemma 3.1 post-processing kills at
most an ``O(eps / log n)`` fraction — hence at most ``eps`` overall.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.clustering.carving import BallCarving
from repro.congest.rounds import RoundLedger
from repro.core.sparse_cut import LargeComponent, SparseCut, sparse_cut_or_component
from repro.core.strong_carving import _materialise_clusters, theorem22_carving

# A strong-diameter carving algorithm "A" consumed by Theorem 3.2.
StrongCarvingAlgorithm = Callable[..., BallCarving]


@dataclasses.dataclass
class ImprovementTrace:
    """Diagnostics of one Theorem 3.2 run."""

    recursion_levels: int = 0
    sparse_cut_events: int = 0
    component_events: int = 0
    accepted_clusters: int = 0
    base_carving_invocations: int = 0


def improved_strong_carving(
    graph: nx.Graph,
    eps: float,
    nodes: Optional[Iterable[Any]] = None,
    base_algorithm: Optional[StrongCarvingAlgorithm] = None,
    ledger: Optional[RoundLedger] = None,
    trace: Optional[ImprovementTrace] = None,
) -> BallCarving:
    """The Theorem 3.2 transformation: diameter-improved strong ball carving.

    Args:
        graph: Host graph.
        eps: Boundary parameter of the produced carving.
        nodes: Optional node subset; defaults to all nodes.
        base_algorithm: The strong-diameter carving ``A`` that is re-run at
            every recursion level; defaults to Theorem 2.2's algorithm.  Must
            accept ``(graph, eps, nodes=..., ledger=...)``.
        ledger: Round ledger to charge into.
        trace: Optional :class:`ImprovementTrace` filled with diagnostics.

    Returns:
        A strong-diameter :class:`~repro.clustering.carving.BallCarving` whose
        clusters have diameter ``O(log^2 n / eps)``.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie strictly between 0 and 1")
    ledger = ledger if ledger is not None else RoundLedger()
    trace = trace if trace is not None else ImprovementTrace()
    base_algorithm = base_algorithm or theorem22_carving

    participating: Set[Any] = set(graph.nodes()) if nodes is None else set(nodes)
    working_graph = graph.subgraph(participating)
    n = len(participating)
    if n == 0:
        return BallCarving(graph=working_graph, clusters=[], dead=set(), eps=eps, ledger=ledger)

    log_n = max(1, int(math.ceil(math.log2(max(2, n)))))
    eps_level = eps / (2.0 * log_n)
    # Clusters whose diameter already meets the O(log^2 n / eps) target are
    # accepted as-is; only oversized clusters go through the Lemma 3.1
    # cut-or-component recursion.  This matches the purpose of Theorem 3.2
    # (enforce the diameter bound) while never paying boundary removals for
    # clusters that are already good — important on small inputs where the
    # asymptotic O(eps n / log n) boundary terms would otherwise dominate.
    target_diameter = max(8, int(math.ceil(2.0 * (math.log2(max(2, n)) ** 2) / eps)))

    dead: Set[Any] = set()
    final_clusters: List[Set[Any]] = []

    # Work list of node sets still to be processed, together with their
    # recursion level (for the safety cap and round accounting: sets at the
    # same level are processed in parallel).
    pending: List[Tuple[Set[Any], int]] = [(participating, 0)]
    max_level = 4 * log_n + 8

    while pending:
        current_level = min(level for _, level in pending)
        this_level = [item for item in pending if item[1] == current_level]
        pending = [item for item in pending if item[1] != current_level]
        trace.recursion_levels = max(trace.recursion_levels, current_level + 1)

        per_piece_rounds: List[int] = []
        for piece, level in this_level:
            if not piece:
                continue
            if len(piece) <= 3:
                # Tiny pieces have diameter at most 2 already; accept them as
                # clusters (component by component, to keep non-adjacency
                # within the piece trivially true for connected outputs).
                from repro.graphs.properties import induced_components

                for component in induced_components(graph, piece):
                    final_clusters.append(component)
                continue
            if level >= max_level:
                raise RuntimeError(
                    "Theorem 3.2 recursion exceeded the expected depth; "
                    "this indicates a bug in the size-reduction argument"
                )

            piece_ledger = RoundLedger()
            trace.base_carving_invocations += 1
            carving = base_algorithm(graph, eps_level, nodes=piece, ledger=piece_ledger)
            dead |= piece - carving.clustered_nodes

            for cluster in carving.clusters:
                # Accept clusters that already meet the diameter target
                # (certified by twice the eccentricity of one BFS, which costs
                # O(diameter) rounds).
                eccentricity = _cluster_eccentricity(graph, cluster.nodes)
                piece_ledger.bfs(eccentricity, detail="diameter certificate")
                if 2 * eccentricity <= target_diameter:
                    trace.accepted_clusters += 1
                    final_clusters.append(set(cluster.nodes))
                    continue
                result = sparse_cut_or_component(
                    graph, cluster.nodes, eps, ledger=piece_ledger
                )
                if isinstance(result, SparseCut):
                    trace.sparse_cut_events += 1
                    dead |= result.separator
                    if result.side_a:
                        pending.append((set(result.side_a), level + 1))
                    if result.side_b:
                        pending.append((set(result.side_b), level + 1))
                else:
                    trace.component_events += 1
                    final_clusters.append(set(result.component))
                    dead |= result.boundary
                    remainder = set(cluster.nodes) - result.component - result.boundary
                    if remainder:
                        pending.append((remainder, level + 1))

            per_piece_rounds.append(piece_ledger.total_rounds)

        if per_piece_rounds:
            ledger.charge(
                "theorem32_level",
                max(per_piece_rounds),
                detail="recursion level {}".format(current_level),
            )

    clusters = _materialise_clusters(graph, final_clusters)
    return BallCarving(
        graph=working_graph,
        clusters=clusters,
        dead=dead,
        eps=eps,
        ledger=ledger,
        kind="strong",
    )


def _cluster_eccentricity(graph: nx.Graph, nodes) -> int:
    """Eccentricity of an arbitrary cluster node inside the cluster.

    Twice this value upper-bounds the cluster's strong diameter, which is all
    the acceptance test of :func:`improved_strong_carving` needs.
    """
    from repro.graphs.properties import bfs_layers_within

    node_set = set(nodes)
    if len(node_set) <= 1:
        return 0
    start = next(iter(sorted(node_set, key=str)))
    layers = bfs_layers_within(graph, [start], allowed=node_set)
    return len(layers) - 1


def theorem33_carving(
    graph: nx.Graph,
    eps: float,
    nodes: Optional[Iterable[Any]] = None,
    ledger: Optional[RoundLedger] = None,
) -> BallCarving:
    """Theorem 3.3 — the diameter-improved carving instantiated with the
    Theorem 2.2 algorithm as its base, giving clusters of strong diameter
    ``O(log^2 n / eps)``."""
    return improved_strong_carving(graph, eps, nodes=nodes, ledger=ledger)
