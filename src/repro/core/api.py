"""High-level one-call API: :func:`decompose`, :func:`carve`, :func:`run_task`,
:func:`run_suite`.

These are the entry points a downstream user (and the examples, CLI and
benchmarks) interact with.  Every algorithm of the reproduction is reachable
through a ``method`` string registered in :mod:`repro.registry` — the single
source of method truth:

===================  ==========================================================
method               algorithm
===================  ==========================================================
``"strong-log3"``    Theorem 2.2 / 2.3 — deterministic strong diameter
                     ``O(log^3 n)`` (the paper's first headline result)
``"strong-log2"``    Theorem 3.3 / 3.4 — deterministic strong diameter
                     ``O(log^2 n)`` (the improved result)
``"weak-rg20"``      deterministic weak-diameter substrate [RG20/GGR21]
``"ls93"``           randomized weak-diameter baseline [LS93]
``"mpx"``            randomized strong-diameter baseline [MPX13, EN16]
``"sequential"``     centralized existential construction [LS93]
===================  ==========================================================

The deterministic methods (``strong-log3``, ``strong-log2``, ``weak-rg20``,
``sequential``) ignore ``seed``; the randomized baselines (``ls93``, ``mpx``)
use it to seed their private random stream (``seed=None`` behaves like
``seed=0``, so every call is reproducible by default).  ``eps`` is the
carving boundary parameter: at most an ``eps`` fraction of the (sub)graph's
nodes ends up dead — exactly for the deterministic methods, in expectation
for the randomized ones.  Decompositions have no ``eps`` parameter; they fix
their own per-color budgets internally.

On top of a decomposition run the §1.1 **tasks** of :data:`repro.registry.TASKS`
(``"mis"``, ``"coloring"``): :func:`run_task` decomposes (or reuses a given
decomposition) and executes the task through the ``C * D`` color template,
returning the verified solution and its round cost.

Both single-shot entry points additionally accept ``backend="csr" | "nx"``
(default: the ambient backend, which is ``"csr"``): ``"csr"`` routes all
graph walks through the flat-array graph core of :mod:`repro.graphs.csr`,
``"nx"`` runs the original dict-of-dicts networkx walks.  The two backends
produce identical results — ``"nx"`` is kept as a differential-testing
oracle and for graphs the CSR index cannot represent.

Orthogonally to the backend, ``kernel="auto" | "pure" | "numpy" | "numba"``
selects the implementation tier of the CSR hot loops (frontier expansion,
proposal steps, task sweeps) from :data:`repro.kernels.KERNELS`; every tier
produces identical results, and ``None`` keeps the ambient selection
(default ``"auto"`` — ``numpy`` when installed, else ``pure``).

:func:`run_suite` is the batched form: it expands a declarative
``(scenario x n x method x eps x seed x task)`` grid into cells and runs
them with resume support and optional multiprocessing fan-out — see
:mod:`repro.pipeline` and ``docs/pipeline.md``.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Optional

import networkx as nx

from repro.clustering.carving import BallCarving
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger
from repro.graphs.backend import use_backend
from repro.graphs.csr import refresh_csr_cache
from repro.kernels import use_kernel
from repro.registry import (
    CARVING_METHODS,
    DECOMPOSITION_METHODS,
    METHODS,
    TASKS,
    TaskResult,
)


def carve(
    graph: nx.Graph,
    eps: float,
    method: str = "strong-log3",
    nodes: Optional[Iterable[Any]] = None,
    ledger: Optional[RoundLedger] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> BallCarving:
    """Compute a ball carving of ``graph`` with the chosen algorithm.

    Args:
        graph: Host graph (nodes should carry ``"uid"`` attributes; see
            :func:`repro.graphs.assign_unique_identifiers`).
        eps: Boundary parameter in ``(0, 1)`` — at most an ``eps`` fraction
            of nodes is removed ("dead"): exactly for the deterministic
            methods, in expectation for ``ls93`` / ``mpx``.  Smaller ``eps``
            means fewer dead nodes but larger cluster diameters (every bound
            carries a ``1/eps`` factor).
        method: A method string from :data:`repro.registry.METHODS` (see the
            module docstring for the algorithm behind each string).
        nodes: Optional node subset to carve (default: every node).
        ledger: Optional round ledger to charge CONGEST rounds into.
        seed: Seed for the randomized baselines' private random stream;
            ignored by the deterministic methods.  ``None`` behaves like
            ``0``, so repeated calls are reproducible by default.
        backend: ``"csr"`` (flat-array graph core), ``"nx"`` (original
            networkx walks, the differential-testing oracle) or ``None`` to
            keep the ambient backend (default ``"csr"``).  Both produce
            identical cluster assignments.
        kernel: Hot-loop implementation tier from
            :data:`repro.kernels.KERNELS` (``"auto"`` / ``"pure"`` /
            ``"numpy"`` / ``"numba"``) or ``None`` to keep the ambient
            selection.  All tiers produce identical results.

    Returns:
        A :class:`~repro.clustering.carving.BallCarving`.
    """
    spec = METHODS.get(method)
    rng = random.Random(seed if seed is not None else 0)
    # One staleness check per API call: callers who mutated the graph in
    # place since the last call get a fresh CSR index.  Exception: hosts
    # rebuilt by CSRGraph.to_networkx carry a frozen index whose check is
    # O(1) counts only — they are immutable by contract (mutating one
    # requires invalidate_csr_cache first; see CSRGraph.to_networkx).
    refresh_csr_cache(graph)
    with use_backend(backend), use_kernel(kernel):
        return spec.carve(graph, eps, nodes, ledger, rng)


def decompose(
    graph: nx.Graph,
    method: str = "strong-log3",
    ledger: Optional[RoundLedger] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    kernel: Optional[str] = None,
    partition_nodes: Optional[int] = None,
) -> NetworkDecomposition:
    """Compute a network decomposition of ``graph`` with the chosen algorithm.

    Args:
        graph: Host graph (nodes should carry ``"uid"`` attributes; see
            :func:`repro.graphs.assign_unique_identifiers`).
        method: A method string from :data:`repro.registry.METHODS` (see the
            module docstring for the algorithm behind each string).  There
            is no ``eps`` parameter: decompositions fix their per-color
            budgets internally.
        ledger: Optional round ledger to charge CONGEST rounds into.
        seed: Seed for the randomized baselines' private random stream;
            ignored by the deterministic methods.  ``None`` behaves like
            ``0``, so repeated calls are reproducible by default.
        backend: ``"csr"``, ``"nx"`` or ``None`` (ambient default, ``"csr"``)
            — see :func:`carve`.
        kernel: Hot-loop tier (``"auto"`` / ``"pure"`` / ``"numpy"`` /
            ``"numba"``) or ``None`` (ambient) — see :func:`carve`.
        partition_nodes: Optional node budget for the out-of-core
            partitioned path: the node set is split into deterministic
            BFS-ordered chunks of at most this many nodes and each chunk is
            decomposed independently with per-chunk color offsets — see
            :func:`repro.core.decomposition.partitioned_decomposition`.
            ``None`` (default) decomposes the whole graph at once.

    Returns:
        A :class:`~repro.clustering.decomposition.NetworkDecomposition`
        covering every node.
    """
    spec = METHODS.get(method)
    rng = random.Random(seed if seed is not None else 0)
    refresh_csr_cache(graph)
    with use_backend(backend), use_kernel(kernel):
        if partition_nodes:
            # Imported lazily to keep the registry/API import graph acyclic.
            from repro.core.decomposition import partitioned_decomposition

            def carving(host, eps, nodes=None, ledger=None):
                return spec.carve(host, eps, nodes, ledger, rng)

            return partitioned_decomposition(
                graph, carving, partition_nodes, eps=0.5, ledger=ledger, kind=spec.kind
            )
        return spec.decompose(graph, ledger, rng)


def run_task(
    graph: nx.Graph,
    method: str = "strong-log3",
    task: str = "mis",
    ledger: Optional[RoundLedger] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    kernel: Optional[str] = None,
    decomposition: Optional[NetworkDecomposition] = None,
    partition_nodes: Optional[int] = None,
) -> TaskResult:
    """Run a pipeline task (MIS, coloring) on a network decomposition.

    The applications form of the API: decomposes ``graph`` with ``method``
    (or reuses ``decomposition`` — one decomposition can serve many tasks),
    executes the task through the ``C * D`` color template, verifies the
    solution on the host graph, and returns a
    :class:`~repro.registry.TaskResult`.

    Args:
        graph: Host graph (must be the decomposition's graph when one is
            passed).
        method: Method string for the decomposition (ignored for the
            clustering when ``decomposition`` is given, but still recorded
            in the result).
        task: A task string from :data:`repro.registry.TASKS`
            (``"decompose"`` runs no application and returns empty metrics).
        ledger: Optional round ledger; the decomposition's construction cost
            and the task's template cost are both charged into it.
        seed: Seed for randomized decomposition methods (see
            :func:`decompose`); the task solvers themselves are
            deterministic.
        backend: Graph backend for the decomposition *and* the task's hot
            loops (``"csr"`` flat arrays by default, ``"nx"`` oracle).
        kernel: Hot-loop tier for both as well (``None`` keeps the ambient
            selection) — see :func:`carve`.
        decomposition: Optional precomputed decomposition to reuse instead
            of decomposing again.
        partition_nodes: Optional node budget for the partitioned
            out-of-core decomposition path (ignored when ``decomposition``
            is given) — see :func:`decompose`.

    Returns:
        A :class:`~repro.registry.TaskResult` with the solution, the task's
        template round cost, and its measured metrics (including
        ``verified``).
    """
    spec = TASKS.get(task)
    if decomposition is None:
        decomposition = decompose(
            graph,
            method=method,
            ledger=ledger,
            seed=seed,
            backend=backend,
            kernel=kernel,
            partition_nodes=partition_nodes,
        )
    elif decomposition.graph is not graph:
        # Solving runs on decomposition.graph while verification and metrics
        # read ``graph``; a mismatch would silently certify a solution
        # against the wrong graph.
        raise ValueError(
            "run_task received a decomposition of a different graph object; "
            "pass the decomposition's own host graph"
        )
    if spec.solve is None:
        return TaskResult(
            task=task,
            method=method,
            solution=None,
            rounds=0,
            metrics={},
            decomposition=decomposition,
        )
    refresh_csr_cache(graph)
    solution, rounds, metrics = _execute_task(spec, decomposition, graph, backend, kernel=kernel)
    if ledger is not None:
        ledger.charge("subroutine", rounds, detail="task {}".format(task))
    return TaskResult(
        task=task,
        method=method,
        solution=solution,
        rounds=rounds,
        metrics=metrics,
        decomposition=decomposition,
    )


def _execute_task(task_spec, decomposition, graph, backend, kernel=None):
    """Solve + measure + verify one task; the single task-execution path.

    Shared by :func:`run_task` and the suite runner's task groups so the
    semantics (backend and kernel scoping, a fresh ledger per task, the
    ``verified`` bit) cannot diverge between single-shot and batched
    execution.  Returns ``(solution, task_rounds, metrics)``; callers
    refresh the CSR cache once per invocation themselves.
    """
    task_ledger = RoundLedger()
    with use_backend(backend), use_kernel(kernel):
        solution = task_spec.solve(decomposition, task_ledger)
        metrics = dict(task_spec.measure(graph, solution))
        metrics["verified"] = bool(task_spec.verify(graph, solution))
    return solution, task_ledger.total_rounds, metrics


def run_suite(
    spec,
    store=None,
    workers: int = 1,
    shared_graphs="auto",
    arena_mb: int = 256,
    start_method: Optional[str] = None,
    store_backend: Optional[str] = None,
    faults=None,
    cell_timeout: Optional[float] = None,
    max_retries: int = 0,
    trace: Optional[str] = None,
    metrics: bool = False,
    progress=False,
    shard=None,
):
    """Run a whole experiment grid (the batched form of carve/decompose).

    Expands ``spec`` — a ``(scenario x n x method x eps x seed x task)``
    grid — into cells, skips every cell already present in ``store``
    (resume), and runs the rest serially or over a ``multiprocessing`` pool.
    Each cell runs :func:`carve`, :func:`decompose` or a registered task on
    the spec's ``backend`` and streams a result record (grid parameters +
    measured metrics + task metrics + a ``timings`` wall-time breakdown)
    into the store.

    Scheduling is **column-batched**: cells sharing a topology column are
    executed against one graph build.  With ``shared_graphs`` enabled (the
    default) the build happens exactly once per column — in-process for
    serial runs, published as a zero-copy shared-memory segment
    (:mod:`repro.pipeline.arena`) for pool runs — instead of once per cell.
    On top of that, cells differing only in ``task`` share one
    decomposition: the clustering is computed once per ``(scenario, n,
    method, eps, seed)`` group and every requested task runs against it.
    Records are identical either way; only the timings move.

    Seeds are derived per cell from ``spec.master_seed``: the *graph* seed
    depends only on ``(scenario, n, seed index)`` so method columns compare
    on identical topologies, while the *algorithm* seed depends on the cell
    id minus the task axis (tasks share their group's decomposition) — see
    :func:`repro.pipeline.runner.derive_cell_seed`.

    Args:
        spec: A :class:`repro.pipeline.SuiteSpec`, a spec dictionary, or the
            path of a JSON spec file (format: ``docs/pipeline.md``).
        store: An open run store (any backend), the path of a store file
            (created, or resumed if it exists; ``.sqlite``/``.db`` paths
            select the SQLite backend, everything else JSON lines), or
            ``None`` for a fresh in-memory store.
        workers: Fan-out pool size; ``1`` is serial, ``0``/``None``
            autodetects the CPU count.
        shared_graphs: ``"auto"`` (default) / ``"on"`` / ``"off"`` — share
            one topology build per grid column; ``"auto"`` falls back to
            per-cell rebuilds where ``multiprocessing.shared_memory`` is
            unusable, ``"on"`` raises there instead.
        arena_mb: Budget (MiB) for live shared-memory segments in pool mode.
        start_method: Optional multiprocessing start method for the pool.
        store_backend: Explicit store backend (``"jsonl"`` / ``"sqlite"``)
            when ``store`` is a path; default selects by extension.
        faults: Optional fault-injection plan (a ``"drop:0.05,crash:1"``
            style spec string or a :class:`repro.congest.faults.FaultPlan`);
            enables supervised execution (see docs/robustness.md).
        cell_timeout: Per-cell wall-clock deadline in seconds; enables
            supervised execution.
        max_retries: Retries per failing cell before quarantine as an
            explicit ``status="failed"`` record; enables supervised
            execution.  All three default to off — the legacy fail-fast
            behaviour.
        trace: Optional span-trace file: every pipeline phase (and pool
            worker) appends one JSON line per closed span — analyse with
            ``python -m repro trace summarize`` (see docs/telemetry.md).
        metrics: Collect run counters/histograms and store them as one
            per-run ``telemetry`` summary record (export with
            ``python -m repro telemetry export``).
        progress: ``True`` for a rate-limited live heartbeat on stderr,
            or a writable stream to send it elsewhere.
        shard: Run only one deterministic slice of the grid — an
            ``(index, count)`` pair or an ``"i/k"`` string (the CLI's
            ``--shard``).  Each shard invocation writes its own store;
            union them with ``python -m repro store merge``.  See
            :func:`repro.pipeline.runner.shard_of` for the partition.

    Returns:
        A :class:`repro.pipeline.SuiteResult` (records, executed/skipped
        counts, wall time, the store, and the ``arena`` scheduling summary).
    """
    # Imported lazily so `import repro` does not pay for multiprocessing.
    from repro.pipeline.runner import run_suite as _run_suite

    return _run_suite(
        spec,
        store=store,
        workers=workers,
        shared_graphs=shared_graphs,
        arena_mb=arena_mb,
        start_method=start_method,
        store_backend=store_backend,
        faults=faults,
        cell_timeout=cell_timeout,
        max_retries=max_retries,
        trace=trace,
        metrics=metrics,
        progress=progress,
        shard=shard,
    )
