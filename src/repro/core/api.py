"""High-level one-call API: :func:`decompose`, :func:`carve`, :func:`run_suite`.

These are the entry points a downstream user (and the examples, CLI and
benchmarks) interact with.  Every algorithm of the reproduction is reachable
through a ``method`` string:

===================  ==========================================================
method               algorithm
===================  ==========================================================
``"strong-log3"``    Theorem 2.2 / 2.3 — deterministic strong diameter
                     ``O(log^3 n)`` (the paper's first headline result)
``"strong-log2"``    Theorem 3.3 / 3.4 — deterministic strong diameter
                     ``O(log^2 n)`` (the improved result)
``"weak-rg20"``      deterministic weak-diameter substrate [RG20/GGR21]
``"ls93"``           randomized weak-diameter baseline [LS93]
``"mpx"``            randomized strong-diameter baseline [MPX13, EN16]
``"sequential"``     centralized existential construction [LS93]
===================  ==========================================================

The deterministic methods (``strong-log3``, ``strong-log2``, ``weak-rg20``,
``sequential``) ignore ``seed``; the randomized baselines (``ls93``, ``mpx``)
use it to seed their private random stream (``seed=None`` behaves like
``seed=0``, so every call is reproducible by default).  ``eps`` is the
carving boundary parameter: at most an ``eps`` fraction of the (sub)graph's
nodes ends up dead — exactly for the deterministic methods, in expectation
for the randomized ones.  Decompositions have no ``eps`` parameter; they fix
their own per-color budgets internally.

Both single-shot entry points additionally accept ``backend="csr" | "nx"``
(default: the ambient backend, which is ``"csr"``): ``"csr"`` routes all
ball growing through the flat-array graph core of :mod:`repro.graphs.csr`,
``"nx"`` runs the original dict-of-dicts networkx walks.  The two backends
produce identical cluster assignments — ``"nx"`` is kept as a
differential-testing oracle and for graphs the CSR index cannot represent.

:func:`run_suite` is the batched form: it expands a declarative
``(scenario x n x method x eps x seed)`` grid into cells and runs them with
resume support and optional multiprocessing fan-out — see
:mod:`repro.pipeline` and ``docs/pipeline.md``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, Optional

import networkx as nx

from repro.baselines.linial_saks import linial_saks_carving, linial_saks_decomposition
from repro.baselines.mpx import mpx_carving, mpx_decomposition
from repro.baselines.sequential import (
    greedy_sequential_carving,
    greedy_sequential_decomposition,
)
from repro.clustering.carving import BallCarving
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger
from repro.core.decomposition import (
    theorem23_decomposition,
    theorem34_decomposition,
    weak_decomposition_rg20,
)
from repro.core.improved_carving import theorem33_carving
from repro.core.strong_carving import theorem22_carving
from repro.graphs.backend import use_backend
from repro.graphs.csr import refresh_csr_cache
from repro.weak.carving import weak_diameter_carving

CARVING_METHODS = ("strong-log3", "strong-log2", "weak-rg20", "ls93", "mpx", "sequential")
DECOMPOSITION_METHODS = CARVING_METHODS


def carve(
    graph: nx.Graph,
    eps: float,
    method: str = "strong-log3",
    nodes: Optional[Iterable[Any]] = None,
    ledger: Optional[RoundLedger] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
) -> BallCarving:
    """Compute a ball carving of ``graph`` with the chosen algorithm.

    Args:
        graph: Host graph (nodes should carry ``"uid"`` attributes; see
            :func:`repro.graphs.assign_unique_identifiers`).
        eps: Boundary parameter in ``(0, 1)`` — at most an ``eps`` fraction
            of nodes is removed ("dead"): exactly for the deterministic
            methods, in expectation for ``ls93`` / ``mpx``.  Smaller ``eps``
            means fewer dead nodes but larger cluster diameters (every bound
            carries a ``1/eps`` factor).
        method: One of :data:`CARVING_METHODS` (see the module docstring for
            the algorithm behind each string).
        nodes: Optional node subset to carve (default: every node).
        ledger: Optional round ledger to charge CONGEST rounds into.
        seed: Seed for the randomized baselines' private random stream;
            ignored by the deterministic methods.  ``None`` behaves like
            ``0``, so repeated calls are reproducible by default.
        backend: ``"csr"`` (flat-array graph core), ``"nx"`` (original
            networkx walks, the differential-testing oracle) or ``None`` to
            keep the ambient backend (default ``"csr"``).  Both produce
            identical cluster assignments.

    Returns:
        A :class:`~repro.clustering.carving.BallCarving`.
    """
    rng = random.Random(seed if seed is not None else 0)
    # One staleness check per API call: callers who mutated the graph in
    # place since the last call get a fresh CSR index.  Exception: hosts
    # rebuilt by CSRGraph.to_networkx carry a frozen index whose check is
    # O(1) counts only — they are immutable by contract (mutating one
    # requires invalidate_csr_cache first; see CSRGraph.to_networkx).
    refresh_csr_cache(graph)
    with use_backend(backend):
        if method == "strong-log3":
            return theorem22_carving(graph, eps, nodes=nodes, ledger=ledger)
        if method == "strong-log2":
            return theorem33_carving(graph, eps, nodes=nodes, ledger=ledger)
        if method == "weak-rg20":
            return weak_diameter_carving(graph, eps, nodes=nodes, ledger=ledger)
        if method == "ls93":
            return linial_saks_carving(graph, eps, nodes=nodes, ledger=ledger, rng=rng)
        if method == "mpx":
            return mpx_carving(graph, eps, nodes=nodes, ledger=ledger, rng=rng)
        if method == "sequential":
            return greedy_sequential_carving(graph, eps, nodes=nodes, ledger=ledger)
    raise ValueError("unknown carving method {!r}; choose from {}".format(method, CARVING_METHODS))


def decompose(
    graph: nx.Graph,
    method: str = "strong-log3",
    ledger: Optional[RoundLedger] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
) -> NetworkDecomposition:
    """Compute a network decomposition of ``graph`` with the chosen algorithm.

    Args:
        graph: Host graph (nodes should carry ``"uid"`` attributes; see
            :func:`repro.graphs.assign_unique_identifiers`).
        method: One of :data:`DECOMPOSITION_METHODS` (see the module
            docstring for the algorithm behind each string).  There is no
            ``eps`` parameter: decompositions fix their per-color budgets
            internally.
        ledger: Optional round ledger to charge CONGEST rounds into.
        seed: Seed for the randomized baselines' private random stream;
            ignored by the deterministic methods.  ``None`` behaves like
            ``0``, so repeated calls are reproducible by default.
        backend: ``"csr"``, ``"nx"`` or ``None`` (ambient default, ``"csr"``)
            — see :func:`carve`.

    Returns:
        A :class:`~repro.clustering.decomposition.NetworkDecomposition`
        covering every node.
    """
    rng = random.Random(seed if seed is not None else 0)
    refresh_csr_cache(graph)
    with use_backend(backend):
        if method == "strong-log3":
            return theorem23_decomposition(graph, ledger=ledger)
        if method == "strong-log2":
            return theorem34_decomposition(graph, ledger=ledger)
        if method == "weak-rg20":
            return weak_decomposition_rg20(graph, ledger=ledger)
        if method == "ls93":
            return linial_saks_decomposition(graph, ledger=ledger, rng=rng)
        if method == "mpx":
            return mpx_decomposition(graph, ledger=ledger, rng=rng)
        if method == "sequential":
            return greedy_sequential_decomposition(graph, ledger=ledger)
    raise ValueError(
        "unknown decomposition method {!r}; choose from {}".format(method, DECOMPOSITION_METHODS)
    )


def run_suite(
    spec,
    store=None,
    workers: int = 1,
    shared_graphs="auto",
    arena_mb: int = 256,
    start_method: Optional[str] = None,
    store_backend: Optional[str] = None,
):
    """Run a whole experiment grid (the batched form of carve/decompose).

    Expands ``spec`` — a ``(scenario x n x method x eps x seed)`` grid — into
    cells, skips every cell already present in ``store`` (resume), and runs
    the rest serially or over a ``multiprocessing`` pool.  Each cell runs
    :func:`carve` or :func:`decompose` on the spec's ``backend`` and streams
    a result record (grid parameters + measured metrics + a
    ``timings`` wall-time breakdown) into the store.

    Scheduling is **column-batched**: cells sharing a topology column are
    executed against one graph build.  With ``shared_graphs`` enabled (the
    default) the build happens exactly once per column — in-process for
    serial runs, published as a zero-copy shared-memory segment
    (:mod:`repro.pipeline.arena`) for pool runs — instead of once per cell.
    Records are identical either way; only the timings move.

    Seeds are derived per cell from ``spec.master_seed``: the *graph* seed
    depends only on ``(scenario, n, seed index)`` so method columns compare
    on identical topologies, while the *algorithm* seed depends on the full
    cell id — see :func:`repro.pipeline.runner.derive_cell_seed`.

    Args:
        spec: A :class:`repro.pipeline.SuiteSpec`, a spec dictionary, or the
            path of a JSON spec file (format: ``docs/pipeline.md``).
        store: An open run store (any backend), the path of a store file
            (created, or resumed if it exists; ``.sqlite``/``.db`` paths
            select the SQLite backend, everything else JSON lines), or
            ``None`` for a fresh in-memory store.
        workers: Fan-out pool size; ``1`` is serial, ``0``/``None``
            autodetects the CPU count.
        shared_graphs: ``"auto"`` (default) / ``"on"`` / ``"off"`` — share
            one topology build per grid column; ``"auto"`` falls back to
            per-cell rebuilds where ``multiprocessing.shared_memory`` is
            unusable, ``"on"`` raises there instead.
        arena_mb: Budget (MiB) for live shared-memory segments in pool mode.
        start_method: Optional multiprocessing start method for the pool.
        store_backend: Explicit store backend (``"jsonl"`` / ``"sqlite"``)
            when ``store`` is a path; default selects by extension.

    Returns:
        A :class:`repro.pipeline.SuiteResult` (records, executed/skipped
        counts, wall time, the store, and the ``arena`` scheduling summary).
    """
    # Imported lazily so `import repro` does not pay for multiprocessing.
    from repro.pipeline.runner import run_suite as _run_suite

    return _run_suite(
        spec,
        store=store,
        workers=workers,
        shared_graphs=shared_graphs,
        arena_mb=arena_mb,
        start_method=start_method,
        store_backend=store_backend,
    )
