"""Network decompositions via repeated ball carving (Theorems 2.3 and 3.4).

The standard reduction of Linial and Saks [LS93]: repeat a ball carving with
boundary parameter ``eps = 1/2`` on the still-unclustered nodes; the clusters
produced in the ``i``-th repetition receive color ``i``.  Every repetition
clusters at least half of the remaining nodes, so ``O(log n)`` colors suffice.
Clusters of the same color are non-adjacent because they come from a single
carving; the diameter bound of the decomposition is the diameter bound of the
carving.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, List, Optional, Set

import networkx as nx

from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger
from repro.core.improved_carving import theorem33_carving
from repro.core.strong_carving import theorem22_carving
from repro.graphs.csr import csr_index_or_none
from repro.weak.carving import weak_diameter_carving

# A ball carving algorithm usable by the reduction: it accepts
# (graph, eps, nodes=..., ledger=...) and returns a BallCarving.
CarvingAlgorithm = Callable[..., BallCarving]


def decomposition_via_carving(
    graph: nx.Graph,
    carving_algorithm: CarvingAlgorithm,
    eps: float = 0.5,
    ledger: Optional[RoundLedger] = None,
    kind: str = "strong",
    max_colors: Optional[int] = None,
    nodes: Optional[Iterable[Any]] = None,
) -> NetworkDecomposition:
    """Build a network decomposition by iterating a ball carving algorithm.

    Args:
        graph: Host graph.
        carving_algorithm: The ball carving used per color class.
        eps: Boundary parameter per repetition (the classic reduction uses
            ``1/2``: at least half of the remaining nodes are clustered per
            color).
        ledger: Round ledger; the repetitions run sequentially so their costs
            add up.
        kind: ``"strong"`` or ``"weak"`` — the diameter guarantee of the
            carving (propagated to the decomposition).
        max_colors: Safety cap on the number of repetitions; defaults to
            ``4 * log2 n + 8``.
        nodes: Optional node subset to decompose (default: every node) —
            the partitioned out-of-core path decomposes one chunk at a time
            through this.

    Returns:
        A :class:`~repro.clustering.decomposition.NetworkDecomposition`
        covering every node of ``graph`` (or of ``nodes``).
    """
    ledger = ledger if ledger is not None else RoundLedger()
    if nodes is None:
        remaining: Set[Any] = set(graph.nodes())
    else:
        remaining = {node for node in nodes if node in graph}
    n = len(remaining)
    if n == 0:
        return NetworkDecomposition(graph=graph, clusters=[], ledger=ledger, kind=kind)

    if max_colors is None:
        max_colors = 4 * max(1, int(math.ceil(math.log2(max(2, n))))) + 8

    colored_clusters: List[Cluster] = []
    color = 0

    while remaining:
        if color >= max_colors:
            raise RuntimeError(
                "network decomposition used more than {} colors; the carving "
                "is not clustering enough nodes per repetition".format(max_colors)
            )
        carving = carving_algorithm(graph, eps, nodes=remaining, ledger=ledger)
        clustered = carving.clustered_nodes
        if not clustered:
            # Degenerate fallback (cannot happen for eps < 1 with a correct
            # carving, which clusters at least a (1 - eps) fraction): cluster
            # every remaining node as a singleton to guarantee termination.
            for node in sorted(remaining, key=str):
                colored_clusters.append(
                    Cluster(nodes=frozenset({node}), label=("singleton", node), color=color)
                )
            remaining = set()
            break
        for cluster in carving.clusters:
            colored_clusters.append(
                Cluster(
                    nodes=cluster.nodes,
                    label=(color, cluster.label),
                    color=color,
                    tree=cluster.tree,
                )
            )
        remaining -= clustered
        color += 1

    return NetworkDecomposition(graph=graph, clusters=colored_clusters, ledger=ledger, kind=kind)


def _bfs_chunk_order(graph: nx.Graph) -> List[Any]:
    """Every node of ``graph`` in a deterministic BFS order.

    Components are visited in ascending order of their smallest node
    *index* (the CSR / insertion order), and within a component the BFS
    expands neighbours in ascending index order.  Both graph backends
    (in-memory and memmap) index nodes identically, so the order — and
    therefore any chunking derived from it — is backend-independent.
    """
    csr = csr_index_or_none(graph, respect_backend=False)
    if csr is not None:
        nodes = csr.nodes
        indptr = csr.indptr
        indices = csr.indices
        n = csr.n

        def row(i: int) -> Iterable[int]:
            return indices[indptr[i] : indptr[i + 1]]

    else:
        nodes = list(graph.nodes())
        n = len(nodes)
        position = {node: i for i, node in enumerate(nodes)}
        rows: List[List[int]] = [
            sorted(position[other] for other in graph.neighbors(node)) for node in nodes
        ]

        def row(i: int) -> Iterable[int]:
            return rows[i]

    seen = bytearray(n)
    order: List[int] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = 1
        order.append(start)
        head = len(order) - 1
        while head < len(order):
            i = order[head]
            head += 1
            for j in row(i):
                if not seen[j]:
                    seen[j] = 1
                    order.append(j)
    return [nodes[i] for i in order]


def partition_node_chunks(graph: nx.Graph, chunk_size: int) -> List[List[Any]]:
    """Split ``graph``'s nodes into BFS-ordered chunks of ``chunk_size``.

    The BFS order keeps chunks topologically coherent (a chunk is a union
    of contiguous BFS prefixes), which keeps the per-chunk working set of
    the partitioned decomposition small.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive, got {}".format(chunk_size))
    ordered = _bfs_chunk_order(graph)
    return [ordered[i : i + chunk_size] for i in range(0, len(ordered), chunk_size)]


def partitioned_decomposition(
    graph: nx.Graph,
    carving_algorithm: CarvingAlgorithm,
    partition_nodes: int,
    eps: float = 0.5,
    ledger: Optional[RoundLedger] = None,
    kind: str = "strong",
    max_colors: Optional[int] = None,
) -> NetworkDecomposition:
    """Decompose ``graph`` chunk-by-chunk under a node budget.

    The node set is split into deterministic BFS-ordered chunks of at most
    ``partition_nodes`` nodes; each chunk is decomposed independently via
    :func:`decomposition_via_carving` (sharing one ledger, so round costs
    add up as a sequential composition) and the chunk's colors are shifted
    past the colors already in use.  Same-color clusters stay non-adjacent
    because they always originate from a single carving repetition of a
    single chunk; the price of partitioning is a color count that grows
    with the number of chunks, which is the usual trade-off for bounding
    the peak working set on out-of-core graphs.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    chunks = partition_node_chunks(graph, partition_nodes)
    if len(chunks) <= 1:
        return decomposition_via_carving(
            graph,
            carving_algorithm,
            eps=eps,
            ledger=ledger,
            kind=kind,
            max_colors=max_colors,
        )

    merged: List[Cluster] = []
    offset = 0
    for chunk_index, chunk in enumerate(chunks):
        part = decomposition_via_carving(
            graph,
            carving_algorithm,
            eps=eps,
            ledger=ledger,
            kind=kind,
            max_colors=max_colors,
            nodes=chunk,
        )
        peak = 0
        for cluster in part.clusters:
            color = cluster.color + offset
            peak = max(peak, cluster.color + 1)
            merged.append(
                Cluster(
                    nodes=cluster.nodes,
                    label=("part", chunk_index) + tuple(cluster.label),
                    color=color,
                    tree=cluster.tree,
                )
            )
        offset += peak

    return NetworkDecomposition(graph=graph, clusters=merged, ledger=ledger, kind=kind)


def theorem23_decomposition(
    graph: nx.Graph,
    ledger: Optional[RoundLedger] = None,
) -> NetworkDecomposition:
    """Theorem 2.3 — strong-diameter network decomposition with ``O(log n)``
    colors and ``O(log^3 n)`` diameter, by iterating the Theorem 2.2 carving
    with ``eps = 1/2``."""
    return decomposition_via_carving(graph, theorem22_carving, eps=0.5, ledger=ledger, kind="strong")


def theorem34_decomposition(
    graph: nx.Graph,
    ledger: Optional[RoundLedger] = None,
) -> NetworkDecomposition:
    """Theorem 3.4 — strong-diameter network decomposition with ``O(log n)``
    colors and ``O(log^2 n)`` diameter, by iterating the Theorem 3.3 carving
    with ``eps = 1/2``."""
    return decomposition_via_carving(graph, theorem33_carving, eps=0.5, ledger=ledger, kind="strong")


def weak_decomposition_rg20(
    graph: nx.Graph,
    ledger: Optional[RoundLedger] = None,
) -> NetworkDecomposition:
    """The [RG20]-style *weak*-diameter decomposition (Table 1's weak
    deterministic row), by iterating the weak carving with ``eps = 1/2``."""
    return decomposition_via_carving(
        graph, weak_diameter_carving, eps=0.5, ledger=ledger, kind="weak"
    )
