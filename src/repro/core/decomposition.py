"""Network decompositions via repeated ball carving (Theorems 2.3 and 3.4).

The standard reduction of Linial and Saks [LS93]: repeat a ball carving with
boundary parameter ``eps = 1/2`` on the still-unclustered nodes; the clusters
produced in the ``i``-th repetition receive color ``i``.  Every repetition
clusters at least half of the remaining nodes, so ``O(log n)`` colors suffice.
Clusters of the same color are non-adjacent because they come from a single
carving; the diameter bound of the decomposition is the diameter bound of the
carving.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, List, Optional, Set

import networkx as nx

from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger
from repro.core.improved_carving import theorem33_carving
from repro.core.strong_carving import theorem22_carving
from repro.weak.carving import weak_diameter_carving

# A ball carving algorithm usable by the reduction: it accepts
# (graph, eps, nodes=..., ledger=...) and returns a BallCarving.
CarvingAlgorithm = Callable[..., BallCarving]


def decomposition_via_carving(
    graph: nx.Graph,
    carving_algorithm: CarvingAlgorithm,
    eps: float = 0.5,
    ledger: Optional[RoundLedger] = None,
    kind: str = "strong",
    max_colors: Optional[int] = None,
) -> NetworkDecomposition:
    """Build a network decomposition by iterating a ball carving algorithm.

    Args:
        graph: Host graph.
        carving_algorithm: The ball carving used per color class.
        eps: Boundary parameter per repetition (the classic reduction uses
            ``1/2``: at least half of the remaining nodes are clustered per
            color).
        ledger: Round ledger; the repetitions run sequentially so their costs
            add up.
        kind: ``"strong"`` or ``"weak"`` — the diameter guarantee of the
            carving (propagated to the decomposition).
        max_colors: Safety cap on the number of repetitions; defaults to
            ``4 * log2 n + 8``.

    Returns:
        A :class:`~repro.clustering.decomposition.NetworkDecomposition`
        covering every node of ``graph``.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    n = graph.number_of_nodes()
    if n == 0:
        return NetworkDecomposition(graph=graph, clusters=[], ledger=ledger, kind=kind)

    if max_colors is None:
        max_colors = 4 * max(1, int(math.ceil(math.log2(max(2, n))))) + 8

    remaining: Set[Any] = set(graph.nodes())
    colored_clusters: List[Cluster] = []
    color = 0

    while remaining:
        if color >= max_colors:
            raise RuntimeError(
                "network decomposition used more than {} colors; the carving "
                "is not clustering enough nodes per repetition".format(max_colors)
            )
        carving = carving_algorithm(graph, eps, nodes=remaining, ledger=ledger)
        clustered = carving.clustered_nodes
        if not clustered:
            # Degenerate fallback (cannot happen for eps < 1 with a correct
            # carving, which clusters at least a (1 - eps) fraction): cluster
            # every remaining node as a singleton to guarantee termination.
            for node in sorted(remaining, key=str):
                colored_clusters.append(
                    Cluster(nodes=frozenset({node}), label=("singleton", node), color=color)
                )
            remaining = set()
            break
        for cluster in carving.clusters:
            colored_clusters.append(
                Cluster(
                    nodes=cluster.nodes,
                    label=(color, cluster.label),
                    color=color,
                    tree=cluster.tree,
                )
            )
        remaining -= clustered
        color += 1

    return NetworkDecomposition(graph=graph, clusters=colored_clusters, ledger=ledger, kind=kind)


def theorem23_decomposition(
    graph: nx.Graph,
    ledger: Optional[RoundLedger] = None,
) -> NetworkDecomposition:
    """Theorem 2.3 — strong-diameter network decomposition with ``O(log n)``
    colors and ``O(log^3 n)`` diameter, by iterating the Theorem 2.2 carving
    with ``eps = 1/2``."""
    return decomposition_via_carving(graph, theorem22_carving, eps=0.5, ledger=ledger, kind="strong")


def theorem34_decomposition(
    graph: nx.Graph,
    ledger: Optional[RoundLedger] = None,
) -> NetworkDecomposition:
    """Theorem 3.4 — strong-diameter network decomposition with ``O(log n)``
    colors and ``O(log^2 n)`` diameter, by iterating the Theorem 3.3 carving
    with ``eps = 1/2``."""
    return decomposition_via_carving(graph, theorem33_carving, eps=0.5, ledger=ledger, kind="strong")


def weak_decomposition_rg20(
    graph: nx.Graph,
    ledger: Optional[RoundLedger] = None,
) -> NetworkDecomposition:
    """The [RG20]-style *weak*-diameter decomposition (Table 1's weak
    deterministic row), by iterating the weak carving with ``eps = 1/2``."""
    return decomposition_via_carving(
        graph, weak_diameter_carving, eps=0.5, ledger=ledger, kind="weak"
    )
