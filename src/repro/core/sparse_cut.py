"""Lemma 3.1 — balanced sparse cut or large small-diameter component.

Given an ``n``-node graph (in our usage: the subgraph induced by one cluster
of an intermediate strong-diameter carving) and a parameter ``eps``, the
procedure returns one of:

* a **balanced sparse cut**: two non-adjacent node sets ``V1, V2`` with
  ``|V1|, |V2| >= n/3`` and a separator ``V \\ (V1 ∪ V2)`` of
  ``O(eps * n / log n)`` nodes, or
* a **large small-diameter component**: a set ``U`` with ``|U| >= n/3``,
  strong diameter ``O(log^2 n / eps)``, whose outside neighbourhood has
  ``O(eps * n / log n)`` nodes.

The algorithm follows the proof of Lemma 3.1: it maintains a shrinking seed
set ``S`` (initially all nodes).  Per iteration it computes the radii ``a``
(smallest radius whose ball around ``S`` holds ``>= n/3`` nodes) and ``b``
(``>= 2n/3`` nodes).  If ``b - a`` is large, some intermediate BFS layer is
light — cutting there yields the balanced sparse cut.  Otherwise ``S`` is
split into two halves and the half with the smaller ``a`` radius is kept;
this preserves ``a = O(iteration * log n / eps)``.  After ``O(log n)``
iterations ``S`` is a single node and a final ball-growing sweep around it
yields the large small-diameter component.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from repro.congest.rounds import RoundLedger
from repro.graphs.properties import bfs_layers_within


@dataclasses.dataclass
class SparseCut:
    """A balanced sparse cut: ``side_a`` and ``side_b`` are non-adjacent."""

    side_a: Set[Any]
    side_b: Set[Any]
    separator: Set[Any]

    @property
    def kind(self) -> str:
        return "cut"


@dataclasses.dataclass
class LargeComponent:
    """A large component of small strong diameter with a light boundary.

    ``boundary`` holds the nodes *outside* ``component`` that are adjacent to
    it (the nodes Theorem 3.2 declares dead when it accepts the component).
    """

    component: Set[Any]
    boundary: Set[Any]
    radius: int

    @property
    def kind(self) -> str:
        return "component"


SparseCutResult = Union[SparseCut, LargeComponent]


def _cumulative_layers(layers: Sequence[Set[Any]]) -> List[int]:
    sizes: List[int] = []
    total = 0
    for layer in layers:
        total += len(layer)
        sizes.append(total)
    return sizes


def _ball(layers: Sequence[Set[Any]], radius: int) -> Set[Any]:
    result: Set[Any] = set()
    for layer in layers[: radius + 1]:
        result |= layer
    return result


def _radius_reaching(cumulative: Sequence[int], target: int) -> int:
    """Smallest radius whose cumulative ball size reaches ``target``."""
    for radius, size in enumerate(cumulative):
        if size >= target:
            return radius
    return len(cumulative) - 1


def _layer_window(n: int, eps: float) -> int:
    """Number of consecutive BFS layers needed so that the lightest one is an
    ``O(eps / log n)`` fraction of the ball mass (see the proof of Lemma 3.1:
    the ball grows by at most a factor 3 over the window, so the minimum
    per-layer growth ratio is ``3^{1/window} = 1 + O(eps / log n)`` once the
    window has ``Omega(log n / eps)`` layers)."""
    log_n = math.log(max(3, n))
    return max(2, int(math.ceil(2.0 * math.log(3.0) * log_n / eps)) + 1)


def _lightest_layer_index(cumulative: Sequence[int], lo: int, hi: int) -> int:
    """Index ``r`` in ``[lo, hi]`` minimising ``|B_{r+1}| / |B_r|``."""
    best_index = lo
    best_ratio = float("inf")
    for radius in range(lo, min(hi, len(cumulative) - 2) + 1):
        inner = cumulative[radius]
        outer = cumulative[radius + 1]
        if inner == 0:
            continue
        ratio = outer / inner
        if ratio < best_ratio:
            best_ratio = ratio
            best_index = radius
    return best_index


def sparse_cut_or_component(
    graph: nx.Graph,
    nodes: Iterable[Any],
    eps: float,
    ledger: Optional[RoundLedger] = None,
) -> SparseCutResult:
    """Run the Lemma 3.1 procedure on the subgraph induced by ``nodes``.

    Args:
        graph: Host graph.
        nodes: The node set to operate on (assumed connected; the callers of
            Theorem 3.2 only invoke this on connected clusters).
        eps: The parameter ``eps`` of Lemma 3.1; the separator / boundary has
            ``O(eps * |nodes| / log |nodes|)`` nodes.
        ledger: Optional round ledger; each iteration is charged ``O(D)``
            rounds where ``D`` is the BFS depth actually explored.

    Returns:
        Either a :class:`SparseCut` or a :class:`LargeComponent`.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie strictly between 0 and 1")
    ledger = ledger if ledger is not None else RoundLedger()
    node_set: Set[Any] = set(nodes)
    n = len(node_set)
    if n == 0:
        return LargeComponent(component=set(), boundary=set(), radius=0)
    if n <= 3:
        return LargeComponent(component=set(node_set), boundary=set(), radius=1)

    window = _layer_window(n, eps)
    target_a = int(math.ceil(n / 3.0))
    target_b = int(math.ceil(2.0 * n / 3.0))

    seed: Set[Any] = set(node_set)
    max_iterations = 2 * max(1, int(math.ceil(math.log2(n)))) + 4

    for _ in range(max_iterations):
        layers = bfs_layers_within(graph, seed, allowed=node_set)
        cumulative = _cumulative_layers(layers)
        ledger.bfs(len(layers), detail="lemma31 radii computation")

        radius_a = _radius_reaching(cumulative, target_a)
        radius_b = _radius_reaching(cumulative, target_b)

        if radius_b - radius_a >= window and radius_b - 2 >= radius_a:
            # Balanced sparse cut: cut along the lightest layer between a and
            # b - 2 (both resulting sides then hold at least n/3 nodes).
            cut_radius = _lightest_layer_index(cumulative, radius_a, radius_b - 2)
            inner = _ball(layers, cut_radius)
            enlarged = _ball(layers, cut_radius + 1)
            separator = enlarged - inner
            outside = node_set - enlarged
            ledger.bfs(cut_radius + 1, detail="lemma31 cut extraction")
            return SparseCut(side_a=inner, side_b=outside, separator=separator)

        if len(seed) == 1:
            # Final sweep: grow a ball around the single remaining seed node
            # and cut at the lightest layer within the window past radius_a.
            cut_radius = _lightest_layer_index(
                cumulative, radius_a, radius_a + window
            )
            component = _ball(layers, cut_radius)
            boundary = _ball(layers, cut_radius + 1) - component
            ledger.bfs(cut_radius + 1, detail="lemma31 final component sweep")
            return LargeComponent(component=component, boundary=boundary, radius=cut_radius)

        # Split the seed set into two halves and keep the half whose n/3-ball
        # radius is smaller.  Any split works for correctness; we use the
        # deterministic identifier order (the distributed version sorts by an
        # in-order traversal of a BFS tree, which costs O(D) rounds).
        ordered = sorted(seed, key=lambda node: (graph.nodes[node].get("uid", node), str(node)))
        half = len(ordered) // 2
        first_half = set(ordered[:half])
        second_half = set(ordered[half:])

        layers_first = bfs_layers_within(graph, first_half, allowed=node_set)
        layers_second = bfs_layers_within(graph, second_half, allowed=node_set)
        ledger.bfs(max(len(layers_first), len(layers_second)), detail="lemma31 split probe")

        radius_first = _radius_reaching(_cumulative_layers(layers_first), target_a)
        radius_second = _radius_reaching(_cumulative_layers(layers_second), target_a)
        seed = first_half if radius_first <= radius_second else second_half

    raise RuntimeError(
        "Lemma 3.1 procedure did not terminate within the expected number of "
        "iterations; this indicates a bug in the seed-halving logic"
    )
