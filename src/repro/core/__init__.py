"""The paper's primary contribution: weak-to-strong transformations.

* :mod:`repro.core.strong_carving` — Theorem 2.1: the message-efficient
  transformation from weak-diameter ball carving to strong-diameter ball
  carving, and Theorem 2.2 (its instantiation with the deterministic weak
  carving substrate).
* :mod:`repro.core.sparse_cut` — Lemma 3.1: "balanced sparse cut or large
  small-diameter component".
* :mod:`repro.core.improved_carving` — Theorem 3.2 / 3.3: the recursive
  diameter improvement to ``O(log^2 n / eps)``.
* :mod:`repro.core.decomposition` — Theorems 2.3 / 3.4: strong-diameter
  network decompositions via the standard reduction from ball carving.
* :mod:`repro.core.api` — the one-call public API (:func:`decompose`,
  :func:`carve`).
"""

from repro.core.strong_carving import strong_carving_from_weak, theorem22_carving
from repro.core.sparse_cut import (
    LargeComponent,
    SparseCut,
    sparse_cut_or_component,
)
from repro.core.improved_carving import improved_strong_carving, theorem33_carving
from repro.core.edge_carving import (
    EdgeCarving,
    check_edge_carving,
    edge_carving_from_node_carving,
    mpx_edge_carving,
    sequential_edge_carving,
)
from repro.core.decomposition import (
    decomposition_via_carving,
    theorem23_decomposition,
    theorem34_decomposition,
    weak_decomposition_rg20,
)
from repro.core.api import carve, decompose

__all__ = [
    "strong_carving_from_weak",
    "theorem22_carving",
    "LargeComponent",
    "SparseCut",
    "sparse_cut_or_component",
    "improved_strong_carving",
    "theorem33_carving",
    "EdgeCarving",
    "check_edge_carving",
    "edge_carving_from_node_carving",
    "mpx_edge_carving",
    "sequential_edge_carving",
    "decomposition_via_carving",
    "theorem23_decomposition",
    "theorem34_decomposition",
    "weak_decomposition_rg20",
    "carve",
    "decompose",
]
