"""The edge version of ball carving (end of Section 1.3 of the paper).

Besides the node version (remove at most an ``eps`` fraction of *nodes*), the
paper notes that all of its ball-carving results also hold for the **edge
version**: remove at most an ``eps`` fraction of the *edges* so that the
remaining connected components have small strong diameter.  "The proofs for
the edge version are essentially the same as that for the node version."

This module provides the edge-version counterparts used by the ablation
benchmark and the test suite:

* :class:`EdgeCarving` — the result type (clusters + removed edges) with its
  validator;
* :func:`sequential_edge_carving` — centralized edge-boundary ball growing,
  the edge analogue of the [LS93] existential construction: grow a ball until
  the number of edges leaving it is at most ``eps`` times the number of edges
  inside it (each growth step then multiplies the internal edge count by
  ``> 1 + eps``, giving radius ``O(log m / eps)``);
* :func:`mpx_edge_carving` — the randomized MPX edge version: every edge whose
  endpoints end up in different shifted-BFS clusters is cut, which happens
  with probability ``O(eps)`` per edge;
* :func:`edge_carving_from_node_carving` — the generic adapter the paper
  alludes to: run a node carving on the graph's *line-graph-free* surrogate —
  concretely, run the node version with parameter ``eps / 2`` weighted by
  degrees — and cut exactly the edges incident to removed nodes plus the
  (necessarily absent) inter-cluster edges.  The number of cut edges is at
  most ``sum_{v dead} deg(v)``, which the validator measures.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.baselines.mpx import mpx_carving
from repro.clustering.carving import BallCarving
from repro.clustering.cluster import Cluster
from repro.clustering.validation import ValidationError, strong_diameter
from repro.congest.rounds import RoundLedger
from repro.graphs.properties import bfs_layers_within, induced_components, neighbors_resolver


def _normalise_edge(u: Any, v: Any) -> Tuple[Any, Any]:
    return (u, v) if str(u) <= str(v) else (v, u)


@dataclasses.dataclass
class EdgeCarving:
    """Clusters plus removed edges produced by an edge-version ball carving.

    Attributes:
        graph: The host graph.
        clusters: Node sets of the clusters; within a cluster only non-removed
            edges are used, and no non-removed edge connects two clusters.
        removed_edges: The cut edges (normalised as sorted tuples).
        eps: The boundary parameter (fraction of edges allowed to be cut).
        ledger: Round ledger of the producing algorithm.
    """

    graph: nx.Graph
    clusters: List[Cluster]
    removed_edges: Set[Tuple[Any, Any]]
    eps: float
    ledger: RoundLedger = dataclasses.field(default_factory=RoundLedger)

    @property
    def removed_fraction(self) -> float:
        """Fraction of the graph's edges that were removed."""
        m = self.graph.number_of_edges()
        return len(self.removed_edges) / m if m else 0.0

    @property
    def rounds(self) -> int:
        """Total CONGEST rounds charged by the producing algorithm."""
        return self.ledger.total_rounds

    def surviving_graph(self) -> nx.Graph:
        """The graph with the removed edges deleted (nodes all kept)."""
        survivor = nx.Graph()
        survivor.add_nodes_from(self.graph.nodes(data=True))
        for u, v in self.graph.edges():
            if _normalise_edge(u, v) not in self.removed_edges:
                survivor.add_edge(u, v)
        return survivor

    def summary(self) -> Dict[str, Any]:
        """A compact dictionary of the quantities the benchmarks report."""
        return {
            "eps": self.eps,
            "n": self.graph.number_of_nodes(),
            "m": self.graph.number_of_edges(),
            "clusters": len(self.clusters),
            "removed_edges": len(self.removed_edges),
            "removed_fraction": self.removed_fraction,
            "rounds": self.rounds,
        }


def check_edge_carving(
    carving: EdgeCarving,
    max_diameter: Optional[int] = None,
    max_removed_fraction: Optional[float] = None,
) -> None:
    """Validate an edge carving.

    * every node belongs to exactly one cluster;
    * every removed edge is an edge of the graph;
    * no surviving edge connects two different clusters;
    * each cluster is connected in the surviving graph, with strong diameter
      at most ``max_diameter`` when given;
    * at most ``max_removed_fraction`` (default: the carving's ``eps``) of the
      edges are removed, with one edge of integer slack.
    """
    graph = carving.graph
    owner: Dict[Any, int] = {}
    for index, cluster in enumerate(carving.clusters):
        for node in cluster.nodes:
            if node in owner:
                raise ValidationError("node {!r} belongs to two clusters".format(node))
            owner[node] = index
    if set(owner) != set(graph.nodes()):
        raise ValidationError("edge carving clusters must cover every node")

    edge_set = {_normalise_edge(u, v) for u, v in graph.edges()}
    for edge in carving.removed_edges:
        if _normalise_edge(*edge) not in edge_set:
            raise ValidationError("removed edge {!r} is not an edge of the graph".format(edge))

    survivor = carving.surviving_graph()
    for u, v in survivor.edges():
        if owner[u] != owner[v]:
            raise ValidationError(
                "surviving edge ({!r}, {!r}) connects two clusters".format(u, v)
            )

    allowed = carving.eps if max_removed_fraction is None else max_removed_fraction
    m = graph.number_of_edges()
    if m > 0 and len(carving.removed_edges) > allowed * m + 1:
        raise ValidationError(
            "removed {} edges, more than the allowed fraction {:.3f}".format(
                len(carving.removed_edges), allowed
            )
        )

    for cluster in carving.clusters:
        diameter = strong_diameter(survivor, cluster.nodes)
        if max_diameter is not None and diameter > max_diameter:
            raise ValidationError(
                "cluster diameter {} exceeds bound {}".format(diameter, max_diameter)
            )


def _internal_and_boundary_edges(
    graph: nx.Graph, ball: Set[Any], allowed_edges: Set[Tuple[Any, Any]]
) -> Tuple[int, List[Tuple[Any, Any]]]:
    """Count surviving edges inside ``ball`` and list those leaving it."""
    internal = 0
    boundary: List[Tuple[Any, Any]] = []
    neighbours_of = neighbors_resolver(graph)
    for node in ball:
        for neighbour in neighbours_of(node):
            edge = _normalise_edge(node, neighbour)
            if edge not in allowed_edges:
                continue
            if neighbour in ball:
                internal += 1
            else:
                boundary.append(edge)
    return internal // 2, boundary


def sequential_edge_carving(
    graph: nx.Graph,
    eps: float,
    ledger: Optional[RoundLedger] = None,
) -> EdgeCarving:
    """Centralized edge-version ball growing with parameter ``eps``.

    Repeatedly grows a ball from the smallest-identifier unprocessed node
    until the number of (surviving) edges leaving the ball is at most ``eps``
    times the number of edges with both endpoints inside it (at least one);
    those leaving edges are then cut.  Every failed stop test multiplies the
    internal edge count by more than ``1 + eps``, so the radius is
    ``O(log m / eps)``, and the total number of cut edges is at most an
    ``eps`` fraction of all edges (each cut edge is charged to the internal
    edges of its ball, and internal edge sets of different balls are
    disjoint).
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie strictly between 0 and 1")
    ledger = ledger if ledger is not None else RoundLedger()

    uid_of = {node: graph.nodes[node].get("uid", node) for node in graph.nodes()}
    allowed_edges = {_normalise_edge(u, v) for u, v in graph.edges()}
    unprocessed = set(graph.nodes())
    clusters: List[Cluster] = []
    removed: Set[Tuple[Any, Any]] = set()
    index = 0
    max_radius = 0

    while unprocessed:
        center = min(unprocessed, key=lambda node: uid_of[node])
        layers = bfs_layers_within(graph, [center], allowed=unprocessed)
        ball: Set[Any] = set(layers[0])
        radius = 0
        while True:
            internal, boundary = _internal_and_boundary_edges(graph, ball, allowed_edges)
            # Only count boundary edges towards still-unprocessed nodes; edges
            # towards already-carved balls were cut when those balls stopped.
            live_boundary = [
                edge for edge in boundary if edge[0] in unprocessed and edge[1] in unprocessed
            ]
            if len(live_boundary) <= eps * max(1, internal) or radius + 1 >= len(layers):
                removed.update(live_boundary)
                break
            ball |= layers[radius + 1]
            radius += 1
        clusters.append(Cluster(nodes=frozenset(ball), label=("edge-seq", index)))
        unprocessed -= ball
        max_radius = max(max_radius, radius)
        index += 1

    ledger.charge("sequential_edge_ball_growing", 2 * (max_radius + 1), detail="centralized")
    return EdgeCarving(graph=graph, clusters=clusters, removed_edges=removed, eps=eps, ledger=ledger)


def mpx_edge_carving(
    graph: nx.Graph,
    eps: float,
    ledger: Optional[RoundLedger] = None,
    rng: Optional[random.Random] = None,
) -> EdgeCarving:
    """The randomized MPX edge version: cut every inter-cluster edge.

    Runs the MPX shifted-BFS partition with rate ``beta = eps`` (no node is
    removed — every node keeps its cluster) and cuts exactly the edges whose
    endpoints lie in different clusters; by the standard MPX analysis each
    edge is cut with probability ``O(eps)``, so the expected removed fraction
    is ``O(eps)``.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie strictly between 0 and 1")
    ledger = ledger if ledger is not None else RoundLedger()
    rng = rng or random.Random(0)

    # Reuse the node carving's shifted-BFS assignment but keep the dead nodes:
    # the partition (before removing low-slack nodes) is exactly the MPX
    # partition, which mpx_carving exposes through cluster trees; here we
    # recompute the assignment directly for all nodes.
    from repro.baselines.mpx import _two_nearest_centers

    nodes = set(graph.nodes())
    if not nodes:
        return EdgeCarving(graph=graph, clusters=[], removed_edges=set(), eps=eps, ledger=ledger)
    uid_of = {node: graph.nodes[node].get("uid", node) for node in nodes}
    shifts = {node: rng.expovariate(eps) for node in nodes}
    labels = _two_nearest_centers(graph, nodes, shifts, uid_of)
    assignment = {node: entries[0][2] for node, entries in labels.items() if entries}

    members: Dict[Any, Set[Any]] = {}
    for node, center in assignment.items():
        members.setdefault(center, set()).add(node)

    removed: Set[Tuple[Any, Any]] = set()
    for u, v in graph.edges():
        if assignment.get(u) != assignment.get(v):
            removed.add(_normalise_edge(u, v))

    clusters: List[Cluster] = []
    for index, (center, node_set) in enumerate(
        sorted(members.items(), key=lambda item: uid_of[item[0]])
    ):
        # A cluster of the MPX partition is connected, but removing the
        # inter-cluster edges cannot disconnect it (all its internal edges
        # survive); still, be defensive and split by surviving components.
        for component in induced_components(graph, node_set):
            clusters.append(Cluster(nodes=frozenset(component), label=("edge-mpx", index, len(clusters))))

    max_shift = max(shifts.values())
    ledger.charge("mpx_edge_shifted_bfs", int(math.ceil(max_shift)) + 2, detail="shifted BFS waves")
    return EdgeCarving(graph=graph, clusters=clusters, removed_edges=removed, eps=eps, ledger=ledger)


def edge_carving_from_node_carving(
    graph: nx.Graph,
    eps: float,
    node_carving: Optional[Callable[..., BallCarving]] = None,
    ledger: Optional[RoundLedger] = None,
) -> EdgeCarving:
    """Adapter: obtain an edge carving from any node-version ball carving.

    Runs the node carving with a boundary parameter scaled down by the average
    degree (so that the edges incident to removed nodes stay an ``O(eps)``
    fraction of all edges), then cuts exactly the edges incident to removed
    nodes; removed nodes become singleton clusters.  This is the generic
    "essentially the same proof" route the paper mentions; the removed-edge
    fraction is *measured* by the validator rather than assumed.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie strictly between 0 and 1")
    ledger = ledger if ledger is not None else RoundLedger()
    if node_carving is None:
        from repro.core.strong_carving import theorem22_carving

        node_carving = theorem22_carving

    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if n == 0:
        return EdgeCarving(graph=graph, clusters=[], removed_edges=set(), eps=eps, ledger=ledger)
    average_degree = max(1.0, 2.0 * m / n)
    node_eps = min(0.5, eps / average_degree)

    carving = node_carving(graph, node_eps, ledger=ledger)
    removed: Set[Tuple[Any, Any]] = set()
    neighbours_of = neighbors_resolver(graph)
    for node in carving.dead:
        for neighbour in neighbours_of(node):
            removed.add(_normalise_edge(node, neighbour))

    clusters: List[Cluster] = [
        Cluster(nodes=cluster.nodes, label=("edge-adapter", index))
        for index, cluster in enumerate(carving.clusters)
    ]
    for node in sorted(carving.dead, key=str):
        clusters.append(Cluster(nodes=frozenset({node}), label=("edge-adapter-dead", str(node))))

    return EdgeCarving(graph=graph, clusters=clusters, removed_edges=removed, eps=eps, ledger=ledger)
