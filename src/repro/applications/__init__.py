"""Applications of network decomposition (the motivating use cases of §1.1).

The standard template: process the decomposition's colors one by one; per
color, all clusters of that color are handled simultaneously (they are
non-adjacent), and inside each cluster the small diameter allows fast
coordination.  The total cost is proportional to ``C * D`` — which is why the
paper wants both parameters polylogarithmic.

* :mod:`repro.applications.template` — the color-by-color scheduler with
  ``C * D`` round accounting;
* :mod:`repro.applications.mis` — maximal independent set via the template;
* :mod:`repro.applications.coloring` — (Δ+1)-coloring via the template.
"""

from repro.applications.template import (
    charge_color_round,
    cluster_diameter,
    node_order_key,
    process_by_colors,
)
from repro.applications.mis import maximal_independent_set, verify_mis
from repro.applications.coloring import delta_plus_one_coloring, verify_coloring

__all__ = [
    "charge_color_round",
    "cluster_diameter",
    "node_order_key",
    "process_by_colors",
    "maximal_independent_set",
    "verify_mis",
    "delta_plus_one_coloring",
    "verify_coloring",
]
