"""(Δ+1)-coloring via network decomposition.

Process the decomposition's colors one by one; inside each cluster, greedily
assign each node the smallest palette color not used by any already-colored
neighbour.  Every node has at most Δ neighbours, so a palette of Δ+1 colors
always suffices, and same-color clusters cannot conflict because they are
non-adjacent.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import networkx as nx

from repro.applications.template import process_by_colors
from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger


def _greedy_cluster_coloring(
    graph: nx.Graph, cluster: Cluster, partial: Dict[Any, Any]
) -> Dict[Any, int]:
    """First-fit coloring inside one cluster, honouring decided neighbours."""
    assignment: Dict[Any, int] = {}
    ordered = sorted(
        cluster.nodes, key=lambda node: (graph.nodes[node].get("uid", node), str(node))
    )
    for node in ordered:
        used = set()
        for neighbour in graph.neighbors(node):
            if neighbour in assignment:
                used.add(assignment[neighbour])
            elif neighbour in partial and partial[neighbour] is not None:
                used.add(partial[neighbour])
        color = 0
        while color in used:
            color += 1
        assignment[node] = color
    return assignment


def delta_plus_one_coloring(
    decomposition: NetworkDecomposition,
    ledger: Optional[RoundLedger] = None,
) -> Dict[Any, int]:
    """Compute a proper (Δ+1)-coloring of the decomposition's graph.

    Returns a mapping node -> palette color in ``{0, ..., Δ}``.
    """
    return process_by_colors(decomposition, _greedy_cluster_coloring, ledger=ledger)


def verify_coloring(graph: nx.Graph, coloring: Dict[Any, int]) -> bool:
    """True when ``coloring`` is proper and uses at most Δ+1 palette colors."""
    if set(coloring) != set(graph.nodes()):
        return False
    max_degree = max((degree for _, degree in graph.degree()), default=0)
    if any(color < 0 or color > max_degree for color in coloring.values()):
        return False
    return all(coloring[u] != coloring[v] for u, v in graph.edges())
