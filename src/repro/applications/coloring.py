"""(Δ+1)-coloring via network decomposition.

Process the decomposition's colors one by one; inside each cluster, greedily
assign each node the smallest palette color not used by any already-colored
neighbour.  Every node has at most Δ neighbours, so a palette of Δ+1 colors
always suffices, and same-color clusters cannot conflict because they are
non-adjacent.

As with MIS, two interchangeable paths produce **identical** colorings: the
flat-array loop over the CSR adjacency rows (palette state in one int list
indexed by node position) and the networkx walk through
:func:`~repro.applications.template.process_by_colors`, kept as the
differential-testing oracle.  Both charge the same per-color template cost.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import networkx as nx

from repro.applications.template import (
    charge_color_round,
    cluster_diameter,
    color_classes,
    node_order_key,
    process_by_colors,
    sorted_member_indices,
)
from array import array

from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger
from repro.graphs.csr import CSRGraph, csr_index_or_none
from repro.kernels import active_kernel


def _greedy_cluster_coloring(
    graph: nx.Graph, cluster: Cluster, partial: Dict[Any, Any]
) -> Dict[Any, int]:
    """First-fit coloring inside one cluster, honouring decided neighbours."""
    assignment: Dict[Any, int] = {}
    ordered = sorted(cluster.nodes, key=lambda node: node_order_key(graph, node))
    for node in ordered:
        used = set()
        for neighbour in graph.neighbors(node):
            if neighbour in assignment:
                used.add(assignment[neighbour])
            elif neighbour in partial and partial[neighbour] is not None:
                used.add(partial[neighbour])
        color = 0
        while color in used:
            color += 1
        assignment[node] = color
    return assignment


def _csr_coloring(
    decomposition: NetworkDecomposition, csr: CSRGraph, ledger: RoundLedger
) -> Dict[Any, int]:
    """The flat-array first-fit loop: palette state per node index.

    Equivalent to the oracle's per-color snapshots for the same reason as
    the MIS loop: a neighbour colored within the current color class is in
    the same cluster, which the oracle's intra-cluster ``assignment`` map
    sees too.
    """
    graph = decomposition.graph
    nodes = csr.nodes
    kernel = active_kernel()
    # An int32 buffer rather than a plain list so the JIT tier can view the
    # palette zero-copy; -1 marks uncolored nodes under every tier.
    palette = array("i", [-1]) * csr.n
    result = {}
    for color, clusters in color_classes(decomposition):
        color_diameter = 0
        for cluster in clusters:
            diameter = cluster_diameter(graph, cluster, decomposition.kind)
            if diameter > color_diameter:
                color_diameter = diameter
            member_indices = sorted_member_indices(cluster, csr)
            values = kernel.greedy_color_sweep(csr, member_indices, palette)
            for i, value in zip(member_indices, values):
                result[nodes[i]] = value
        charge_color_round(ledger, color, color_diameter)
    return result


def delta_plus_one_coloring(
    decomposition: NetworkDecomposition,
    ledger: Optional[RoundLedger] = None,
) -> Dict[Any, int]:
    """Compute a proper (Δ+1)-coloring of the decomposition's graph.

    Returns a mapping node -> palette color in ``{0, ..., Δ}``.  Runs the
    flat-array CSR loop when the ambient backend allows it, the networkx
    oracle otherwise — both produce the same coloring.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    # No per-call staleness refresh — see maximal_independent_set.
    csr = csr_index_or_none(decomposition.graph, views="reject")
    if csr is not None:
        return _csr_coloring(decomposition, csr, ledger)
    return process_by_colors(decomposition, _greedy_cluster_coloring, ledger=ledger)


def verify_coloring(graph: nx.Graph, coloring: Dict[Any, int]) -> bool:
    """True when ``coloring`` is proper and uses at most Δ+1 palette colors."""
    if set(coloring) != set(graph.nodes()):
        return False
    max_degree = max((degree for _, degree in graph.degree()), default=0)
    if any(color < 0 or color > max_degree for color in coloring.values()):
        return False
    return all(coloring[u] != coloring[v] for u, v in graph.edges())
