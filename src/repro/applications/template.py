"""The color-by-color processing template for network decompositions.

Given a ``(C, D)`` decomposition, many problems can be solved by processing
the color classes sequentially: clusters of one color are non-adjacent, so
they can compute in parallel, and each has diameter at most ``D``, so
gathering the cluster's relevant state at its centre, solving locally and
redistributing the answer costs ``O(D)`` rounds.  The total is ``O(C * D)``
rounds — the quantity that makes polylogarithmic ``C`` and ``D`` the right
target.

Two execution paths share this module's scheduling and round accounting:

* :func:`process_by_colors` — the generic (networkx-walking) template for
  arbitrary cluster handlers, kept verbatim as the differential-testing
  oracle for the task solvers;
* the flat-array task loops in :mod:`repro.applications.mis` /
  :mod:`repro.applications.coloring`, which iterate the CSR adjacency rows
  directly (mirroring the PR-1 backend switch) but charge the *same*
  per-color template cost through :func:`charge_color_round`.

Node processing order inside a cluster follows the simulator's uid-sort
convention (:func:`node_order_key`): uid first — via
:func:`repro.graphs.csr.uid_order_key`, robust to mixed identifier types —
then the node's string form as the final tie-break.  Both backends use the
same key, so their greedy solutions are identical.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import networkx as nx

from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.clustering.validation import strong_diameter, weak_diameter
from repro.congest.rounds import RoundLedger
from repro.graphs.csr import uid_order_key

# A cluster handler receives (graph, cluster, partial_solution) and returns
# the solution values for the cluster's nodes.  `partial_solution` holds the
# already-fixed values of all nodes processed in earlier colors (in
# particular, of every neighbour of the cluster that has already been
# decided), which is exactly the information a cluster can collect from its
# one-hop neighbourhood in O(1) rounds before solving internally.
ClusterHandler = Callable[[nx.Graph, Cluster, Dict[Any, Any]], Dict[Any, Any]]


def node_order_key(graph: nx.Graph, node: Any) -> Tuple[Any, ...]:
    """The shared within-cluster processing order: uid, then string form.

    Delegates the uid ordering to :func:`repro.graphs.csr.uid_order_key`
    (the CONGEST simulator's convention), so the order is total even when
    ``"uid"`` attributes are missing and node labels mix ``int`` and
    ``str`` — a plain ``(uid, str(node))`` key would raise ``TypeError``
    there.
    """
    return uid_order_key(graph.nodes[node].get("uid", node)) + (str(node),)


def cluster_diameter(graph: nx.Graph, cluster: Cluster, kind: str) -> int:
    """A cluster's diameter in the decomposition's sense, memoized.

    The value is cached on the cluster object: a decomposition's geometry
    is fixed, so every task running on it (MIS, then coloring, then
    whatever else) charges the same per-color diameters without re-running
    the all-pairs BFS.  Both backends compute identical values, so the
    cache never couples them.  The *validators* deliberately bypass this
    helper — a checker must not trust a measurement cache.
    """
    cached = getattr(cluster, "_diameter_cache", None)
    if cached is not None and cached[0] == kind:
        return cached[1]
    if kind == "strong":
        value = strong_diameter(graph, cluster.nodes)
    else:
        value = weak_diameter(graph, cluster.nodes)
    object.__setattr__(cluster, "_diameter_cache", (kind, value))
    return value


def color_classes(decomposition: NetworkDecomposition):
    """The decomposition's ``(color, clusters)`` classes in color order, memoized.

    One O(clusters) grouping pass instead of re-scanning every cluster per
    color (``decomposition.clusters_of_color`` is O(clusters) *per call*).
    Cached on the decomposition object — its clustering is immutable by
    contract, and every task re-schedules the same classes.
    """
    cached = getattr(decomposition, "_color_classes_cache", None)
    if cached is not None:
        return cached
    classes: Dict[int, list] = {}
    for cluster in decomposition.clusters:
        classes.setdefault(cluster.color, []).append(cluster)
    ordered = tuple((color, tuple(classes[color])) for color in sorted(classes))
    object.__setattr__(decomposition, "_color_classes_cache", ordered)
    return ordered


def sorted_member_indices(cluster: Cluster, csr) -> list:
    """A cluster's CSR member indices in uid-sort order, memoized.

    Like the diameter cache: the member order is fixed by the decomposition
    and the frozen index, so every task reuses one sort.  The cache is
    keyed by the index object itself — a re-frozen graph (new ``CSRGraph``)
    recomputes.
    """
    cached = getattr(cluster, "_member_order_cache", None)
    if cached is not None and cached[0] is csr:
        return cached[1]
    index_of = csr.index
    members = sorted(
        (index_of[node] for node in cluster.nodes), key=csr.uid_rank.__getitem__
    )
    object.__setattr__(cluster, "_member_order_cache", (csr, members))
    return members


def charge_color_round(ledger: RoundLedger, color: int, color_diameter: int) -> int:
    """Charge one color class's template cost: gather + solve + scatter.

    ``2 * D + 2`` rounds for a color whose largest cluster has diameter
    ``D`` — the standard argument, shared by the generic template and the
    flat-array task loops so the two paths charge identically.
    """
    return ledger.charge(
        "template_color",
        2 * color_diameter + 2,
        detail="color {} (gather + solve + scatter)".format(color),
    )


def process_by_colors(
    decomposition: NetworkDecomposition,
    handler: ClusterHandler,
    ledger: Optional[RoundLedger] = None,
) -> Dict[Any, Any]:
    """Run ``handler`` on every cluster, color class by color class.

    Args:
        decomposition: The network decomposition to schedule on.
        handler: Per-cluster solver; it may only rely on the partial solution
            of previously processed colors (the template enforces this by
            construction: clusters of the same color are handled with the
            same snapshot of the partial solution).
        ledger: Optional round ledger; per color the template charges
            ``O(max cluster diameter of that color)`` rounds (gather, solve
            locally, scatter), mirroring the standard argument.

    Returns:
        The combined solution mapping every node of the graph to its value.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    graph = decomposition.graph
    solution: Dict[Any, Any] = {}

    for color, clusters in color_classes(decomposition):
        snapshot = dict(solution)
        color_diameter = 0
        for cluster in clusters:
            diameter = cluster_diameter(graph, cluster, decomposition.kind)
            color_diameter = max(color_diameter, diameter)
            values = handler(graph, cluster, snapshot)
            missing = cluster.nodes - set(values)
            if missing:
                raise ValueError(
                    "handler did not produce values for nodes {!r}".format(
                        sorted(missing, key=str)[:5]
                    )
                )
            for node in cluster.nodes:
                solution[node] = values[node]
        charge_color_round(ledger, color, color_diameter)

    return solution
