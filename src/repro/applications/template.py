"""The color-by-color processing template for network decompositions.

Given a ``(C, D)`` decomposition, many problems can be solved by processing
the color classes sequentially: clusters of one color are non-adjacent, so
they can compute in parallel, and each has diameter at most ``D``, so
gathering the cluster's relevant state at its centre, solving locally and
redistributing the answer costs ``O(D)`` rounds.  The total is ``O(C * D)``
rounds — the quantity that makes polylogarithmic ``C`` and ``D`` the right
target.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import networkx as nx

from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.clustering.validation import strong_diameter, weak_diameter
from repro.congest.rounds import RoundLedger

# A cluster handler receives (graph, cluster, partial_solution) and returns
# the solution values for the cluster's nodes.  `partial_solution` holds the
# already-fixed values of all nodes processed in earlier colors (in
# particular, of every neighbour of the cluster that has already been
# decided), which is exactly the information a cluster can collect from its
# one-hop neighbourhood in O(1) rounds before solving internally.
ClusterHandler = Callable[[nx.Graph, Cluster, Dict[Any, Any]], Dict[Any, Any]]


def process_by_colors(
    decomposition: NetworkDecomposition,
    handler: ClusterHandler,
    ledger: Optional[RoundLedger] = None,
) -> Dict[Any, Any]:
    """Run ``handler`` on every cluster, color class by color class.

    Args:
        decomposition: The network decomposition to schedule on.
        handler: Per-cluster solver; it may only rely on the partial solution
            of previously processed colors (the template enforces this by
            construction: clusters of the same color are handled with the
            same snapshot of the partial solution).
        ledger: Optional round ledger; per color the template charges
            ``O(max cluster diameter of that color)`` rounds (gather, solve
            locally, scatter), mirroring the standard argument.

    Returns:
        The combined solution mapping every node of the graph to its value.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    graph = decomposition.graph
    solution: Dict[Any, Any] = {}

    for color in decomposition.colors:
        clusters = decomposition.clusters_of_color(color)
        snapshot = dict(solution)
        color_diameter = 0
        for cluster in clusters:
            if decomposition.kind == "strong":
                diameter = strong_diameter(graph, cluster.nodes)
            else:
                diameter = weak_diameter(graph, cluster.nodes)
            color_diameter = max(color_diameter, diameter)
            values = handler(graph, cluster, snapshot)
            missing = cluster.nodes - set(values)
            if missing:
                raise ValueError(
                    "handler did not produce values for nodes {!r}".format(
                        sorted(missing, key=str)[:5]
                    )
                )
            for node in cluster.nodes:
                solution[node] = values[node]
        ledger.charge(
            "template_color",
            2 * color_diameter + 2,
            detail="color {} (gather + solve + scatter)".format(color),
        )

    return solution
