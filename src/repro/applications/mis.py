"""Maximal independent set via network decomposition.

The classic application: process colors one by one; inside each cluster,
greedily extend the independent set, respecting the decisions already made by
neighbours in previously processed clusters.  Because same-color clusters are
non-adjacent, their greedy extensions cannot conflict, and after the last
color every node is either in the set or has a neighbour in it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

import networkx as nx

from repro.applications.template import process_by_colors
from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger


def _greedy_cluster_mis(
    graph: nx.Graph, cluster: Cluster, partial: Dict[Any, Any]
) -> Dict[Any, bool]:
    """Greedy MIS inside one cluster, honouring already-decided neighbours."""
    decisions: Dict[Any, bool] = {}
    ordered = sorted(
        cluster.nodes, key=lambda node: (graph.nodes[node].get("uid", node), str(node))
    )
    for node in ordered:
        blocked = False
        for neighbour in graph.neighbors(node):
            if partial.get(neighbour) is True or decisions.get(neighbour) is True:
                blocked = True
                break
        decisions[node] = not blocked
    return decisions


def maximal_independent_set(
    decomposition: NetworkDecomposition,
    ledger: Optional[RoundLedger] = None,
) -> Set[Any]:
    """Compute an MIS of the decomposition's graph via the color template.

    Returns the set of selected nodes.  The round cost charged to ``ledger``
    is ``O(C * D)`` as per the standard argument.
    """
    solution = process_by_colors(decomposition, _greedy_cluster_mis, ledger=ledger)
    return {node for node, selected in solution.items() if selected}


def verify_mis(graph: nx.Graph, independent_set: Set[Any]) -> bool:
    """True when ``independent_set`` is independent and maximal in ``graph``."""
    for node in independent_set:
        for neighbour in graph.neighbors(node):
            if neighbour in independent_set:
                return False
    for node in graph.nodes():
        if node in independent_set:
            continue
        if not any(neighbour in independent_set for neighbour in graph.neighbors(node)):
            return False
    return True
