"""Maximal independent set via network decomposition.

The classic application: process colors one by one; inside each cluster,
greedily extend the independent set, respecting the decisions already made by
neighbours in previously processed clusters.  Because same-color clusters are
non-adjacent, their greedy extensions cannot conflict, and after the last
color every node is either in the set or has a neighbour in it.

Two interchangeable execution paths produce **identical** sets (enforced by
the differential tests): the flat-array loop over the CSR adjacency rows
(the default — state lives in one ``bytearray`` indexed by node position,
neighbour scans are int-slice walks) and the original networkx walk through
:func:`~repro.applications.template.process_by_colors`, kept as the oracle
and used when the ``"nx"`` backend is active or the graph cannot be
CSR-indexed.  Both charge the same per-color template cost.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

import networkx as nx

from repro.applications.template import (
    charge_color_round,
    cluster_diameter,
    color_classes,
    node_order_key,
    process_by_colors,
    sorted_member_indices,
)
from repro.clustering.cluster import Cluster
from repro.clustering.decomposition import NetworkDecomposition
from repro.congest.rounds import RoundLedger
from repro.graphs.csr import CSRGraph, csr_index_or_none
from repro.kernels import active_kernel
from repro.kernels.base import MIS_DOMINATED, MIS_SELECTED, MIS_UNDECIDED

# Flat MIS node states (bytearray values of the kernel sweep) — aliases of
# the kernel-layer constants so the two vocabularies cannot drift.
_UNDECIDED, _SELECTED, _DOMINATED = MIS_UNDECIDED, MIS_SELECTED, MIS_DOMINATED


def _greedy_cluster_mis(
    graph: nx.Graph, cluster: Cluster, partial: Dict[Any, Any]
) -> Dict[Any, bool]:
    """Greedy MIS inside one cluster, honouring already-decided neighbours."""
    decisions: Dict[Any, bool] = {}
    ordered = sorted(cluster.nodes, key=lambda node: node_order_key(graph, node))
    for node in ordered:
        blocked = False
        for neighbour in graph.neighbors(node):
            if partial.get(neighbour) is True or decisions.get(neighbour) is True:
                blocked = True
                break
        decisions[node] = not blocked
    return decisions


def _csr_mis(
    decomposition: NetworkDecomposition, csr: CSRGraph, ledger: RoundLedger
) -> Set[Any]:
    """The flat-array MIS loop: one state byte per node, int-row neighbour scans.

    Same-color clusters are non-adjacent, so a single live state array is
    equivalent to the oracle's per-color snapshots: a neighbour decided
    within the current color is necessarily in the *same* cluster, exactly
    what the oracle's intra-cluster ``decisions`` map sees.
    """
    graph = decomposition.graph
    nodes = csr.nodes
    kernel = active_kernel()
    state = bytearray(csr.n)
    result = set()
    for color, clusters in color_classes(decomposition):
        color_diameter = 0
        for cluster in clusters:
            diameter = cluster_diameter(graph, cluster, decomposition.kind)
            if diameter > color_diameter:
                color_diameter = diameter
            for i in kernel.mis_sweep(csr, sorted_member_indices(cluster, csr), state):
                result.add(nodes[i])
        charge_color_round(ledger, color, color_diameter)
    return result


def maximal_independent_set(
    decomposition: NetworkDecomposition,
    ledger: Optional[RoundLedger] = None,
) -> Set[Any]:
    """Compute an MIS of the decomposition's graph via the color template.

    Returns the set of selected nodes.  The round cost charged to ``ledger``
    is ``O(C * D)`` as per the standard argument.  Runs the flat-array CSR
    loop when the ambient backend allows it (``views="reject"``: a subgraph
    view's hidden neighbours must not block its nodes), the networkx oracle
    otherwise — both produce the same set.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    # No per-call staleness refresh: like the primitives in
    # repro.graphs.properties, the solvers trust the cached index — the
    # public entry points (run_task, the suite runner) refresh once per
    # invocation, and a decomposition's host graph is fixed by contract.
    csr = csr_index_or_none(decomposition.graph, views="reject")
    if csr is not None:
        return _csr_mis(decomposition, csr, ledger)
    solution = process_by_colors(decomposition, _greedy_cluster_mis, ledger=ledger)
    return {node for node, selected in solution.items() if selected}


def verify_mis(graph: nx.Graph, independent_set: Set[Any]) -> bool:
    """True when ``independent_set`` is independent and maximal in ``graph``."""
    for node in independent_set:
        for neighbour in graph.neighbors(node):
            if neighbour in independent_set:
                return False
    for node in graph.nodes():
        if node in independent_set:
            continue
        if not any(neighbour in independent_set for neighbour in graph.neighbors(node)):
            return False
    return True
