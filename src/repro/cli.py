"""Command-line interface: ``python -m repro`` / ``repro-decompose``.

Builds a workload graph, runs the chosen decomposition or carving algorithm,
validates the result, and prints the measured parameters — a quick way to see
the reproduction's headline numbers without writing any code.

``--mode suite`` switches to the batched pipeline: a whole
``(scenario x n x method x eps x seed x task)`` grid is run through
:func:`repro.run_suite`, either from a JSON spec file (``--spec``, format in
``docs/pipeline.md``) or from the single-run flags (``--suite-mode`` picks
decomposition or carving for the flag-built grid; ``--tasks mis,coloring``
adds the application task axis — every task of a cell group reuses one
decomposition), optionally fanned out over ``--workers`` processes and
resumed from / persisted to ``--store``.  Single-run decompositions take
``--task`` to run one application on top (``--list-tasks`` prints the task
registry).
``--shared-graphs`` controls the column-batched shared-graph arena (one
topology build per grid column, zero-copy shared-memory segments in pool
runs) and ``--arena-mb`` bounds the live segment budget.

``--kernel`` selects the hot-path kernel tier (pure / numpy / numba) for
both single runs and suites; ``--list-kernels`` prints the registry with
per-tier availability.

``--faults`` / ``--cell-timeout`` / ``--max-retries`` switch a suite into
**supervised execution**: seeded fault injection, per-cell deadlines,
bounded retries with backoff, and poison-cell quarantine as explicit
``status=failed`` records (rerunning the suite heals them) — see
``docs/robustness.md``.  ``--list-fault-kinds`` prints the fault
vocabulary.

The run store behind ``--store`` is pluggable (``--store-backend``, or by
extension: ``.sqlite``/``.db`` selects the indexed SQLite backend, anything
else the JSON-lines interchange format).  ``--mode diff`` regression-diffs
two stores (``--store`` vs ``--baseline``) into a Markdown report, and the
``store`` verbs (``python -m repro store migrate|export|merge|info``)
convert between backends and union shard stores losslessly.  ``--shard
I/K`` runs one deterministic slice of a grid (each shard writing its own
store) so a sweep can fan out across machines; ``store merge`` reassembles
the shards into a store indistinguishable from an unsharded run's.

``--trace`` / ``--metrics`` / ``--progress`` switch on the unified
telemetry layer: a pool-safe span trace, a per-run metrics summary record
in the store, and a live stderr heartbeat.  ``python -m repro trace
summarize|slowest|critical-path FILE`` analyses a trace;
``python -m repro telemetry export --store PATH`` prints the stored
metrics in Prometheus text format — see ``docs/telemetry.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.metrics import evaluate_carving, evaluate_decomposition
from repro.analysis.tables import format_table
from repro.clustering.validation import check_ball_carving, check_network_decomposition
from repro.core.api import carve, decompose, run_task
from repro.kernels import KERNEL_CHOICES, KERNELS
from repro.pipeline.scenarios import build_workload, list_scenarios
from repro.registry import METHODS, TASKS


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-decompose",
        description=(
            "Reproduce 'Strong-Diameter Network Decomposition' (PODC 2021): "
            "run a decomposition or ball carving and print its measured parameters."
        ),
    )
    parser.add_argument(
        "--family",
        choices=list_scenarios(),
        default="torus",
        help="workload graph family (a scenario registry name; see --list-scenarios)",
    )
    parser.add_argument("--n", type=int, default=256, help="approximate number of nodes")
    parser.add_argument(
        "--method",
        choices=sorted(METHODS.names()),
        default="strong-log3",
        help="algorithm to run",
    )
    parser.add_argument(
        "--task",
        choices=sorted(TASKS.names()),
        default="decompose",
        help=(
            "decomposition mode: application task to run on top of the "
            "computed decomposition ('decompose' records the decomposition "
            "itself; 'mis' / 'coloring' solve and verify via the C*D "
            "template — see --list-tasks)"
        ),
    )
    parser.add_argument(
        "--mode",
        choices=("decomposition", "carving", "suite", "diff"),
        default="decomposition",
        help=(
            "compute a full network decomposition, a single ball carving, "
            "run a whole suite grid through the batch pipeline, or diff two "
            "run stores (--store vs --baseline) into a regression report"
        ),
    )
    parser.add_argument("--eps", type=float, default=0.5, help="carving boundary parameter")
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the workload generator and the randomized baselines",
    )
    parser.add_argument(
        "--backend",
        choices=("csr", "nx"),
        default="csr",
        help=(
            "graph backend: 'csr' runs the flat-array fast path (default), "
            "'nx' the original networkx walks (differential-testing oracle)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="auto",
        help=(
            "hot-path kernel tier: 'pure' runs the reference Python loops, "
            "'numpy' the vectorized frontier expansion, 'numba' the JIT "
            "loops (opt-in; needs the repro[jit] extra); 'auto' picks the "
            "fastest non-JIT tier available (see --list-kernels)"
        ),
    )
    parser.add_argument(
        "--graph-backend",
        choices=("memory", "memmap"),
        default="memory",
        help=(
            "where the topology lives: 'memory' builds networkx / heap-CSR "
            "graphs (default); 'memmap' streams into on-disk np.memmap-backed "
            "CSR files and runs the networkx-free facade, bounding the "
            "resident set on million-node graphs (requires --backend csr; "
            "results are identical — see docs/out_of_core.md)"
        ),
    )
    parser.add_argument(
        "--spill-dir",
        metavar="DIR",
        default=None,
        help=(
            "directory for out-of-core artifacts: memmap scratch / edgelist "
            "conversion cache files, and — in suite pool mode — arena columns "
            "spilled to disk past the --arena-mb budget (default: system temp "
            "dir for scratch, arena spill disabled)"
        ),
    )
    parser.add_argument(
        "--partition-nodes",
        type=int,
        metavar="N",
        default=None,
        help=(
            "decomposition mode: decompose in deterministic BFS-ordered "
            "chunks of at most N nodes with per-chunk color offsets, bounding "
            "the peak working set on out-of-core graphs (trades color count "
            "for memory)"
        ),
    )
    parser.add_argument(
        "--skip-validation",
        action="store_true",
        help="skip the invariant validators (faster on large graphs)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help=(
            "instead of running a single algorithm, write a Markdown experiment "
            "report (live summary + archived benchmark tables) to PATH"
        ),
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write the computed clustering as JSON to PATH",
    )
    parser.add_argument(
        "--spec",
        metavar="PATH",
        default=None,
        help=(
            "suite mode: JSON suite spec file to run (see docs/pipeline.md); "
            "without it a one-scenario grid is built from the other flags"
        ),
    )
    parser.add_argument(
        "--suite-mode",
        choices=("decomposition", "carving"),
        default="decomposition",
        help=(
            "suite mode without --spec: task type of the flag-built grid "
            "(carving expands the --eps value as a grid axis)"
        ),
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=(
            "suite mode: run store to resume from and stream results into "
            "(created if missing; completed cells are skipped; a .sqlite/.db "
            "extension selects the SQLite backend).  diff mode: the store "
            "under test"
        ),
    )
    parser.add_argument(
        "--store-backend",
        choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help=(
            "store backend override ('auto' selects by the --store path "
            "extension: .sqlite/.sqlite3/.db -> sqlite, else jsonl)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="diff mode: the baseline run store to compare --store against",
    )
    parser.add_argument(
        "--diff-tolerance",
        metavar="FIELD=VALUE",
        action="append",
        default=None,
        help=(
            "diff mode: per-field tolerance override (repeatable), e.g. "
            "'clusters=1', 'algo_s=0.5,1.0' (relative,absolute seconds) or "
            "'rounds=none' to skip a field"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="suite mode: process-pool size (1 = serial, 0 = one per CPU)",
    )
    parser.add_argument(
        "--shared-graphs",
        choices=("on", "off", "auto"),
        default="auto",
        help=(
            "suite mode: share one topology build per grid column — "
            "in-process when serial, via zero-copy shared-memory CSR "
            "segments when pooled ('auto' falls back to per-cell rebuilds "
            "where shared memory is unavailable; results are identical "
            "either way)"
        ),
    )
    parser.add_argument(
        "--arena-mb",
        type=int,
        default=256,
        help=(
            "suite mode: budget in MiB for live shared-memory graph "
            "segments (columns beyond it wait for earlier ones to finish)"
        ),
    )
    parser.add_argument(
        "--shard",
        metavar="I/K",
        default=None,
        help=(
            "suite mode: run only deterministic shard I of a K-way split of "
            "the grid (0 <= I < K), e.g. '--shard 0/2'; cells are "
            "partitioned by a stable hash of their topology column, so "
            "task groups and column batching stay intact and the split "
            "never changes when the grid is reordered.  Each shard writes "
            "its own --store; union them afterwards with 'python -m repro "
            "store merge'"
        ),
    )
    parser.add_argument(
        "--tasks",
        metavar="TASKS",
        default="decompose",
        help=(
            "suite mode without --spec: comma-separated task axis of the "
            "flag-built grid (e.g. 'mis,coloring'); every task of a cell "
            "group reuses one decomposition"
        ),
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN",
        default=None,
        help=(
            "suite mode: seeded fault-injection plan as 'kind:value' pairs "
            "(e.g. 'drop:0.05,crash:1'; kinds via --list-fault-kinds); "
            "enables supervised execution — see docs/robustness.md"
        ),
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "suite mode: per-cell wall-clock deadline; an expired cell "
            "counts a failed attempt (pool workers are terminated and the "
            "pool respawned); enables supervised execution"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "suite mode: retries per failing cell (seeded exponential "
            "backoff) before it is quarantined as an explicit "
            "status=failed record instead of aborting the suite; enables "
            "supervised execution"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help=(
            "suite mode: append a span trace (one JSON line per closed "
            "span, pool-safe) to FILE; analyse it with 'python -m repro "
            "trace summarize|slowest|critical-path FILE' — see "
            "docs/telemetry.md"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "suite mode: collect the run's counters/histograms and store "
            "them as a per-run telemetry summary record; export with "
            "'python -m repro telemetry export --store PATH'"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "suite mode: print a rate-limited live heartbeat to stderr "
            "(cells done/failed/retried, rate, ETA)"
        ),
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the registered workload scenarios and exit",
    )
    parser.add_argument(
        "--list-tasks",
        action="store_true",
        help="print the registered pipeline tasks and exit",
    )
    parser.add_argument(
        "--list-kernels",
        action="store_true",
        help="print the registered hot-path kernels and their availability, then exit",
    )
    parser.add_argument(
        "--list-fault-kinds",
        action="store_true",
        help="print the fault-injection kinds accepted by --faults and exit",
    )
    return parser


def _run_suite_mode(args) -> int:
    """``--mode suite``: run a grid through the pipeline and print its rows."""
    import repro
    from repro.analysis.tables import rows_from_records
    from repro.pipeline.runner import SuiteSpec, load_spec

    if args.spec is not None:
        spec = load_spec(args.spec)
        overrides = {}
        if args.kernel != "auto":
            overrides["kernel"] = args.kernel
        if args.graph_backend != "memory":
            overrides["graph_backend"] = args.graph_backend
        if args.spill_dir is not None:
            overrides["spill_dir"] = args.spill_dir
        if args.partition_nodes is not None:
            overrides["partition_nodes"] = args.partition_nodes
        if overrides:
            import dataclasses

            spec = dataclasses.replace(spec, **overrides)
    else:
        tasks = tuple(
            task.strip() for task in str(args.tasks).split(",") if task.strip()
        ) or ("decompose",)
        spec = SuiteSpec(
            name="cli-{}".format(args.family),
            scenarios=(args.family,),
            sizes=(args.n,),
            methods=(args.method,),
            mode=args.suite_mode,
            eps=(args.eps,),
            seeds=(args.seed,),
            tasks=tasks,
            backend=args.backend,
            kernel=args.kernel,
            graph_backend=args.graph_backend,
            spill_dir=args.spill_dir,
            partition_nodes=args.partition_nodes,
            validate=not args.skip_validation,
        )
    result = repro.run_suite(
        spec,
        store=args.store,
        workers=args.workers,
        shared_graphs=args.shared_graphs,
        arena_mb=args.arena_mb,
        store_backend=args.store_backend,
        faults=args.faults,
        cell_timeout=args.cell_timeout,
        max_retries=args.max_retries,
        trace=args.trace,
        metrics=args.metrics,
        progress=args.progress,
        shard=args.shard,
    )
    print(
        format_table(
            rows_from_records(result.records),
            title="suite {!r} — {} cells".format(spec.name, len(result.records)),
        )
    )
    arena = result.arena or {}
    sharing = ""
    if arena.get("shared_graphs"):
        sharing = ", {} column(s) / {} build(s) [{}]".format(
            arena.get("columns", 0), arena.get("graph_builds", 0), arena.get("mode")
        )
    print(
        "executed {} cell(s), {} store hit(s), {:.2f}s{}{}".format(
            result.executed,
            result.skipped,
            result.seconds,
            sharing,
            " — store: {}".format(args.store) if args.store else "",
        )
    )
    supervisor = result.supervisor or {}
    if supervisor:
        failed = sum(
            1 for record in result.records if record.get("status") == "failed"
        )
        print(
            "supervisor: {} failure(s), {} retrie(s) ({} retried ok), "
            "{} quarantined, {} timeout(s), {} pool respawn(s); "
            "{} cell(s) failed in store".format(
                supervisor.get("failures", 0),
                supervisor.get("retries", 0),
                supervisor.get("retried_ok", 0),
                supervisor.get("quarantined", 0),
                supervisor.get("timeouts", 0),
                supervisor.get("pool_respawns", 0),
                failed,
            )
        )
    return 0


def _run_diff_mode(args) -> int:
    """``--mode diff``: regression-diff two run stores, print Markdown.

    Exit code 0 when the diff is clean (no tolerance-breaking deltas and no
    baseline cells missing), 1 otherwise — so CI can gate on it directly.
    """
    from repro.analysis.diff import diff_stores, parse_tolerance_overrides

    if args.store is None or args.baseline is None:
        print("--mode diff needs both --store and --baseline", file=sys.stderr)
        return 2
    import os

    from repro.pipeline.backends import open_store

    # Usage errors (missing files, bad tolerance syntax, unknown fields)
    # exit 2, keeping exit 1 unambiguous: "the diff found regressions".
    try:
        tolerances = parse_tolerance_overrides(args.diff_tolerance or [])
        if not os.path.exists(args.store):
            raise FileNotFoundError("no such run store: {!r}".format(args.store))
        # --store-backend overrides the extension for the store under test;
        # the baseline is always opened by its own extension.
        current = open_store(args.store, backend=args.store_backend)
        diff = diff_stores(current, args.baseline, tolerances=tolerances)
    except (ValueError, OSError) as error:
        print("diff: {}".format(error), file=sys.stderr)
        return 2
    markdown = diff.to_markdown()
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print("wrote regression diff to {}".format(args.report))
    print(markdown)
    return 0 if diff.clean else 1


def build_store_parser() -> argparse.ArgumentParser:
    """Parser for the ``store`` maintenance verbs (``python -m repro store``)."""
    parser = argparse.ArgumentParser(
        prog="repro-decompose store",
        description=(
            "Run-store maintenance: convert stores between the JSON-lines "
            "interchange format and the indexed SQLite backend, and merge "
            "shard stores into one — losslessly."
        ),
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    migrate = verbs.add_parser(
        "migrate",
        help="convert a run store to another backend (selected by the "
        "destination extension, or forced with --store-backend)",
    )
    migrate.add_argument("source", help="existing run store (any backend)")
    migrate.add_argument("destination", help="store file to create")
    migrate.add_argument(
        "--store-backend",
        choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help="destination backend ('auto' selects by extension)",
    )

    export = verbs.add_parser(
        "export",
        help="export any run store to the canonical JSON-lines interchange "
        "format (byte-identical to a store written directly as JSONL)",
    )
    export.add_argument("source", help="existing run store (any backend)")
    export.add_argument("destination", help="JSON-lines file to create")

    merge = verbs.add_parser(
        "merge",
        help="union shard run stores (written by --shard suite runs) into "
        "one store, byte-losslessly; refuses conflicting cells and "
        "mismatched suite specs",
    )
    merge.add_argument(
        "sources", nargs="+", help="shard run stores to merge (any backend)"
    )
    merge.add_argument("destination", help="merged store file to create")
    merge.add_argument(
        "--store-backend",
        choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help="destination backend ('auto' selects by extension)",
    )

    info = verbs.add_parser("info", help="print a store's header and cell count")
    info.add_argument("source", help="run store to inspect (any backend)")
    return parser


def _store_main(argv: List[str]) -> int:
    """Dispatch the ``store migrate|export|merge|info`` verbs."""
    import json

    from repro.pipeline.backends import (
        StoreMergeError,
        backend_for_path,
        convert_store,
        merge_stores,
        open_store,
        shard_provenance,
    )

    import os

    args = build_store_parser().parse_args(argv)
    if args.verb == "merge":
        try:
            destination = merge_stores(
                args.sources,
                args.destination,
                destination_backend=args.store_backend,
            )
        except (StoreMergeError, ValueError, OSError) as error:
            print("store merge: {}".format(error), file=sys.stderr)
            return 1
        count = len(destination)
        destination.close()
        print(
            "merged {} record(s) from {} store(s) -> {} ({})".format(
                count,
                len(args.sources),
                args.destination,
                args.store_backend
                if args.store_backend != "auto"
                else backend_for_path(args.destination),
            )
        )
        return 0
    if not os.path.exists(args.source):
        print("store {}: no such store: {}".format(args.verb, args.source), file=sys.stderr)
        return 1
    if args.verb == "info":
        store = open_store(args.source)
        print(
            "backend={} suite={!r} cells={}".format(store.backend, store.suite, len(store))
        )
        if store.metadata:
            print("metadata: {}".format(json.dumps(store.metadata)))
        provenance = shard_provenance(store)
        if provenance is not None:
            shard = provenance.get("shard")
            if isinstance(shard, dict):
                print(
                    "shard: {}/{}".format(shard.get("index"), shard.get("count"))
                )
            for entry in provenance.get("merged_from") or []:
                entry_shard = entry.get("shard")
                print(
                    "merged-from: {} (shard {}, {} cell(s))".format(
                        entry.get("source"),
                        "{}/{}".format(entry_shard.get("index"), entry_shard.get("count"))
                        if isinstance(entry_shard, dict)
                        else "-",
                        entry.get("cells"),
                    )
                )
        store.close()
        return 0

    destination_backend = (
        "jsonl" if args.verb == "export" else getattr(args, "store_backend", "auto")
    )
    try:
        destination = convert_store(
            args.source, args.destination, destination_backend=destination_backend
        )
    except (ValueError, OSError) as error:
        print("store {}: {}".format(args.verb, error), file=sys.stderr)
        return 1
    count = len(destination)
    destination.close()
    print(
        "{} {} record(s): {} ({}) -> {} ({})".format(
            "migrated" if args.verb == "migrate" else "exported",
            count,
            args.source,
            backend_for_path(args.source),
            args.destination,
            destination_backend
            if destination_backend != "auto"
            else backend_for_path(args.destination),
        )
    )
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    """Parser for the trace-analysis verbs (``python -m repro trace``)."""
    parser = argparse.ArgumentParser(
        prog="repro-decompose trace",
        description=(
            "Analyse a span trace written by a --trace suite run: rebuild "
            "the span tree and report where the time went."
        ),
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    summarize = verbs.add_parser(
        "summarize",
        help="per-phase breakdown, per-span-name totals, and outlier cells",
    )
    summarize.add_argument("trace_file", help="span trace (JSON lines)")

    slowest = verbs.add_parser("slowest", help="the top-N longest spans")
    slowest.add_argument("trace_file", help="span trace (JSON lines)")
    slowest.add_argument(
        "--top", type=int, default=10, metavar="N", help="spans to show (default 10)"
    )
    slowest.add_argument(
        "--name",
        default=None,
        metavar="SPAN",
        help="restrict to one span name (e.g. cell.task)",
    )

    critical = verbs.add_parser(
        "critical-path",
        help="the heaviest root-to-leaf chain of the span tree",
    )
    critical.add_argument("trace_file", help="span trace (JSON lines)")
    return parser


def _trace_main(argv: List[str]) -> int:
    """Dispatch the ``trace summarize|slowest|critical-path`` verbs."""
    import os

    from repro.analysis.trace import (
        format_critical_path,
        format_slowest,
        format_summary,
        load_trace,
    )

    args = build_trace_parser().parse_args(argv)
    if not os.path.exists(args.trace_file):
        print(
            "trace {}: no such trace file: {}".format(args.verb, args.trace_file),
            file=sys.stderr,
        )
        return 1
    trace = load_trace(args.trace_file)
    if args.verb == "summarize":
        print(format_summary(trace))
    elif args.verb == "slowest":
        print(format_slowest(trace, top=args.top, name=args.name))
    else:
        print(format_critical_path(trace))
    return 0


def build_telemetry_parser() -> argparse.ArgumentParser:
    """Parser for the metrics verbs (``python -m repro telemetry``)."""
    parser = argparse.ArgumentParser(
        prog="repro-decompose telemetry",
        description=(
            "Export the telemetry summary records a --metrics suite run "
            "stored alongside its results."
        ),
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    export = verbs.add_parser(
        "export",
        help="print a store's metrics in Prometheus text exposition format",
    )
    export.add_argument(
        "--store", required=True, metavar="PATH", help="run store to export from"
    )
    export.add_argument(
        "--store-backend",
        choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help="store backend override ('auto' selects by extension)",
    )
    return parser


def _telemetry_main(argv: List[str]) -> int:
    """Dispatch the ``telemetry export`` verb."""
    import os

    from repro import telemetry
    from repro.pipeline.backends import open_store

    args = build_telemetry_parser().parse_args(argv)
    if not os.path.exists(args.store):
        print(
            "telemetry {}: no such run store: {}".format(args.verb, args.store),
            file=sys.stderr,
        )
        return 1
    store = open_store(args.store, backend=args.store_backend)
    summaries = [
        record for record in store.summaries() if record.get("kind") == "telemetry"
    ]
    store.close()
    if not summaries:
        print(
            "telemetry export: store has no telemetry summaries "
            "(run the suite with --metrics)",
            file=sys.stderr,
        )
        return 1
    # Later runs of a resumed suite re-count from zero, so merge the
    # summaries into one cumulative registry before rendering.
    registry = telemetry.MetricsRegistry()
    for record in summaries:
        registry.merge(record.get("metrics") or {})
    print(telemetry.render_prometheus(registry.snapshot()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        return _store_main(list(argv[1:]))
    if argv and argv[0] == "trace":
        return _trace_main(list(argv[1:]))
    if argv and argv[0] == "telemetry":
        return _telemetry_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_scenarios:
        from repro.pipeline.scenarios import get_scenario

        for name in list_scenarios():
            print("{:14s} {}".format(name, get_scenario(name).description))
        return 0

    if args.list_tasks:
        for name in TASKS.names():
            print("{:14s} {}".format(name, TASKS.get(name).description))
        return 0

    if args.list_kernels:
        available = KERNELS.available_names()
        for name in KERNELS.names():
            marker = "available" if name in available else "unavailable"
            print("{:14s} [{}] {}".format(name, marker, KERNELS.get(name).description))
        return 0

    if args.list_fault_kinds:
        from repro.registry import FAULT_KINDS

        for kind in FAULT_KINDS:
            print(
                "{:10s} [{}] {}".format(
                    kind.name, "/".join(kind.scopes), kind.description
                )
            )
        return 0

    if args.mode == "suite":
        return _run_suite_mode(args)

    if args.mode == "diff":
        return _run_diff_mode(args)

    if args.report is not None:
        from repro.analysis.report import generate_report

        report = generate_report(live_summary_n=min(args.n, 144))
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print("wrote experiment report to {}".format(args.report))
        return 0

    if args.graph_backend == "memmap":
        if args.backend != "csr":
            print(
                "--graph-backend memmap requires --backend csr (the facade "
                "serves the flat-array kernels only)",
                file=sys.stderr,
            )
            return 2
        from repro.pipeline.scenarios import build_workload_memmap

        graph = build_workload_memmap(
            args.family, args.n, seed=args.seed, spill_dir=args.spill_dir
        )
    else:
        graph = build_workload(args.family, args.n, seed=args.seed)
    print(
        "graph: family={} nodes={} edges={}".format(
            args.family, graph.number_of_nodes(), graph.number_of_edges()
        )
    )

    from repro.graphs.backend import use_backend
    from repro.kernels import use_kernel

    # Scope the backend switch over validation and metrics too: selecting
    # the nx oracle must keep *all* graph walks off the CSR code paths.
    # The kernel switch rides along so --kernel covers the whole run.
    with use_backend(args.backend), use_kernel(args.kernel):
        if args.mode == "carving":
            carving = carve(graph, args.eps, method=args.method, seed=args.seed)
            if not args.skip_validation:
                # The randomized baselines guarantee their dead fraction only
                # in expectation, so structural invariants are checked but
                # the per-run dead fraction gets slack.
                lenient = not METHODS.get(args.method).deterministic
                check_ball_carving(carving, max_dead_fraction=0.99 if lenient else None)
            metrics = evaluate_carving(carving, args.method)
            print(format_table([metrics.as_row()], title="ball carving"))
            result = carving
        else:
            decomposition = decompose(
                graph,
                method=args.method,
                seed=args.seed,
                partition_nodes=args.partition_nodes,
            )
            if not args.skip_validation:
                check_network_decomposition(decomposition)
            metrics = evaluate_decomposition(decomposition, args.method)
            print(format_table([metrics.as_row()], title="network decomposition"))
            if args.task != "decompose":
                task_result = run_task(
                    graph,
                    method=args.method,
                    task=args.task,
                    decomposition=decomposition,
                )
                print(format_table([task_result.as_row()], title="task {}".format(args.task)))
                if not args.skip_validation and not task_result.metrics.get("verified"):
                    print(
                        "task {} solution failed verification".format(args.task),
                        file=sys.stderr,
                    )
                    return 1
            result = decomposition

    if args.save is not None:
        from repro.graphs.io import write_clustering

        write_clustering(result, args.save)
        print("wrote clustering to {}".format(args.save))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
