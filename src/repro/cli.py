"""Command-line interface: ``python -m repro`` / ``repro-decompose``.

Builds a workload graph, runs the chosen decomposition or carving algorithm,
validates the result, and prints the measured parameters — a quick way to see
the reproduction's headline numbers without writing any code.

``--mode suite`` switches to the batched pipeline: a whole
``(scenario x n x method x eps x seed)`` grid is run through
:func:`repro.run_suite`, either from a JSON spec file (``--spec``, format in
``docs/pipeline.md``) or from the single-run flags (``--suite-mode`` picks
decomposition or carving for the flag-built grid), optionally fanned out
over ``--workers`` processes and resumed from / persisted to ``--store``.
``--shared-graphs`` controls the column-batched shared-graph arena (one
topology build per grid column, zero-copy shared-memory segments in pool
runs) and ``--arena-mb`` bounds the live segment budget.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.metrics import evaluate_carving, evaluate_decomposition
from repro.analysis.tables import format_table
from repro.clustering.validation import check_ball_carving, check_network_decomposition
from repro.core.api import CARVING_METHODS, DECOMPOSITION_METHODS, carve, decompose
from repro.pipeline.scenarios import build_workload, list_scenarios


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-decompose",
        description=(
            "Reproduce 'Strong-Diameter Network Decomposition' (PODC 2021): "
            "run a decomposition or ball carving and print its measured parameters."
        ),
    )
    parser.add_argument(
        "--family",
        choices=list_scenarios(),
        default="torus",
        help="workload graph family (a scenario registry name; see --list-scenarios)",
    )
    parser.add_argument("--n", type=int, default=256, help="approximate number of nodes")
    parser.add_argument(
        "--method",
        choices=sorted(set(DECOMPOSITION_METHODS)),
        default="strong-log3",
        help="algorithm to run",
    )
    parser.add_argument(
        "--mode",
        choices=("decomposition", "carving", "suite"),
        default="decomposition",
        help=(
            "compute a full network decomposition, a single ball carving, "
            "or run a whole suite grid through the batch pipeline"
        ),
    )
    parser.add_argument("--eps", type=float, default=0.5, help="carving boundary parameter")
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the workload generator and the randomized baselines",
    )
    parser.add_argument(
        "--backend",
        choices=("csr", "nx"),
        default="csr",
        help=(
            "graph backend: 'csr' runs the flat-array fast path (default), "
            "'nx' the original networkx walks (differential-testing oracle)"
        ),
    )
    parser.add_argument(
        "--skip-validation",
        action="store_true",
        help="skip the invariant validators (faster on large graphs)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help=(
            "instead of running a single algorithm, write a Markdown experiment "
            "report (live summary + archived benchmark tables) to PATH"
        ),
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write the computed clustering as JSON to PATH",
    )
    parser.add_argument(
        "--spec",
        metavar="PATH",
        default=None,
        help=(
            "suite mode: JSON suite spec file to run (see docs/pipeline.md); "
            "without it a one-scenario grid is built from the other flags"
        ),
    )
    parser.add_argument(
        "--suite-mode",
        choices=("decomposition", "carving"),
        default="decomposition",
        help=(
            "suite mode without --spec: task type of the flag-built grid "
            "(carving expands the --eps value as a grid axis)"
        ),
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=(
            "suite mode: JSON-lines run store to resume from and stream "
            "results into (created if missing; completed cells are skipped)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="suite mode: process-pool size (1 = serial, 0 = one per CPU)",
    )
    parser.add_argument(
        "--shared-graphs",
        choices=("on", "off", "auto"),
        default="auto",
        help=(
            "suite mode: share one topology build per grid column — "
            "in-process when serial, via zero-copy shared-memory CSR "
            "segments when pooled ('auto' falls back to per-cell rebuilds "
            "where shared memory is unavailable; results are identical "
            "either way)"
        ),
    )
    parser.add_argument(
        "--arena-mb",
        type=int,
        default=256,
        help=(
            "suite mode: budget in MiB for live shared-memory graph "
            "segments (columns beyond it wait for earlier ones to finish)"
        ),
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the registered workload scenarios and exit",
    )
    return parser


def _run_suite_mode(args) -> int:
    """``--mode suite``: run a grid through the pipeline and print its rows."""
    import repro
    from repro.analysis.tables import rows_from_records
    from repro.pipeline.runner import SuiteSpec, load_spec

    if args.spec is not None:
        spec = load_spec(args.spec)
    else:
        spec = SuiteSpec(
            name="cli-{}".format(args.family),
            scenarios=(args.family,),
            sizes=(args.n,),
            methods=(args.method,),
            mode=args.suite_mode,
            eps=(args.eps,),
            seeds=(args.seed,),
            backend=args.backend,
            validate=not args.skip_validation,
        )
    result = repro.run_suite(
        spec,
        store=args.store,
        workers=args.workers,
        shared_graphs=args.shared_graphs,
        arena_mb=args.arena_mb,
    )
    print(
        format_table(
            rows_from_records(result.records),
            title="suite {!r} — {} cells".format(spec.name, len(result.records)),
        )
    )
    arena = result.arena or {}
    sharing = ""
    if arena.get("shared_graphs"):
        sharing = ", {} column(s) / {} build(s) [{}]".format(
            arena.get("columns", 0), arena.get("graph_builds", 0), arena.get("mode")
        )
    print(
        "executed {} cell(s), {} store hit(s), {:.2f}s{}{}".format(
            result.executed,
            result.skipped,
            result.seconds,
            sharing,
            " — store: {}".format(args.store) if args.store else "",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_scenarios:
        from repro.pipeline.scenarios import get_scenario

        for name in list_scenarios():
            print("{:14s} {}".format(name, get_scenario(name).description))
        return 0

    if args.mode == "suite":
        return _run_suite_mode(args)

    if args.report is not None:
        from repro.analysis.report import generate_report

        report = generate_report(live_summary_n=min(args.n, 144))
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print("wrote experiment report to {}".format(args.report))
        return 0

    graph = build_workload(args.family, args.n, seed=args.seed)
    print(
        "graph: family={} nodes={} edges={}".format(
            args.family, graph.number_of_nodes(), graph.number_of_edges()
        )
    )

    from repro.graphs.backend import use_backend

    # Scope the backend switch over validation and metrics too: selecting
    # the nx oracle must keep *all* graph walks off the CSR code paths.
    with use_backend(args.backend):
        if args.mode == "carving":
            carving = carve(graph, args.eps, method=args.method, seed=args.seed)
            if not args.skip_validation:
                # The randomized baselines guarantee their dead fraction only
                # in expectation, so structural invariants are checked but
                # the per-run dead fraction gets slack.
                lenient = args.method in ("ls93", "mpx")
                check_ball_carving(carving, max_dead_fraction=0.99 if lenient else None)
            metrics = evaluate_carving(carving, args.method)
            print(format_table([metrics.as_row()], title="ball carving"))
            result = carving
        else:
            decomposition = decompose(graph, method=args.method, seed=args.seed)
            if not args.skip_validation:
                check_network_decomposition(decomposition)
            metrics = evaluate_decomposition(decomposition, args.method)
            print(format_table([metrics.as_row()], title="network decomposition"))
            result = decomposition

    if args.save is not None:
        from repro.graphs.io import write_clustering

        write_clustering(result, args.save)
        print("wrote clustering to {}".format(args.save))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
