"""Command-line interface: ``python -m repro`` / ``repro-decompose``.

Builds a workload graph, runs the chosen decomposition or carving algorithm,
validates the result, and prints the measured parameters — a quick way to see
the reproduction's headline numbers without writing any code.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.metrics import evaluate_carving, evaluate_decomposition
from repro.analysis.tables import format_table
from repro.clustering.validation import check_ball_carving, check_network_decomposition
from repro.core.api import CARVING_METHODS, DECOMPOSITION_METHODS, carve, decompose
from repro.graphs.generators import (
    binary_tree_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    random_regular_graph,
    torus_graph,
)

_FAMILIES = {
    "torus": lambda n: torus_graph(max(3, int(round(n ** 0.5))), max(3, int(round(n ** 0.5)))),
    "grid": lambda n: grid_graph(max(2, int(round(n ** 0.5))), max(2, int(round(n ** 0.5)))),
    "cycle": lambda n: cycle_graph(max(3, n)),
    "tree": lambda n: binary_tree_graph(max(1, n.bit_length() - 1)),
    "hypercube": lambda n: hypercube_graph(max(1, n.bit_length() - 1)),
    "regular": lambda n: random_regular_graph(n if n % 2 == 0 else n + 1, 4, seed=1),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-decompose",
        description=(
            "Reproduce 'Strong-Diameter Network Decomposition' (PODC 2021): "
            "run a decomposition or ball carving and print its measured parameters."
        ),
    )
    parser.add_argument(
        "--family", choices=sorted(_FAMILIES), default="torus", help="workload graph family"
    )
    parser.add_argument("--n", type=int, default=256, help="approximate number of nodes")
    parser.add_argument(
        "--method",
        choices=sorted(set(DECOMPOSITION_METHODS)),
        default="strong-log3",
        help="algorithm to run",
    )
    parser.add_argument(
        "--mode",
        choices=("decomposition", "carving"),
        default="decomposition",
        help="compute a full network decomposition or a single ball carving",
    )
    parser.add_argument("--eps", type=float, default=0.5, help="carving boundary parameter")
    parser.add_argument("--seed", type=int, default=0, help="seed for randomized baselines")
    parser.add_argument(
        "--backend",
        choices=("csr", "nx"),
        default="csr",
        help=(
            "graph backend: 'csr' runs the flat-array fast path (default), "
            "'nx' the original networkx walks (differential-testing oracle)"
        ),
    )
    parser.add_argument(
        "--skip-validation",
        action="store_true",
        help="skip the invariant validators (faster on large graphs)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help=(
            "instead of running a single algorithm, write a Markdown experiment "
            "report (live summary + archived benchmark tables) to PATH"
        ),
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write the computed clustering as JSON to PATH",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.report is not None:
        from repro.analysis.report import generate_report

        report = generate_report(live_summary_n=min(args.n, 144))
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print("wrote experiment report to {}".format(args.report))
        return 0

    graph = _FAMILIES[args.family](args.n)
    print(
        "graph: family={} nodes={} edges={}".format(
            args.family, graph.number_of_nodes(), graph.number_of_edges()
        )
    )

    from repro.graphs.backend import use_backend

    # Scope the backend switch over validation and metrics too: selecting
    # the nx oracle must keep *all* graph walks off the CSR code paths.
    with use_backend(args.backend):
        if args.mode == "carving":
            carving = carve(graph, args.eps, method=args.method, seed=args.seed)
            if not args.skip_validation:
                # The randomized baselines guarantee their dead fraction only
                # in expectation, so structural invariants are checked but
                # the per-run dead fraction gets slack.
                lenient = args.method in ("ls93", "mpx")
                check_ball_carving(carving, max_dead_fraction=0.99 if lenient else None)
            metrics = evaluate_carving(carving, args.method)
            print(format_table([metrics.as_row()], title="ball carving"))
            result = carving
        else:
            decomposition = decompose(graph, method=args.method, seed=args.seed)
            if not args.skip_validation:
                check_network_decomposition(decomposition)
            metrics = evaluate_decomposition(decomposition, args.method)
            print(format_table([metrics.as_row()], title="network decomposition"))
            result = decomposition

    if args.save is not None:
        from repro.graphs.io import write_clustering

        write_clustering(result, args.save)
        print("wrote clustering to {}".format(args.save))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
