"""Seeded, deterministic fault injection: the ``--faults`` plan.

The paper analyses its algorithms in a failure-free CONGEST model; a
production-scale harness has to know what happens *outside* that model.
This module defines the one vocabulary both robustness layers share:

* **message-scope** faults are consulted by
  :class:`repro.congest.simulator.CongestSimulator` every round — messages
  are dropped, duplicated or delayed, and nodes crash (and later restart)
  on a seeded schedule;
* **cell-scope** faults are consulted by the suite runner's supervisor
  (:mod:`repro.pipeline.supervisor`) once per execution attempt — a task
  group's worker crashes, hangs past the cell timeout, stalls briefly, or
  has its computed clustering corrupted so the validators must catch it
  (:class:`repro.clustering.validation.FaultDetected` — never silent
  corruption).

Everything is derived from the suite's SHA-256 seed scheme (the same
construction as :func:`repro.pipeline.runner.derive_cell_seed`): the same
``(master_seed, plan, cell, attempt)`` always draws the same faults, on any
platform, in any process — chaos runs are reproducible experiments, not
noise.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault plan (cell scope)."""


@dataclasses.dataclass(frozen=True)
class FaultKindSpec:
    """One injectable fault kind (the ``--list-fault-kinds`` catalogue).

    Attributes:
        name: The kind string used in a plan spec (``"drop"``, ...).
        value: What the number after the colon means (``"probability"``
            in ``[0, 1]``, or ``"count-or-probability"`` — integers >= 1
            schedule exactly that many victims, fractions are per-trial
            probabilities).
        scopes: Where the kind applies: ``"message"`` (simulator),
            ``"cell"`` (suite supervisor), or both.
        description: One line for the CLI listing and the docs table.
    """

    name: str
    value: str
    scopes: Tuple[str, ...]
    description: str


#: The fault-kind registry, in plan-spec order.  ``docs/robustness.md``
#: pins its table to exactly these names.
FAULT_KINDS: Tuple[FaultKindSpec, ...] = (
    FaultKindSpec(
        name="drop",
        value="probability",
        scopes=("message", "cell"),
        description=(
            "simulator: drop each message; pipeline: corrupt the attempt's "
            "clustering so validation raises FaultDetected"
        ),
    ),
    FaultKindSpec(
        name="duplicate",
        value="probability",
        scopes=("message",),
        description="simulator: deliver a message twice in the same round",
    ),
    FaultKindSpec(
        name="delay",
        value="probability",
        scopes=("message", "cell"),
        description=(
            "simulator: hold a message back one round; pipeline: stall the "
            "attempt briefly (counted, still succeeds)"
        ),
    ),
    FaultKindSpec(
        name="crash",
        value="count-or-probability",
        scopes=("message", "cell"),
        description=(
            "simulator: fail-stop that many nodes mid-run and restart them; "
            "pipeline: kill that many task groups' first attempts (fractions: "
            "per-attempt crash probability)"
        ),
    ),
    FaultKindSpec(
        name="hang",
        value="probability",
        scopes=("cell",),
        description=(
            "pipeline: stall the attempt past --cell-timeout so the "
            "supervisor must detect and kill it (requires --cell-timeout)"
        ),
    ),
)

FAULT_KIND_NAMES: Tuple[str, ...] = tuple(spec.name for spec in FAULT_KINDS)

#: How many rounds a simulator-crashed node stays down before restarting.
CRASH_DOWN_ROUNDS = 3


def _derive(master_seed: int, key: str) -> int:
    """SHA-256 seed derivation — same construction as ``derive_cell_seed``.

    Replicated here (two lines) instead of imported: the congest layer must
    not depend on the pipeline layer.
    """
    digest = hashlib.sha256(
        "{}:{}".format(int(master_seed), key).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "big")


@dataclasses.dataclass(frozen=True)
class CellFaultDraw:
    """The seeded fault decisions for one (task group, attempt) pair."""

    crash: bool = False
    hang: bool = False
    corrupt: bool = False
    delay_s: float = 0.0

    @property
    def any(self) -> bool:
        return self.crash or self.hang or self.corrupt or self.delay_s > 0

    def as_stats(self) -> Dict[str, Any]:
        return {
            "injected_crash": self.crash,
            "injected_hang": self.hang,
            "injected_corruption": self.corrupt,
            "injected_delay_s": round(self.delay_s, 6),
        }


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault-injection plan (``drop:0.05,crash:1`` syntax).

    Attributes hold the per-kind intensity; ``0`` disables a kind.  The
    plan itself is pure configuration — all randomness is drawn from seeds
    derived at use time, so one plan object serves every cell and every
    simulator run without shared mutable state.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    crash: float = 0.0
    hang: float = 0.0

    def __post_init__(self) -> None:
        for kind in ("drop", "duplicate", "delay", "hang"):
            value = getattr(self, kind)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    "fault {!r} takes a probability in [0, 1], got {!r}".format(
                        kind, value
                    )
                )
        if self.crash < 0:
            raise ValueError(
                "fault 'crash' takes a count (>= 1) or a probability, got {!r}".format(
                    self.crash
                )
            )

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        """Parse a ``kind:value,kind:value`` spec string (``None`` → no-op plan)."""
        if spec is None or not str(spec).strip():
            return cls()
        values: Dict[str, float] = {}
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            if ":" not in part:
                raise ValueError(
                    "malformed fault {!r}; expected 'kind:value' (kinds: {})".format(
                        part, ", ".join(FAULT_KIND_NAMES)
                    )
                )
            kind, _, raw = part.partition(":")
            kind = kind.strip()
            if kind not in FAULT_KIND_NAMES:
                raise ValueError(
                    "unknown fault kind {!r}; choose from {}".format(
                        kind, ", ".join(FAULT_KIND_NAMES)
                    )
                )
            if kind in values:
                raise ValueError("fault kind {!r} given twice".format(kind))
            try:
                values[kind] = float(raw)
            except ValueError:
                raise ValueError(
                    "fault {!r}: {!r} is not a number".format(kind, raw)
                ) from None
        return cls(**values)

    def to_spec(self) -> str:
        """The canonical spec string (inverse of :meth:`parse`)."""
        parts = []
        for spec in FAULT_KINDS:
            value = getattr(self, spec.name)
            if value:
                parts.append("{}:{:g}".format(spec.name, value))
        return ",".join(parts)

    @property
    def active(self) -> bool:
        """Whether any kind is enabled."""
        return any(getattr(self, spec.name) for spec in FAULT_KINDS)

    # ------------------------------------------------------------------ #
    # Message scope (simulator)
    # ------------------------------------------------------------------ #
    def message_state(self, seed: int) -> "MessageFaultState":
        """Fresh per-run mutable draw state for the simulator."""
        return MessageFaultState(self, seed)

    def node_crash_schedule(
        self, ordered_nodes: Sequence[Any], seed: int
    ) -> Dict[Any, Tuple[int, int]]:
        """Which nodes crash, and when: ``node -> (down_round, up_round)``.

        ``crash`` >= 1 picks exactly ``min(round(crash), n - 1)`` victims
        (at least one node always survives — an empty network cannot run);
        a fractional ``crash`` picks each node with that probability.
        Crash rounds are staggered over the early rounds so restarts
        interleave with live traffic; a node is down for
        :data:`CRASH_DOWN_ROUNDS` rounds and then restarts with its
        program state intact (fail-stop with recovery).
        """
        if not self.crash or len(ordered_nodes) <= 1:
            return {}
        rng = random.Random(seed)
        nodes = list(ordered_nodes)
        if self.crash >= 1:
            count = min(int(round(self.crash)), len(nodes) - 1)
            victims = rng.sample(nodes, count)
        else:
            victims = [node for node in nodes if rng.random() < self.crash]
            victims = victims[: len(nodes) - 1]
        schedule: Dict[Any, Tuple[int, int]] = {}
        for node in victims:
            down = rng.randrange(1, 4)
            schedule[node] = (down, down + CRASH_DOWN_ROUNDS)
        return schedule

    # ------------------------------------------------------------------ #
    # Cell scope (suite supervisor)
    # ------------------------------------------------------------------ #
    def cell_draw(
        self,
        master_seed: int,
        base_id: str,
        attempt: int,
        forced_crash: bool = False,
    ) -> CellFaultDraw:
        """The seeded fault decisions for one execution attempt.

        Seeded by ``(master_seed, plan, base_id, attempt)``: retries draw
        fresh faults (a corrupted attempt usually heals on retry), reruns
        of the same attempt reproduce exactly.  ``forced_crash`` overrides
        the crash draw — the parent's :meth:`schedule_crashes` picks exact
        victims for integer ``crash`` budgets.
        """
        rng = random.Random(
            _derive(
                master_seed,
                "fault:{}:{}:attempt{}".format(self.to_spec(), base_id, attempt),
            )
        )
        # One draw per kind, always, so adding a kind never shifts the
        # stream of the others.
        crash_roll = rng.random()
        hang_roll = rng.random()
        corrupt_roll = rng.random()
        delay_roll = rng.random()
        crash = forced_crash or (0 < self.crash < 1 and crash_roll < self.crash)
        hang = self.hang > 0 and hang_roll < self.hang
        corrupt = self.drop > 0 and corrupt_roll < self.drop
        delay_s = 0.01 if (self.delay > 0 and delay_roll < self.delay) else 0.0
        # A crash pre-empts the attempt entirely; don't also hang/corrupt.
        if crash:
            hang = corrupt = False
            delay_s = 0.0
        elif hang:
            corrupt = False
        return CellFaultDraw(crash=crash, hang=hang, corrupt=corrupt, delay_s=delay_s)

    def schedule_crashes(
        self, master_seed: int, base_ids: Iterable[str]
    ) -> frozenset:
        """Exact first-attempt crash victims for an integer ``crash`` budget.

        ``crash:1`` means "exactly one task group's first attempt dies",
        whatever the grid size — the deterministic sample here guarantees
        the chaos-smoke CI always has a retried-then-succeeded cell to find.
        Fractional budgets return the empty set (they are per-attempt
        probabilities, drawn in :meth:`cell_draw`).
        """
        if self.crash < 1:
            return frozenset()
        ordered = sorted(set(base_ids))
        if not ordered:
            return frozenset()
        count = min(int(round(self.crash)), len(ordered))
        rng = random.Random(_derive(master_seed, "fault-crash-schedule:" + self.to_spec()))
        return frozenset(rng.sample(ordered, count))


class MessageFaultState:
    """Per-simulator-run draw state and counters (message scope).

    One instance per :meth:`CongestSimulator.run` call; the simulator asks
    :meth:`message_fate` for every sent message and reads the counters into
    the report's ``fault_counters``.
    """

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        self.plan = plan
        self._rng = random.Random(seed)
        self.counters: Dict[str, int] = {
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "crashed_nodes": 0,
            "lost_to_crash": 0,
        }

    def message_fate(self) -> Tuple[bool, int, int]:
        """Draw one message's fate: ``(dropped, copies, delay_rounds)``.

        ``copies`` is how many copies to deliver now (2 when duplicated),
        ``delay_rounds`` how many rounds to hold the message back (0 or 1;
        a delayed message is not also duplicated).
        """
        plan = self.plan
        if plan.drop and self._rng.random() < plan.drop:
            self.counters["dropped"] += 1
            return True, 0, 0
        if plan.delay and self._rng.random() < plan.delay:
            self.counters["delayed"] += 1
            return False, 1, 1
        if plan.duplicate and self._rng.random() < plan.duplicate:
            self.counters["duplicated"] += 1
            return False, 2, 0
        return False, 1, 0


__all__ = [
    "CRASH_DOWN_ROUNDS",
    "CellFaultDraw",
    "FAULT_KINDS",
    "FAULT_KIND_NAMES",
    "FaultKindSpec",
    "FaultPlan",
    "InjectedFault",
    "MessageFaultState",
]
