"""Base classes for node programs run on the CONGEST simulator.

A distributed algorithm in the CONGEST model is specified *per node*: every
node runs the same program, knows only its own identifier, its incident edges
and whatever arrives in its inbox, and decides each round what to send to each
neighbour.  :class:`NodeAlgorithm` captures that contract; the simulator
instantiates one copy per node and drives the synchronous rounds.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence


@dataclasses.dataclass
class NodeContext:
    """Everything a node is allowed to know a priori.

    Attributes:
        node: The node's label in the underlying graph (used by the simulator
            only for bookkeeping; programs should use ``uid``).
        uid: The node's unique ``O(log n)``-bit identifier.
        neighbors: The node labels of the adjacent nodes.  In a real network a
            node would only know its *ports*; exposing the neighbour labels is
            equivalent because the first round can exchange identifiers.
        n: The number of nodes ``n`` (global knowledge, as assumed by the
            paper — or an upper bound ``2^ell`` derived from identifier
            length).
        extra: Optional per-node inputs (e.g. "is this node alive", "which
            cluster does it start in") supplied by the caller.
    """

    node: Any
    uid: int
    neighbors: Sequence[Any]
    n: int
    extra: Dict[str, Any] = dataclasses.field(default_factory=dict)


class NodeAlgorithm(abc.ABC):
    """A per-node program executed synchronously by the simulator.

    Subclasses implement :meth:`initialize` and :meth:`step`.  The simulator
    calls ``initialize`` once before round 1, then repeatedly calls ``step``
    with the messages received in the previous round, until every node's
    program reports that it has halted (:meth:`finished` returns ``True``)
    or the round limit is reached.
    """

    def __init__(self, context: NodeContext) -> None:
        self.context = context
        self.halted = False

    @abc.abstractmethod
    def initialize(self) -> Dict[Any, Any]:
        """Produce the messages for round 1, keyed by neighbour label.

        Returns a mapping ``neighbor -> payload``; missing neighbours receive
        nothing this round.
        """

    @abc.abstractmethod
    def step(self, round_number: int, inbox: List[Any]) -> Dict[Any, Any]:
        """Process one synchronous round.

        Args:
            round_number: The 1-based round that is being computed.
            inbox: The :class:`~repro.congest.messages.Message` objects
                received at the end of the previous round.

        Returns:
            Mapping ``neighbor -> payload`` of messages to send this round.
        """

    def finished(self) -> bool:
        """Whether this node's program has terminated."""
        return self.halted

    def output(self) -> Any:
        """The node's local output once the algorithm has finished."""
        return None
