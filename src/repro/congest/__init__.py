"""A synchronous CONGEST-model simulator and distributed primitives.

The paper's algorithms live in the CONGEST model: an ``n``-node network,
synchronous rounds, and per round each node may send one ``B``-bit message
(``B = O(log n)``) to each neighbour.  This subpackage provides:

* :mod:`repro.congest.messages` — the message type with explicit bit-size
  accounting;
* :mod:`repro.congest.simulator` — the round-driven simulator enforcing the
  bandwidth limit and recording round / message statistics;
* :mod:`repro.congest.algorithm` — the base class distributed node programs
  derive from;
* :mod:`repro.congest.primitives` — genuinely distributed building blocks
  (BFS tree construction, broadcast, convergecast aggregation, leader
  election, shifted multi-source BFS) implemented as node programs and run on
  the simulator;
* :mod:`repro.congest.rounds` — the :class:`RoundLedger` cost model used by
  the composite graph-level algorithms, with the same per-primitive cost
  formulas that the simulator realises (cross-checked in the test suite);
* :mod:`repro.congest.faults` — the seeded :class:`FaultPlan` behind the
  ``--faults`` switch: message drop/duplicate/delay and node crash/restart
  schedules for the simulator, plus the cell-scope faults the suite
  supervisor injects (see docs/robustness.md).
"""

from repro.congest.faults import (
    FAULT_KINDS,
    FAULT_KIND_NAMES,
    FaultKindSpec,
    FaultPlan,
    InjectedFault,
)
from repro.congest.messages import Message, message_bits
from repro.congest.simulator import BandwidthExceeded, CongestSimulator, SimulationReport
from repro.congest.algorithm import NodeAlgorithm, NodeContext
from repro.congest.rounds import RoundLedger
from repro.congest.primitives import (
    bfs_tree,
    broadcast_from_root,
    convergecast_sum,
    count_nodes_at_distances,
    leader_election,
    shifted_multisource_bfs,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_KIND_NAMES",
    "FaultKindSpec",
    "FaultPlan",
    "InjectedFault",
    "Message",
    "message_bits",
    "BandwidthExceeded",
    "CongestSimulator",
    "SimulationReport",
    "NodeAlgorithm",
    "NodeContext",
    "RoundLedger",
    "bfs_tree",
    "broadcast_from_root",
    "convergecast_sum",
    "count_nodes_at_distances",
    "leader_election",
    "shifted_multisource_bfs",
]
