"""Distributed building blocks implemented as CONGEST node programs.

These primitives are the communication patterns the paper's algorithms are
built from:

* **BFS tree construction** from a root (used for ball growing, for the layer
  counting of Theorem 2.1 case (II) and of Lemma 3.1);
* **broadcast** of a value down a tree;
* **convergecast** (aggregation) of sums up a tree — this is how a cluster
  learns its size through its Steiner tree;
* **leader election** by minimum-identifier flooding (used to pick the node
  ``v*`` in Lemma 3.1 and the component leaders);
* **shifted multi-source BFS** — the Miller–Peng–Xu random-shift clustering,
  which is itself the randomized strong-diameter baseline [MPX13, EN16];
* **distance-layer counting** — gathering ``|B_r(a)|`` for a range of radii
  at the root ``a``, exactly the quantity Theorem 2.1 case (II) needs.

Every wrapper function at the bottom of the module runs its node program on a
:class:`~repro.congest.simulator.CongestSimulator` and returns both the
computed result and the :class:`~repro.congest.simulator.SimulationReport`,
so callers (and tests) can check round counts and message sizes against the
theoretical costs recorded in :mod:`repro.congest.rounds`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.congest.algorithm import NodeAlgorithm, NodeContext
from repro.congest.simulator import CongestSimulator, SimulationReport

# Message tags are small integers rather than strings so that every
# primitive's messages fit comfortably within the O(log n)-bit bandwidth
# (a tag costs a constant number of bits under the encoding of
# repro.congest.messages.message_bits).
TAG_BFS = 1
TAG_SUM = 2
TAG_BC = 3
TAG_LEADER = 4
TAG_MPX = 5
TAG_CHILD = 6
TAG_COUNT = 7
TAG_DONE = 8


class _BfsNode(NodeAlgorithm):
    """Layered BFS from a designated root.

    Round ``r`` delivers the "join layer ``r``" announcements; every node
    remembers its BFS parent (the first neighbour it heard from) and its
    distance from the root.  Nodes halt once they have joined and forwarded
    the wave; the simulator stops when no messages remain in flight.
    """

    def __init__(self, context: NodeContext) -> None:
        super().__init__(context)
        self.is_root = bool(context.extra.get("is_root", False))
        self.distance: Optional[int] = 0 if self.is_root else None
        self.parent: Optional[Any] = None
        self._announced = False

    def initialize(self) -> Dict[Any, Any]:
        if self.is_root:
            self._announced = True
            return {neighbor: (TAG_BFS, 0) for neighbor in self.context.neighbors}
        return {}

    def step(self, round_number: int, inbox: List[Any]) -> Dict[Any, Any]:
        if self.distance is None:
            candidates = [
                message for message in inbox if isinstance(message.payload, tuple)
                and message.payload and message.payload[0] == TAG_BFS
            ]
            if candidates:
                best = min(candidates, key=lambda message: str(message.sender))
                self.parent = best.sender
                self.distance = int(best.payload[1]) + 1
        if self.distance is not None and not self._announced:
            self._announced = True
            self.halted = True
            return {
                neighbor: (TAG_BFS, self.distance)
                for neighbor in self.context.neighbors
                if neighbor != self.parent
            }
        self.halted = True
        return {}

    def output(self) -> Any:
        return {"distance": self.distance, "parent": self.parent}


class _ConvergecastNode(NodeAlgorithm):
    """Sum a per-node value up a given tree towards the root.

    Each node knows its parent and children in the tree (supplied as extra
    inputs).  Leaves send their value in round 1; internal nodes wait for all
    children, add their own value and forward the partial sum.  The root's
    output is the total.
    """

    def __init__(self, context: NodeContext) -> None:
        super().__init__(context)
        self.parent = context.extra.get("parent")
        self.children: Sequence[Any] = tuple(context.extra.get("children", ()))
        self.value = int(context.extra.get("value", 0))
        self._received: Dict[Any, int] = {}
        self._sent = False
        self.total: Optional[int] = None

    def _ready(self) -> bool:
        return len(self._received) == len(self.children)

    def initialize(self) -> Dict[Any, Any]:
        if not self.children and self.parent is not None:
            self._sent = True
            self.halted = True
            return {self.parent: (TAG_SUM, self.value)}
        if not self.children and self.parent is None:
            self.total = self.value
            self.halted = True
        return {}

    def step(self, round_number: int, inbox: List[Any]) -> Dict[Any, Any]:
        for message in inbox:
            payload = message.payload
            if isinstance(payload, tuple) and payload and payload[0] == TAG_SUM:
                self._received[message.sender] = int(payload[1])
        if self._ready() and not self._sent:
            subtotal = self.value + sum(self._received.values())
            self._sent = True
            if self.parent is None:
                self.total = subtotal
                self.halted = True
                return {}
            self.halted = True
            return {self.parent: (TAG_SUM, subtotal)}
        if self._sent:
            self.halted = True
        return {}

    def output(self) -> Any:
        return self.total


class _BroadcastNode(NodeAlgorithm):
    """Broadcast a value from the root down a given tree."""

    def __init__(self, context: NodeContext) -> None:
        super().__init__(context)
        self.parent = context.extra.get("parent")
        self.children: Sequence[Any] = tuple(context.extra.get("children", ()))
        self.value = context.extra.get("value") if self.parent is None else None
        self._forwarded = False

    def initialize(self) -> Dict[Any, Any]:
        if self.parent is None:
            self._forwarded = True
            self.halted = True
            return {child: (TAG_BC, self.value) for child in self.children}
        return {}

    def step(self, round_number: int, inbox: List[Any]) -> Dict[Any, Any]:
        for message in inbox:
            payload = message.payload
            if isinstance(payload, tuple) and payload and payload[0] == TAG_BC:
                self.value = payload[1]
        if self.value is not None and not self._forwarded:
            self._forwarded = True
            self.halted = True
            return {child: (TAG_BC, self.value) for child in self.children}
        if self._forwarded:
            self.halted = True
        return {}

    def output(self) -> Any:
        return self.value


class _LeaderElectionNode(NodeAlgorithm):
    """Minimum-identifier flooding; terminates after ``max_rounds`` rounds.

    Every node repeatedly forwards the smallest identifier it has seen.  After
    a number of rounds at least the graph diameter, every node in a connected
    component knows the component's minimum identifier, which is declared the
    leader.  The number of rounds to run is supplied by the caller (an upper
    bound on the diameter, e.g. ``n``); forwarding only happens when the
    known minimum improves, so the message count stays linear in practice.
    """

    def __init__(self, context: NodeContext) -> None:
        super().__init__(context)
        self.best = context.uid
        self.rounds_to_run = int(context.extra.get("rounds", context.n))
        self._changed = True

    def initialize(self) -> Dict[Any, Any]:
        return {neighbor: (TAG_LEADER, self.best) for neighbor in self.context.neighbors}

    def step(self, round_number: int, inbox: List[Any]) -> Dict[Any, Any]:
        improved = False
        for message in inbox:
            payload = message.payload
            if isinstance(payload, tuple) and payload and payload[0] == TAG_LEADER:
                candidate = int(payload[1])
                if candidate < self.best:
                    self.best = candidate
                    improved = True
        if round_number >= self.rounds_to_run:
            self.halted = True
            return {}
        if improved:
            return {neighbor: (TAG_LEADER, self.best) for neighbor in self.context.neighbors}
        return {}

    def output(self) -> Any:
        return self.best


class _ShiftedBfsNode(NodeAlgorithm):
    """Miller–Peng–Xu shifted multi-source BFS.

    Every node ``v`` holds a non-negative integer shift ``delta_v`` (supplied
    by the caller; in the MPX algorithm it is drawn from a geometric /
    discretised exponential distribution).  Node ``v`` wakes up at round
    ``max_shift - delta_v`` as a source of its own cluster and the BFS waves
    compete: each node joins the cluster whose wave reaches it first, breaking
    ties by the smaller centre identifier.  The resulting clusters are exactly
    the MPX clusters with respect to shifted distances
    ``dist(u, v) - delta_v``, and each cluster is connected, i.e. has small
    *strong* diameter.
    """

    def __init__(self, context: NodeContext) -> None:
        super().__init__(context)
        self.shift = int(context.extra.get("shift", 0))
        self.max_shift = int(context.extra.get("max_shift", 0))
        self.max_rounds = int(context.extra.get("rounds", context.n + self.max_shift + 2))
        self.center: Optional[int] = None
        self.center_distance: Optional[int] = None
        self.parent: Optional[Any] = None
        self._pending_announce = False

    def _wake_round(self) -> int:
        return self.max_shift - self.shift

    def initialize(self) -> Dict[Any, Any]:
        if self._wake_round() <= 0:
            self.center = self.context.uid
            self.center_distance = 0
            self._pending_announce = True
            return {
                neighbor: (TAG_MPX, self.center, 0) for neighbor in self.context.neighbors
            }
        return {}

    def step(self, round_number: int, inbox: List[Any]) -> Dict[Any, Any]:
        if self.center is None:
            offers = [
                message
                for message in inbox
                if isinstance(message.payload, tuple) and message.payload and message.payload[0] == TAG_MPX
            ]
            if offers:
                best = min(offers, key=lambda message: (int(message.payload[1]),))
                self.center = int(best.payload[1])
                self.center_distance = int(best.payload[2]) + 1
                self.parent = best.sender
                self._pending_announce = True
            elif round_number >= self._wake_round():
                self.center = self.context.uid
                self.center_distance = 0
                self._pending_announce = True
        if self._pending_announce:
            self._pending_announce = False
            self.halted = True
            return {
                neighbor: (TAG_MPX, self.center, self.center_distance)
                for neighbor in self.context.neighbors
                if neighbor != self.parent
            }
        if round_number >= self.max_rounds:
            self.halted = True
        return {}

    def output(self) -> Any:
        return {
            "center": self.center,
            "distance": self.center_distance,
            "parent": self.parent,
        }


class _LayerCountNode(NodeAlgorithm):
    """Count the number of nodes in every BFS layer around a root.

    Phase 1 (rounds ``1..max_radius``): the BFS wave propagates distances.
    Phase 2: every node reports ``(distance, 1)`` up the BFS tree; internal
    nodes aggregate per-distance counts.  To stay within the CONGEST
    bandwidth, a node forwards *one layer count per round* (the counts for
    different layers are pipelined), so phase 2 takes ``O(depth + #layers)``
    rounds — the same pipelining argument the paper uses for gathering layer
    sizes at the root in case (II) of Theorem 2.1.
    """

    def __init__(self, context: NodeContext) -> None:
        super().__init__(context)
        self.is_root = bool(context.extra.get("is_root", False))
        self.max_radius = int(context.extra.get("max_radius", context.n))
        self.distance: Optional[int] = 0 if self.is_root else None
        self.parent: Optional[Any] = None
        self.children: Set[Any] = set()
        self._phase = 1
        self._phase2_start: Optional[int] = None
        self._pending_counts: Dict[int, int] = {}
        self._child_done: Set[Any] = set()
        self._announced = False
        self._sent_done = False
        self.layer_counts: Dict[int, int] = {}

    def initialize(self) -> Dict[Any, Any]:
        if self.is_root:
            self._announced = True
            return {neighbor: (TAG_BFS, 0) for neighbor in self.context.neighbors}
        return {}

    def _start_phase2(self, round_number: int) -> None:
        self._phase = 2
        self._phase2_start = round_number
        if self.distance is not None:
            self._pending_counts[self.distance] = self._pending_counts.get(self.distance, 0) + 1

    def step(self, round_number: int, inbox: List[Any]) -> Dict[Any, Any]:
        outgoing: Dict[Any, Any] = {}
        for message in inbox:
            payload = message.payload
            if not isinstance(payload, tuple) or not payload:
                continue
            if payload[0] == TAG_BFS:
                if self.distance is None:
                    self.parent = message.sender
                    self.distance = int(payload[1]) + 1
                    self._announced = False
            elif payload[0] == TAG_CHILD:
                self.children.add(message.sender)
            elif payload[0] == TAG_COUNT:
                layer = int(payload[1])
                self._pending_counts[layer] = self._pending_counts.get(layer, 0) + int(payload[2])
            elif payload[0] == TAG_DONE:
                self._child_done.add(message.sender)

        if self._phase == 1:
            if self.distance is not None and not self._announced:
                self._announced = True
                outgoing = {
                    neighbor: (TAG_BFS, self.distance)
                    for neighbor in self.context.neighbors
                    if neighbor != self.parent
                }
                if self.parent is not None:
                    outgoing[self.parent] = (TAG_CHILD, 1)
            # The BFS wave needs at most max_radius + 1 rounds to settle, and
            # child notifications one more.
            if round_number >= self.max_radius + 2:
                self._start_phase2(round_number)
            return outgoing

        # Phase 2: pipeline one (layer, count) pair per round towards the root.
        if self.is_root:
            for layer, count in self._pending_counts.items():
                self.layer_counts[layer] = self.layer_counts.get(layer, 0) + count
            self._pending_counts.clear()
            if self._child_done >= self.children:
                self.halted = True
            return {}

        if self.distance is None:
            # Unreachable from the root within max_radius: nothing to report.
            self.halted = True
            return {}

        if self._pending_counts:
            layer = min(self._pending_counts)
            count = self._pending_counts.pop(layer)
            return {self.parent: (TAG_COUNT, layer, count)}
        if self._child_done >= self.children and not self._sent_done:
            self._sent_done = True
            self.halted = True
            return {self.parent: (TAG_DONE, 1)}
        return {}

    def output(self) -> Any:
        if self.is_root:
            return dict(self.layer_counts)
        return {"distance": self.distance, "parent": self.parent}


def bfs_tree(graph: nx.Graph, root: Any) -> Tuple[Dict[Any, Optional[Any]], Dict[Any, int], SimulationReport]:
    """Build a BFS tree from ``root`` distributedly.

    Returns ``(parents, distances, report)``; unreachable nodes are absent
    from both dictionaries.
    """
    simulator = CongestSimulator(graph)
    report = simulator.run(_BfsNode, extra_inputs={root: {"is_root": True}})
    parents: Dict[Any, Optional[Any]] = {}
    distances: Dict[Any, int] = {}
    for node, result in report.outputs.items():
        if result["distance"] is not None:
            parents[node] = result["parent"]
            distances[node] = result["distance"]
    return parents, distances, report


def _tree_inputs(parents: Dict[Any, Optional[Any]], values: Dict[Any, int]) -> Dict[Any, Dict[str, Any]]:
    children: Dict[Any, List[Any]] = {node: [] for node in parents}
    for node, parent in parents.items():
        if parent is not None:
            children.setdefault(parent, []).append(node)
    extra: Dict[Any, Dict[str, Any]] = {}
    for node in parents:
        extra[node] = {
            "parent": parents[node],
            "children": tuple(children.get(node, ())),
            "value": values.get(node, 0),
        }
    return extra


def convergecast_sum(
    graph: nx.Graph,
    parents: Dict[Any, Optional[Any]],
    values: Dict[Any, int],
) -> Tuple[int, SimulationReport]:
    """Aggregate ``sum(values)`` at the root of the tree given by ``parents``.

    Nodes outside the tree do not participate.  Returns the total (as known by
    the root) and the simulation report.
    """
    subgraph = graph.subgraph(parents.keys())
    simulator = CongestSimulator(subgraph)
    extra = _tree_inputs(parents, values)
    report = simulator.run(_ConvergecastNode, extra_inputs=extra)
    roots = [node for node, parent in parents.items() if parent is None]
    if len(roots) != 1:
        raise ValueError("convergecast requires exactly one root in the parent map")
    total = report.outputs[roots[0]]
    return int(total), report


def broadcast_from_root(
    graph: nx.Graph,
    parents: Dict[Any, Optional[Any]],
    value: Any,
) -> Tuple[Dict[Any, Any], SimulationReport]:
    """Broadcast ``value`` from the root of the tree given by ``parents``."""
    subgraph = graph.subgraph(parents.keys())
    simulator = CongestSimulator(subgraph)
    extra = _tree_inputs(parents, {})
    roots = [node for node, parent in parents.items() if parent is None]
    if len(roots) != 1:
        raise ValueError("broadcast requires exactly one root in the parent map")
    extra[roots[0]]["value"] = value
    report = simulator.run(_BroadcastNode, extra_inputs=extra)
    return dict(report.outputs), report


def leader_election(graph: nx.Graph, rounds: Optional[int] = None) -> Tuple[int, SimulationReport]:
    """Elect the minimum identifier in a connected graph by flooding."""
    if rounds is None:
        rounds = graph.number_of_nodes()
    simulator = CongestSimulator(graph)
    extra = {node: {"rounds": rounds} for node in graph.nodes()}
    report = simulator.run(_LeaderElectionNode, extra_inputs=extra)
    leaders = set(report.outputs.values())
    if len(leaders) != 1:
        raise RuntimeError("leader election did not converge; increase the round budget")
    return int(leaders.pop()), report


def shifted_multisource_bfs(
    graph: nx.Graph,
    shifts: Dict[Any, int],
) -> Tuple[Dict[Any, int], Dict[Any, Optional[Any]], SimulationReport]:
    """Run the MPX shifted-BFS clustering with the given integer shifts.

    Returns ``(center_of, parent_of, report)`` where ``center_of[v]`` is the
    identifier of the cluster centre that captured ``v`` and ``parent_of[v]``
    is ``v``'s predecessor on the capturing path (``None`` for centres).
    """
    max_shift = max(shifts.values()) if shifts else 0
    extra = {
        node: {
            "shift": int(shifts.get(node, 0)),
            "max_shift": int(max_shift),
            "rounds": graph.number_of_nodes() + max_shift + 2,
        }
        for node in graph.nodes()
    }
    simulator = CongestSimulator(graph)
    report = simulator.run(_ShiftedBfsNode, extra_inputs=extra)
    centers: Dict[Any, int] = {}
    parents: Dict[Any, Optional[Any]] = {}
    for node, result in report.outputs.items():
        centers[node] = result["center"]
        parents[node] = result["parent"]
    return centers, parents, report


def count_nodes_at_distances(
    graph: nx.Graph,
    root: Any,
    max_radius: int,
) -> Tuple[Dict[int, int], SimulationReport]:
    """Gather ``|{v : dist(root, v) = r}|`` for every ``r <= max_radius``.

    This is the distributed primitive behind case (II) of Theorem 2.1: the
    cluster root grows a BFS and learns the size of every layer so it can pick
    the cheapest boundary.  Layer counts are pipelined up the BFS tree one per
    round, so the round complexity is ``O(max_radius)``.
    """
    simulator = CongestSimulator(graph)
    extra = {node: {"max_radius": max_radius} for node in graph.nodes()}
    extra[root]["is_root"] = True
    report = simulator.run(
        _LayerCountNode,
        extra_inputs=extra,
        max_rounds=10 * (max_radius + graph.number_of_nodes() + 10),
    )
    counts = {
        layer: count
        for layer, count in report.outputs[root].items()
        if layer <= max_radius
    }
    return counts, report
