"""Round-cost accounting for composite algorithms.

The deterministic algorithms of the paper (the weak-diameter carving phases,
the Theorem 2.1 transformation loop, the Lemma 3.1 recursion) are built from a
small set of communication primitives.  Simulating every one of their rounds
message-by-message would make even modest inputs (a few thousand nodes) take
hours in Python, so the composite algorithms compute their *clusterings* at
graph level while charging rounds through a :class:`RoundLedger` using the
very cost formulas the paper's analysis uses:

===========================  =====================================================
ledger entry                 cost charged (rounds)
===========================  =====================================================
``bfs(depth)``               ``depth + 1``   (one round per BFS layer)
``layer_count(depth)``       ``2 * depth + O(1)``  (BFS down + pipelined counts up)
``tree_aggregate(depth, L)`` ``depth * L``    (convergecast over Steiner trees with
                             per-edge congestion ``L``; messages for different
                             trees sharing an edge are pipelined)
``tree_broadcast(depth, L)`` ``depth * L``
``local_step()``             ``1``            (single exchange with neighbours)
===========================  =====================================================

These formulas are exactly the terms appearing in the round-complexity
expressions of Theorems 2.1–3.4.  The test suite cross-validates the constant
behaviour of ``bfs`` and ``layer_count`` against the message-level simulator
(:mod:`repro.congest.primitives`), so the ledger is calibrated rather than
aspirational.  The ledger also records a structured trace so benchmarks can
break the total down by primitive.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple


@dataclasses.dataclass
class LedgerEntry:
    """One charged operation: which primitive, its parameters, and the cost."""

    operation: str
    rounds: int
    detail: str = ""


class RoundLedger:
    """Accumulates the CONGEST round cost of a composite algorithm.

    Instances are cheap; algorithms create one per run (or accept one from the
    caller so that nested invocations — e.g. the weak carving inside
    Theorem 2.1 — charge into the same ledger).
    """

    def __init__(self) -> None:
        self._entries: List[LedgerEntry] = []

    # ------------------------------------------------------------------ #
    # Charging primitives
    # ------------------------------------------------------------------ #
    def charge(self, operation: str, rounds: int, detail: str = "") -> int:
        """Charge an explicit number of rounds under the given label."""
        rounds = max(0, int(rounds))
        self._entries.append(LedgerEntry(operation=operation, rounds=rounds, detail=detail))
        return rounds

    def bfs(self, depth: int, detail: str = "") -> int:
        """A BFS exploring ``depth`` layers costs ``depth + 1`` rounds."""
        return self.charge("bfs", depth + 1, detail)

    def layer_count(self, depth: int, detail: str = "") -> int:
        """BFS plus pipelined per-layer counting: ``2 * depth + 4`` rounds."""
        return self.charge("layer_count", 2 * depth + 4, detail)

    def tree_aggregate(self, depth: int, congestion: int = 1, detail: str = "") -> int:
        """Convergecast over (possibly overlapping) Steiner trees.

        With per-edge congestion ``L`` the aggregations of different clusters
        sharing an edge are pipelined, costing ``depth * L`` rounds in total
        (the standard pipelining argument used in the paper's complexity
        accounting for the "is there a giant cluster?" check).
        """
        return self.charge("tree_aggregate", max(1, depth) * max(1, congestion), detail)

    def tree_broadcast(self, depth: int, congestion: int = 1, detail: str = "") -> int:
        """Broadcast down Steiner trees; same cost shape as aggregation."""
        return self.charge("tree_broadcast", max(1, depth) * max(1, congestion), detail)

    def local_step(self, count: int = 1, detail: str = "") -> int:
        """``count`` rounds of single-hop exchanges with neighbours."""
        return self.charge("local_step", count, detail)

    def merge(self, other: "RoundLedger", detail: str = "") -> int:
        """Fold another ledger's total into this one (for nested algorithms)."""
        return self.charge("subroutine", other.total_rounds, detail)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def total_rounds(self) -> int:
        """Total rounds charged so far."""
        return sum(entry.rounds for entry in self._entries)

    @property
    def entries(self) -> Tuple[LedgerEntry, ...]:
        """The charged entries, in order."""
        return tuple(self._entries)

    def breakdown(self) -> Dict[str, int]:
        """Total rounds per primitive label."""
        totals: Dict[str, int] = {}
        for entry in self._entries:
            totals[entry.operation] = totals.get(entry.operation, 0) + entry.rounds
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "RoundLedger(total={}, breakdown={})".format(self.total_rounds, self.breakdown())
