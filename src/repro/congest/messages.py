"""Messages with explicit bit-size accounting for the CONGEST simulator.

The CONGEST model limits each message to ``B = O(log n)`` bits.  To make that
limit *checkable* rather than aspirational, every message carries a payload
whose size in bits is computed by :func:`message_bits`.  The simulator rejects
(or, in permissive mode, merely records) any message exceeding the configured
bandwidth — this is what lets the ABCP96 baseline demonstrate, quantitatively,
that it needs unbounded messages while our transformation does not.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Tuple


def _int_bits(value: int) -> int:
    """Bits needed for a (possibly negative) integer, including a sign bit."""
    magnitude = abs(int(value))
    return 1 + max(1, magnitude.bit_length())


def message_bits(payload: Any) -> int:
    """The number of bits needed to encode ``payload``.

    The encoding is a straightforward self-delimiting scheme:

    * ``None`` and booleans cost 1 bit;
    * integers cost ``1 + bit_length`` bits (sign + magnitude);
    * floats cost 64 bits;
    * strings cost 8 bits per character;
    * tuples/lists cost the sum of their elements plus 2 bits of framing per
      element (enough for the small fixed-arity tuples the algorithms send).

    The constants do not matter for the asymptotics; what matters is that an
    identifier or a counter costs ``O(log n)`` bits while a gathered topology
    (a set of edges) costs ``Omega(size)`` bits.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return _int_bits(payload)
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * max(1, len(payload))
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(message_bits(item) + 2 for item in payload) + 2
    if isinstance(payload, dict):
        return sum(message_bits(k) + message_bits(v) + 4 for k, v in payload.items()) + 2
    raise TypeError("unsupported message payload type: {!r}".format(type(payload)))


@dataclasses.dataclass(frozen=True)
class Message:
    """A single CONGEST message.

    Attributes:
        sender: Node identifier of the sending node (filled in by the
            simulator; algorithms never need to set it).
        payload: The message content; must be composed of the primitive types
            accepted by :func:`message_bits`.
    """

    sender: Any
    payload: Any

    @property
    def bits(self) -> int:
        """Size of the payload in bits (the sender field is free: it is
        implied by the port the message arrives on)."""
        return message_bits(self.payload)


def default_bandwidth(n: int, constant: int = 8) -> int:
    """The standard ``B = O(log n)`` bandwidth used by the simulator.

    ``constant * ceil(log2 n)`` bits comfortably fits a constant number of
    identifiers and counters per message (including the per-element framing
    overhead of :func:`message_bits`), matching the paper's convention.
    """
    if n < 2:
        return constant
    return constant * int(math.ceil(math.log2(n)))
