"""The synchronous CONGEST-model simulator.

The simulator realises the model of Section 1.1 of the paper: an undirected
unweighted graph, synchronous rounds, one ``B``-bit message per edge direction
per round.  It drives one :class:`~repro.congest.algorithm.NodeAlgorithm`
instance per node and records, per run:

* the number of rounds until all nodes halt;
* the total number of messages and total bits sent;
* the maximum message size observed (to certify that an algorithm really is a
  small-message algorithm, or to quantify by how much a baseline exceeds the
  bandwidth);
* the number of bandwidth violations (only possible in ``permissive`` mode —
  in strict mode a violation raises :class:`BandwidthExceeded`).

With a :class:`~repro.congest.faults.FaultPlan` attached, the simulator
additionally consults the plan every round: messages are dropped, duplicated
or delayed by one round, and nodes crash (fail-stop: inbox discarded, sends
suppressed, program not stepped) and restart on the plan's seeded schedule.
Fault draws are deterministic in ``(plan, fault_seed)``, the report's
``fault_counters`` records what was injected, and termination additionally
waits for delayed in-flight messages — a faulty run ends cleanly, it just
may end *wrong*, which is exactly what the validators are for.

The simulator freezes the network into the flat-array CSR index of
:mod:`repro.graphs.csr` at construction time: per-node neighbour tuples
(sorted by *uid*, the only ordering a CONGEST node can actually compute) are
precomputed once instead of being re-derived from the dict-of-dicts adjacency
per context, and the per-round delivery buffers are reused across rounds
instead of rebuilding an n-entry dict of lists every round.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Type

import networkx as nx

from repro import telemetry
from repro.congest.algorithm import NodeAlgorithm, NodeContext
from repro.congest.faults import FaultPlan
from repro.congest.messages import Message, default_bandwidth, message_bits


class BandwidthExceeded(RuntimeError):
    """Raised in strict mode when a message exceeds the per-edge bandwidth."""


@dataclasses.dataclass
class SimulationReport:
    """Statistics gathered over one simulated execution."""

    rounds: int
    messages_sent: int
    total_bits: int
    max_message_bits: int
    bandwidth_bits: int
    bandwidth_violations: int
    outputs: Dict[Any, Any]
    #: Injected-fault counters (``dropped`` / ``duplicated`` / ``delayed`` /
    #: ``crashed_nodes`` / ``lost_to_crash``) when the simulator ran under a
    #: :class:`~repro.congest.faults.FaultPlan`; ``None`` for clean runs.
    fault_counters: Optional[Dict[str, int]] = None

    @property
    def within_bandwidth(self) -> bool:
        """True when every message respected the CONGEST bandwidth."""
        return self.bandwidth_violations == 0


class CongestSimulator:
    """Run per-node programs over a graph in synchronous rounds.

    Args:
        graph: The communication network.  Every node must carry a ``"uid"``
            attribute (see :func:`repro.graphs.assign_unique_identifiers`);
            when missing, the node label itself is used as identifier.
        bandwidth_bits: Per-message bit budget; defaults to
            ``4 * ceil(log2 n)``.
        strict: When true, any over-budget message raises
            :class:`BandwidthExceeded`; when false the violation is only
            counted (used by the ABCP96 message-size experiment).
        fault_plan: Optional :class:`~repro.congest.faults.FaultPlan`; when
            given (and active), every :meth:`run` injects the plan's
            message-scope faults, seeded by ``fault_seed`` — identical plan
            + seed reproduce the exact same fault sequence.
        fault_seed: Seed for the fault draws (typically derived from the
            suite's SHA-256 cell seed).
    """

    def __init__(
        self,
        graph: nx.Graph,
        bandwidth_bits: Optional[int] = None,
        strict: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        fault_seed: int = 0,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("cannot simulate an empty network")
        self.graph = graph
        self.n = graph.number_of_nodes()
        self.bandwidth_bits = (
            bandwidth_bits if bandwidth_bits is not None else default_bandwidth(self.n)
        )
        self.strict = strict
        self.fault_plan = fault_plan if fault_plan is not None and fault_plan.active else None
        self.fault_seed = fault_seed
        # Freeze the adjacency once: per-node neighbour tuples sorted by uid
        # (integer uids order numerically — sorting by str(label) would order
        # node 10 before node 2, a determinism hazard for tie-breaking
        # algorithms).  Falls back to the networkx walk for graphs the CSR
        # index cannot represent.  (Imported lazily: repro.graphs pulls in
        # repro.clustering for its IO helpers, which in turn reaches this
        # module through repro.congest — a module-level import would close
        # that cycle.)
        from repro.graphs.csr import _graph_fingerprint, csr_index_or_none, uid_order_key

        # views="reject": a view's neighbour tables must cover exactly the
        # view's nodes, which the root's CSR rows cannot; respect_backend is
        # off because the simulator freezes the network regardless of the
        # algorithm backend switch.
        csr = csr_index_or_none(graph, refresh=True, views="reject", respect_backend=False)
        if csr is not None:
            # Fresh by construction: refresh_csr_cache fingerprints the uid
            # attributes, so the frozen uid array matches the live graph.
            self._uid_of: Dict[Any, Any] = dict(zip(csr.nodes, csr.uids))
        else:
            self._uid_of = {node: graph.nodes[node].get("uid", node) for node in graph.nodes()}
        self._neighbors: Dict[Any, Tuple[Any, ...]] = {}
        for node in graph.nodes():
            adjacent = csr.neighbors(node) if csr is not None else graph.neighbors(node)
            self._neighbors[node] = tuple(
                sorted(adjacent, key=lambda v: uid_order_key(self._uid_of[v]))
            )
        # The network is frozen now; remember its fingerprint so run() can
        # reject a mutated graph loudly instead of crashing on stale state.
        # On the csr branch the just-refreshed index already carries it.
        self._frozen_fingerprint = (
            csr.fingerprint if csr is not None else _graph_fingerprint(graph)
        )

    def _make_context(self, node: Any, extra: Optional[Mapping[str, Any]]) -> NodeContext:
        per_node_extra = dict(extra.get(node, {})) if extra else {}
        return NodeContext(
            node=node,
            uid=self._uid_of[node],
            neighbors=self._neighbors[node],
            n=self.n,
            extra=per_node_extra,
        )

    def run(
        self,
        algorithm_factory: Callable[[NodeContext], NodeAlgorithm],
        max_rounds: int = 10_000,
        extra_inputs: Optional[Mapping[Any, Mapping[str, Any]]] = None,
    ) -> SimulationReport:
        """Execute the algorithm until every node halts or ``max_rounds``.

        Args:
            algorithm_factory: Callable building the per-node program from a
                :class:`NodeContext` (typically the program class itself).
            max_rounds: Hard cap on the number of simulated rounds; exceeding
                it raises ``RuntimeError`` because the paper's algorithms all
                terminate and a non-terminating run indicates a bug.
            extra_inputs: Optional per-node extra inputs forwarded into the
                node contexts.

        Returns:
            A :class:`SimulationReport` with round and message statistics and
            the per-node outputs.
        """
        with telemetry.span(
            "congest.run",
            n=self.n,
            bandwidth_bits=self.bandwidth_bits,
            faulty=self.fault_plan is not None,
        ) as run_span:
            report = self._run_impl(algorithm_factory, max_rounds, extra_inputs)
            run_span.set("rounds", report.rounds)
            run_span.set("messages", report.messages_sent)
        telemetry.inc("congest_rounds", report.rounds)
        telemetry.inc("congest_messages", report.messages_sent)
        if report.fault_counters:
            for kind, count in sorted(report.fault_counters.items()):
                if count:
                    telemetry.inc("faults_injected", count, kind=kind)
        return report

    def _run_impl(
        self,
        algorithm_factory: Callable[[NodeContext], NodeAlgorithm],
        max_rounds: int,
        extra_inputs: Optional[Mapping[Any, Mapping[str, Any]]],
    ) -> SimulationReport:
        from repro.graphs.csr import _graph_fingerprint

        if _graph_fingerprint(self.graph) != self._frozen_fingerprint:
            raise ValueError(
                "the graph was mutated after simulator construction; "
                "the simulator freezes the network at __init__ — build a "
                "new CongestSimulator for the modified graph"
            )

        programs: Dict[Any, NodeAlgorithm] = {}
        for node in self.graph.nodes():
            context = self._make_context(node, extra_inputs)
            programs[node] = algorithm_factory(context)

        messages_sent = 0
        total_bits = 0
        max_message_bits = 0
        violations = 0

        # Fault machinery: per-run draw state, the seeded node-crash windows
        # (node -> [down_round, up_round)), and the one-round delay buffer.
        faults = None
        crash_windows: Dict[Any, Tuple[int, int]] = {}
        if self.fault_plan is not None:
            from repro.graphs.csr import uid_order_key

            faults = self.fault_plan.message_state(self.fault_seed)
            ordered = sorted(
                self.graph.nodes(), key=lambda v: uid_order_key(self._uid_of[v])
            )
            crash_windows = self.fault_plan.node_crash_schedule(
                ordered, self.fault_seed
            )
            faults.counters["crashed_nodes"] = len(crash_windows)

        def _crashed(node: Any, round_number: int) -> bool:
            window = crash_windows.get(node)
            return window is not None and window[0] <= round_number < window[1]

        delayed_next: List[Tuple[Any, Message]] = []

        # Round 1 output: initialize() produces the first batch of messages.
        outgoing: Dict[Any, Dict[Any, Any]] = {}
        for node, program in programs.items():
            outgoing[node] = program.initialize() or {}

        # Delivery buffers, allocated once and reused across rounds.  Only
        # entries that actually received messages last round are re-bound to
        # a fresh list (programs may legitimately keep a reference to their
        # inbox, so the delivered lists themselves are never mutated).
        deliveries: Dict[Any, List[Message]] = {node: [] for node in self.graph.nodes()}
        touched: List[Any] = []

        rounds = 0
        # Round batches are emitted retroactively (no per-round span
        # push/pop); only the boundary check itself lands on the hot path.
        batch_first = 1
        batch_t0 = time.perf_counter()
        for round_number in range(1, max_rounds + 1):
            # Deliver the messages produced in the previous step.
            for node in touched:
                deliveries[node] = []
            touched = []
            any_message = False

            def _deliver(neighbor: Any, message: Message) -> None:
                inbox = deliveries[neighbor]
                if not inbox:
                    touched.append(neighbor)
                inbox.append(message)

            # Messages the fault plan held back last round arrive first (a
            # delayed message is one round late, not reordered past round
            # boundaries).  A receiver that crashed in the meantime loses it.
            if delayed_next:
                arriving, delayed_next = delayed_next, []
                for neighbor, message in arriving:
                    if _crashed(neighbor, round_number):
                        faults.counters["lost_to_crash"] += 1
                        continue
                    _deliver(neighbor, message)
                    any_message = True

            for sender, per_neighbor in outgoing.items():
                for neighbor, payload in per_neighbor.items():
                    if payload is None:
                        continue
                    if not self.graph.has_edge(sender, neighbor):
                        raise ValueError(
                            "node {!r} tried to message non-neighbor {!r}".format(sender, neighbor)
                        )
                    bits = message_bits(payload)
                    if bits > self.bandwidth_bits:
                        violations += 1
                        if self.strict:
                            raise BandwidthExceeded(
                                "message of {} bits exceeds bandwidth {} bits".format(
                                    bits, self.bandwidth_bits
                                )
                            )
                    messages_sent += 1
                    total_bits += bits
                    max_message_bits = max(max_message_bits, bits)
                    if faults is not None:
                        # Fail-stop: a crashed sender's messages never leave
                        # it; a crashed receiver loses what reaches it.
                        if _crashed(sender, round_number):
                            faults.counters["lost_to_crash"] += 1
                            continue
                        dropped, copies, delay_rounds = faults.message_fate()
                        if dropped:
                            continue
                        message = Message(sender=sender, payload=payload)
                        if delay_rounds:
                            delayed_next.append((neighbor, message))
                            continue
                        if _crashed(neighbor, round_number):
                            faults.counters["lost_to_crash"] += 1
                            continue
                        for _ in range(copies):
                            _deliver(neighbor, message)
                        any_message = True
                        continue
                    _deliver(neighbor, Message(sender=sender, payload=payload))
                    any_message = True

            rounds = round_number
            all_halted = all(program.finished() for program in programs.values())
            if all_halted and not any_message and not delayed_next:
                rounds = round_number - 1
                break

            outgoing = {}
            for node, program in programs.items():
                # Fail-stop crash window: the node neither steps nor sends;
                # anything already in its inbox is discarded (and counted).
                # On restart the program resumes with its state intact.
                if faults is not None and _crashed(node, round_number):
                    lost = len(deliveries[node])
                    if lost:
                        faults.counters["lost_to_crash"] += lost
                    outgoing[node] = {}
                    continue
                # A "halted" program is idle, not dead: it is woken up again
                # whenever a message arrives (event-driven semantics).  This
                # lets programs like the BFS wave go quiet while waiting for
                # the frontier to reach them without stalling the simulation.
                inbox = deliveries[node]
                if program.finished() and not inbox:
                    outgoing[node] = {}
                    continue
                # Never hand out the reusable accumulation buffer while it is
                # empty: it would stay in `deliveries` (the node was not
                # "touched") and a later round's delivery would append to a
                # list the program may have kept.  Non-empty inboxes are safe
                # — they are re-bound to fresh lists at the next round.
                outgoing[node] = program.step(round_number, inbox if inbox else []) or {}
            if round_number % telemetry.ROUND_BATCH == 0:
                telemetry.emit_completed(
                    "congest.rounds",
                    batch_t0,
                    first=batch_first,
                    rounds=round_number - batch_first + 1,
                )
                batch_first = round_number + 1
                batch_t0 = time.perf_counter()
        else:
            raise RuntimeError("simulation did not terminate within {} rounds".format(max_rounds))

        if rounds >= batch_first:  # the final, partial batch
            telemetry.emit_completed(
                "congest.rounds", batch_t0, first=batch_first, rounds=rounds - batch_first + 1
            )

        outputs = {node: program.output() for node, program in programs.items()}
        return SimulationReport(
            rounds=rounds,
            messages_sent=messages_sent,
            total_bits=total_bits,
            max_message_bits=max_message_bits,
            bandwidth_bits=self.bandwidth_bits,
            bandwidth_violations=violations,
            outputs=outputs,
            fault_counters=dict(faults.counters) if faults is not None else None,
        )
